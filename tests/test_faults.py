"""Fault-injection suite for the supervised parallel executor.

Every degradation path of :class:`repro.core.parallel.ParallelSearch`
— worker death, hang past the shard deadline, corrupt shard payload,
pool-spawn failure, and the in-process last-resort rescue — must
produce a hit list **bit-identical** to the clean run (and therefore
to the :class:`NaiveSearcher` oracle), with the recovery path visible
in the returned stats. Faults are injected deterministically through
:class:`FaultPlan`, so each path is a plain assertion rather than a
flake hunt.
"""

import pytest

from repro import FaultPlan, ParallelSearch, SearchBudget
from repro.core.parallel import (
    FaultSpec,
    ShardResult,
    _search_shard,
    validate_shard_result,
)
from repro.errors import EngineError
from repro.grna.hit import OffTargetHit

from differential import assert_engines_agree, case_from_seed, oracle_hits
from helpers import hit_multiset

CHUNK = 700  # 3000 bp genome -> 4+ chunks -> ~8 shards with 2 guide batches

# One reproducible differential case shared by the whole module; the
# harness derives the genome (seed 91), the 2-guide panel (seed 92),
# and the mm=1 budget the suite always used.
CASE = case_from_seed(91, chunk_length=CHUNK, name="chrFault")


@pytest.fixture(scope="module")
def genome():
    return CASE.genome


@pytest.fixture(scope="module")
def guides():
    return list(CASE.guides)


@pytest.fixture(scope="module")
def budget():
    return CASE.budget


@pytest.fixture(scope="module")
def oracle():
    return oracle_hits(CASE)


@pytest.fixture(scope="module")
def clean():
    """The fault-free sharded result every faulted run must reproduce.

    ``assert_engines_agree`` pins the clean run (and every other
    engine) to the oracle before the fault tests start from it.
    """
    assert_engines_agree(CASE)
    return ParallelSearch(
        list(CASE.guides),
        CASE.budget,
        workers=1,
        chunk_length=CHUNK,
        backoff_seconds=0.0,
    ).search(CASE.genome)


def run(genome, guides, budget, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("chunk_length", CHUNK)
    kwargs.setdefault("backoff_seconds", 0.0)
    executor = ParallelSearch(guides, budget, **kwargs)
    return executor.search_with_stats(genome)


class TestFaultPlan:
    def test_fault_for_matches_shard_and_attempt(self):
        plan = FaultPlan(faults=(FaultSpec(3, 2, "corrupt"),))
        assert plan.fault_for(3, 2) == "corrupt"
        assert plan.fault_for(3, 1) is None
        assert plan.fault_for(2, 2) is None

    def test_constructors(self):
        assert FaultPlan.kill(1).fault_for(1, 1) == "kill"
        assert FaultPlan.corrupt(2, 3).fault_for(2, 3) == "corrupt"
        plan = FaultPlan.hang(0, hang_seconds=0.5)
        assert plan.fault_for(0, 1) == "hang"
        assert plan.hang_seconds == 0.5

    def test_rejects_unknown_kind(self):
        with pytest.raises(EngineError):
            FaultSpec(0, 1, "meltdown")

    def test_rejects_zero_attempt(self):
        with pytest.raises(EngineError):
            FaultSpec(0, 0, "kill")

    def test_executor_rejects_non_plan(self, guides, budget):
        with pytest.raises(EngineError):
            ParallelSearch(guides, budget, fault_plan="kill everything")


class TestKill:
    def test_pooled_kill_recovers(self, genome, guides, budget, oracle, clean):
        hits, stats = run(genome, guides, budget, fault_plan=FaultPlan.kill(1))
        assert hits == clean
        assert hit_multiset(hits) == hit_multiset(oracle)
        ft = stats["fault_tolerance"]
        assert ft["failures"].get("worker_death", 0) >= 1
        assert ft["pool_rebuilds"] >= 1
        assert ft["retries"] >= 1
        assert any(shard["attempts"] > 1 for shard in stats["shards"])

    def test_serial_kill_retries_in_process(self, genome, guides, budget, clean):
        hits, stats = run(
            genome, guides, budget, workers=1, fault_plan=FaultPlan.kill(0)
        )
        assert hits == clean
        shard0 = stats["shards"][0]
        assert shard0["attempts"] == 2
        assert shard0["failures"] == ["kill"]
        assert shard0["recovery"] == "retry"
        assert stats["fault_tolerance"]["retries"] >= 1

    def test_relentless_kill_rescued_in_process(self, genome, guides, budget, clean):
        # Shard 0 dies on its first three attempts; with max_retries=1
        # the pool may only be rebuilt twice, so the scheduler abandons
        # it and re-executes the failed shards in-process (attempt 4,
        # unfaulted) — the last-resort path.
        plan = FaultPlan(faults=tuple(FaultSpec(0, a, "kill") for a in (1, 2, 3)))
        hits, stats = run(genome, guides, budget, max_retries=1, fault_plan=plan)
        assert hits == clean
        ft = stats["fault_tolerance"]
        assert ft["in_process_rescues"] >= 1
        rescued = [s for s in stats["shards"] if s["recovery"] == "in_process"]
        assert rescued

    def test_unrecoverable_shard_raises(self, genome, guides, budget):
        plan = FaultPlan(
            faults=tuple(FaultSpec(0, a, "kill") for a in range(1, 12))
        )
        executor = ParallelSearch(
            guides,
            budget,
            workers=1,
            chunk_length=CHUNK,
            max_retries=1,
            backoff_seconds=0.0,
            fault_plan=plan,
        )
        with pytest.raises(EngineError, match="shard 0 failed"):
            executor.search(genome)


class TestHang:
    def test_pooled_hang_times_out_and_requeues(self, genome, guides, budget, clean):
        hits, stats = run(
            genome,
            guides,
            budget,
            shard_timeout=0.25,
            fault_plan=FaultPlan.hang(0, hang_seconds=1.2),
        )
        assert hits == clean
        ft = stats["fault_tolerance"]
        assert ft["timeouts"] >= 1
        assert ft["failures"].get("timeout", 0) >= 1
        assert any(shard["timeouts"] >= 1 for shard in stats["shards"])

    def test_serial_hang_is_simulated_timeout(self, genome, guides, budget, clean):
        hits, stats = run(
            genome,
            guides,
            budget,
            workers=1,
            shard_timeout=0.1,
            fault_plan=FaultPlan.hang(0),
        )
        assert hits == clean
        shard0 = stats["shards"][0]
        assert shard0["failures"] == ["timeout"]
        assert shard0["attempts"] == 2

    def test_hang_without_deadline_is_unobservable(self, genome, guides, budget, clean):
        # No shard_timeout configured: a stall cannot be detected, the
        # attempt simply completes (in-process the sleep is skipped).
        hits, stats = run(
            genome, guides, budget, workers=1, fault_plan=FaultPlan.hang(0)
        )
        assert hits == clean
        assert stats["fault_tolerance"]["timeouts"] == 0


class TestCorrupt:
    def test_pooled_corrupt_detected_and_retried(self, genome, guides, budget, clean):
        hits, stats = run(genome, guides, budget, fault_plan=FaultPlan.corrupt(1))
        assert hits == clean
        assert stats["fault_tolerance"]["failures"].get("corrupt_result", 0) == 1

    def test_serial_corrupt_detected(self, genome, guides, budget, clean):
        hits, stats = run(
            genome, guides, budget, workers=1, fault_plan=FaultPlan.corrupt(0)
        )
        assert hits == clean
        assert stats["shards"][0]["failures"] == ["corrupt_result"]
        assert stats["shards"][0]["recovery"] == "retry"

    def test_validation_accepts_honest_result(self, genome, guides, budget):
        executor = ParallelSearch(guides, budget, workers=1, chunk_length=CHUNK)
        task = executor.shard_tasks(genome)[0]
        assert validate_shard_result(task, _search_shard(task)) is None

    def test_validation_rejects_defects(self, genome, guides, budget):
        executor = ParallelSearch(guides, budget, workers=1, chunk_length=CHUNK)
        task = executor.shard_tasks(genome)[0]
        honest = _search_shard(task)
        assert "not ShardResult" in validate_shard_result(task, "garbage")
        wrong_id = ShardResult(
            shard_id=task.shard_id + 1,
            hits=honest.hits,
            seconds=honest.seconds,
            chunk_start=honest.chunk_start,
            chunk_length=honest.chunk_length,
        )
        assert "shard_id" in validate_shard_result(task, wrong_id)
        out_of_span = ShardResult(
            shard_id=task.shard_id,
            hits=(OffTargetHit(task.guides[0].name, "chrFault", "+", 10**7, 10**7 + 23, 0),),
            seconds=0.0,
            chunk_start=honest.chunk_start,
            chunk_length=honest.chunk_length,
        )
        assert "outside shard chunk" in validate_shard_result(task, out_of_span)
        over_budget = ShardResult(
            shard_id=task.shard_id,
            hits=(OffTargetHit(task.guides[0].name, "chrFault", "+", 0, 23, 99),),
            seconds=0.0,
            chunk_start=honest.chunk_start,
            chunk_length=honest.chunk_length,
        )
        assert "budget" in validate_shard_result(task, over_budget)
        unknown_guide = ShardResult(
            shard_id=task.shard_id,
            hits=(OffTargetHit("nobody", "chrFault", "+", 0, 23, 0),),
            seconds=0.0,
            chunk_start=honest.chunk_start,
            chunk_length=honest.chunk_length,
        )
        assert "unknown guide" in validate_shard_result(task, unknown_guide)


class TestPoolSpawnFailure:
    def test_spawn_failure_degrades_to_serial(self, genome, guides, budget, clean):
        hits, stats = run(
            genome,
            guides,
            budget,
            workers=4,
            fault_plan=FaultPlan(pool_spawn_failures=1),
        )
        assert hits == clean
        assert stats["serial_fallback"] is True
        assert stats["pooled"] is False
        assert stats["fault_tolerance"]["pool_spawn_failures"] == 1

    def test_spawn_failure_visible_in_obs_counters(self, genome, guides, budget):
        _, stats = run(
            genome,
            guides,
            budget,
            workers=4,
            fault_plan=FaultPlan(pool_spawn_failures=1),
        )
        assert stats["obs"]["counters"]["parallel.pool_spawn_failures"] == 1


class TestConformance:
    """Every fault class yields the bit-identical merged hit list."""

    @pytest.mark.parametrize(
        "label,kwargs",
        [
            ("kill-pooled", dict(fault_plan=FaultPlan.kill(1))),
            (
                "hang-pooled",
                dict(
                    shard_timeout=0.25,
                    fault_plan=FaultPlan.hang(0, hang_seconds=1.2),
                ),
            ),
            ("corrupt-pooled", dict(fault_plan=FaultPlan.corrupt(2))),
            (
                "spawn-failure",
                dict(workers=4, fault_plan=FaultPlan(pool_spawn_failures=1)),
            ),
            ("kill-serial", dict(workers=1, fault_plan=FaultPlan.kill(0))),
            ("corrupt-serial", dict(workers=1, fault_plan=FaultPlan.corrupt(0))),
            (
                "kill-then-corrupt",
                dict(
                    fault_plan=FaultPlan(
                        faults=(FaultSpec(0, 1, "corrupt"), FaultSpec(1, 1, "kill"))
                    )
                ),
            ),
        ],
    )
    def test_fault_path_is_bit_identical(
        self, label, kwargs, genome, guides, budget, oracle, clean
    ):
        hits, stats = run(genome, guides, budget, **kwargs)
        assert hits == clean, label
        assert hit_multiset(hits) == hit_multiset(oracle), label
        # The degradation must be visible, not silent.
        ft = stats["fault_tolerance"]
        degraded = (
            ft["retries"]
            or ft["timeouts"]
            or ft["pool_spawn_failures"]
            or sum(ft["failures"].values())
        )
        assert degraded, f"{label}: no recovery recorded in stats"
