"""Property and regression suite for the bit-parallel kernel.

The kernel's contract is bit-identity with the naive oracle: same
hits, positions, strands, mismatch counts, and canonical dedupe order,
for every genome (including N runs and empty input), guide panel
(lengths 12-24 nt, either PAM side), mismatch budget 0-5, and both
strands. Hypothesis sweeps the randomized space; the directed classes
pin each bit-plane mechanism — word-boundary shifts, prefix masks,
thermometer-plane carries at exactly the budget — that a random sweep
may visit only by luck.

The ``slow``-marked soak at the bottom is the nightly fuzz pass:
50 seeded ~1 Mbp genomes, kernel vs the LUT matcher (itself pinned to
the naive oracle by this file and ``tests/differential.py`` — the
pure-Python oracle is infeasible at Mbp scale), with the seed in every
failure message for replay.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import NaiveSearcher, SearchBudget, StreamingSearch, random_genome
from repro.core import bitparallel, matcher
from repro.core.bitparallel import (
    BitParallelPanel,
    _prefix_mask,
    _shift_down,
    make_kernel,
    validate_kernel,
)
from repro.errors import EngineError
from repro.genome.sequence import Sequence
from repro.grna.guide import Guide
from repro.grna.pam import Pam

from differential import adversarial_chunk_length
from helpers import hit_multiset

protospacer = st.text(alphabet="ACGT", min_size=12, max_size=24)
genome_text = st.text(alphabet="ACGTN", min_size=0, max_size=300)


def oracle(genome, guides, budget):
    return NaiveSearcher(budget).search(genome, guides)


# -- the randomized property sweep ---------------------------------------------


class TestPropertySweep:
    @settings(max_examples=40, deadline=None)
    @given(
        text=genome_text,
        protos=st.lists(protospacer, min_size=1, max_size=3),
        mismatches=st.integers(min_value=0, max_value=5),
    )
    def test_bit_identical_to_oracle(self, text, protos, mismatches):
        genome = Sequence.from_text("chr", text)
        guides = [Guide(f"g{i}", p) for i, p in enumerate(protos)]
        budget = SearchBudget(mismatches=mismatches)
        assert bitparallel.find_hits(genome, guides, budget) == oracle(
            genome, guides, budget
        )

    @settings(max_examples=20, deadline=None)
    @given(
        text=st.text(alphabet="ACGTN", min_size=30, max_size=200),
        proto=protospacer,
        n_start=st.integers(min_value=0, max_value=150),
        n_length=st.integers(min_value=1, max_value=12),
        mismatches=st.integers(min_value=0, max_value=3),
    )
    def test_n_runs_match_oracle(self, text, proto, n_start, n_length, mismatches):
        # A genome N matches only a pattern N — never a concrete base,
        # not even inside the mismatch budget's "anything goes" slack.
        n_start = min(n_start, len(text))
        spliced = text[:n_start] + "N" * n_length + text[n_start + n_length :]
        genome = Sequence.from_text("chrN", spliced)
        guides = [Guide("g", proto)]
        budget = SearchBudget(mismatches=mismatches)
        assert bitparallel.find_hits(genome, guides, budget) == oracle(
            genome, guides, budget
        )

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        mismatches=st.integers(min_value=0, max_value=3),
        chunk_choice=st.integers(min_value=0, max_value=4),
    )
    def test_chunk_boundary_straddles_match_oracle(
        self, seed, mismatches, chunk_choice
    ):
        # The kernel is windowed: drive it through the streaming path
        # with adversarial chunk lengths so sites straddle boundaries.
        genome = random_genome(900, seed=seed, name="chrStraddle")
        guide = Guide("g", genome.text[40:60].replace("N", "A"))
        budget = SearchBudget(mismatches=mismatches)
        chunk = adversarial_chunk_length(guide.site_length - 1, len(genome), chunk_choice)
        streamed = StreamingSearch(
            [guide], budget, chunk_length=chunk, kernel="bitparallel"
        ).search(genome)
        assert streamed == oracle(genome, [guide], budget)


# -- directed placements -------------------------------------------------------


def _concrete(guide):
    return guide.concrete_target()


def _pam_free_filler(length):
    # A/T-only filler cannot satisfy an NGG PAM on either strand, so a
    # planted target's position is fully controlled.
    return (("AT" * length)[:length])


class TestDirectedPlacement:
    GUIDE = Guide("edge", "GAGTCCGAGCAGAAGAAGAA")

    def _plant(self, position, total=400):
        target = _concrete(self.GUIDE)
        filler = _pam_free_filler(total)
        return Sequence.from_text(
            "chrPlant", filler[:position] + target + filler[position + len(target) :]
        )

    def test_guide_at_position_zero(self):
        genome = self._plant(0)
        hits = bitparallel.find_hits(genome, [self.GUIDE], SearchBudget(mismatches=0))
        assert [h.start for h in hits] == [0]
        assert hits == oracle(genome, [self.GUIDE], SearchBudget(mismatches=0))

    def test_guide_ending_at_final_position(self):
        site = self.GUIDE.site_length
        genome = self._plant(400 - site)
        hits = bitparallel.find_hits(genome, [self.GUIDE], SearchBudget(mismatches=0))
        assert [h.start for h in hits] == [400 - site]
        assert hits == oracle(genome, [self.GUIDE], SearchBudget(mismatches=0))

    def test_genome_exactly_one_site_long(self):
        genome = Sequence.from_text("chrExact", _concrete(self.GUIDE))
        budget = SearchBudget(mismatches=1)
        hits = bitparallel.find_hits(genome, [self.GUIDE], budget)
        assert [h.start for h in hits] == [0]
        assert hits == oracle(genome, [self.GUIDE], budget)

    def test_genome_one_short_of_a_site(self):
        genome = Sequence.from_text("chrShort", _concrete(self.GUIDE)[:-1])
        assert (
            bitparallel.find_hits(genome, [self.GUIDE], SearchBudget(mismatches=5))
            == []
        )

    def test_empty_genome(self):
        genome = Sequence.from_text("chrEmpty", "")
        assert bitparallel.find_hits(genome, [self.GUIDE], SearchBudget()) == []

    @pytest.mark.parametrize(
        "position",
        # Sites placed against the uint64 lane structure: ending at bit
        # 63, straddling the 63/64 word boundary, starting at bit 64,
        # and the same shapes one word later.
        [64 - 23, 50, 64, 128 - 23, 110, 128],
    )
    def test_word_boundary_placements(self, position):
        genome = self._plant(position, total=256)
        budget = SearchBudget(mismatches=0)
        hits = bitparallel.find_hits(genome, [self.GUIDE], budget)
        assert [h.start for h in hits] == [position]
        assert hits == oracle(genome, [self.GUIDE], budget)

    @pytest.mark.parametrize("total", [63, 64, 65, 127, 128, 129])
    def test_genome_lengths_around_word_edges(self, total):
        site = self.GUIDE.site_length
        position = total - site
        genome = self._plant(position, total=total)
        budget = SearchBudget(mismatches=0)
        hits = bitparallel.find_hits(genome, [self.GUIDE], budget)
        assert [h.start for h in hits] == [position]

    def test_reverse_strand_placement(self):
        from repro import alphabet

        target_rc = alphabet.reverse_complement(_concrete(self.GUIDE))
        filler = _pam_free_filler(300)
        genome = Sequence.from_text(
            "chrRC", filler[:100] + target_rc + filler[100 + len(target_rc) :]
        )
        budget = SearchBudget(mismatches=0)
        hits = bitparallel.find_hits(genome, [self.GUIDE], budget)
        assert [(h.start, h.strand) for h in hits] == [(100, "-")]
        assert hits == oracle(genome, [self.GUIDE], budget)

    def test_five_prime_pam_guide(self):
        guide = Guide(
            "cas12a",
            "TTCGATCGATCGATCGATCG",
            pam=Pam("TTTV", "TTTV", "5prime", "AsCpf1"),
        )
        genome = Sequence.from_text(
            "chr5p", _pam_free_filler(40) + "TTTA" + guide.protospacer + _pam_free_filler(40)
        )
        budget = SearchBudget(mismatches=2)
        assert bitparallel.find_hits(genome, [guide], budget) == oracle(
            genome, [guide], budget
        )


# -- thermometer-plane carries at exactly the budget ---------------------------


class TestBudgetCarry:
    """The counting planes must accept k mismatches and reject k+1."""

    PROTO = "GAGTCCGAGCAGAAGAAGAA"

    def _site_with_mismatches(self, positions):
        site = list(self.PROTO)
        for p in positions:
            site[p] = {"A": "C", "C": "A", "G": "T", "T": "G"}[site[p]]
        return "".join(site) + "AGG"  # concrete NGG PAM

    def _genome_with_site(self, site):
        return Sequence.from_text("chrCarry", _pam_free_filler(64) + site + _pam_free_filler(64))

    @pytest.mark.parametrize("budget_k", [0, 1, 2, 3, 4, 5])
    def test_exactly_budget_mismatches_accepted(self, budget_k):
        guide = Guide("g", self.PROTO)
        site = self._site_with_mismatches(list(range(budget_k)))
        genome = self._genome_with_site(site)
        budget = SearchBudget(mismatches=budget_k)
        hits = bitparallel.find_hits(genome, [guide], budget)
        assert [h.mismatches for h in hits] == [budget_k]
        assert hits == oracle(genome, [guide], budget)

    @pytest.mark.parametrize("budget_k", [0, 1, 2, 3, 4])
    def test_budget_plus_one_rejected(self, budget_k):
        guide = Guide("g", self.PROTO)
        site = self._site_with_mismatches(list(range(budget_k + 1)))
        genome = self._genome_with_site(site)
        assert bitparallel.find_hits(genome, [guide], SearchBudget(mismatches=budget_k)) == []

    @pytest.mark.parametrize(
        "positions",
        # Carry stress: mismatches clustered at the first budgeted
        # position, the last, both ends, and adjacent pairs — the
        # shapes where a mis-ordered plane update double-counts.
        [[0], [19], [0, 19], [0, 1], [18, 19], [0, 9, 19]],
    )
    def test_mismatch_position_patterns(self, positions):
        guide = Guide("g", self.PROTO)
        site = self._site_with_mismatches(positions)
        genome = self._genome_with_site(site)
        budget = SearchBudget(mismatches=len(positions))
        hits = bitparallel.find_hits(genome, [guide], budget)
        assert [h.mismatches for h in hits] == [len(positions)]
        assert hits == oracle(genome, [guide], budget)

    def test_pam_mismatch_never_budgeted(self):
        # The PAM is exact: a site failing only its PAM must be
        # rejected even with a saturated mismatch budget.
        guide = Guide("g", self.PROTO)
        site = self.PROTO + "ATT"  # fails NGG
        genome = self._genome_with_site(site)
        assert bitparallel.find_hits(genome, [guide], SearchBudget(mismatches=5)) == []


# -- bitboard primitive regressions --------------------------------------------


class TestBitboardPrimitives:
    def _board_from_bits(self, bits, nwords=3):
        board = np.zeros(nwords, dtype=np.uint64)
        for b in bits:
            board[b // 64] |= np.uint64(1) << np.uint64(b % 64)
        return board

    def _bits_of(self, board):
        return {
            w * 64 + b
            for w in range(board.size)
            for b in range(64)
            if (int(board[w]) >> b) & 1
        }

    @pytest.mark.parametrize("t", [0, 1, 7, 63, 64, 65, 127, 128, 200])
    def test_shift_down_matches_reference(self, t):
        bits = {0, 1, 63, 64, 70, 127, 128, 191}
        board = self._board_from_bits(bits)
        shifted = _shift_down(board, t)
        assert self._bits_of(shifted) == {b - t for b in bits if b >= t}

    @pytest.mark.parametrize("count", [0, 1, 63, 64, 65, 128, 192])
    def test_prefix_mask_sets_exactly_count_bits(self, count):
        mask = _prefix_mask(3, count)
        assert self._bits_of(mask) == set(range(count))

    def test_shift_down_zero_is_identity_object(self):
        board = self._board_from_bits({5, 64})
        assert _shift_down(board, 0) is board


# -- API contract --------------------------------------------------------------


class TestKernelApi:
    def test_validate_kernel(self):
        assert validate_kernel("bitparallel") == "bitparallel"
        assert validate_kernel("matcher") == "matcher"
        with pytest.raises(EngineError, match="unknown kernel"):
            validate_kernel("warp-drive")

    def test_make_kernel_matcher_name_runs_matcher(self, small_genome, library):
        budget = SearchBudget(mismatches=2)
        kern = make_kernel("matcher", library, budget)
        assert kern(small_genome) == matcher.find_hits(
            small_genome, list(library), budget
        )

    def test_bulged_budget_served_natively(self, small_genome, library):
        # The regression surface for the removed matcher fallback:
        # a bulged budget must run the banded bit-parallel engine and
        # still agree with the matcher bit for bit.
        budget = SearchBudget(mismatches=1, rna_bulges=1, dna_bulges=1)
        kern = make_kernel("bitparallel", library, budget)
        before = bitparallel.KERNEL_OBS.counter("kernel.bitparallel.bulged_blocks")
        hits = kern(small_genome)
        after = bitparallel.KERNEL_OBS.counter("kernel.bitparallel.bulged_blocks")
        assert after == before + 1
        assert hits == matcher.find_hits(small_genome, list(library), budget)

    def test_panel_accepts_bulged_budget(self, library):
        budget = SearchBudget(mismatches=1, dna_bulges=1)
        panel = BitParallelPanel(library, budget)
        assert panel.budget == budget

    def test_panel_rejects_empty_guides(self):
        with pytest.raises(EngineError, match="at least one guide"):
            BitParallelPanel([], SearchBudget())

    def test_panel_reusable_across_blocks(self, library):
        # One compiled panel, many blocks — the streaming usage pattern.
        budget = SearchBudget(mismatches=2)
        panel = BitParallelPanel(library, budget)
        for seed in (1, 2, 3):
            block = random_genome(700, seed=seed, name=f"blk{seed}")
            assert panel.find_hits(block) == matcher.find_hits(
                block, list(library), budget
            )

    def test_count_report_rows_matches_matcher(self, small_genome, library):
        budget = SearchBudget(mismatches=2)
        assert bitparallel.count_report_rows(
            small_genome, list(library), budget
        ) == matcher.count_report_rows(small_genome, list(library), budget)


# -- nightly fuzz soak (slow; excluded from the per-push run) ------------------


@pytest.mark.slow
class TestSoak:
    """50-seed kernel-vs-reference sweep on ~1 Mbp genomes.

    The reference here is the LUT matcher, not the pure-Python naive
    oracle: at Mbp scale the oracle is infeasible (hours per seed),
    and the matcher is itself pinned bit-identical to the oracle by
    the kilobase-scale suites above. Every fifth seed runs a bulged
    budget (rotating through the RNA-only / DNA-only / mixed shapes)
    so the diagonal-band engine soaks at Mbp scale too — the matcher's
    banded DP is the reference there as well. Each failure message
    carries the seed, so a red run replays with a one-line test.
    """

    GENOME_LENGTH = 1_000_000

    #: Bulged shapes rotated through seeds 0, 5, 10, ... — RNA-only,
    #: DNA-only, and the mixed shape, all with a live mismatch budget.
    BULGE_SHAPES = ((1, 0), (0, 1), (1, 1))

    @classmethod
    def budget_for_seed(cls, seed):
        if seed % 5 != 0:
            return SearchBudget(mismatches=2)
        rna, dna = cls.BULGE_SHAPES[(seed // 5) % len(cls.BULGE_SHAPES)]
        return SearchBudget(mismatches=1, rna_bulges=rna, dna_bulges=dna)

    @pytest.mark.parametrize("seed", range(50))
    def test_seeded_mbp_sweep(self, seed):
        from repro import sample_guides_from_genome

        genome = random_genome(
            self.GENOME_LENGTH, seed=seed, name=f"chrSoak{seed}"
        )
        guides = sample_guides_from_genome(genome, 3, seed=seed + 1000)
        budget = self.budget_for_seed(seed)
        got = bitparallel.find_hits(genome, guides, budget)
        want = matcher.find_hits(genome, guides, budget)
        assert hit_multiset(got) == hit_multiset(want), (
            f"soak seed {seed}: span multisets diverge under {budget} "
            f"(replay: test_seeded_mbp_sweep[{seed}])"
        )
        assert got == want, (
            f"soak seed {seed}: ordered hit lists diverge under {budget} "
            f"(replay: test_seeded_mbp_sweep[{seed}])"
        )
