"""Shared helper functions for the test suite."""

from collections import Counter


def hit_spans(hits):
    """Canonical span set for comparing hit collections."""
    return {
        (h.guide_name, h.strand, h.start, h.end, h.mismatches, h.rna_bulges, h.dna_bulges)
        for h in hits
    }


def hit_multiset(hits):
    """Canonical span *multiset* — counts duplicates a set would hide.

    The differential suite compares executors with this so that a path
    that reports the same site twice (e.g. a broken chunk-boundary
    dedupe) cannot pass by colliding into one set element.
    """
    return Counter(
        (h.guide_name, h.sequence_name, h.strand, h.start, h.end,
         h.mismatches, h.rna_bulges, h.dna_bulges)
        for h in hits
    )


def assert_equivalent_hits(*hit_lists):
    """Assert every hit collection carries the identical hit multiset."""
    reference = hit_multiset(hit_lists[0])
    for other in hit_lists[1:]:
        assert hit_multiset(other) == reference


def report_spans(reports):
    """Canonical span set from engine (position, label) reports."""
    spans = set()
    for position, label in reports:
        start, end = label.span_at(position)
        spans.add((label.guide_name, label.strand, start, end))
    return spans
