"""Shared helper functions for the test suite."""


def hit_spans(hits):
    """Canonical span set for comparing hit collections."""
    return {
        (h.guide_name, h.strand, h.start, h.end, h.mismatches, h.rna_bulges, h.dna_bulges)
        for h in hits
    }


def report_spans(reports):
    """Canonical span set from engine (position, label) reports."""
    spans = set()
    for position, label in reports:
        start, end = label.span_at(position)
        spans.add((label.guide_name, label.strand, start, end))
    return spans
