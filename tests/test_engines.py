"""Unit tests for the platform engines."""

import numpy as np
import pytest

from repro import SearchBudget
from repro.core import matcher
from repro.core.compiler import compile_library
from repro.engines import (
    ApEngine,
    CpuNfaEngine,
    FpgaEngine,
    HyperscanEngine,
    Infant2Engine,
)
from repro.engines.base import available_engines, build_profile, get_engine
from repro.engines.infant2 import TransitionLists
from repro.errors import EngineError

from helpers import hit_spans, report_spans

ALL_ENGINES = [CpuNfaEngine, HyperscanEngine, Infant2Engine, FpgaEngine, ApEngine]


class TestRegistry:
    def test_all_registered(self):
        assert available_engines() == ["ap", "cpu-nfa", "fpga", "hyperscan", "infant2"]

    def test_get_engine(self):
        assert isinstance(get_engine("fpga"), FpgaEngine)

    def test_unknown_engine(self):
        with pytest.raises(EngineError):
            get_engine("quantum")


@pytest.mark.parametrize("engine_class", ALL_ENGINES, ids=lambda c: c.name)
class TestSimulateAgreement:
    def test_mismatch_only(self, engine_class, small_genome, library):
        budget = SearchBudget(mismatches=2)
        compiled = compile_library(library, budget)
        codes = small_genome.codes[:2500]
        from repro.genome.sequence import Sequence

        piece = Sequence(small_genome.name, codes.copy())
        expected = {
            (h.guide_name, h.strand, h.start, h.end)
            for h in matcher.find_hits(piece, library, budget)
        }
        got = report_spans(engine_class().simulate(codes, compiled))
        assert got == expected

    def test_bulged(self, engine_class, small_genome, library):
        budget = SearchBudget(mismatches=1, rna_bulges=1, dna_bulges=1)
        compiled = compile_library(library, budget)
        codes = small_genome.codes[:1200]
        from repro.genome.sequence import Sequence

        piece = Sequence(small_genome.name, codes.copy())
        expected = {
            (h.guide_name, h.strand, h.start, h.end)
            for h in matcher.find_hits(piece, library, budget)
        }
        got = report_spans(engine_class().simulate(codes, compiled))
        assert got == expected


@pytest.mark.parametrize("engine_class", ALL_ENGINES, ids=lambda c: c.name)
def test_search_result_fields(engine_class, small_genome, compiled_library):
    result = engine_class().search(small_genome, compiled_library)
    assert result.engine == engine_class.name
    assert result.measured_seconds > 0
    assert result.modeled.total_seconds > 0
    assert result.modeled.kernel_seconds > 0
    assert result.num_hits == len(result.hits)


def test_all_engines_same_hits(small_genome, compiled_library):
    hit_sets = [
        hit_spans(engine_class().search(small_genome, compiled_library).hits)
        for engine_class in ALL_ENGINES
    ]
    assert all(h == hit_sets[0] for h in hit_sets)


class TestBitParallel:
    def test_matches_dfa(self, small_genome, compiled_library):
        engine = HyperscanEngine()
        codes = small_genome.codes[:2000]
        for compiled_guide in compiled_library:
            bitparallel = report_spans(engine.simulate_bitparallel(codes, compiled_guide))
            dfa = report_spans(compiled_guide.dfa.run(codes))
            assert bitparallel == dfa

    def test_rejects_bulges(self, library):
        compiled = compile_library(library, SearchBudget(mismatches=1, rna_bulges=1))
        with pytest.raises(EngineError):
            HyperscanEngine().simulate_bitparallel(np.zeros(10, dtype=np.uint8), compiled.guides[0])

    def test_mismatch_counts_exact(self, small_genome, library):
        compiled = compile_library(library, SearchBudget(mismatches=2))
        engine = HyperscanEngine()
        codes = small_genome.codes[:2000]
        for compiled_guide in compiled:
            for _, label in engine.simulate_bitparallel(codes, compiled_guide):
                assert 0 <= label.mismatches <= 2


class TestInfant2Internals:
    def test_transition_lists_cover_edges(self, compiled_library):
        automaton = compiled_library.homogeneous
        lists = TransitionLists.compile(automaton)
        # Each edge appears once per symbol its target consumes; plus
        # virtual start entries.
        expected = sum(
            automaton.ste(t).char_class.cardinality()
            for s in range(automaton.num_stes)
            for t in automaton.successors(s)
        ) + sum(
            ste.char_class.cardinality()
            for ste in automaton.start_stes()
        )
        assert lists.total_transitions == expected

    def test_counters(self, small_genome, compiled_library):
        engine = Infant2Engine()
        codes = small_genome.codes[:500]
        _, counters = engine.simulate_with_counters(codes, compiled_library)
        assert counters["transitions_examined"] > 0
        assert counters["transitions_fired"] <= counters["transitions_examined"]

    def test_stats_flags_spill(self, small_genome, compiled_library):
        from repro.platforms.spec import GpuNfaSpec

        tiny = GpuNfaSpec(table_capacity_transitions=1)
        engine = Infant2Engine(tiny)
        result = engine.search(small_genome, compiled_library)
        assert result.stats["spills_shared_memory"] is True


class TestApInternals:
    def test_stall_accounting(self, small_genome, compiled_library):
        from repro.platforms.spec import ApSpec

        spec = ApSpec(event_buffer_entries=1, event_drain_cycles=100)
        engine = ApEngine(spec)
        codes = small_genome.codes[:2000]
        reports, stats = engine.simulate_with_stalls(codes, compiled_library)
        assert stats["symbol_cycles"] == 2000
        if reports:
            assert stats["stall_cycles"] >= 100
        assert stats["total_cycles"] == stats["symbol_cycles"] + stats["stall_cycles"]

    def test_passes_for(self):
        engine = ApEngine()
        assert engine.passes_for(1) == 1
        assert engine.passes_for(engine.spec.capacity_stes + 1) == 2

    def test_coalescing_reduces_stalls(self, small_genome, library):
        from repro.platforms.spec import ApSpec

        budget = SearchBudget(mismatches=1, rna_bulges=1, dna_bulges=1)
        compiled = compile_library(library, budget)
        spec = ApSpec(event_buffer_entries=2, event_drain_cycles=1000)
        codes = small_genome.codes[:1500]
        _, plain = ApEngine(spec).simulate_with_stalls(codes, compiled)
        _, coalesced = ApEngine(spec, coalesce_reports=True).simulate_with_stalls(
            codes, compiled
        )
        assert coalesced["stall_cycles"] <= plain["stall_cycles"]


class TestProfiles:
    def test_build_profile_fields(self, small_genome, compiled_library):
        hits = matcher.find_hits(
            small_genome, compiled_library.library, compiled_library.budget
        )
        profile = build_profile(small_genome, compiled_library, hits)
        assert profile.genome_length == len(small_genome)
        assert profile.num_guides == len(compiled_library.library)
        assert profile.total_stes == compiled_library.num_stes
        assert profile.expected_active > 0
        assert profile.report_traffic.events == len(hits)

    def test_genome_length_override(self, small_genome, compiled_library):
        profile = build_profile(
            small_genome, compiled_library, [], genome_length_override=10**9
        )
        assert profile.genome_length == 10**9


class TestStridedExecution:
    def test_strided_equals_plain(self, small_genome, library):
        compiled = compile_library(library, SearchBudget(mismatches=2))
        engine = ApEngine()
        codes = small_genome.codes[:3000]
        plain = set(engine.simulate(codes, compiled))
        strided, stats = engine.simulate_strided(codes, compiled)
        assert set(strided) == plain
        assert stats["symbol_cycles"] == 1500  # two symbols per cycle
        assert 1.0 < stats["state_overhead_vs_1stride"] < 2.5

    def test_strided_odd_length_stream(self, small_genome, library):
        compiled = compile_library(library, SearchBudget(mismatches=1))
        engine = ApEngine()
        codes = small_genome.codes[:2501]
        plain = set(engine.simulate(codes, compiled))
        strided, _ = engine.simulate_strided(codes, compiled)
        assert set(strided) == plain

    def test_strided_rejects_bulges(self, library):
        compiled = compile_library(library, SearchBudget(mismatches=1, rna_bulges=1))
        with pytest.raises(EngineError, match="mismatch-only"):
            ApEngine().simulate_strided(np.zeros(10, dtype=np.uint8), compiled)


class TestCapacityValidation:
    def test_ap_rejects_oversized_guide(self, small_genome, compiled_library):
        from repro.errors import CapacityError
        from repro.platforms.spec import ApSpec

        tiny = ApSpec(stes_per_chip=8, chips_per_rank=1, ranks=1, routable_fraction=1.0)
        with pytest.raises(CapacityError, match="STEs"):
            ApEngine(tiny).search(small_genome, compiled_library)

    def test_fpga_rejects_oversized_guide(self, small_genome, compiled_library):
        from repro.errors import CapacityError
        from repro.platforms.spec import FpgaSpec

        tiny = FpgaSpec(luts=10)
        with pytest.raises(CapacityError, match="LUTs"):
            FpgaEngine(tiny).search(small_genome, compiled_library)

    def test_normal_specs_pass(self, small_genome, compiled_library):
        ApEngine().validate_capacity(compiled_library)
        FpgaEngine().validate_capacity(compiled_library)
