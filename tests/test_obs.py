"""Unit and integration tests for the observability layer.

:mod:`repro.obs` is the single instrumentation primitive threaded
through the pipeline (engines, streaming, sharded, and the top-level
:class:`OffTargetSearch`). These tests pin the ``Metrics`` semantics —
counters, timer distributions, span nesting, JSON snapshots, and
cross-process merging — and then check each pipeline layer actually
emits the signals the CLI's ``--stats-json`` and the analysis modules
consume.
"""

import json

import pytest

from repro import (
    Metrics,
    OffTargetSearch,
    ParallelSearch,
    SearchBudget,
    StreamingSearch,
    compile_library,
    random_genome,
    sample_guides_from_genome,
)
from repro.engines.base import get_engine
from repro.obs import TimerStat, merge_snapshots


class TestCounters:
    def test_incr_creates_and_accumulates(self):
        metrics = Metrics()
        assert metrics.counter("events") == 0
        metrics.incr("events")
        metrics.incr("events", 4)
        assert metrics.counter("events") == 5

    def test_rate_scales_by_per(self):
        metrics = Metrics()
        metrics.incr("hits", 3)
        metrics.incr("positions", 1_500_000)
        assert metrics.rate("hits", "positions", per=1e6) == pytest.approx(2.0)

    def test_rate_with_empty_denominator_is_zero(self):
        metrics = Metrics()
        metrics.incr("hits", 3)
        assert metrics.rate("hits", "positions") == 0.0


class TestGauges:
    def test_gauge_records_last_observation(self):
        metrics = Metrics()
        assert metrics.gauge_value("queue_depth") == 0.0
        metrics.gauge("queue_depth", 4)
        metrics.gauge("queue_depth", 2)
        assert metrics.gauge_value("queue_depth") == 2

    def test_gauge_add_moves_the_level(self):
        metrics = Metrics()
        metrics.gauge("inflight", 3)
        assert metrics.gauge_add("inflight", 2) == 5
        assert metrics.gauge_add("inflight", -4) == 1
        assert metrics.gauge_value("inflight") == 1

    def test_gauge_add_starts_from_zero(self):
        metrics = Metrics()
        assert metrics.gauge_add("fresh", 2.5) == 2.5

    def test_snapshot_carries_gauges(self):
        metrics = Metrics()
        metrics.gauge("depth", 7)
        snapshot = json.loads(json.dumps(metrics.snapshot()))
        assert snapshot["gauges"] == {"depth": 7}

    def test_merge_gauges_last_observation_wins(self):
        a, b = Metrics(), Metrics()
        a.gauge("depth", 9)
        a.gauge("only_a", 1)
        b.gauge("depth", 3)
        a.merge(b.snapshot())
        merged = a.snapshot()["gauges"]
        assert merged["depth"] == 3  # incoming level replaces, never sums
        assert merged["only_a"] == 1

    def test_merge_snapshots_helper_carries_gauges(self):
        a, b = Metrics(), Metrics()
        a.gauge("depth", 9)
        b.gauge("depth", 3)
        combined = merge_snapshots(a.snapshot(), b.snapshot())
        assert combined["gauges"]["depth"] == 3


class TestTimers:
    def test_observe_tracks_distribution(self):
        metrics = Metrics()
        for seconds in (0.5, 0.1, 0.4):
            metrics.observe("kernel", seconds)
        stat = metrics.snapshot()["timers"]["kernel"]
        assert stat["count"] == 3
        assert stat["total"] == pytest.approx(1.0)
        assert stat["min"] == pytest.approx(0.1)
        assert stat["max"] == pytest.approx(0.5)
        assert stat["mean"] == pytest.approx(1.0 / 3)

    def test_timer_context_records_elapsed(self):
        metrics = Metrics()
        with metrics.timer("block"):
            pass
        stat = metrics.snapshot()["timers"]["block"]
        assert stat["count"] == 1
        assert stat["total"] >= 0.0

    def test_empty_timerstat_reports_zeroes(self):
        stat = TimerStat()
        assert stat.as_dict() == {
            "count": 0,
            "total": 0.0,
            "mean": 0.0,
            "min": 0.0,
            "max": 0.0,
        }


class TestSpans:
    def test_nesting_depth_and_start_order(self):
        metrics = Metrics()
        with metrics.span("outer"):
            with metrics.span("inner"):
                pass
            with metrics.span("sibling"):
                pass
        spans = metrics.snapshot()["spans"]
        assert [span["name"] for span in spans] == ["outer", "inner", "sibling"]
        assert [span["depth"] for span in spans] == [0, 1, 1]
        assert all(span["seconds"] >= 0.0 for span in spans)
        assert spans[0]["start"] <= spans[1]["start"] <= spans[2]["start"]

    def test_span_attrs_are_preserved(self):
        metrics = Metrics()
        with metrics.span("search", sequence="chr1", workers=2):
            pass
        span = metrics.snapshot()["spans"][0]
        assert span["sequence"] == "chr1"
        assert span["workers"] == 2

    def test_span_recorded_even_on_exception(self):
        metrics = Metrics()
        with pytest.raises(ValueError):
            with metrics.span("doomed"):
                raise ValueError("boom")
        assert [s["name"] for s in metrics.snapshot()["spans"]] == ["doomed"]


class TestSnapshotAndMerge:
    def test_snapshot_is_json_serialisable(self):
        metrics = Metrics()
        metrics.incr("n", 2)
        metrics.observe("t", 0.25)
        with metrics.span("stage", label="x"):
            pass
        parsed = json.loads(json.dumps(metrics.snapshot()))
        assert parsed["counters"]["n"] == 2
        assert parsed["timers"]["t"]["count"] == 1
        assert parsed["spans"][0]["name"] == "stage"

    def test_merge_adds_counters_and_combines_timers(self):
        a, b = Metrics(), Metrics()
        a.incr("n", 2)
        a.observe("t", 0.1)
        b.incr("n", 3)
        b.observe("t", 0.4)
        with b.span("worker"):
            pass
        a.merge(b.snapshot())
        merged = a.snapshot()
        assert merged["counters"]["n"] == 5
        assert merged["timers"]["t"]["count"] == 2
        assert merged["timers"]["t"]["min"] == pytest.approx(0.1)
        assert merged["timers"]["t"]["max"] == pytest.approx(0.4)
        assert [s["name"] for s in merged["spans"]] == ["worker"]

    def test_merge_empty_snapshot_is_noop(self):
        metrics = Metrics()
        metrics.incr("n")
        metrics.merge({})
        assert metrics.snapshot()["counters"] == {"n": 1}

    def test_merge_snapshots_helper(self):
        a, b = Metrics(), Metrics()
        a.incr("n", 1)
        b.incr("n", 2)
        combined = merge_snapshots(a.snapshot(), b.snapshot())
        assert combined["counters"]["n"] == 3


@pytest.fixture(scope="module")
def genome():
    return random_genome(4000, seed=61, name="chrObs")


@pytest.fixture(scope="module")
def guides(genome):
    return sample_guides_from_genome(genome, 2, seed=62)


@pytest.fixture(scope="module")
def budget():
    return SearchBudget(mismatches=1)


class TestEngineInstrumentation:
    def test_engine_search_emits_obs(self, genome, guides, budget):
        compiled = compile_library(guides, budget)
        result = get_engine("hyperscan").search(genome, compiled)
        obs = result.stats["obs"]
        assert obs["counters"]["kernel.positions_scanned"] == len(genome)
        assert obs["counters"]["report.events"] == len(result.hits)
        assert [s["name"] for s in obs["spans"]] == ["kernel"]
        assert result.stats["report_events_per_mbp"] == pytest.approx(
            1e6 * len(result.hits) / len(genome)
        )

    def test_engine_search_into_caller_metrics(self, genome, guides, budget):
        compiled = compile_library(guides, budget)
        metrics = Metrics()
        get_engine("hyperscan").search(genome, compiled, metrics=metrics)
        get_engine("fpga").search(genome, compiled, metrics=metrics)
        assert metrics.counter("kernel.positions_scanned") == 2 * len(genome)
        assert metrics.snapshot()["timers"]["kernel.seconds"]["count"] == 2


class TestStreamingInstrumentation:
    def test_search_with_stats_matches_search(self, genome, guides, budget):
        streaming = StreamingSearch(guides, budget, chunk_length=900)
        hits, stats = streaming.search_with_stats(genome)
        assert hits == streaming.search(genome)
        assert stats["num_chunks"] == len(stats["chunks"])
        assert stats["kernel_positions"] >= len(genome)
        assert stats["report_events"] >= len(hits)
        assert stats["wall_seconds"] >= 0.0
        assert stats["report_events_per_mbp"] >= 0.0
        json.dumps(stats)

    def test_chunk_rows_cover_sequence(self, genome, guides, budget):
        streaming = StreamingSearch(guides, budget, chunk_length=900)
        _, stats = streaming.search_with_stats(genome)
        last = stats["chunks"][-1]
        assert last["chunk_start"] + last["length"] == len(genome)


class TestParallelInstrumentation:
    def test_stats_carry_obs_snapshot(self, genome, guides, budget):
        executor = ParallelSearch(guides, budget, workers=1, chunk_length=900)
        _, stats = executor.search_with_stats(genome)
        obs = stats["obs"]
        assert obs["counters"]["parallel.shards_completed"] == stats["num_shards"]
        names = [s["name"] for s in obs["spans"]]
        assert "shard_tasks" in names
        assert "execute" in names
        assert "merge" in names
        json.dumps(stats)


class TestPipelineInstrumentation:
    def test_run_stats_include_pipeline_trace(self, genome, guides, budget):
        report = OffTargetSearch(guides, budget).run(genome)
        pipeline = report.stats["pipeline"]
        names = [s["name"] for s in pipeline["spans"]]
        assert "resolve" in names
        assert "search" in names
        assert "sort" in names
        assert pipeline["counters"]["search.hits"] == report.num_hits
        assert pipeline["counters"]["search.positions"] == len(genome)
        json.dumps(report.stats)
