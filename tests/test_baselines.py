"""Unit tests for the baseline tool reimplementations."""

import pytest

from repro import SearchBudget
from repro.baselines import CasOffinderBaseline, CasotBaseline
from repro.baselines.base import available_baselines, get_baseline
from repro.baselines.casot import split_fragments
from repro.core import matcher
from repro.errors import EngineError
from repro.grna.library import sample_guides_from_genome

from helpers import hit_spans


class TestRegistry:
    def test_available(self):
        assert available_baselines() == ["cas-offinder", "casot"]

    def test_get(self):
        assert isinstance(get_baseline("casot"), CasotBaseline)

    def test_unknown(self):
        with pytest.raises(EngineError):
            get_baseline("crispor")


class TestCasOffinder:
    def test_agrees_with_automata(self, small_genome, library):
        for k in (0, 1, 3):
            budget = SearchBudget(mismatches=k)
            result = CasOffinderBaseline().search(small_genome, library, budget)
            expected = matcher.find_hits(small_genome, library, budget)
            assert hit_spans(result.hits) == hit_spans(expected)

    def test_rejects_bulges(self, small_genome, library):
        with pytest.raises(EngineError, match="mismatches only"):
            CasOffinderBaseline().search(
                small_genome, library, SearchBudget(rna_bulges=1)
            )

    def test_stats(self, small_genome, library):
        result = CasOffinderBaseline().search(
            small_genome, library, SearchBudget(mismatches=1)
        )
        assert result.stats["pam_candidates"] > 0
        assert result.stats["packed_reference_bytes"] < len(small_genome)
        assert result.stats["positions_compared"] == len(small_genome) * len(library) * 2

    def test_modeled_time_scales_with_guides(self, small_genome, library):
        baseline = CasOffinderBaseline()
        budget = SearchBudget(mismatches=1)
        one = baseline.search(small_genome, library.subset(1), budget)
        three = baseline.search(small_genome, library, budget)
        assert three.modeled.kernel_seconds > one.modeled.kernel_seconds


class TestCasot:
    def test_agrees_with_automata_mismatch_only(self, small_genome, library):
        budget = SearchBudget(mismatches=2)
        result = CasotBaseline().search(small_genome, library, budget)
        expected = matcher.find_hits(small_genome, library, budget)
        assert hit_spans(result.hits) == hit_spans(expected)

    def test_agrees_with_automata_bulged(self, small_genome, library):
        budget = SearchBudget(mismatches=1, rna_bulges=1, dna_bulges=1)
        result = CasotBaseline().search(small_genome, library, budget)
        expected = matcher.find_hits(small_genome, library, budget)
        assert hit_spans(result.hits) == hit_spans(expected)

    def test_candidates_grow_with_budget(self, small_genome, library):
        baseline = CasotBaseline()
        low = baseline.search(small_genome, library, SearchBudget(mismatches=1))
        high = baseline.search(small_genome, library, SearchBudget(mismatches=4))
        assert high.stats["candidates_verified"] > low.stats["candidates_verified"]
        assert high.modeled.kernel_seconds > low.modeled.kernel_seconds

    def test_budget_too_large_rejected(self, small_genome, library):
        with pytest.raises(EngineError, match="fragments"):
            CasotBaseline().search(small_genome, library, SearchBudget(mismatches=25))


class TestSplitFragments:
    def test_partition(self):
        spans = split_fragments(20, 4)
        assert spans == [(0, 5), (5, 10), (10, 15), (15, 20)]

    def test_uneven_lengths(self):
        spans = split_fragments(20, 3)
        assert spans == [(0, 7), (7, 14), (14, 20)]
        assert spans[-1][1] == 20

    def test_covers_everything_contiguously(self):
        for length in (10, 17, 20, 23):
            for parts in range(1, length + 1):
                spans = split_fragments(length, parts)
                assert spans[0][0] == 0 and spans[-1][1] == length
                for (_, prev_end), (start, _) in zip(spans, spans[1:]):
                    assert prev_end == start

    def test_rejects_impossible(self):
        with pytest.raises(EngineError):
            split_fragments(5, 6)
        with pytest.raises(EngineError):
            split_fragments(5, 0)
