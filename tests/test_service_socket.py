"""End-to-end tests of the JSON-lines socket front end.

Three layers of realism, all with bounded timeouts:

1. In-process :class:`OffTargetServer` + :class:`ServiceClient` — wire
   protocol behaviour (ping/stats/errors/typed exceptions) without
   subprocess overhead.
2. A real ``python -m repro serve`` subprocess queried over the socket
   — results compared bit-for-bit against a direct in-process
   :class:`OffTargetSearch`, then a clean ``shutdown`` op.
3. The ``repro-offtarget query`` CLI as a subprocess — exit code 0 on
   success, the distinct :data:`EXIT_OVERLOADED` (3) when the service
   sheds, and 2 when nothing is listening.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import (
    OffTargetSearch,
    OffTargetService,
    SearchBudget,
    random_genome,
    sample_guides_from_genome,
    write_fasta,
)
from repro.cli import EXIT_OVERLOADED
from repro.errors import ServiceError, ServiceOverloadedError
from repro.service import OffTargetServer, RetryPolicy, ServiceClient
from repro.service.server import guide_to_wire

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
SUBPROCESS_TIMEOUT = 120  # generous bound; normal runs take a few seconds


@pytest.fixture(scope="module")
def genome():
    return random_genome(4000, seed=23, name="chrSock")


@pytest.fixture(scope="module")
def guides(genome):
    return tuple(sample_guides_from_genome(genome, 3, seed=27))


def write_guides_table(path: Path, guides) -> None:
    path.write_text(
        "".join(f"{g.name}\t{g.protospacer}\n" for g in guides), encoding="ascii"
    )


@pytest.fixture()
def live_server(genome):
    """An in-process server over a background-mode service."""
    service = OffTargetService(
        background=True, batch_window_seconds=0.002, chunk_length=1 << 12
    )
    service.add_genome("default", genome)
    server = OffTargetServer(service)
    host, port = server.start()
    try:
        yield host, port, service
    finally:
        server.stop()


class TestWireProtocol:
    def test_ping_and_stats(self, live_server):
        host, port, _ = live_server
        with ServiceClient(host, port, timeout_seconds=10) as client:
            assert client.ping()
            stats = client.stats()
            assert stats["sessions"][0]["session"] == "default"
            assert "coalesced_batches" in stats

    def test_query_roundtrip_bit_identical(self, live_server, genome, guides):
        host, port, _ = live_server
        budget = SearchBudget(mismatches=2)
        expected = OffTargetSearch(guides, budget).run(genome).hits
        with ServiceClient(host, port, timeout_seconds=30) as client:
            result = client.query(guides, budget, request_id="wire-1")
            again = client.query(guides, budget, request_id="wire-2")
        assert result.request_id == "wire-1"
        assert result.hits == expected
        assert again.hits == expected

    def test_malformed_line_reports_bad_request(self, live_server):
        host, port, _ = live_server
        with socket.create_connection((host, port), timeout=10) as raw:
            raw.sendall(b"this is not json\n")
            response = json.loads(raw.makefile("rb").readline())
        assert response["ok"] is False
        assert response["error"] == "bad_request"

    def test_unknown_op_and_bad_query_are_typed(self, live_server):
        host, port, _ = live_server
        with ServiceClient(host, port, timeout_seconds=10) as client:
            with pytest.raises(ServiceError):
                client.roundtrip({"op": "frobnicate"})
            with pytest.raises(ServiceError):
                client.roundtrip({"op": "query", "guides": []})
            with pytest.raises(ServiceError):
                client.roundtrip(
                    {
                        "op": "query",
                        "guides": [{"name": "g", "protospacer": "ACGT"}],
                        "session": "no-such-session",
                    }
                )
            assert client.ping()  # connection survives request errors

    def test_overload_propagates_through_the_socket(self, genome, guides):
        # Deterministic overload: no batcher thread, queue depth 1,
        # prefilled — the socket query must be shed with the typed error.
        service = OffTargetService(
            background=False, max_queue_depth=1, chunk_length=1 << 12
        )
        service.add_genome("default", genome)
        parked = service.query_async(guides[:1], SearchBudget(mismatches=1))
        server = OffTargetServer(service)
        host, port = server.start()
        try:
            with ServiceClient(host, port, timeout_seconds=10) as client:
                with pytest.raises(ServiceOverloadedError):
                    client.query(guides[1:2], SearchBudget(mismatches=1))
                assert client.stats()["requests"]["shed"] == 1
            service.flush()  # the admitted request still completes
            assert parked.result(timeout=1).num_hits >= 0
        finally:
            server.stop()

    def test_guide_wire_round_trip(self, guides):
        from repro.service.server import guide_from_wire

        for guide in guides:
            assert guide_from_wire(guide_to_wire(guide)) == guide


def start_serve_subprocess(tmp_path: Path, genome, *extra_args: str):
    """Launch ``python -m repro serve`` and parse the announce line."""
    fasta = tmp_path / "ref.fa"
    write_fasta([genome], fasta)
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            str(fasta),
            "--port",
            "0",
            "--batch-window",
            "0.002",
            *extra_args,
        ],
        cwd=REPO,
        env={**os.environ, "PYTHONPATH": str(SRC)},
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    announce: list[str] = []

    def read_announce() -> None:
        announce.append(process.stdout.readline())

    reader = threading.Thread(target=read_announce, daemon=True)
    reader.start()
    reader.join(timeout=SUBPROCESS_TIMEOUT)
    if not announce or "serving session" not in announce[0]:
        process.kill()
        raise AssertionError(
            f"server never announced; stderr: {process.stderr.read()}"
        )
    port = int(announce[0].rstrip().rsplit(":", 1)[-1])
    return process, port


class TestServeSubprocess:
    def test_end_to_end_query_and_shutdown(self, tmp_path, genome, guides):
        budget = SearchBudget(mismatches=2)
        expected = OffTargetSearch(guides, budget).run(genome).hits
        process, port = start_serve_subprocess(tmp_path, genome)
        try:
            with ServiceClient("127.0.0.1", port, timeout_seconds=60) as client:
                assert client.ping()
                first = client.query(guides, budget)
                second = client.query(guides, budget)
                stats = client.stats()
                client.shutdown()
            assert first.hits == expected
            assert second.hits == expected
            # the repeat query was served from the compiled-guide cache
            assert stats["cache"]["hit_rate"] > 0
            assert stats["requests"]["completed"] == 2
            assert process.wait(timeout=SUBPROCESS_TIMEOUT) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)

    def test_cli_query_against_subprocess(self, tmp_path, genome, guides):
        budget = SearchBudget(mismatches=2)
        expected = OffTargetSearch(guides, budget).run(genome).hits
        table = tmp_path / "guides.txt"
        write_guides_table(table, guides)
        process, port = start_serve_subprocess(tmp_path, genome)
        try:
            completed = subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "query",
                    str(table),
                    "--port",
                    str(port),
                    "--mismatches",
                    "2",
                    "--format",
                    "tsv",
                    "--stats-json",
                    str(tmp_path / "stats.json"),
                ],
                cwd=REPO,
                env={**os.environ, "PYTHONPATH": str(SRC)},
                capture_output=True,
                text=True,
                timeout=SUBPROCESS_TIMEOUT,
            )
            assert completed.returncode == 0, completed.stderr
            data_rows = [
                line
                for line in completed.stdout.splitlines()
                if line and not line.startswith("#")
            ]
            assert len(data_rows) == len(expected)
            payload = json.loads((tmp_path / "stats.json").read_text())
            assert payload["num_hits"] == len(expected)
            assert payload["service"]["requests"]["shed"] == 0
            assert "coalesced_batches" in payload["service"]
            assert "hit_rate" in payload["service"]["cache"]
            with ServiceClient("127.0.0.1", port, timeout_seconds=10) as client:
                client.shutdown()
            assert process.wait(timeout=SUBPROCESS_TIMEOUT) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)


class TestCliExitCodes:
    def run_query_cli(self, table: Path, port: int, *extra: str):
        return subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "query",
                str(table),
                "--port",
                str(port),
                *extra,
            ],
            cwd=REPO,
            env={**os.environ, "PYTHONPATH": str(SRC)},
            capture_output=True,
            text=True,
            timeout=SUBPROCESS_TIMEOUT,
        )

    def test_overloaded_service_exits_3(self, tmp_path, genome, guides):
        table = tmp_path / "guides.txt"
        write_guides_table(table, guides[:1])
        service = OffTargetService(
            background=False, max_queue_depth=1, chunk_length=1 << 12
        )
        service.add_genome("default", genome)
        parked = service.query_async(guides[1:2], SearchBudget(mismatches=1))
        server = OffTargetServer(service)
        host, port = server.start()
        try:
            completed = self.run_query_cli(table, port, "--mismatches", "1")
            assert completed.returncode == EXIT_OVERLOADED, completed.stderr
            assert "queue at capacity" in completed.stderr.lower()
            service.flush()
            parked.result(timeout=1)
        finally:
            server.stop()

    def test_connection_refused_exits_2(self, tmp_path, guides):
        table = tmp_path / "guides.txt"
        write_guides_table(table, guides[:1])
        with socket.socket() as probe:  # grab, then release, a free port
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        completed = self.run_query_cli(table, port)
        assert completed.returncode == 2


class TestReconnectAfterRestart:
    def test_client_reregisters_and_resumes_without_duplicates(
        self, genome, guides
    ):
        # A backend crashes and is replaced on the same endpoint by a
        # cold process that knows nothing: the persistent client must
        # ride its retry path through the reconnect, re-register the
        # genome session itself, and the next query must execute
        # exactly once on the new process.
        budget = SearchBudget(mismatches=2)
        expected = OffTargetSearch(guides, budget).run(genome).hits
        service = OffTargetService(
            background=True, batch_window_seconds=0.002, chunk_length=1 << 12
        )
        service.add_genome("default", genome)
        server = OffTargetServer(service)
        host, port = server.start()
        replacement = None
        client = ServiceClient(
            host,
            port,
            timeout_seconds=20,
            retry=RetryPolicy(seed=11, base_delay_seconds=0.01),
        )
        try:
            with client:
                before = client.query(guides, budget, request_id="before-restart")
                assert before.hits == expected
                server.die()
                # The replacement has no sessions at all — restarts
                # lose state, they don't inherit it.
                cold = OffTargetService(
                    background=True,
                    batch_window_seconds=0.002,
                    chunk_length=1 << 12,
                )
                replacement = OffTargetServer(cold, port=port)
                # The dead server's acceptor poll (<= 0.2 s) can pin
                # the port briefly; retry the bind like a supervisor.
                deadline = time.monotonic() + 5
                while True:
                    try:
                        replacement.start()
                        break
                    except OSError:
                        if time.monotonic() > deadline:
                            raise
                        time.sleep(0.05)
                # The stale connection dies on first use; the retry
                # path reconnects, and the cold service answers with a
                # typed refusal for the missing session.
                with pytest.raises(ServiceError):
                    client.query(guides, budget, request_id="orphan-session")
                assert client.register_genome(
                    "default", [(genome.name, genome.text)]
                )
                after = client.query(guides, budget, request_id="after-restart")
            assert after.hits == expected
            counts = replacement.execution_counts()
            assert counts.get("after-restart") == 1
            assert all(count == 1 for count in counts.values()), counts
            assert client.metrics.counter("service.client.retries") >= 1
        finally:
            if replacement is not None:
                replacement.stop()
            server.stop()
