"""Tests for the guide-design pipeline (enumerate → coalesced vet → rank).

Layers, matching the pipeline stages:

* ``TestEnumeration`` — the hypothesis regex-oracle property (every
  candidate the oracle finds, on both strands and both PAM sides, and
  nothing else) plus targeted strand-geometry pins;
* ``TestVetting`` — the headline acceptance invariant: the coalesced
  one-pass vet is bit-identical to a per-candidate solo search for
  every shipped PAM preset, with a chunk-straddle planted-candidate
  regression;
* ``TestScoring`` — weight-table validation, score components,
  own-site exclusion, deterministic ranking;
* ``TestDesignChecks`` — the DSG001–DSG004 pre-flight rules;
* ``TestDesignPipeline`` — ``run_design`` end to end (TSV/JSON bytes
  determinism, empty-region typed failure);
* ``TestDesignService`` — the socket ``design`` op: document-identical
  to the in-process run, idempotent under a scripted mid-line
  disconnect (one execution, clean SVC rules).
"""

from __future__ import annotations

import json
import re

import pytest
from hypothesis import given, settings, strategies as st

from repro import alphabet
from repro.core.search import OffTargetSearch, SearchBudget
from repro.design import (
    ScoreWeights,
    enumerate_candidates,
    render_design_tsv,
    report_to_json,
    run_design,
    score_candidates,
    vet_candidates,
    vet_candidates_via_service,
    weights_from_mapping,
)
from repro.design.score import gc_fraction, longest_homopolymer_run
from repro.design.vet import build_panel
from repro.errors import DesignError
from repro.genome.sequence import Sequence
from repro.genome.synthetic import random_genome
from repro.grna.library import GuideLibrary
from repro.grna.pam import get_pam
from repro.service import (
    ChaosPlan,
    OffTargetServer,
    OffTargetService,
    RetryPolicy,
    ServiceClient,
)

#: Every PAM preset the acceptance criterion names, 3' and 5' side.
PRESETS = ("NGG", "NAG", "NRG", "TTTV", "NNGRRT")

#: Shared deterministic workload: a genome and a region cut out of it,
#: so every candidate has at least its own locus genome-side.
GENOME = random_genome(4000, seed=23, name="chrDesign")
REGION = Sequence.from_text("region", GENOME.text[500:1500])


def guide_length_for(preset: str) -> int:
    """20 nt everywhere except TTTV, which runs the short tru-gRNA path."""
    return 9 if preset == "TTTV" else 20


# -- enumeration --------------------------------------------------------------


def _symbol_class(symbol: str) -> str:
    """Regex class of + strand genome bases satisfying an IUPAC symbol.

    Mirrors :func:`repro.alphabet.iupac_matches`: a genome ``N``
    satisfies only a pattern ``N``.
    """
    bases = alphabet.IUPAC[symbol]
    if symbol == "N":
        bases += "N"
    return "[" + bases + "]"


def oracle_candidates(text, pam, guide_length):
    """Regex-oracle enumeration: set of (start, strand, proto, pam_site).

    Forward sites match the pattern directly; reverse sites match the
    reverse-complemented pattern on the + strand (candidates are then
    reported in guide orientation). Lookaheads make overlapping sites
    visible.
    """
    proto = "([ACGT]{%d})" % guide_length
    forward = "(" + "".join(_symbol_class(s) for s in pam.pattern) + ")"
    rc_pattern = alphabet.reverse_complement(pam.pattern)
    reverse = "(" + "".join(_symbol_class(s) for s in rc_pattern) + ")"
    if pam.side == "3prime":
        forward_re = re.compile("(?=" + proto + forward + ")")
        reverse_re = re.compile("(?=" + reverse + proto + ")")
    else:
        forward_re = re.compile("(?=" + forward + proto + ")")
        reverse_re = re.compile("(?=" + proto + reverse + ")")
    expected = set()
    for match in forward_re.finditer(text):
        one, two = match.group(1), match.group(2)
        proto_site, pam_site = (one, two) if pam.side == "3prime" else (two, one)
        expected.add((match.start(), "+", proto_site, pam_site))
    for match in reverse_re.finditer(text):
        one, two = match.group(1), match.group(2)
        # On the + strand a reverse site reads rc(pam)+rc(proto) for a
        # 3' PAM and rc(proto)+rc(pam) for a 5' PAM.
        rc_pam, rc_proto = (one, two) if pam.side == "3prime" else (two, one)
        expected.add(
            (
                match.start(),
                "-",
                alphabet.reverse_complement(rc_proto),
                alphabet.reverse_complement(rc_pam),
            )
        )
    return expected


class TestEnumeration:
    @settings(max_examples=40, deadline=None)
    @given(
        text=st.text(alphabet="ACGTN", min_size=0, max_size=120),
        preset=st.sampled_from(PRESETS),
        guide_length=st.integers(min_value=3, max_value=8),
    )
    def test_matches_regex_oracle(self, text, preset, guide_length):
        pam = get_pam(preset)
        region = Sequence.from_text("r", text)
        found = {
            (c.start, c.strand, c.protospacer, c.pam_site)
            for c in enumerate_candidates(region, pam, guide_length=guide_length)
        }
        assert found == oracle_candidates(text, pam, guide_length)

    def test_three_prime_reverse_pam_sits_at_window_start(self):
        # + strand reads rc(PAM)+rc(proto): CCA-TTTT... is a − strand
        # NGG site whose protospacer starts right after the PAM.
        region = Sequence.from_text("r", "CCA" + "TGCA" * 5)
        (candidate,) = enumerate_candidates(region, "NGG", guide_length=20)
        assert candidate.strand == "-"
        assert (candidate.start, candidate.end) == (0, 23)
        assert candidate.pam_site == "TGG"
        assert candidate.protospacer == alphabet.reverse_complement("TGCA" * 5)

    def test_five_prime_reverse_pam_sits_at_window_end(self):
        # Satellite regression: for a 5' PAM on the − strand, the +
        # strand window reads rc(proto)+rc(PAM) — the PAM occupies the
        # *end* of the window. Pin the exact coordinates.
        proto = "ACGTACGTA"  # 9 nt tru-guide
        pam_site = "TTTA"  # concrete TTTV
        window = alphabet.reverse_complement(pam_site + proto)
        region = Sequence.from_text("r", "G" * 7 + window + "G" * 7)
        candidates = enumerate_candidates(region, "TTTV", guide_length=9)
        reverse = [c for c in candidates if c.strand == "-" and c.start == 7]
        assert len(reverse) == 1
        (candidate,) = reverse
        assert (candidate.start, candidate.end) == (7, 7 + len(window))
        assert candidate.protospacer == proto
        assert candidate.pam_site == pam_site
        # The PAM bases really are the last 4 of the + strand window.
        assert region.text[candidate.end - 4 : candidate.end] == (
            alphabet.reverse_complement(pam_site)
        )

    def test_nngrrt_reverse_window_coordinates(self):
        # Same pin for the 6 bp SaCas9 motif (3' side): on the − strand
        # the PAM occupies the *start* of the + strand window.
        proto = "TGCATGCATGCATGCATGCA"
        pam_site = "ACGAGT"  # concrete NNGRRT
        window = alphabet.reverse_complement(proto + pam_site)
        region = Sequence.from_text("r", "C" * 5 + window + "C" * 5)
        candidates = enumerate_candidates(region, "NNGRRT", guide_length=20)
        reverse = [c for c in candidates if c.strand == "-" and c.start == 5]
        assert len(reverse) == 1
        (candidate,) = reverse
        assert (candidate.start, candidate.end) == (5, 5 + 26)
        assert candidate.protospacer == proto
        assert candidate.pam_site == pam_site
        assert region.text[candidate.start : candidate.start + 6] == (
            alphabet.reverse_complement(pam_site)
        )

    def test_candidates_are_ordered_and_named_deterministically(self):
        candidates = enumerate_candidates(REGION, "NGG", guide_length=20)
        assert candidates
        keys = [(c.sequence_name, c.start, c.strand) for c in candidates]
        assert keys == sorted(keys, key=lambda k: (k[0], k[1], k[2] == "-"))
        assert all(
            c.name == f"{c.sequence_name}:{c.start}:"
            f"{'fwd' if c.strand == '+' else 'rev'}"
            for c in candidates
        )

    def test_full_site_span_covers_protospacer_and_pam(self):
        for preset in PRESETS:
            pam = get_pam(preset)
            length = guide_length_for(preset)
            for candidate in enumerate_candidates(REGION, pam, guide_length=length):
                assert candidate.site_length == length + len(pam)
                window = REGION.text[candidate.start : candidate.end]
                if candidate.strand == "-":
                    window = alphabet.reverse_complement(window)
                if pam.side == "3prime":
                    assert window == candidate.protospacer + candidate.pam_site
                else:
                    assert window == candidate.pam_site + candidate.protospacer

    def test_guide_length_validation_is_typed(self):
        with pytest.raises(DesignError):
            enumerate_candidates(REGION, "NGG", guide_length=0)
        with pytest.raises(DesignError):
            enumerate_candidates(REGION, "NGG", guide_length=31)
        with pytest.raises(DesignError):
            enumerate_candidates(REGION, "NGG", guide_length=True)
        with pytest.raises(DesignError):
            enumerate_candidates([], "NGG")

    def test_n_runs_block_protospacers_but_not_pattern_n(self):
        # The protospacer must be concrete; the PAM's N positions admit
        # a genome N (the ambiguity lives in the reference).
        region = Sequence.from_text("r", "ACGTN" + "ACGT" * 6)
        lengths = {c.start for c in enumerate_candidates(region, "NGG", guide_length=4)}
        assert all(start > 4 or start + 4 <= 4 for start in lengths)


# -- coalesced vetting --------------------------------------------------------


class TestVetting:
    @pytest.mark.parametrize("preset", PRESETS)
    def test_one_pass_vet_is_bit_identical_to_solo_searches(self, preset):
        # The acceptance invariant: ONE genome pass for the whole panel,
        # and each candidate's hit set bit-identical to a solo search.
        pam = get_pam(preset)
        length = guide_length_for(preset)
        candidates = enumerate_candidates(REGION, pam, guide_length=length)
        assert candidates, f"workload must yield {preset} candidates"
        budget = SearchBudget(mismatches=2)
        vetted = vet_candidates(
            candidates, GENOME, budget, pam, chunk_length=1 << 12
        )
        assert vetted.genome_passes == 1
        for candidate in candidates:
            solo = OffTargetSearch(
                GuideLibrary.from_guides([candidate.to_guide(pam)]), budget
            ).run(GENOME)
            assert list(vetted.hits_by_candidate[candidate.name]) == sorted(
                solo.hits
            ), f"{preset} candidate {candidate.name} diverged from solo search"

    def test_duplicate_protospacers_share_one_panel_guide(self):
        text = REGION.text[:200]
        doubled = Sequence.from_text("r2", text + text)
        candidates = enumerate_candidates(doubled, "NGG", guide_length=20)
        panel, representative_of = build_panel(list(candidates), get_pam("NGG"))
        assert len(panel) < len(candidates)
        assert set(representative_of) == {c.name for c in candidates}
        vetted = vet_candidates(
            candidates, GENOME, SearchBudget(mismatches=1), get_pam("NGG")
        )
        assert vetted.panel_guides == len(panel)
        # Duplicates receive identical hit sets modulo the name.
        by_content = {}
        for candidate in candidates:
            spans = tuple(
                (h.sequence_name, h.start, h.end, h.strand, h.edits)
                for h in vetted.hits_by_candidate[candidate.name]
            )
            by_content.setdefault(candidate.protospacer, set()).add(spans)
        assert all(len(variants) == 1 for variants in by_content.values())

    def test_chunk_straddle_finds_planted_off_target(self):
        # A planted off-target straddling the 4096-byte chunk boundary
        # must be found by the chunked coalesced pass.
        protospacer = "GACTGACTGACTGACTGACT"
        site = protospacer + "TGG"
        boundary = 1 << 12
        background = random_genome(2 * boundary, seed=91, name="chrStraddle").text
        start = boundary - 10  # 23 bp site: 10 bp left, 13 bp right
        text = background[:start] + site + background[start + len(site) :]
        genome = Sequence.from_text("chrStraddle", text)
        region = Sequence.from_text("region", site)
        candidates = enumerate_candidates(region, "NGG", guide_length=20)
        assert any(c.protospacer == protospacer for c in candidates)
        budget = SearchBudget(mismatches=1)
        chunked = vet_candidates(
            candidates, genome, budget, get_pam("NGG"), chunk_length=boundary
        )
        whole = vet_candidates(
            candidates, genome, budget, get_pam("NGG"), chunk_length=len(text)
        )
        assert chunked.hits_by_candidate == whole.hits_by_candidate
        (candidate,) = [c for c in candidates if c.protospacer == protospacer]
        starts = {h.start for h in chunked.hits_by_candidate[candidate.name]}
        assert start in starts

    def test_vet_rejects_empty_candidate_set(self):
        with pytest.raises(DesignError):
            build_panel([], get_pam("NGG"))

    def test_service_vet_matches_in_process(self):
        candidates = enumerate_candidates(REGION, "NGG", guide_length=20)
        budget = SearchBudget(mismatches=2)
        service = OffTargetService(chunk_length=1 << 12)
        service.add_genome("default", GENOME)
        via_service = vet_candidates_via_service(
            candidates, service, budget, get_pam("NGG")
        )
        in_process = vet_candidates(candidates, GENOME, budget, get_pam("NGG"))
        assert via_service.hits_by_candidate == in_process.hits_by_candidate
        assert via_service.panel_guides == in_process.panel_guides


# -- scoring ------------------------------------------------------------------


class TestScoring:
    def test_weight_table_validation_is_typed(self):
        with pytest.raises(DesignError):
            weights_from_mapping({"gc_weight": 0.9})  # components don't sum to 1
        with pytest.raises(DesignError):
            weights_from_mapping({"nonsense": 1})
        with pytest.raises(DesignError):
            weights_from_mapping({"gc_weight": True})
        with pytest.raises(DesignError):
            weights_from_mapping({"seed_mismatch_weight": 0.0})
        with pytest.raises(DesignError):
            weights_from_mapping(
                {"position_weights": [0.5, 0.5]}, guide_length=20
            )  # table must cover the guide length
        assert weights_from_mapping(None) == ScoreWeights()
        custom = weights_from_mapping(
            {"gc_weight": 0.5, "homopolymer_weight": 0.25, "specificity_weight": 0.25}
        )
        assert custom.gc_weight == 0.5

    def test_component_helpers(self):
        assert gc_fraction("GGCC") == 1.0
        assert gc_fraction("AATT") == 0.0
        assert longest_homopolymer_run("AAAACGT") == 4
        assert longest_homopolymer_run("ACGT") == 1

    def test_seed_mismatches_outweigh_distal(self):
        weights = ScoreWeights()
        pam = get_pam("NGG")
        # PAM distance 0 is seed-proximal for a 3' PAM; distance 19 distal.
        assert weights.mismatch_weight(0) == weights.seed_mismatch_weight
        assert weights.mismatch_weight(19) == weights.distal_mismatch_weight
        assert weights.seed_mismatch_weight < weights.distal_mismatch_weight
        region = Sequence.from_text("region", REGION.text[:300])
        candidates = enumerate_candidates(region, pam, guide_length=20)
        budget = SearchBudget(mismatches=2)
        vetted = vet_candidates(candidates, GENOME, budget, pam)
        ranked = score_candidates(candidates, pam, vetted.hits_by_candidate, weights)
        for score in ranked:
            assert 0.0 <= score.total <= 1.0
            assert 0.0 < score.specificity <= 1.0
            assert score.off_targets == len(
                vetted.hits_by_candidate[score.candidate.name]
            ) - (1 if _has_own_site(score, vetted) else 0)

    def test_own_site_is_excluded_when_self_vetting(self):
        report = run_design(
            REGION, None, "NGG", guide_length=20, budget=SearchBudget(mismatches=0)
        )
        for score in report.ranked:
            # Exact-match self-vet: the only 0-edit hit at the candidate's
            # own locus is excluded, so unique candidates are perfectly
            # specific.
            own = [
                h
                for h in report.hits_by_candidate[score.candidate.name]
                if h.start == score.candidate.start
                and h.strand == score.candidate.strand
            ]
            if score.off_targets == 0:
                assert score.specificity == 1.0
            assert own  # the locus itself is always found by the search

    def test_ranking_is_deterministic_with_stable_tie_break(self):
        pam = get_pam("NGG")
        candidates = enumerate_candidates(REGION, pam, guide_length=20)
        vetted = vet_candidates(candidates, GENOME, SearchBudget(mismatches=1), pam)
        weights = ScoreWeights()
        first = score_candidates(candidates, pam, vetted.hits_by_candidate, weights)
        second = score_candidates(candidates, pam, vetted.hits_by_candidate, weights)
        assert first == second
        totals = [s.total for s in first]
        assert totals == sorted(totals, reverse=True)

    def test_position_weight_table_is_applied(self):
        pam = get_pam("NGG")
        flat = ScoreWeights(position_weights=tuple([0.5] * 20))
        tiered = ScoreWeights()
        assert flat.mismatch_weight(3) == 0.5
        assert tiered.mismatch_weight(3) == tiered.seed_mismatch_weight
        candidates = enumerate_candidates(REGION, pam, guide_length=20)[:4]
        vetted = vet_candidates(candidates, GENOME, SearchBudget(mismatches=2), pam)
        flat_scores = score_candidates(candidates, pam, vetted.hits_by_candidate, flat)
        tiered_scores = score_candidates(
            candidates, pam, vetted.hits_by_candidate, tiered
        )
        assert {s.candidate.name for s in flat_scores} == {
            s.candidate.name for s in tiered_scores
        }


def _has_own_site(score, vetted):
    return any(
        h.edits == 0
        and h.start == score.candidate.start
        and h.strand == score.candidate.strand
        and h.sequence_name == score.candidate.sequence_name
        for h in vetted.hits_by_candidate[score.candidate.name]
    )


# -- DSG check rules ----------------------------------------------------------


class TestDesignChecks:
    def rules(self, report, severity=None):
        diagnostics = report.diagnostics
        if severity is not None:
            diagnostics = [d for d in diagnostics if d.severity.name == severity]
        return {d.rule for d in diagnostics}

    def test_dsg001_empty_panel_is_an_error(self):
        from repro.check import check_design_request

        report = check_design_request([], get_pam("NGG"), guide_length=20)
        assert "DSG001" in self.rules(report, "ERROR")
        assert not report.ok

    def test_dsg002_malformed_weights(self):
        from repro.check import check_design_request

        candidates = enumerate_candidates(REGION, "NGG", guide_length=20)
        report = check_design_request(
            candidates,
            get_pam("NGG"),
            guide_length=20,
            weights={"gc_weight": 2.0},
        )
        assert "DSG002" in self.rules(report, "ERROR")

    def test_dsg003_capacity_preflight(self):
        from repro.check import check_design_request
        from repro.platforms.spec import ApSpec

        candidates = enumerate_candidates(REGION, "NGG", guide_length=20)
        tiny = ApSpec(
            stes_per_chip=4, chips_per_rank=1, ranks=1, routable_fraction=1.0
        )
        report = check_design_request(
            candidates,
            get_pam("NGG"),
            guide_length=20,
            budget=SearchBudget(mismatches=2),
            specs=(tiny,),
        )
        assert "DSG003" in self.rules(report)
        assert not report.ok

    def test_dsg004_reports_panel_dedup(self):
        from repro.check import check_design_request

        text = REGION.text[:150]
        doubled = Sequence.from_text("r", text + text)
        candidates = enumerate_candidates(doubled, "NGG", guide_length=20)
        report = check_design_request(candidates, get_pam("NGG"), guide_length=20)
        assert report.ok
        (observation,) = [d for d in report.diagnostics if d.rule == "DSG004"]
        assert f"{len(candidates)} candidate(s)" in observation.message
        panel, _ = build_panel(list(candidates), get_pam("NGG"))
        assert f"{len(panel)} distinct" in observation.message


# -- the pipeline end to end --------------------------------------------------


class TestDesignPipeline:
    def test_reports_are_byte_deterministic(self):
        kwargs = dict(guide_length=20, budget=SearchBudget(mismatches=2))
        first = run_design(REGION, GENOME, "NGG", **kwargs)
        second = run_design(REGION, GENOME, "NGG", **kwargs)
        assert render_design_tsv(first) == render_design_tsv(second)
        assert json.dumps(
            report_to_json(first), sort_keys=True
        ) == json.dumps(report_to_json(second), sort_keys=True)
        assert first.genome_passes == 1
        header, *rows = render_design_tsv(first).splitlines()
        assert header.startswith("#rank\tname\t")
        assert len(rows) == first.num_candidates

    def test_empty_region_raises_dsg001_typed(self):
        with pytest.raises(DesignError) as excinfo:
            run_design(Sequence.from_text("r", "AAAA"), GENOME, "NGG")
        assert "DSG001" in str(excinfo.value)

    def test_invalid_weights_fail_before_any_genome_pass(self):
        bad = ScoreWeights(gc_weight=0.9)
        with pytest.raises(DesignError):
            run_design(REGION, GENOME, "NGG", weights=bad)

    def test_stats_carry_obs_snapshot(self):
        report = run_design(REGION, GENOME, "NGG", budget=SearchBudget(mismatches=1))
        obs = report.stats["obs"]
        assert obs["counters"]["design.candidates"] == report.num_candidates
        assert report.summary().startswith(f"{report.num_candidates} candidate(s)")


# -- the socket design op -----------------------------------------------------


@pytest.fixture(scope="module")
def design_server():
    service = OffTargetService(
        background=True, batch_window_seconds=0.002, chunk_length=1 << 12
    )
    service.add_genome("default", GENOME)
    server = OffTargetServer(service)
    server.start()
    yield server
    server.stop()


class TestDesignService:
    @pytest.mark.parametrize("preset", PRESETS)
    def test_socket_design_matches_in_process(self, design_server, preset):
        length = guide_length_for(preset)
        budget = SearchBudget(mismatches=2)
        host, port = design_server.address
        with ServiceClient(host, port, timeout_seconds=60) as client:
            document = client.design(
                REGION.text, pam=preset, guide_length=length, budget=budget
            )
        reference = report_to_json(
            run_design(REGION, GENOME, preset, guide_length=length, budget=budget)
        )
        assert json.dumps(document, sort_keys=True) == json.dumps(
            reference, sort_keys=True
        )

    def test_design_is_idempotent_under_midline_disconnect(self):
        # Satellite: the scripted chaos regression. The response to the
        # first attempt dies mid-line; the retried id must be answered
        # from the idempotency record without re-running the pipeline.
        from repro.check import check_server

        service = OffTargetService(
            background=True, batch_window_seconds=0.002, chunk_length=1 << 12
        )
        service.add_genome("default", GENOME)
        server = OffTargetServer(
            service, chaos=ChaosPlan.scripted({"server.write": ["truncate_write"]})
        )
        host, port = server.start()
        try:
            with ServiceClient(
                host,
                port,
                timeout_seconds=60,
                retry=RetryPolicy(seed=5, base_delay_seconds=0.001),
            ) as client:
                document = client.design(
                    REGION.text,
                    pam="NGG",
                    budget=SearchBudget(mismatches=2),
                    request_id="design-chaos",
                )
            reference = report_to_json(
                run_design(REGION, GENOME, "NGG", budget=SearchBudget(mismatches=2))
            )
            assert json.dumps(document, sort_keys=True) == json.dumps(
                reference, sort_keys=True
            )
            assert server.execution_counts() == {"design-chaos": 1}
            report = check_server(server)
            assert not [
                d for d in report.diagnostics if d.severity.name == "ERROR"
            ], report.diagnostics
        finally:
            server.stop()

    def test_malformed_design_requests_are_bad_requests(self, design_server):
        from repro.errors import ServiceError

        host, port = design_server.address
        with ServiceClient(host, port, timeout_seconds=60) as client:
            for payload in (
                {"op": "design"},  # no region
                {"op": "design", "region": "ACGT" * 30, "guide_length": "x"},
                {"op": "design", "region": "ACGT" * 30, "weights": [1, 2]},
                {"op": "design", "region": "AAAA"},  # DSG001 -> typed failure
                {
                    "op": "design",
                    "region": "ACGT" * 30,
                    "weights": {"gc_weight": 2.0},
                },
            ):
                with pytest.raises(ServiceError):
                    client.roundtrip(payload)
                assert client.ping()  # the connection survives each rejection
