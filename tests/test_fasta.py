"""Unit tests for repro.genome.fasta."""

import io

import pytest

from repro.errors import FastaError
from repro.genome.fasta import FastaRecord, parse_fasta, read_fasta, write_fasta
from repro.genome.sequence import Sequence


def test_single_record():
    records = read_fasta(io.StringIO(">chr1 test chromosome\nACGT\nACGT\n"))
    assert len(records) == 1
    assert records[0].identifier == "chr1"
    assert records[0].description == "test chromosome"
    assert records[0].sequence.text == "ACGTACGT"


def test_multi_record():
    records = read_fasta(io.StringIO(">a\nAC\n>b\nGT\n>c\nNN\n"))
    assert [record.identifier for record in records] == ["a", "b", "c"]
    assert [record.sequence.text for record in records] == ["AC", "GT", "NN"]


def test_blank_lines_and_comments_skipped():
    records = read_fasta(io.StringIO(";comment\n>a\n\nAC\n;mid\nGT\n\n"))
    assert records[0].sequence.text == "ACGT"


def test_lowercase_normalised():
    records = read_fasta(io.StringIO(">a\nacgt\n"))
    assert records[0].sequence.text == "ACGT"


def test_crlf_handled():
    records = read_fasta(io.StringIO(">a\r\nACGT\r\n"))
    assert records[0].sequence.text == "ACGT"


def test_no_description():
    records = read_fasta(io.StringIO(">a\nACGT\n"))
    assert records[0].description == ""


def test_empty_stream_rejected():
    with pytest.raises(FastaError):
        read_fasta(io.StringIO(""))


def test_sequence_before_header_rejected():
    with pytest.raises(FastaError):
        read_fasta(io.StringIO("ACGT\n>a\nACGT\n"))


def test_empty_record_rejected():
    with pytest.raises(FastaError):
        read_fasta(io.StringIO(">a\n>b\nACGT\n"))


def test_empty_identifier_rejected():
    with pytest.raises(FastaError):
        read_fasta(io.StringIO("> \nACGT\n"))


def test_bad_symbols_rejected():
    with pytest.raises(Exception):
        read_fasta(io.StringIO(">a\nACXT\n"))


def test_parse_is_lazy():
    stream = io.StringIO(">a\nAC\n>b\nGT\n")
    iterator = parse_fasta(stream)
    first = next(iterator)
    assert first.identifier == "a"


def test_write_read_roundtrip(tmp_path):
    path = tmp_path / "out.fa"
    records = [
        FastaRecord("a", "desc one", Sequence.from_text("a", "ACGT" * 30)),
        FastaRecord("b", "", Sequence.from_text("b", "NNNACGT")),
    ]
    write_fasta(records, path, width=50)
    back = read_fasta(path)
    assert [r.identifier for r in back] == ["a", "b"]
    assert back[0].description == "desc one"
    assert back[0].sequence.text == "ACGT" * 30
    assert back[1].sequence.text == "NNNACGT"


def test_write_bare_sequences():
    buffer = io.StringIO()
    write_fasta([Sequence.from_text("x", "ACGT")], buffer)
    assert buffer.getvalue() == ">x\nACGT\n"


def test_write_wraps_lines():
    buffer = io.StringIO()
    write_fasta([Sequence.from_text("x", "A" * 25)], buffer, width=10)
    lines = buffer.getvalue().splitlines()
    assert lines[1:] == ["A" * 10, "A" * 10, "A" * 5]


def test_write_rejects_bad_width():
    with pytest.raises(FastaError):
        write_fasta([Sequence.from_text("x", "ACGT")], io.StringIO(), width=0)
