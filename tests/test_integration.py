"""End-to-end integration tests across the whole pipeline."""

import subprocess
import sys

import pytest

from repro import (
    Guide,
    GuideLibrary,
    OffTargetSearch,
    SearchBudget,
    StreamingSearch,
    random_genome,
    read_fasta,
    write_fasta,
)
from repro.analysis.report_io import read_tsv
from repro.genome.synthetic import SyntheticGenomeBuilder, plant_sites

from helpers import hit_spans


class TestPlantedPipeline:
    """Synthesize → plant → search on every engine → recover ground truth."""

    @pytest.fixture(scope="class")
    def scenario(self):
        guides = GuideLibrary.from_guides(
            [
                Guide("EMX1", "GAGTCCGAGCAGAAGAAGAA"),
                Guide("FANCF", "GGAATCCCTTCTGCAGCACC"),
            ]
        )
        genome = random_genome(60_000, seed=314, name="chrI")
        genome, planted = plant_sites(genome, guides, per_guide=2, mismatches=2, seed=315)
        return genome, guides, planted

    @pytest.mark.parametrize(
        "engine", ["hyperscan", "fpga", "ap", "infant2", "cas-offinder", "casot"]
    )
    def test_every_engine_recovers_plants(self, scenario, engine):
        genome, guides, planted = scenario
        report = OffTargetSearch(guides, SearchBudget(mismatches=2)).run(
            genome, engine=engine
        )
        found = {(h.guide_name, h.start) for h in report.hits}
        for site in planted:
            assert (guides[site.guide_index].name, site.position) in found

    def test_exact_edit_profiles_reported(self, scenario):
        genome, guides, planted = scenario
        report = OffTargetSearch(guides, SearchBudget(mismatches=3)).run(genome)
        by_start = {h.start: h for h in report.hits}
        for site in planted:
            assert by_start[site.position].mismatches == 2


class TestGapHandling:
    def test_no_hits_inside_assembly_gaps(self):
        guide = Guide("g", "ACGTACGTCAACGTACGTCA")
        target = guide.concrete_target()
        genome = (
            SyntheticGenomeBuilder(seed=1)
            .add_text(target)
            .add_gap(500)
            .add_text(target)
            .build("chrGap")
        )
        report = OffTargetSearch([guide], SearchBudget(mismatches=1)).run(genome)
        starts = sorted(h.start for h in report.hits)
        assert starts == [0, len(target) + 500]


class TestFastaRoundtrip:
    def test_search_from_fasta_file(self, tmp_path):
        genome = random_genome(40_000, seed=316, name="chrF")
        path = tmp_path / "ref.fa"
        write_fasta([genome], path)
        loaded = read_fasta(path)[0].sequence
        guide = Guide("g", loaded.window(1000, 20))
        # The sampled window may not have a PAM; search still runs cleanly.
        report = OffTargetSearch([guide], SearchBudget(mismatches=1)).run(loaded)
        assert report.genome_length == 40_000


class TestStreamingMatchesApi:
    def test_streaming_equals_api_search(self):
        genome = random_genome(90_000, seed=317, name="chrS")
        guides = GuideLibrary.from_guides([Guide("g", "GAGTCCGAGCAGAAGAAGAA")])
        genome, _ = plant_sites(genome, guides, per_guide=3, mismatches=1, seed=318)
        budget = SearchBudget(mismatches=2)
        api_hits = OffTargetSearch(guides, budget).run(genome).hits
        streamed = StreamingSearch(guides, budget, chunk_length=9_000).search(genome)
        assert hit_spans(streamed) == hit_spans(api_hits)


class TestCliEndToEnd:
    """Drive the installed CLI as a subprocess — the full user path."""

    @pytest.fixture(scope="class")
    def workspace(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("cli")
        ref = root / "ref.fa"
        subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "synthesize",
                "--length",
                "30000",
                "--seed",
                "5",
                "--out",
                str(ref),
            ],
            check=True,
            capture_output=True,
        )
        guides = root / "guides.txt"
        guides.write_text("EMX1 GAGTCCGAGCAGAAGAAGAA\n")
        return root, ref, guides

    def test_search_tsv_out(self, workspace):
        root, ref, guides = workspace
        out = root / "hits.tsv"
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "search",
                str(ref),
                str(guides),
                "--mismatches",
                "5",
                "--format",
                "tsv",
                "--out",
                str(out),
            ],
            check=True,
            capture_output=True,
            text=True,
        )
        assert "total hits:" in result.stderr
        hits = read_tsv(out)
        for hit in hits:
            assert hit.guide_name == "EMX1"
            assert hit.mismatches <= 5

    def test_chunked_equals_plain(self, workspace):
        root, ref, guides = workspace
        plain_out = root / "plain.tsv"
        chunked_out = root / "chunked.tsv"
        common = [
            sys.executable,
            "-m",
            "repro.cli",
            "search",
            str(ref),
            str(guides),
            "--mismatches",
            "5",
            "--format",
            "tsv",
        ]
        subprocess.run(common + ["--out", str(plain_out)], check=True, capture_output=True)
        subprocess.run(
            common + ["--out", str(chunked_out), "--chunked", "--chunk-length", "7000"],
            check=True,
            capture_output=True,
        )
        assert hit_spans(read_tsv(plain_out)) == hit_spans(read_tsv(chunked_out))

    def test_evaluate_subcommand(self, workspace):
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "evaluate",
                "--guides",
                "2",
                "--functional-length",
                "50000",
            ],
            check=True,
            capture_output=True,
            text=True,
        )
        assert "Speedups" in result.stdout
