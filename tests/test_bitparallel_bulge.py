"""Property and regression suite for the banded bulged-budget kernel.

PR 6 pinned the mismatch-only Shift-And machinery; this file pins the
diagonal-band extension that serves bulged budgets natively. The
hypothesis layer plants a known edit script (substitutions, interior
deletions = RNA bulges, interior insertions = DNA bulges) into PAM-free
filler and asserts the kernel finds the planted site exactly when the
script fits the budget — with the naive oracle co-asserted on every
example, so "found" always means "found and bit-identical to ground
truth". The directed classes pin the band mechanisms one by one
(`_band_transfer` chaining, `_bulge_layout` segment splitting, the
per-delta bounds clamp), and the API class is the regression surface
for the removed matcher fallback: obs counters prove *which* kernel
ran, and ``make_kernel``'s source must not contain a ``has_bulges``
branch at all.
"""

import inspect

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import NaiveSearcher, SearchBudget, random_genome
from repro.core import bitparallel, matcher
from repro.core.bitparallel import (
    KERNEL_OBS,
    BitParallelPanel,
    _band_transfer,
    _bulge_layout,
    _bulged_accept_boards,
    _BlockPlanes,
    _compile_strand,
    make_kernel,
)
from repro.genome.sequence import Sequence
from repro.grna.guide import Guide
from repro.grna.pam import Pam

from helpers import hit_multiset


def oracle(genome, guides, budget):
    return NaiveSearcher(budget).search(genome, guides)


def _pam_free_filler(length):
    # A/T-only filler cannot satisfy an NGG PAM on either strand, so a
    # planted site's position is fully controlled.
    return ("AT" * length)[:length]


def _flip(base):
    return {"A": "C", "C": "A", "G": "T", "T": "G"}[base]


def _edited_site(proto, sub_positions, del_positions, ins_positions):
    """Apply an edit script to *proto* and append a concrete NGG PAM.

    Substitutions flip the base in place; deletions drop interior
    positions (RNA bulges); insertions add a flipped copy of the base
    *before* each interior position (DNA bulges — flipped so the
    insertion cannot be re-read as a plain repeat of its neighbour).
    Positions are applied right-to-left so earlier indices stay valid.
    """
    site = list(proto)
    for p in sorted(sub_positions, reverse=True):
        site[p] = _flip(site[p])
    edits = [(p, "del") for p in del_positions] + [(p, "ins") for p in ins_positions]
    for p, kind in sorted(edits, reverse=True):
        if kind == "del":
            del site[p]
        else:
            site.insert(p, _flip(proto[p]))
    return "".join(site) + "AGG"


def _plant(site, offset, total=240):
    filler = _pam_free_filler(total)
    return Sequence.from_text(
        "chrPlantBulge", filler[:offset] + site + filler[: max(total - offset - len(site), 0)]
    )


# Edit scripts over a 20-mer: distinct interior positions, spaced two
# apart so deletions/insertions never collapse into each other.
_edit_script = st.builds(
    lambda positions, n_sub, n_del: (
        positions[: n_sub],
        positions[n_sub : n_sub + n_del],
        positions[n_sub + n_del :],
    ),
    positions=st.lists(
        st.sampled_from(range(2, 18, 2)), min_size=0, max_size=4, unique=True
    ),
    n_sub=st.integers(min_value=0, max_value=4),
    n_del=st.integers(min_value=0, max_value=4),
)


class TestPlantedEditScripts:
    @settings(max_examples=60, deadline=None)
    @given(
        proto=st.text(alphabet="ACGT", min_size=20, max_size=20),
        script=_edit_script,
        offset=st.integers(min_value=0, max_value=120),
    )
    def test_fitting_budget_finds_planted_site(self, proto, script, offset):
        subs, dels, inss = script
        guide = Guide("g", proto)
        site = _edited_site(proto, subs, dels, inss)
        genome = _plant(site, offset)
        budget = SearchBudget(
            mismatches=len(subs), rna_bulges=len(dels), dna_bulges=len(inss)
        )
        hits = bitparallel.find_hits(genome, [guide], budget)
        # Ground truth rides along on every example: whatever the edit
        # script produced, the kernel must agree with the oracle.
        assert hits == oracle(genome, [guide], budget)
        # And the planted span itself must be among the hits — the
        # script fits the budget by construction.
        span = (offset, offset + len(site))
        assert any((h.start, h.end) == span and h.strand == "+" for h in hits), (
            f"planted site {span} not found: proto={proto} script={script}"
        )

    @settings(max_examples=40, deadline=None)
    @given(
        proto=st.text(alphabet="ACGT", min_size=20, max_size=20),
        script=_edit_script,
        starve=st.sampled_from(["mismatches", "rna_bulges", "dna_bulges"]),
    )
    def test_starved_budget_stays_bit_identical(self, proto, script, starve):
        # Remove one unit from one budget dimension the script uses:
        # the kernel and the oracle must still agree on every hit —
        # including whether the planted site survives via some cheaper
        # reading the adversarial protospacer happens to allow.
        subs, dels, inss = script
        counts = {
            "mismatches": len(subs),
            "rna_bulges": len(dels),
            "dna_bulges": len(inss),
        }
        if counts[starve] == 0:
            return
        counts[starve] -= 1
        guide = Guide("g", proto)
        genome = _plant(_edited_site(proto, subs, dels, inss), 64)
        budget = SearchBudget(**counts)
        assert bitparallel.find_hits(genome, [guide], budget) == oracle(
            genome, [guide], budget
        )

    @settings(max_examples=30, deadline=None)
    @given(
        text=st.text(alphabet="ACGTN", min_size=0, max_size=160),
        proto=st.text(alphabet="ACGT", min_size=12, max_size=24),
        mismatches=st.integers(min_value=0, max_value=2),
        rna=st.integers(min_value=0, max_value=2),
        dna=st.integers(min_value=0, max_value=2),
    )
    def test_random_genomes_bit_identical_to_oracle(
        self, text, proto, mismatches, rna, dna
    ):
        genome = Sequence.from_text("chr", text)
        guides = [Guide("g", proto)]
        budget = SearchBudget(mismatches=mismatches, rna_bulges=rna, dna_bulges=dna)
        assert bitparallel.find_hits(genome, guides, budget) == oracle(
            genome, guides, budget
        )


class TestDirectedBudgetEdges:
    """The iff's hard direction, pinned on a non-degenerate guide."""

    GUIDE = Guide("edge", "GAGTCCGAGCAGAAGAAGAA")

    def _hits(self, site, budget):
        return bitparallel.find_hits(_plant(site, 64), [self.GUIDE], budget)

    def test_one_deletion_needs_one_rna_bulge(self):
        site = _edited_site(self.GUIDE.protospacer, [], [9], [])
        assert self._hits(site, SearchBudget(mismatches=0, rna_bulges=1)) != []
        # A deletion shifts every downstream base: no mismatch budget
        # this size can absorb it.
        assert self._hits(site, SearchBudget(mismatches=2, rna_bulges=0)) == []

    def test_one_insertion_needs_one_dna_bulge(self):
        site = _edited_site(self.GUIDE.protospacer, [], [], [9])
        assert self._hits(site, SearchBudget(mismatches=0, dna_bulges=1)) != []
        assert self._hits(site, SearchBudget(mismatches=2, dna_bulges=0)) == []

    def test_saturating_mix_found_then_starved_not(self):
        site = _edited_site(self.GUIDE.protospacer, [4], [9], [14])
        full = SearchBudget(mismatches=1, rna_bulges=1, dna_bulges=1)
        assert self._hits(site, full) != []
        for starved in (
            SearchBudget(mismatches=0, rna_bulges=1, dna_bulges=1),
            SearchBudget(mismatches=1, rna_bulges=0, dna_bulges=1),
            SearchBudget(mismatches=1, rna_bulges=1, dna_bulges=0),
        ):
            assert self._hits(site, starved) == []

    def test_hit_reports_exact_edit_profile(self):
        site = _edited_site(self.GUIDE.protospacer, [4], [9], [])
        budget = SearchBudget(mismatches=2, rna_bulges=2, dna_bulges=2)
        hits = [
            h
            for h in self._hits(site, budget)
            if (h.start, h.end) == (64, 64 + len(site))
        ]
        assert [(h.mismatches, h.rna_bulges, h.dna_bulges) for h in hits] == [(1, 1, 0)]

    def test_five_prime_pam_bulges(self):
        guide = Guide(
            "cas12a",
            "TTCGATCGATCGATCGATCG",
            pam=Pam("TTTV", "TTTV", "5prime", "AsCpf1"),
        )
        proto = guide.protospacer
        site = "TTTA" + proto[:9] + proto[10:]  # drop interior position 9
        genome = Sequence.from_text(
            "chr5p", _pam_free_filler(50) + site + _pam_free_filler(50)
        )
        budget = SearchBudget(mismatches=0, rna_bulges=1, dna_bulges=1)
        hits = bitparallel.find_hits(genome, [guide], budget)
        assert hits == oracle(genome, [guide], budget)
        assert any(h.start == 50 and h.rna_bulges == 1 for h in hits)


# -- band-mechanism unit pins --------------------------------------------------


class TestBandPrimitives:
    def test_band_transfer_chains_ascending(self):
        # One set bit at dna=0 must propagate to every higher band in a
        # single call — the chained ascending OR that lets a layer
        # spend several DNA bulges back-to-back.
        reach = np.zeros((1, 3, 1, 2), dtype=np.uint64)
        reach[0, 0, 0, 0] = np.uint64(0b1010)
        _band_transfer(reach)
        for d in range(3):
            assert reach[0, d, 0, 0] == np.uint64(0b1010)

    def test_band_transfer_is_cumulative_not_swapping(self):
        reach = np.zeros((1, 2, 1, 1), dtype=np.uint64)
        reach[0, 0, 0, 0] = np.uint64(0b01)
        reach[0, 1, 0, 0] = np.uint64(0b10)
        _band_transfer(reach)
        assert reach[0, 0, 0, 0] == np.uint64(0b01)  # source untouched
        assert reach[0, 1, 0, 0] == np.uint64(0b11)  # target accumulates

    def test_band_transfer_preserves_rna_and_mismatch_axes(self):
        reach = np.zeros((2, 2, 2, 1), dtype=np.uint64)
        reach[1, 0, 1, 0] = np.uint64(1)
        _band_transfer(reach)
        assert reach[1, 1, 1, 0] == np.uint64(1)
        assert reach[0, 1, 0, 0] == np.uint64(0)  # no cross-axis leak

    def test_bulge_layout_three_prime_pam(self):
        pattern = _compile_strand(Guide("g", "GAGTCCGAGCAGAAGAAGAA"), "+")
        layout = _bulge_layout(pattern)
        assert layout.b_off == 0
        assert len(layout.budgeted_masks) == 20
        # NGG: all three PAM positions are exact and sit after the
        # protospacer, so they shift with the site-length delta.
        assert [(off, shifts) for off, _, shifts in layout.exact] == [
            (20, True),
            (21, True),
            (22, True),
        ]

    def test_bulge_layout_five_prime_pam(self):
        guide = Guide(
            "cas12a",
            "TTCGATCGATCGATCGATCG",
            pam=Pam("TTTV", "TTTV", "5prime", "AsCpf1"),
        )
        layout = _bulge_layout(_compile_strand(guide, "+"))
        assert layout.b_off == 4
        # A 5' PAM sits before the budgeted run: exact positions must
        # NOT shift when bulges change the protospacer's length.
        assert [(off, shifts) for off, _, shifts in layout.exact] == [
            (0, False),
            (1, False),
            (2, False),
            (3, False),
        ]

    def test_accept_boards_respect_per_delta_bounds(self):
        # Genome exactly one deleted site long: the delta=-1 reading
        # fits, the delta=0 and delta=+1 readings run off the end and
        # must be masked by the per-delta bounds clamp.
        guide = Guide("g", "GAGTCCGAGCAGAAGAAGAA")
        proto = guide.protospacer
        site = proto[:9] + proto[10:] + "AGG"
        genome = Sequence.from_text("chrTight", site)
        planes = _BlockPlanes(genome.codes)
        pattern = _compile_strand(guide, "+")
        budget = SearchBudget(mismatches=0, rna_bulges=1, dna_bulges=1)
        boards = _bulged_accept_boards(planes, pattern, _bulge_layout(pattern), budget)
        deltas = {d - r for (_, r, d) in boards}
        assert deltas == {-1}
        for board in boards.values():
            assert bitparallel._board_starts(board).tolist() == [0]

    def test_accept_boards_empty_genome_shorter_than_shortest_site(self):
        guide = Guide("g", "GAGTCCGAGCAGAAGAAGAA")
        pattern = _compile_strand(guide, "+")
        budget = SearchBudget(mismatches=0, rna_bulges=1, dna_bulges=1)
        planes = _BlockPlanes(Sequence.from_text("chrTiny", "ACGT").codes)
        assert _bulged_accept_boards(planes, pattern, _bulge_layout(pattern), budget) == {}


# -- the fallback is gone: API + obs regressions -------------------------------


class TestNoFallback:
    BUDGET = SearchBudget(mismatches=1, rna_bulges=1, dna_bulges=1)

    def test_make_kernel_has_no_bulge_fallback_branch(self):
        assert "has_bulges" not in inspect.getsource(make_kernel)

    def test_panel_accepts_bulged_budget(self, library):
        panel = BitParallelPanel(list(library), self.BUDGET)
        assert panel.budget == self.BUDGET

    def test_bulged_kernel_runs_bitparallel_not_matcher(self, tiny_genome, library):
        kern = make_kernel("bitparallel", library, self.BUDGET)
        before_bp = KERNEL_OBS.counter("kernel.bitparallel.bulged_blocks")
        before_mat = KERNEL_OBS.counter("kernel.matcher.blocks")
        hits = kern(tiny_genome)
        assert KERNEL_OBS.counter("kernel.bitparallel.bulged_blocks") == before_bp + 1
        assert KERNEL_OBS.counter("kernel.matcher.blocks") == before_mat
        assert hits == matcher.find_hits(tiny_genome, list(library), self.BUDGET)

    def test_matcher_kernel_still_counts_as_matcher(self, tiny_genome, library):
        kern = make_kernel("matcher", library, self.BUDGET)
        before = KERNEL_OBS.counter("kernel.matcher.blocks")
        kern(tiny_genome)
        assert KERNEL_OBS.counter("kernel.matcher.blocks") == before + 1

    def test_mismatch_only_blocks_not_counted_bulged(self, tiny_genome, library):
        kern = make_kernel("bitparallel", library, SearchBudget(mismatches=2))
        before = KERNEL_OBS.counter("kernel.bitparallel.bulged_blocks")
        kern(tiny_genome)
        assert KERNEL_OBS.counter("kernel.bitparallel.bulged_blocks") == before

    def test_bulged_count_report_rows_matches_matcher(self, library):
        for seed in (3, 5):
            genome = random_genome(900, seed=seed, name=f"chrRows{seed}")
            assert bitparallel.count_report_rows(
                genome, list(library), self.BUDGET
            ) == matcher.count_report_rows(genome, list(library), self.BUDGET)

    def test_count_report_rows_empty_panel(self, tiny_genome):
        assert bitparallel.count_report_rows(tiny_genome, [], self.BUDGET) == 0


class TestBulgedEquivalenceSweep:
    """Seeded kernel-vs-matcher sweep across every bulged budget shape."""

    SHAPES = [(1, 0), (0, 1), (1, 1), (2, 2)]

    @pytest.mark.parametrize("rna,dna", SHAPES)
    def test_seeded_sweep(self, rna, dna):
        from repro import sample_guides_from_genome

        for seed in (11, 12):
            genome = random_genome(1500, seed=seed, name=f"chrBulge{seed}")
            guides = sample_guides_from_genome(genome, 2, seed=seed + 50)
            budget = SearchBudget(mismatches=1, rna_bulges=rna, dna_bulges=dna)
            got = bitparallel.find_hits(genome, guides, budget)
            want = matcher.find_hits(genome, guides, budget)
            assert hit_multiset(got) == hit_multiset(want)
            assert got == want
