"""Unit tests for the naive reference oracle."""

from repro import SearchBudget
from repro.core.reference import NaiveSearcher
from repro.genome.sequence import Sequence
from repro.grna.guide import Guide

PROTO = "ACGTACGTCA"
GUIDE = Guide("g", PROTO)
TARGET = PROTO + "TGG"


def _search(text, budget):
    genome = Sequence.from_text("chr", text)
    return NaiveSearcher(budget).search(genome, [GUIDE])


class TestForwardStrand:
    def test_exact_site(self):
        hits = _search("TTT" + TARGET + "TTT", SearchBudget(mismatches=0))
        assert len(hits) == 1
        hit = hits[0]
        assert (hit.start, hit.end, hit.strand, hit.mismatches) == (3, 3 + 13, "+", 0)
        assert hit.site == TARGET

    def test_mismatch_counted(self):
        mutated = "T" + TARGET[1:]
        hits = _search(mutated, SearchBudget(mismatches=1))
        assert [h.mismatches for h in hits] == [1]

    def test_over_budget_rejected(self):
        mutated = "TT" + TARGET[2:]
        assert _search(mutated, SearchBudget(mismatches=1)) == []

    def test_bad_pam_rejected(self):
        assert _search(PROTO + "TTT", SearchBudget(mismatches=3)) == []


class TestReverseStrand:
    def test_reverse_complement_site(self):
        from repro import alphabet

        rc_site = alphabet.reverse_complement(TARGET)
        hits = _search("AA" + rc_site + "AA", SearchBudget(mismatches=0))
        assert len(hits) == 1
        hit = hits[0]
        assert hit.strand == "-"
        assert hit.start == 2
        assert hit.site == TARGET  # reported in guide orientation


class TestBulges:
    def test_rna_bulge_site(self):
        site = PROTO[:4] + PROTO[5:] + "TGG"  # interior deletion
        hits = _search(site, SearchBudget(mismatches=0, rna_bulges=1))
        assert len(hits) == 1
        assert hits[0].rna_bulges == 1
        assert hits[0].end - hits[0].start == 12

    def test_dna_bulge_site(self):
        site = PROTO[:5] + "G" + PROTO[5:] + "TGG"  # interior insertion
        hits = _search(site, SearchBudget(mismatches=0, dna_bulges=1))
        assert len(hits) == 1
        assert hits[0].dna_bulges == 1
        assert hits[0].end - hits[0].start == 14

    def test_best_profile_reported(self):
        # An exact site is also reachable with wasteful bulge pairs when
        # budgets allow; the oracle must report the 0-edit profile.
        hits = _search(TARGET, SearchBudget(mismatches=2, rna_bulges=1, dna_bulges=1))
        exact = [h for h in hits if (h.start, h.end) == (0, 13)]
        assert exact and exact[0].edits == 0

    def test_bulge_outside_budget_rejected(self):
        site = PROTO[:4] + PROTO[5:] + "TGG"
        assert _search(site, SearchBudget(mismatches=0)) == []


class TestGenomeN:
    def test_n_is_mismatch(self):
        site = "N" + TARGET[1:]
        assert _search(site, SearchBudget(mismatches=0)) == []
        hits = _search(site, SearchBudget(mismatches=1))
        assert [h.mismatches for h in hits] == [1]

    def test_n_in_pam_concrete_position_rejected(self):
        site = PROTO + "TNG"
        assert _search(site, SearchBudget(mismatches=3)) == []

    def test_n_at_pam_n_position_accepted(self):
        site = PROTO + "NGG"
        hits = _search(site, SearchBudget(mismatches=0))
        assert len(hits) == 1


class TestMultipleSites:
    def test_two_sites_both_found(self):
        text = TARGET + "AAAA" + TARGET
        hits = _search(text, SearchBudget(mismatches=0))
        assert [h.start for h in hits] == [0, 17]

    def test_hits_sorted_and_deduped(self):
        text = TARGET + TARGET
        hits = _search(text, SearchBudget(mismatches=2))
        keys = [h.key for h in hits]
        assert keys == sorted(keys)
        assert len(keys) == len(set(keys))
