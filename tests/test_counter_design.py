"""Unit tests for the counter-based mismatch design."""

import numpy as np
import pytest

from repro import alphabet
from repro.core.compiler import SearchBudget, _segments, compile_guide
from repro.core.counter_design import build_counter_design, counter_design_resources
from repro.errors import CompileError
from repro.grna.guide import Guide
from repro.platforms.resources import estimate_stes

GUIDE = Guide("g", "ACGTACGTCA")  # short protospacer keeps networks small


def _network(k, *, strand="+", streaming=True):
    segments = _segments(GUIDE, reverse=strand == "-")
    return build_counter_design(segments, k, label=("hit", strand), streaming=streaming)


def _row_positions(k, codes, *, strand="+"):
    compiled = compile_guide(GUIDE, SearchBudget(mismatches=k))
    nfa = compiled.forward if strand == "+" else compiled.reverse
    return sorted({p for p, _ in nfa.run(codes)})


class TestStreamingEquivalence:
    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_random_streams(self, k):
        network = _network(k)
        rng = np.random.default_rng(23)
        for length in (150, 259):
            codes = rng.integers(0, 4, length).astype(np.uint8)
            got = sorted({p for p, _ in network.run(codes)})
            assert got == _row_positions(k, codes)

    def test_every_alignment_offset(self):
        # Windows at every phase must be detected (ring correctness).
        network = _network(1)
        target = GUIDE.concrete_target()
        for offset in range(15):
            codes = alphabet.encode("T" * offset + target + "AC")
            got = {p for p, _ in network.run(codes)}
            assert offset + len(target) - 1 in got, f"missed phase {offset}"

    def test_back_to_back_windows_same_phase(self):
        # Consecutive windows of one phase share a counter; the reset
        # must isolate them.
        target = GUIDE.concrete_target()
        mutated = "TT" + target[2:]  # 2 mismatches at the front
        network = _network(1)
        codes = alphabet.encode(target + mutated + target)
        positions = {p for p, _ in network.run(codes)}
        L = len(target)
        assert L - 1 in positions  # first exact window
        assert 3 * L - 1 in positions  # third window exact again
        assert 2 * L - 1 not in positions  # middle window over budget

    def test_reverse_strand_pattern(self):
        network = _network(1, strand="-")
        rng = np.random.default_rng(29)
        codes = rng.integers(0, 4, 200).astype(np.uint8)
        got = sorted({p for p, _ in network.run(codes)})
        assert got == _row_positions(1, codes, strand="-")

    def test_genome_n_counts_as_mismatch(self):
        target = "N" + GUIDE.concrete_target()[1:]
        codes = alphabet.encode(target)
        assert {p for p, _ in _network(0).run(codes)} == set()
        assert {p for p, _ in _network(1).run(codes)} == {len(target) - 1}


class TestAnchoredMode:
    def test_verifies_window_at_origin_only(self):
        network = _network(1, streaming=False)
        target = GUIDE.concrete_target()
        codes = alphabet.encode(target + target)
        positions = {p for p, _ in network.run(codes)}
        assert positions == {len(target) - 1}  # only the anchored window

    def test_rejects_over_budget(self):
        target = list(GUIDE.concrete_target())
        target[2] = "A" if target[2] != "A" else "C"
        target[5] = "A" if target[5] != "A" else "C"
        codes = alphabet.encode("".join(target))
        assert list(_network(1, streaming=False).run(codes)) == []
        assert list(_network(2, streaming=False).run(codes))


class TestResources:
    def test_streaming_counts_match_builder(self):
        network = _network(2)
        predicted = counter_design_resources(13, 10, streaming=True)
        assert network.num_stes() == predicted["stes"]
        assert network.num_counters() == predicted["counters"]
        assert network.num_gates() == predicted["gates"]

    def test_anchored_counts_match_builder(self):
        network = _network(2, streaming=False)
        predicted = counter_design_resources(13, 10, streaming=False)
        assert network.num_stes() == predicted["stes"]
        assert network.num_counters() == predicted["counters"]

    def test_budget_independent(self):
        assert _network(0).num_elements == _network(5).num_elements

    def test_anchored_beats_rows_at_high_budget(self):
        # Counters win for candidate verification at wide budgets...
        anchored = counter_design_resources(23, 20, streaming=False)["stes"]
        rows = estimate_stes(20, 3, 5, both_strands=False)
        assert anchored < rows

    def test_rows_beat_streaming_counters(self):
        # ...but rows win for streaming search at practical budgets.
        streaming = counter_design_resources(23, 20, streaming=True)["stes"]
        for k in range(6):
            assert estimate_stes(20, 3, k, both_strands=False) < streaming

    def test_validation(self):
        with pytest.raises(CompileError):
            counter_design_resources(10, 11)
        with pytest.raises(CompileError):
            build_counter_design(_segments(GUIDE, reverse=False), -1, label="x")
