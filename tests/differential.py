"""Cross-engine differential harness.

One place for the oracle-comparison logic the suite used to duplicate
across ``test_parallel.py``, ``test_faults.py``, and ``test_chaos.py``:
every functional execution path — kernels, the chunked stream, the
sharded pool, the public search API — must produce **bit-identical**
results (same hits, positions, strands, mismatch counts, canonical
dedupe order) to the :class:`~repro.core.reference.NaiveSearcher`
ground truth.

The harness has three layers:

* ``run_engine(name, case)`` — execute one named engine on a
  :class:`DifferentialCase`; every engine returns a canonically sorted
  hit list, so exact ``==`` comparison checks order too.
* ``assert_engines_agree(case, engines=...)`` — run several engines on
  one case and assert bit-identity (exact list equality *and* the
  span multiset, so ordering bugs and boundary double-reports are
  both caught).
* ``differential_grid(...)`` / ``adversarial_chunk_length(...)`` —
  build the engine x genome x panel x budget sweep, including the
  adversarial chunk lengths (barely above the overlap, prime-sized,
  longer than the genome) that stress the block-boundary carry.
"""

from collections import Counter
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence as SequenceType

from repro import (
    NaiveSearcher,
    OffTargetSearch,
    ParallelSearch,
    SearchBudget,
    StreamingSearch,
    random_genome,
    sample_guides_from_genome,
)
from repro.core import bitparallel, matcher
from repro.genome.sequence import Sequence
from repro.grna.guide import Guide
from repro.grna.hit import OffTargetHit

from helpers import hit_multiset

#: Whole-genome kernels (no chunking involved).
KERNEL_ENGINES = ("naive", "matcher", "bitparallel")
#: Chunked/sharded/public paths (exercise the block-boundary carry).
CHUNKED_ENGINES = ("streaming", "streaming-matcher", "parallel", "search-api")
#: Every engine the harness can run.
ALL_ENGINES = KERNEL_ENGINES + CHUNKED_ENGINES

#: The ground truth everything else is pinned to.
ORACLE = "naive"


@dataclass(frozen=True)
class DifferentialCase:
    """One (genome, panel, budget) point of the differential grid."""

    genome: Sequence
    guides: tuple[Guide, ...]
    budget: SearchBudget
    chunk_length: Optional[int] = None  # None -> a default safely above overlap
    workers: int = 1
    label: str = ""

    @property
    def overlap(self) -> int:
        """The streaming/sharding overlap this case's panel derives."""
        return (
            max(g.site_length for g in self.guides)
            + self.budget.dna_bulges
            - 1
        )

    def resolved_chunk_length(self) -> int:
        if self.chunk_length is not None:
            return max(self.chunk_length, self.overlap + 1)
        return max(self.overlap + 1, 256)

    def describe(self) -> str:
        return (
            f"{self.label or self.genome.name}: {len(self.genome)} bp, "
            f"{len(self.guides)} guide(s), mm={self.budget.mismatches}, "
            f"chunk={self.resolved_chunk_length()}"
        )


def next_prime_above(n):
    """Smallest prime >= max(n, 2) — for never-divides chunk lengths."""
    candidate = max(n, 2)
    while any(candidate % p == 0 for p in range(2, int(candidate**0.5) + 1)):
        candidate += 1
    return candidate


def adversarial_chunk_length(overlap, total, choice):
    """Adversarial chunk lengths, scaled to the derived overlap.

    ``choice`` indexes a stable menu: the minimum legal chunk, one
    symbol of new content per chunk, a prime that never divides the
    genome, a chunk longer than the whole genome, and a fixed
    mid-sized prime.
    """
    options = [
        overlap + 1,
        overlap + 2,
        next_prime_above(overlap + 3),
        max(total, overlap + 1) + 7,
        61,
    ]
    length = options[choice % len(options)]
    return max(length, overlap + 1)


#: How many distinct adversarial chunk choices exist (for sweeps).
NUM_CHUNK_CHOICES = 5


def run_engine(name: str, case: DifferentialCase) -> list[OffTargetHit]:
    """Execute one named engine on *case*; canonically sorted hits."""
    genome, guides, budget = case.genome, list(case.guides), case.budget
    chunk = case.resolved_chunk_length()
    if name == "naive":
        return NaiveSearcher(budget).search(genome, guides)
    if name == "matcher":
        return matcher.find_hits(genome, guides, budget)
    if name == "bitparallel":
        return bitparallel.find_hits(genome, guides, budget)
    if name == "streaming":
        return StreamingSearch(guides, budget, chunk_length=chunk).search(genome)
    if name == "streaming-matcher":
        return StreamingSearch(
            guides, budget, chunk_length=chunk, kernel="matcher"
        ).search(genome)
    if name == "parallel":
        return ParallelSearch(
            guides,
            budget,
            workers=case.workers,
            chunk_length=chunk,
            backoff_seconds=0.0,
        ).search(genome)
    if name == "search-api":
        search = OffTargetSearch(guides, budget)
        if len(genome) == 0:
            return []
        return list(search.run(genome).hits)
    raise ValueError(f"unknown differential engine {name!r}; know {ALL_ENGINES}")


def assert_engines_agree(
    case: DifferentialCase,
    engines: SequenceType[str] = ALL_ENGINES,
    *,
    oracle: str = ORACLE,
) -> list[OffTargetHit]:
    """Run *engines* on *case*; assert each is bit-identical to *oracle*.

    Bit-identical means the exact same canonically-ordered hit list —
    positions, strands, mismatch counts, and dedupe order — plus the
    span multiset (which catches a path that double-reports a boundary
    site even if sorting would hide it). Returns the oracle hits so
    callers can make additional assertions.
    """
    expected = run_engine(oracle, case)
    expected_multiset = hit_multiset(expected)
    for name in engines:
        if name == oracle:
            continue
        actual = run_engine(name, case)
        assert hit_multiset(actual) == expected_multiset, (
            f"{name} != {oracle} (span multiset) on {case.describe()}"
        )
        assert actual == expected, (
            f"{name} != {oracle} (ordered hit list) on {case.describe()}"
        )
    return expected


@dataclass(frozen=True)
class GridSpec:
    """Parametrizes :func:`differential_grid`."""

    genome_lengths: tuple[int, ...] = (0, 90, 700, 2000)
    panel_sizes: tuple[int, ...] = (1, 3)
    mismatch_budgets: tuple[int, ...] = (0, 1, 2, 3)
    chunk_choices: tuple[int, ...] = (0, 2, 3)
    seed: int = 1729
    n_run_every: int = 3  # every n-th genome gets an N-run splice


def differential_grid(spec: GridSpec = GridSpec()) -> Iterator[DifferentialCase]:
    """Yield the engine-agnostic genome x panel x budget x chunk grid.

    Deterministic for a fixed spec (cases derive from ``spec.seed``);
    each case carries a label that names its grid coordinates, so a
    failure message pinpoints the configuration to replay.
    """
    case_index = 0
    for g_index, length in enumerate(spec.genome_lengths):
        genome = random_genome(
            max(length, 1), seed=spec.seed + g_index, name=f"chrGrid{g_index}"
        )
        if length == 0:
            genome = Sequence.from_text(f"chrGrid{g_index}", "")
        elif spec.n_run_every and g_index % spec.n_run_every == 1 and length > 60:
            # Splice an N-run mid-genome: ambiguity codes must stream
            # through every engine identically.
            text = genome.text
            mid = length // 2
            genome = Sequence.from_text(
                genome.name, text[:mid] + "N" * 9 + text[mid + 9 :]
            )
        # Short genomes cannot donate a whole panel of distinct guides;
        # sample those panels from a fixed donor instead (the guides
        # still scan the short genome, which is the point of the case).
        donor = genome if length >= 500 else random_genome(600, seed=spec.seed)
        for panel_size in spec.panel_sizes:
            guides = tuple(
                sample_guides_from_genome(
                    donor, panel_size, seed=spec.seed + 31 * case_index
                )
            )
            for mismatches in spec.mismatch_budgets:
                budget = SearchBudget(mismatches=mismatches)
                overlap = (
                    max(g.site_length for g in guides) + budget.dna_bulges - 1
                )
                for choice in spec.chunk_choices:
                    yield DifferentialCase(
                        genome=genome,
                        guides=guides,
                        budget=budget,
                        chunk_length=adversarial_chunk_length(
                            overlap, len(genome), choice
                        ),
                        label=(
                            f"grid[g={g_index},p={panel_size},"
                            f"mm={mismatches},c={choice}]"
                        ),
                    )
                case_index += 1


def case_from_seed(
    seed: int,
    *,
    genome_length: int = 3000,
    panel_size: int = 2,
    mismatches: int = 1,
    chunk_length: Optional[int] = None,
    workers: int = 1,
    name: str = "chrSeed",
) -> DifferentialCase:
    """One reproducible random case — the shape the ported suites use."""
    genome = random_genome(genome_length, seed=seed, name=name)
    guides = tuple(sample_guides_from_genome(genome, panel_size, seed=seed + 1))
    return DifferentialCase(
        genome=genome,
        guides=guides,
        budget=SearchBudget(mismatches=mismatches),
        chunk_length=chunk_length,
        workers=workers,
        label=f"seed={seed}",
    )


def oracle_hits(case: DifferentialCase) -> list[OffTargetHit]:
    """Ground-truth hits for *case* (convenience wrapper)."""
    return run_engine(ORACLE, case)


def duplicate_keys(hits) -> list:
    """Hit keys appearing more than once (should always be empty)."""
    counts = Counter(h.key for h in hits)
    return [key for key, count in counts.items() if count > 1]
