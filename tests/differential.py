"""Cross-engine differential harness.

One place for the oracle-comparison logic the suite used to duplicate
across ``test_parallel.py``, ``test_faults.py``, and ``test_chaos.py``:
every functional execution path — kernels, the chunked stream, the
sharded pool, the public search API — must produce **bit-identical**
results (same hits, positions, strands, mismatch counts, canonical
dedupe order) to the :class:`~repro.core.reference.NaiveSearcher`
ground truth.

The harness has three layers:

* ``run_engine(name, case)`` — execute one named engine on a
  :class:`DifferentialCase`; every engine returns a canonically sorted
  hit list, so exact ``==`` comparison checks order too.
* ``assert_engines_agree(case, engines=...)`` — run several engines on
  one case and assert bit-identity (exact list equality *and* the
  span multiset, so ordering bugs and boundary double-reports are
  both caught).
* ``differential_grid(...)`` / ``adversarial_chunk_length(...)`` —
  build the engine x genome x panel x budget sweep, including the
  adversarial chunk lengths (barely above the overlap, prime-sized,
  longer than the genome) that stress the block-boundary carry.
* ``bulged_differential_grid()`` / ``planted_bulge_cases()`` — the
  bulge-first layer: a grid sweep over (mismatch, rna, dna) budget
  shapes including saturating ones, plus deterministic constructed
  genomes with planted RNA/DNA bulges at the adversarial coordinates
  (straddling 64-bit word boundaries, at genome position 0, adjacent
  to the PAM, edit mixes that exactly saturate or exceed the budget).
"""

from collections import Counter
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence as SequenceType

from repro import (
    NaiveSearcher,
    OffTargetSearch,
    ParallelSearch,
    SearchBudget,
    StreamingSearch,
    random_genome,
    sample_guides_from_genome,
)
from repro import alphabet
from repro.core import bitparallel, matcher
from repro.genome.sequence import Sequence
from repro.grna.guide import Guide
from repro.grna.hit import OffTargetHit

from helpers import hit_multiset

#: Whole-genome kernels (no chunking involved).
KERNEL_ENGINES = ("naive", "matcher", "bitparallel")
#: Chunked/sharded/public paths (exercise the block-boundary carry).
CHUNKED_ENGINES = ("streaming", "streaming-matcher", "parallel", "search-api")
#: Every engine the harness can run.
ALL_ENGINES = KERNEL_ENGINES + CHUNKED_ENGINES

#: The ground truth everything else is pinned to.
ORACLE = "naive"


@dataclass(frozen=True)
class DifferentialCase:
    """One (genome, panel, budget) point of the differential grid."""

    genome: Sequence
    guides: tuple[Guide, ...]
    budget: SearchBudget
    chunk_length: Optional[int] = None  # None -> a default safely above overlap
    workers: int = 1
    label: str = ""

    @property
    def overlap(self) -> int:
        """The streaming/sharding overlap this case's panel derives."""
        return (
            max(g.site_length for g in self.guides)
            + self.budget.dna_bulges
            - 1
        )

    def resolved_chunk_length(self) -> int:
        if self.chunk_length is not None:
            return max(self.chunk_length, self.overlap + 1)
        return max(self.overlap + 1, 256)

    def describe(self) -> str:
        return (
            f"{self.label or self.genome.name}: {len(self.genome)} bp, "
            f"{len(self.guides)} guide(s), mm={self.budget.mismatches}, "
            f"chunk={self.resolved_chunk_length()}"
        )


def next_prime_above(n):
    """Smallest prime >= max(n, 2) — for never-divides chunk lengths."""
    candidate = max(n, 2)
    while any(candidate % p == 0 for p in range(2, int(candidate**0.5) + 1)):
        candidate += 1
    return candidate


def adversarial_chunk_length(overlap, total, choice):
    """Adversarial chunk lengths, scaled to the derived overlap.

    ``choice`` indexes a stable menu: the minimum legal chunk, one
    symbol of new content per chunk, a prime that never divides the
    genome, a chunk longer than the whole genome, and a fixed
    mid-sized prime.
    """
    options = [
        overlap + 1,
        overlap + 2,
        next_prime_above(overlap + 3),
        max(total, overlap + 1) + 7,
        61,
    ]
    length = options[choice % len(options)]
    return max(length, overlap + 1)


#: How many distinct adversarial chunk choices exist (for sweeps).
NUM_CHUNK_CHOICES = 5


def run_engine(name: str, case: DifferentialCase) -> list[OffTargetHit]:
    """Execute one named engine on *case*; canonically sorted hits."""
    genome, guides, budget = case.genome, list(case.guides), case.budget
    chunk = case.resolved_chunk_length()
    if name == "naive":
        return NaiveSearcher(budget).search(genome, guides)
    if name == "matcher":
        return matcher.find_hits(genome, guides, budget)
    if name == "bitparallel":
        return bitparallel.find_hits(genome, guides, budget)
    if name == "streaming":
        return StreamingSearch(guides, budget, chunk_length=chunk).search(genome)
    if name == "streaming-matcher":
        return StreamingSearch(
            guides, budget, chunk_length=chunk, kernel="matcher"
        ).search(genome)
    if name == "parallel":
        return ParallelSearch(
            guides,
            budget,
            workers=case.workers,
            chunk_length=chunk,
            backoff_seconds=0.0,
        ).search(genome)
    if name == "search-api":
        search = OffTargetSearch(guides, budget)
        if len(genome) == 0:
            return []
        return list(search.run(genome).hits)
    raise ValueError(f"unknown differential engine {name!r}; know {ALL_ENGINES}")


def assert_engines_agree(
    case: DifferentialCase,
    engines: SequenceType[str] = ALL_ENGINES,
    *,
    oracle: str = ORACLE,
) -> list[OffTargetHit]:
    """Run *engines* on *case*; assert each is bit-identical to *oracle*.

    Bit-identical means the exact same canonically-ordered hit list —
    positions, strands, mismatch counts, and dedupe order — plus the
    span multiset (which catches a path that double-reports a boundary
    site even if sorting would hide it). Returns the oracle hits so
    callers can make additional assertions.
    """
    expected = run_engine(oracle, case)
    expected_multiset = hit_multiset(expected)
    for name in engines:
        if name == oracle:
            continue
        actual = run_engine(name, case)
        assert hit_multiset(actual) == expected_multiset, (
            f"{name} != {oracle} (span multiset) on {case.describe()}"
        )
        assert actual == expected, (
            f"{name} != {oracle} (ordered hit list) on {case.describe()}"
        )
    return expected


@dataclass(frozen=True)
class GridSpec:
    """Parametrizes :func:`differential_grid`."""

    genome_lengths: tuple[int, ...] = (0, 90, 700, 2000)
    panel_sizes: tuple[int, ...] = (1, 3)
    mismatch_budgets: tuple[int, ...] = (0, 1, 2, 3)
    chunk_choices: tuple[int, ...] = (0, 2, 3)
    seed: int = 1729
    n_run_every: int = 3  # every n-th genome gets an N-run splice
    #: (rna_bulges, dna_bulges) shapes crossed with every mismatch
    #: budget; the default keeps the classic mismatch-only grid.
    bulge_shapes: tuple[tuple[int, int], ...] = ((0, 0),)


#: The bulge-first sweep: every budget shape the banded engines
#: distinguish (RNA-only, DNA-only, both, deep), crossed with
#: mismatch budgets 0-2 so ``mismatches + bulges`` saturates at both
#: ends. Sized so the naive oracle stays fast enough for the 2-core
#: CI job.
BULGED_GRID_SPEC = GridSpec(
    genome_lengths=(0, 90, 700),
    panel_sizes=(1,),
    mismatch_budgets=(0, 1, 2),
    chunk_choices=(0, 3),
    bulge_shapes=((1, 0), (0, 1), (1, 1), (2, 1)),
)


def differential_grid(spec: GridSpec = GridSpec()) -> Iterator[DifferentialCase]:
    """Yield the engine-agnostic genome x panel x budget x chunk grid.

    Deterministic for a fixed spec (cases derive from ``spec.seed``);
    each case carries a label that names its grid coordinates, so a
    failure message pinpoints the configuration to replay.
    """
    case_index = 0
    for g_index, length in enumerate(spec.genome_lengths):
        genome = random_genome(
            max(length, 1), seed=spec.seed + g_index, name=f"chrGrid{g_index}"
        )
        if length == 0:
            genome = Sequence.from_text(f"chrGrid{g_index}", "")
        elif spec.n_run_every and g_index % spec.n_run_every == 1 and length > 60:
            # Splice an N-run mid-genome: ambiguity codes must stream
            # through every engine identically.
            text = genome.text
            mid = length // 2
            genome = Sequence.from_text(
                genome.name, text[:mid] + "N" * 9 + text[mid + 9 :]
            )
        # Short genomes cannot donate a whole panel of distinct guides;
        # sample those panels from a fixed donor instead (the guides
        # still scan the short genome, which is the point of the case).
        donor = genome if length >= 500 else random_genome(600, seed=spec.seed)
        for panel_size in spec.panel_sizes:
            guides = tuple(
                sample_guides_from_genome(
                    donor, panel_size, seed=spec.seed + 31 * case_index
                )
            )
            for mismatches in spec.mismatch_budgets:
                for rna, dna in spec.bulge_shapes:
                    budget = SearchBudget(
                        mismatches=mismatches, rna_bulges=rna, dna_bulges=dna
                    )
                    overlap = (
                        max(g.site_length for g in guides)
                        + budget.dna_bulges
                        - 1
                    )
                    shape = f",r={rna},d={dna}" if (rna, dna) != (0, 0) else ""
                    for choice in spec.chunk_choices:
                        yield DifferentialCase(
                            genome=genome,
                            guides=guides,
                            budget=budget,
                            chunk_length=adversarial_chunk_length(
                                overlap, len(genome), choice
                            ),
                            label=(
                                f"grid[g={g_index},p={panel_size},"
                                f"mm={mismatches}{shape},c={choice}]"
                            ),
                        )
                case_index += 1


def case_from_seed(
    seed: int,
    *,
    genome_length: int = 3000,
    panel_size: int = 2,
    mismatches: int = 1,
    rna_bulges: int = 0,
    dna_bulges: int = 0,
    chunk_length: Optional[int] = None,
    workers: int = 1,
    name: str = "chrSeed",
) -> DifferentialCase:
    """One reproducible random case — the shape the ported suites use."""
    genome = random_genome(genome_length, seed=seed, name=name)
    guides = tuple(sample_guides_from_genome(genome, panel_size, seed=seed + 1))
    return DifferentialCase(
        genome=genome,
        guides=guides,
        budget=SearchBudget(
            mismatches=mismatches,
            rna_bulges=rna_bulges,
            dna_bulges=dna_bulges,
        ),
        chunk_length=chunk_length,
        workers=workers,
        label=f"seed={seed}",
    )


def bulged_differential_grid() -> Iterator[DifferentialCase]:
    """The bulge-shape grid sweep (:data:`BULGED_GRID_SPEC`)."""
    return differential_grid(BULGED_GRID_SPEC)


# -- planted-bulge adversaries -------------------------------------------------

#: The guide every planted case targets (NGG PAM; interior positions of
#: its 20-mer protospacer are 1..18 for RNA bulges, 1..19 for DNA).
PLANT_GUIDE = Guide("plantEMX1", "GAGTCCGAGCAGAAGAAGAA")

#: Concrete PAM used when planting sites (satisfies NGG).
_PLANT_PAM = "AGG"

#: PAM-free filler: no G or C, so neither strand can form an NGG/CCN
#: PAM inside it — every hit in a planted genome involves the plant.
_FILLER = "AT"


def _rna_bulged_site(skip: int) -> str:
    """A genomic site missing protospacer position *skip* (RNA bulge)."""
    proto = PLANT_GUIDE.protospacer
    return proto[:skip] + proto[skip + 1 :] + _PLANT_PAM


def _dna_bulged_site(insert: int, base: str) -> str:
    """A genomic site with *base* inserted before protospacer position
    *insert* (DNA bulge)."""
    proto = PLANT_GUIDE.protospacer
    return proto[:insert] + base + proto[insert:] + _PLANT_PAM


def _substituted(site: str, index: int) -> str:
    """Flip one base of *site* (A<->C, otherwise ->A)."""
    flip = "C" if site[index] == "A" else "A"
    return site[:index] + flip + site[index + 1 :]


def _planted_genome(name: str, site: str, offset: int, length: int = 230) -> Sequence:
    """PAM-free filler with *site* spliced in at *offset*."""
    filler = _FILLER * length
    right = max(length - offset - len(site), 0)
    return Sequence.from_text(name, filler[:offset] + site + filler[:right])


def planted_bulge_cases() -> Iterator[DifferentialCase]:
    """Deterministic bulge-adversarial cases for the full engine sweep.

    Every case plants one edited site of :data:`PLANT_GUIDE` into
    PAM-free filler at a chosen genome offset and pairs it with the
    minimum-legal chunk length, so the chunked engines slice straight
    through the planted site. The coordinates are the known sharp
    edges of the banded kernel: bulges whose site straddles a 64-bit
    word boundary, sites at genome position 0, bulges adjacent to the
    PAM, bulges at protospacer position 0 (where the interior-only
    rule forbids the bulge reading), and edit mixes that exactly
    saturate — or exceed by one — the budget. The naive oracle decides
    the truth; the sweep pins that all engines agree with it.
    """
    proto = PLANT_GUIDE.protospacer
    m = len(proto)
    # sub + RNA bulge + DNA bulge in one site: delete interior
    # protospacer position 2, insert a C before (original) position 10,
    # then flip one base well away from both edits.
    mixed = list(proto)
    del mixed[2]
    mixed.insert(9, "C")
    saturating = _substituted("".join(mixed) + _PLANT_PAM, 15)
    over_budget = _substituted(saturating, 6)
    entries: list[tuple[str, str, int, SearchBudget]] = [
        # One RNA bulge, site straddling the first 64-bit word boundary.
        ("rna-word-straddle", _rna_bulged_site(1), 55, SearchBudget(0, 1, 0)),
        # One RNA bulge straddling the second word boundary (bit 128).
        ("rna-word-straddle-128", _rna_bulged_site(9), 118, SearchBudget(1, 1, 0)),
        # RNA bulge dropped from the last interior position (PAM-adjacent).
        ("rna-pam-adjacent", _rna_bulged_site(m - 2), 100, SearchBudget(0, 1, 0)),
        # Deleting position 0 is NOT an interior RNA bulge; engines must
        # agree on whatever reading (if any) the budget still allows.
        ("rna-position0", _rna_bulged_site(0), 40, SearchBudget(1, 1, 0)),
        # RNA-bulged site at genome position 0 (no left context at all).
        ("rna-at-genome-start", _rna_bulged_site(1), 0, SearchBudget(0, 1, 0)),
        # One DNA bulge, site straddling the first word boundary.
        ("dna-word-straddle", _dna_bulged_site(1, "C"), 55, SearchBudget(0, 0, 1)),
        # DNA bulge inserted just before the PAM (i = m - 1).
        ("dna-pam-adjacent", _dna_bulged_site(m - 1, "C"), 100, SearchBudget(0, 0, 1)),
        # DNA-bulged site at genome position 0.
        ("dna-at-genome-start", _dna_bulged_site(1, "C"), 0, SearchBudget(0, 0, 1)),
        # The same planted bulge presented on the minus strand.
        (
            "dna-minus-strand",
            alphabet.reverse_complement(_dna_bulged_site(1, "C")),
            60,
            SearchBudget(0, 0, 1),
        ),
        # sub + RNA bulge + DNA bulge: exactly saturates mm=1,r=1,d=1.
        ("saturating-mix", saturating, 70, SearchBudget(1, 1, 1)),
        # One extra substitution: exceeds the saturating budget by one.
        ("over-budget-mix", over_budget, 70, SearchBudget(1, 1, 1)),
        # Bulge budgets larger than the edits present (headroom case).
        ("deep-budget-headroom", _rna_bulged_site(5), 90, SearchBudget(2, 2, 2)),
    ]
    for label, site, offset, budget in entries:
        overlap = PLANT_GUIDE.site_length + budget.dna_bulges - 1
        yield DifferentialCase(
            genome=_planted_genome(f"chrPlant_{label}", site, offset),
            guides=(PLANT_GUIDE,),
            budget=budget,
            chunk_length=overlap + 1,
            label=f"plant[{label}]",
        )


# -- prover-seeded counterexamples ---------------------------------------------


def case_from_counterexample(
    guide: Guide,
    budget: SearchBudget,
    word: str,
    *,
    label: str = "",
) -> DifferentialCase:
    """Plant an equivalence-prover counterexample as a differential case.

    When ``repro.check.prove`` refutes a compiled automaton, its EQV001
    finding carries the shortest genome input on which the automaton
    and the budget semantics disagree. Feeding that word through this
    helper turns the refutation into a permanent cross-engine
    regression: the word becomes the whole genome, the refuted guide
    the whole panel, and the minimum-legal chunk length slices straight
    through the disagreement position.
    """
    case = DifferentialCase(
        genome=Sequence.from_text(f"chrProver_{label or 'witness'}", word),
        guides=(guide,),
        budget=budget,
        label=f"prover[{label or word}]",
    )
    return DifferentialCase(
        genome=case.genome,
        guides=case.guides,
        budget=case.budget,
        chunk_length=case.overlap + 1,
        label=case.label,
    )


#: Counterexamples the prover has extracted, planted permanently.
#: Each entry is (guide, budget, witness word, label). The list is
#: empty while every compiled automaton proves equal — the mutation
#: tests in test_prove.py verify the plumbing stays live by planting
#: witnesses extracted from deliberately corrupted automata.
PROVER_SEEDED_CASES: tuple[DifferentialCase, ...] = ()


def oracle_hits(case: DifferentialCase) -> list[OffTargetHit]:
    """Ground-truth hits for *case* (convenience wrapper)."""
    return run_engine(ORACLE, case)


def duplicate_keys(hits) -> list:
    """Hit keys appearing more than once (should always be empty)."""
    counts = Counter(h.key for h in hits)
    return [key for key, count in counts.items() if count > 1]
