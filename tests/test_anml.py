"""Unit tests for repro.automata.anml."""

import numpy as np
import pytest

from repro import alphabet
from repro.automata.anml import from_anml, to_anml
from repro.automata.charclass import CharClass
from repro.automata.homogeneous import HomogeneousAutomaton, StartMode
from repro.core.compiler import SearchBudget, compile_guide
from repro.errors import AutomatonError
from repro.grna.guide import Guide


def _sample_automaton():
    automaton = HomogeneousAutomaton()
    a = automaton.add_ste(CharClass.of("A"), start=StartMode.ALL_INPUT)
    b = automaton.add_ste(CharClass.of("CG"), reports=("hit",))
    automaton.connect(a, b)
    return automaton


def test_roundtrip_structure():
    automaton = _sample_automaton()
    back = from_anml(to_anml(automaton))
    assert back.num_stes == 2
    assert back.num_edges == 1
    assert back.ste(0).start is StartMode.ALL_INPUT
    assert back.ste(0).char_class == CharClass.of("A")
    assert back.ste(1).reports == ("'hit'",)


def test_roundtrip_preserves_behaviour():
    guide = Guide("g", "ACGTACGTACGTACGTACGT")
    compiled = compile_guide(guide, SearchBudget(mismatches=1))
    original = compiled.homogeneous
    back = from_anml(to_anml(original))
    rng = np.random.default_rng(9)
    codes = rng.integers(0, 4, 300).astype(np.uint8)
    original_cycles = sorted(cycle for cycle, _ in original.run(codes))
    back_cycles = sorted(cycle for cycle, _ in back.run(codes))
    assert original_cycles == back_cycles


def test_xml_shape():
    xml = to_anml(_sample_automaton(), network_id="net42")
    assert 'id="net42"' in xml
    assert 'symbol-set="A"' in xml
    assert "activate-on-match" in xml
    assert "report-on-match" in xml


def test_file_roundtrip(tmp_path):
    path = tmp_path / "net.anml"
    path.write_text(to_anml(_sample_automaton()))
    back = from_anml(path)
    assert back.num_stes == 2


def test_malformed_xml_rejected():
    with pytest.raises(AutomatonError):
        from_anml("<anml><unclosed>")


def test_missing_network_rejected():
    with pytest.raises(AutomatonError):
        from_anml("<anml></anml>")


def test_unknown_start_mode_rejected():
    xml = (
        '<anml><automata-network id="x">'
        '<state-transition-element id="a" symbol-set="A" start="sometimes"/>'
        "</automata-network></anml>"
    )
    with pytest.raises(AutomatonError):
        from_anml(xml)


def test_output_is_deterministic():
    guide = Guide("g", "ACGTACGTACGTACGTACGT")
    first = to_anml(compile_guide(guide, SearchBudget(mismatches=2)).homogeneous)
    second = to_anml(compile_guide(guide, SearchBudget(mismatches=2)).homogeneous)
    assert first == second


def test_roundtrip_preserves_ids_classes_and_wiring():
    guide = Guide("g", "ACGTACGTACGTACGTACGT")
    original = compile_guide(guide, SearchBudget(mismatches=2)).homogeneous
    back = from_anml(to_anml(original))
    assert back.num_stes == original.num_stes
    assert back.num_edges == original.num_edges
    for ste_id in range(original.num_stes):
        assert back.ste(ste_id).char_class == original.ste(ste_id).char_class
        assert back.ste(ste_id).start is original.ste(ste_id).start
        assert sorted(back.successors(ste_id)) == sorted(original.successors(ste_id))


def test_roundtrip_preserves_report_codes():
    automaton = HomogeneousAutomaton()
    a = automaton.add_ste(CharClass.of("A"), start=StartMode.ALL_INPUT)
    b = automaton.add_ste(CharClass.of("C"), reports=("first", "second"))
    automaton.connect(a, b)
    back = from_anml(to_anml(automaton))
    # Report labels round-trip as their string serialisations, in order.
    assert back.ste(1).reports == ("'first'", "'second'")
    assert back.ste(0).reports == ()


def test_permissive_load_admits_empty_symbol_set():
    xml = (
        '<anml><automata-network id="x">'
        '<state-transition-element id="a" symbol-set="" start="all-input"/>'
        "</automata-network></anml>"
    )
    with pytest.raises(AutomatonError):
        from_anml(xml)
    automaton = from_anml(xml, strict=False)
    assert automaton.num_stes == 1
    assert not automaton.ste(0).char_class


def test_dangling_edge_rejected():
    xml = (
        '<anml><automata-network id="x">'
        '<state-transition-element id="a" symbol-set="A" start="none">'
        '<activate-on-match element="ghost"/>'
        "</state-transition-element>"
        "</automata-network></anml>"
    )
    with pytest.raises(AutomatonError):
        from_anml(xml)
