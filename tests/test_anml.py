"""Unit tests for repro.automata.anml."""

import numpy as np
import pytest

from repro import alphabet
from repro.automata.anml import from_anml, to_anml
from repro.automata.charclass import CharClass
from repro.automata.homogeneous import HomogeneousAutomaton, StartMode
from repro.core.compiler import SearchBudget, compile_guide
from repro.errors import AutomatonError
from repro.grna.guide import Guide


def _sample_automaton():
    automaton = HomogeneousAutomaton()
    a = automaton.add_ste(CharClass.of("A"), start=StartMode.ALL_INPUT)
    b = automaton.add_ste(CharClass.of("CG"), reports=("hit",))
    automaton.connect(a, b)
    return automaton


def test_roundtrip_structure():
    automaton = _sample_automaton()
    back = from_anml(to_anml(automaton))
    assert back.num_stes == 2
    assert back.num_edges == 1
    assert back.ste(0).start is StartMode.ALL_INPUT
    assert back.ste(0).char_class == CharClass.of("A")
    assert back.ste(1).reports == ("'hit'",)


def test_roundtrip_preserves_behaviour():
    guide = Guide("g", "ACGTACGTACGTACGTACGT")
    compiled = compile_guide(guide, SearchBudget(mismatches=1))
    original = compiled.homogeneous
    back = from_anml(to_anml(original))
    rng = np.random.default_rng(9)
    codes = rng.integers(0, 4, 300).astype(np.uint8)
    original_cycles = sorted(cycle for cycle, _ in original.run(codes))
    back_cycles = sorted(cycle for cycle, _ in back.run(codes))
    assert original_cycles == back_cycles


def test_xml_shape():
    xml = to_anml(_sample_automaton(), network_id="net42")
    assert 'id="net42"' in xml
    assert 'symbol-set="A"' in xml
    assert "activate-on-match" in xml
    assert "report-on-match" in xml


def test_file_roundtrip(tmp_path):
    path = tmp_path / "net.anml"
    path.write_text(to_anml(_sample_automaton()))
    back = from_anml(path)
    assert back.num_stes == 2


def test_malformed_xml_rejected():
    with pytest.raises(AutomatonError):
        from_anml("<anml><unclosed>")


def test_missing_network_rejected():
    with pytest.raises(AutomatonError):
        from_anml("<anml></anml>")


def test_unknown_start_mode_rejected():
    xml = (
        '<anml><automata-network id="x">'
        '<state-transition-element id="a" symbol-set="A" start="sometimes"/>'
        "</automata-network></anml>"
    )
    with pytest.raises(AutomatonError):
        from_anml(xml)


def test_dangling_edge_rejected():
    xml = (
        '<anml><automata-network id="x">'
        '<state-transition-element id="a" symbol-set="A" start="none">'
        '<activate-on-match element="ghost"/>'
        "</state-transition-element>"
        "</automata-network></anml>"
    )
    with pytest.raises(AutomatonError):
        from_anml(xml)
