"""Unit tests for the platform models (spec, timing, resources, reporting)."""

import pytest

from repro import SearchBudget
from repro.core.compiler import compile_guide
from repro.errors import PlatformError
from repro.grna.guide import Guide
from repro.platforms.reporting import ReportCostModel, ReportTraffic
from repro.platforms.resources import (
    estimate_nfa_states,
    estimate_stes,
    expected_activity,
    fpga_luts_for,
    guides_per_pass,
)
from repro.platforms.spec import (
    DEVICES,
    ApSpec,
    CasotSpec,
    CpuSpec,
    FpgaSpec,
    GpuNfaSpec,
    device,
)
from repro.platforms.timing import (
    TimingBreakdown,
    WorkloadProfile,
    ap_time,
    cas_offinder_time,
    casot_time,
    expected_casot_candidates,
    fpga_time,
    hyperscan_time,
    infant2_time,
)


def _profile(**overrides):
    fields = dict(
        genome_length=1_000_000,
        num_guides=10,
        site_length=23,
        total_stes=3000,
        total_transitions=5000,
        expected_active=50.0,
        report_traffic=ReportTraffic(events=100, cycles_with_reports=90),
        seed_candidates=10000,
    )
    fields.update(overrides)
    return WorkloadProfile(**fields)


class TestSpecs:
    def test_catalog_complete(self):
        assert len(DEVICES) == 6

    def test_device_lookup(self):
        assert isinstance(device("ap-d480-board"), ApSpec)

    def test_device_unknown(self):
        with pytest.raises(PlatformError):
            device("abacus")

    def test_ap_capacity(self):
        spec = ApSpec()
        assert spec.capacity_stes == int(49152 * 8 * 4 * 0.5)


class TestTimingModels:
    def test_ap_single_pass(self):
        breakdown = ap_time(_profile(), ApSpec())
        assert breakdown.passes == 1
        assert breakdown.kernel_seconds == pytest.approx(1_000_000 / 133e6)

    def test_ap_multi_pass(self):
        spec = ApSpec()
        breakdown = ap_time(_profile(total_stes=spec.capacity_stes * 2 + 1), spec)
        assert breakdown.passes == 3
        assert breakdown.kernel_seconds == pytest.approx(3 * 1_000_000 / 133e6)
        assert breakdown.setup_seconds == pytest.approx(3 * spec.config_seconds_per_pass)

    def test_fpga_kernel_slower_than_ap(self):
        profile = _profile()
        assert (
            fpga_time(profile, FpgaSpec()).kernel_seconds
            > ap_time(profile, ApSpec()).kernel_seconds
        )

    def test_ap_fpga_kernel_ratio_near_1p5(self):
        profile = _profile()
        ratio = (
            fpga_time(profile, FpgaSpec()).kernel_seconds
            / ap_time(profile, ApSpec()).kernel_seconds
        )
        assert 1.4 < ratio < 1.6

    def test_spatial_times_flat_in_activity(self):
        # Spatial platforms do not care how many states are active.
        low = ap_time(_profile(expected_active=1.0), ApSpec())
        high = ap_time(_profile(expected_active=1000.0), ApSpec())
        assert low.kernel_seconds == high.kernel_seconds

    def test_hyperscan_scales_with_activity(self):
        low = hyperscan_time(_profile(expected_active=10.0), CpuSpec())
        high = hyperscan_time(_profile(expected_active=100.0), CpuSpec())
        assert high.kernel_seconds == pytest.approx(10 * low.kernel_seconds)

    def test_hyperscan_floor_rate(self):
        spec = CpuSpec()
        breakdown = hyperscan_time(_profile(expected_active=0.001), spec)
        assert breakdown.kernel_seconds == pytest.approx(1_000_000 / spec.max_scan_rate)

    def test_infant2_sync_floor(self):
        spec = GpuNfaSpec()
        breakdown = infant2_time(_profile(expected_active=0.0), spec)
        assert breakdown.kernel_seconds >= 1_000_000 * spec.sync_seconds_per_symbol

    def test_infant2_spill_penalty(self):
        spec = GpuNfaSpec()
        resident = infant2_time(_profile(), spec)
        spilled = infant2_time(
            _profile(total_transitions=spec.table_capacity_transitions + 1), spec
        )
        assert spilled.kernel_seconds > resident.kernel_seconds

    def test_infant2_requires_network(self):
        with pytest.raises(PlatformError):
            infant2_time(_profile(total_stes=0), GpuNfaSpec())

    def test_cas_offinder_near_flat_in_small_batches(self):
        # Streaming dominates: 10 guides cost barely more than 1.
        one = cas_offinder_time(_profile(num_guides=1), DEVICES["gpu-cas-offinder"])
        ten = cas_offinder_time(_profile(num_guides=10), DEVICES["gpu-cas-offinder"])
        assert one.kernel_seconds < ten.kernel_seconds < 1.1 * one.kernel_seconds

    def test_cas_offinder_compare_term_emerges_at_scale(self):
        small = cas_offinder_time(_profile(num_guides=10), DEVICES["gpu-cas-offinder"])
        huge = cas_offinder_time(_profile(num_guides=100_000), DEVICES["gpu-cas-offinder"])
        assert huge.kernel_seconds > 2 * small.kernel_seconds

    def test_casot_scales_with_candidates(self):
        few = casot_time(_profile(seed_candidates=10), CasotSpec())
        many = casot_time(_profile(seed_candidates=10**6), CasotSpec())
        assert many.kernel_seconds > few.kernel_seconds

    def test_breakdown_totals(self):
        breakdown = TimingBreakdown("x", setup_seconds=1.0, kernel_seconds=2.0, report_seconds=0.5)
        assert breakdown.total_seconds == 3.5
        assert breakdown.kernel_with_reports_seconds == 2.5

    def test_expected_casot_candidates_explodes_with_k(self):
        counts = [
            expected_casot_candidates(3_100_000_000, 10, 20, k) for k in range(6)
        ]
        assert all(b > a for a, b in zip(counts, counts[1:]))
        assert counts[5] > 100 * counts[1]


class TestReporting:
    def test_no_stalls_under_buffer(self):
        model = ReportCostModel(buffer_entries=100, drain_cycles=50)
        assert model.stall_cycles(ReportTraffic(events=99, cycles_with_reports=99)) == 0

    def test_stalls_per_fill(self):
        model = ReportCostModel(buffer_entries=10, drain_cycles=50)
        assert model.stall_cycles(ReportTraffic(events=35, cycles_with_reports=35)) == 150

    def test_coalescing_uses_cycles(self):
        model = ReportCostModel(buffer_entries=10, drain_cycles=50, coalesce=True)
        traffic = ReportTraffic(events=100, cycles_with_reports=10)
        assert model.recorded_entries(traffic) == 10
        assert model.stall_cycles(traffic) == 50

    def test_with_coalescing(self):
        model = ReportCostModel(buffer_entries=10, drain_cycles=50)
        assert model.with_coalescing().coalesce is True

    def test_traffic_validation(self):
        with pytest.raises(PlatformError):
            ReportTraffic(events=-1, cycles_with_reports=0)
        with pytest.raises(PlatformError):
            ReportTraffic(events=1, cycles_with_reports=2)

    def test_model_validation(self):
        with pytest.raises(PlatformError):
            ReportCostModel(buffer_entries=0, drain_cycles=1)


class TestResources:
    def test_nfa_estimate_matches_compiled_mismatch_only(self):
        guide = Guide("g", "ACGTACGTACGTACGTACGT")
        for k in (0, 1, 3, 5):
            compiled = compile_guide(guide, SearchBudget(mismatches=k))
            predicted = estimate_nfa_states(20, 3, k)
            assert compiled.forward.num_states == predicted

    def test_nfa_estimate_matches_compiled_bulged(self):
        guide = Guide("g", "ACGTACGTACGTACGTACGT")
        for rna, dna in ((1, 0), (0, 1), (1, 1), (2, 1)):
            compiled = compile_guide(
                guide, SearchBudget(mismatches=1, rna_bulges=rna, dna_bulges=dna)
            )
            predicted = estimate_nfa_states(20, 3, 1, rna, dna)
            assert compiled.forward.num_states == predicted

    def test_ste_estimate_matches_conversion_mismatch_only(self):
        guide = Guide("g", "ACGTACGTACGTACGTACGT")
        for k in (0, 1, 2, 4):
            compiled = compile_guide(guide, SearchBudget(mismatches=k))
            assert compiled.num_stes == estimate_stes(20, 3, k)

    def test_ste_estimate_bulged_is_upper_bound(self):
        guide = Guide("g", "ACGTACGTACGTACGTACGT")
        compiled = compile_guide(
            guide, SearchBudget(mismatches=1, rna_bulges=1, dna_bulges=1)
        )
        assert compiled.num_stes <= estimate_stes(20, 3, 1, 1, 1)

    def test_estimates_grow_with_budget(self):
        sizes = [estimate_stes(20, 3, k) for k in range(6)]
        assert all(b > a for a, b in zip(sizes, sizes[1:]))

    def test_fpga_luts(self):
        spec = FpgaSpec()
        assert fpga_luts_for(1000, spec) == int(1000 * spec.luts_per_ste)

    def test_guides_per_pass(self):
        assert guides_per_pass(300, ApSpec()) == ApSpec().capacity_stes // 300
        assert guides_per_pass(10**9, ApSpec()) == 1

    def test_guides_per_pass_validation(self):
        with pytest.raises(PlatformError):
            guides_per_pass(0, ApSpec())
        with pytest.raises(PlatformError):
            guides_per_pass(10, CpuSpec())

    def test_negative_sizes_rejected(self):
        with pytest.raises(PlatformError):
            estimate_nfa_states(-1, 3, 1)


class TestExpectedActivity:
    def test_positive_and_bounded(self, compiled_library):
        activity = expected_activity(compiled_library.homogeneous)
        assert 0 < activity < compiled_library.num_stes

    def test_grows_with_budget(self):
        guide = Guide("g", "ACGTACGTACGTACGTACGT")
        low = expected_activity(
            compile_guide(guide, SearchBudget(mismatches=1)).homogeneous
        )
        high = expected_activity(
            compile_guide(guide, SearchBudget(mismatches=4)).homogeneous
        )
        assert high > low

    def test_matches_simulation(self, small_genome):
        # The analytic activity should approximate measured mean active
        # STEs on random input.
        guide = Guide("g", "ACGTACGTACGTACGTACGT")
        compiled = compile_guide(guide, SearchBudget(mismatches=2))
        predicted = expected_activity(
            compiled.homogeneous, gc_content=small_genome.gc_fraction()
        )
        _, stats = compiled.homogeneous.run_with_stats(small_genome.codes[:3000])
        assert stats.mean_active == pytest.approx(predicted, rel=0.25)
