"""Tests for the batch-serving layer (`repro.service`).

The load-bearing property is the **differential guarantee**: for any
interleaving of concurrent requests, each request's demultiplexed hit
tuple is bit-identical to a solo :class:`OffTargetSearch` run of the
same (guides, budget, genome). Everything else — coalescing counters,
admission control, capacity splitting, graceful overload — is pinned
around that invariant with a deterministic scheduler (``background=
False`` + explicit ``flush()``), so no test depends on timing.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import (
    Guide,
    OffTargetSearch,
    OffTargetService,
    SearchBudget,
    random_genome,
    sample_guides_from_genome,
)
from repro.core.compiler import compile_guide
from repro.errors import (
    CapacityError,
    DeadlineExceededError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.platforms.spec import ApSpec
from repro.service import QueryRequest, SessionRegistry
from repro.service.scheduler import make_requests

CHUNK = 1 << 12  # force several chunks even on the 5 kbp test genome


def make_service(**kwargs):
    kwargs.setdefault("background", False)
    kwargs.setdefault("chunk_length", CHUNK)
    return OffTargetService(**kwargs)


def oracle_hits(guides, budget, genome):
    """The solo serial run every service result must equal bit-for-bit."""
    return OffTargetSearch(guides, budget).run(genome).hits


@pytest.fixture(scope="module")
def pool(small_genome):
    """Six guides sampled from the shared 5 kbp genome."""
    return tuple(sample_guides_from_genome(small_genome, 6, seed=29))


class TestDifferentialGuarantee:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_interleaved_requests_match_solo_runs(self, small_genome, pool, seed):
        """Random overlapping guide mixes, one coalesced flush, exact demux."""
        rng = np.random.default_rng(seed)
        budget = SearchBudget(mismatches=2)
        mixes = []
        for _ in range(5):
            count = int(rng.integers(1, len(pool) + 1))
            indices = rng.choice(len(pool), size=count, replace=False)
            mixes.append(tuple(pool[i] for i in sorted(indices)))
        with make_service() as service:
            service.add_genome("default", small_genome)
            futures = [service.query_async(mix, budget) for mix in mixes]
            assert service.flush() == len(mixes)
            for mix, future in zip(mixes, futures):
                assert future.result().hits == oracle_hits(mix, budget, small_genome)

    def test_results_independent_of_batching(self, small_genome, pool):
        """The same requests, coalesced vs flushed one by one: identical."""
        budget = SearchBudget(mismatches=2)
        mixes = [pool[:3], pool[2:5], pool[1:2]]
        with make_service() as coalesced:
            coalesced.add_genome("default", small_genome)
            futures = [coalesced.query_async(mix, budget) for mix in mixes]
            coalesced.flush()
            together = [future.result().hits for future in futures]
        with make_service() as solo:
            solo.add_genome("default", small_genome)
            alone = [solo.query(mix, budget).hits for mix in mixes]
        assert together == alone
        for mix, hits in zip(mixes, together):
            assert hits == oracle_hits(mix, budget, small_genome)

    def test_same_content_different_names_share_one_scan(self, small_genome, pool):
        """Two clients naming the same sequence differently both demux right."""
        budget = SearchBudget(mismatches=2)
        original = pool[0]
        renamed = Guide("client2-alias", original.protospacer, original.pam)
        with make_service() as service:
            service.add_genome("default", small_genome)
            future_a = service.query_async((original,), budget)
            future_b = service.query_async((renamed,), budget)
            service.flush()
            hits_a = future_a.result().hits
            hits_b = future_b.result().hits
        assert hits_a == oracle_hits((original,), budget, small_genome)
        assert hits_b == oracle_hits((renamed,), budget, small_genome)
        assert {hit.guide_name for hit in hits_a} <= {original.name}
        assert {hit.guide_name for hit in hits_b} <= {renamed.name}
        # one compiled artefact served both requests
        spans = lambda hits: {(h.strand, h.start, h.end, h.mismatches) for h in hits}
        assert spans(hits_a) == spans(hits_b)

    def test_bulged_budget_demultiplexes_exactly(self, small_genome, pool):
        budget = SearchBudget(mismatches=1, rna_bulges=1, dna_bulges=1)
        mixes = [pool[:2], pool[1:3]]
        with make_service() as service:
            service.add_genome("default", small_genome)
            futures = [service.query_async(mix, budget) for mix in mixes]
            service.flush()
            for mix, future in zip(mixes, futures):
                assert future.result().hits == oracle_hits(mix, budget, small_genome)

    def test_multi_sequence_session(self, pool):
        chr1 = random_genome(3000, seed=41, name="chrA")
        chr2 = random_genome(2000, seed=42, name="chrB")
        budget = SearchBudget(mismatches=2)
        with make_service() as service:
            service.add_genome("default", [chr1, chr2])
            result = service.query(pool[:3], budget)
        assert result.hits == OffTargetSearch(pool[:3], budget).run([chr1, chr2]).hits

    def test_pooled_workers_match_serial(self, small_genome, pool):
        budget = SearchBudget(mismatches=2)
        with make_service(workers=2) as service:
            service.add_genome("default", small_genome)
            result = service.query(pool[:4], budget)
        assert result.hits == oracle_hits(pool[:4], budget, small_genome)


class TestCoalescing:
    def test_one_flush_one_batch_one_pass(self, small_genome, pool):
        budget = SearchBudget(mismatches=2)
        with make_service() as service:
            service.add_genome("default", small_genome)
            for mix in (pool[:2], pool[1:4], pool[4:]):
                service.query_async(mix, budget)
            service.flush()
            stats = service.stats()
        assert stats["batches"] == 1
        assert stats["coalesced_batches"] == 1
        assert stats["batch_requests"] == 3
        assert stats["genome_passes"] == 1
        assert stats["requests"]["completed"] == 3

    def test_distinct_budgets_do_not_coalesce(self, small_genome, pool):
        with make_service() as service:
            service.add_genome("default", small_genome)
            future_a = service.query_async(pool[:2], SearchBudget(mismatches=1))
            future_b = service.query_async(pool[:2], SearchBudget(mismatches=2))
            service.flush()
            stats = service.stats()
            assert future_a.result().hits != future_b.result().hits or True
        assert stats["batches"] == 2
        assert stats["coalesced_batches"] == 0
        assert stats["genome_passes"] == 2

    def test_distinct_sessions_do_not_coalesce(self, small_genome, pool):
        other = random_genome(2500, seed=43, name="chrOther")
        budget = SearchBudget(mismatches=2)
        with make_service() as service:
            service.add_genome("default", small_genome)
            service.add_genome("other", other)
            future_a = service.query_async(pool[:2], budget)
            future_b = service.query_async(pool[:2], budget, session_id="other")
            service.flush()
        assert future_a.result().hits == oracle_hits(pool[:2], budget, small_genome)
        assert future_b.result().hits == oracle_hits(pool[:2], budget, other)

    def test_duplicate_guide_content_compiles_once(self, small_genome, pool):
        budget = SearchBudget(mismatches=2)
        with make_service() as service:
            service.add_genome("default", small_genome)
            # within one batch, identical content collapses to one automaton
            for _ in range(3):
                service.query_async((pool[0],), budget)
            service.flush()
            assert service.stats()["obs"]["counters"]["service.batch_guides"] == 1
            assert service.cache.stats()["misses"] == 1
            # across batches, the cache serves the compiled artefact
            service.query((pool[0],), budget)
            service.query((pool[0],), budget)
            cache = service.cache.stats()
        assert cache["misses"] == 1
        assert cache["hits"] == 2


class TestAdmissionControl:
    def test_overload_sheds_with_typed_error(self, small_genome, pool):
        budget = SearchBudget(mismatches=2)
        with make_service(max_queue_depth=2) as service:
            service.add_genome("default", small_genome)
            kept = [service.query_async((pool[i],), budget) for i in range(2)]
            with pytest.raises(ServiceOverloadedError):
                service.query_async((pool[2],), budget)
            stats = service.stats()
            assert stats["requests"]["shed"] == 1
            assert stats["queue_depth"] == 2
            # the admitted requests are untouched by the shed
            service.flush()
            for i, future in enumerate(kept):
                assert future.result().hits == oracle_hits(
                    (pool[i],), budget, small_genome
                )

    def test_queue_drains_and_readmits(self, small_genome, pool):
        budget = SearchBudget(mismatches=2)
        with make_service(max_queue_depth=1) as service:
            service.add_genome("default", small_genome)
            first = service.query_async((pool[0],), budget)
            with pytest.raises(ServiceOverloadedError):
                service.query_async((pool[1],), budget)
            service.flush()
            second = service.query_async((pool[1],), budget)  # readmitted
            service.flush()
            assert first.result().num_hits >= 0
            assert second.result().hits == oracle_hits(
                (pool[1],), budget, small_genome
            )

    def test_expired_deadline_fails_only_that_request(self, small_genome, pool):
        budget = SearchBudget(mismatches=2)
        with make_service() as service:
            service.add_genome("default", small_genome)
            expired = service.submit(
                QueryRequest(
                    guides=(pool[0],),
                    budget=budget,
                    deadline=time.monotonic() - 1.0,
                )
            )
            alive = service.query_async((pool[1],), budget)
            service.flush()
            with pytest.raises(DeadlineExceededError):
                expired.result()
            assert alive.result().hits == oracle_hits(
                (pool[1],), budget, small_genome
            )
            assert service.stats()["requests"]["deadline_expired"] == 1

    def test_malformed_requests_rejected_before_admission(self, small_genome, pool):
        with make_service() as service:
            service.add_genome("default", small_genome)
            with pytest.raises(ServiceError):
                make_requests((), SearchBudget())
            twin = Guide(pool[0].name, pool[1].protospacer, pool[1].pam)
            with pytest.raises(ServiceError):
                service.query_async((pool[0], twin), SearchBudget())
            with pytest.raises(ServiceError):
                service.query_async((pool[0],), SearchBudget(), session_id="nope")
            assert service.stats()["requests"]["admitted"] == 0

    def test_closed_service_refuses_queries(self, small_genome, pool):
        service = make_service()
        service.add_genome("default", small_genome)
        service.close()
        with pytest.raises(ServiceError):
            service.query_async((pool[0],), SearchBudget())


class TestCapacityPasses:
    def test_max_guides_per_pass_splits_batches(self, small_genome, pool):
        budget = SearchBudget(mismatches=2)
        with make_service(max_guides_per_pass=1) as service:
            service.add_genome("default", small_genome)
            result = service.query(pool[:3], budget)
            stats = service.stats()
        assert result.stats["passes"] == 3
        assert stats["genome_passes"] == 3
        assert result.hits == oracle_hits(pool[:3], budget, small_genome)

    def _spec_fitting(self, stes: int) -> ApSpec:
        return ApSpec(
            stes_per_chip=stes, chips_per_rank=1, ranks=1, routable_fraction=1.0
        )

    def test_platform_capacity_splits_into_passes(self, small_genome, pool):
        budget = SearchBudget(mismatches=2)
        per_guide = compile_guide(pool[0], budget).num_stes
        spec = self._spec_fitting(per_guide + 1)  # one guide per pass
        with make_service(capacity_spec=spec) as service:
            service.add_genome("default", small_genome)
            result = service.query(pool[:3], budget)
        assert result.stats["passes"] == 3
        assert result.hits == oracle_hits(pool[:3], budget, small_genome)

    def test_unplaceable_guide_fails_only_its_requests(self, small_genome, pool):
        budget = SearchBudget(mismatches=2)
        per_guide = compile_guide(pool[0], budget).num_stes
        spec = self._spec_fitting(per_guide - 1)  # nothing fits
        with make_service(capacity_spec=self._spec_fitting(per_guide)) as ok_service:
            ok_service.add_genome("default", small_genome)
            assert (
                ok_service.query((pool[0],), budget).hits
                == oracle_hits((pool[0],), budget, small_genome)
            )
        with make_service(capacity_spec=spec) as service:
            service.add_genome("default", small_genome)
            doomed = service.query_async((pool[0],), budget)
            service.flush()
            with pytest.raises(CapacityError):
                doomed.result()
            assert service.stats()["requests"]["over_capacity"] == 1


class TestBackgroundMode:
    def test_blocking_queries_through_the_batcher(self, small_genome, pool):
        budget = SearchBudget(mismatches=2)
        with OffTargetService(
            background=True, batch_window_seconds=0.001, chunk_length=CHUNK
        ) as service:
            service.add_genome("default", small_genome)
            for mix in (pool[:2], pool[2:4]):
                assert service.query(mix, budget).hits == oracle_hits(
                    mix, budget, small_genome
                )

    def test_concurrent_threads_all_get_exact_results(self, small_genome, pool):
        import threading

        budget = SearchBudget(mismatches=2)
        mixes = [pool[:2], pool[1:4], pool[3:], (pool[0], pool[5])]
        results: dict[int, tuple] = {}

        with OffTargetService(
            background=True, batch_window_seconds=0.02, chunk_length=CHUNK
        ) as service:
            service.add_genome("default", small_genome)

            def worker(index: int) -> None:
                results[index] = service.query(mixes[index], budget).hits

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(len(mixes))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            stats = service.stats()
        for index, mix in enumerate(mixes):
            assert results[index] == oracle_hits(mix, budget, small_genome)
        assert stats["requests"]["completed"] == len(mixes)

    def test_stop_drains_admitted_requests(self, small_genome, pool):
        budget = SearchBudget(mismatches=2)
        service = OffTargetService(
            background=True, batch_window_seconds=5.0, chunk_length=CHUNK
        )
        service.add_genome("default", small_genome)
        future = service.query_async((pool[0],), budget)
        service.close()  # window never elapsed; close must still resolve it
        assert future.result(timeout=1).hits == oracle_hits(
            (pool[0],), budget, small_genome
        )


class TestSessions:
    def test_registry_round_trip(self, small_genome):
        registry = SessionRegistry()
        registry.add_sequences("hg", small_genome)
        assert "hg" in registry and len(registry) == 1
        assert registry.get("hg").total_length == len(small_genome)
        with pytest.raises(ServiceError):
            registry.add_sequences("hg", small_genome)  # duplicate id
        with pytest.raises(ServiceError):
            registry.get("nope")
        registry.remove("hg")
        assert "hg" not in registry
        with pytest.raises(ServiceError):
            registry.remove("hg")

    def test_fasta_loaded_once(self, tmp_path, small_genome):
        from repro import write_fasta

        path = tmp_path / "ref.fa"
        write_fasta([small_genome], path)
        registry = SessionRegistry()
        session = registry.add_fasta("ref", path)
        assert session.source == str(path)
        assert [s.name for s in session.sequences] == [small_genome.name]
        registry.get("ref")
        registry.get("ref")
        assert registry._metrics.counter("service.sessions.reuses") == 2
        assert registry._metrics.counter("service.sessions.loaded") == 1
        description = registry.describe()
        assert description[0]["total_length"] == len(small_genome)


class TestServiceStats:
    def test_acceptance_signals_present(self, small_genome, pool):
        """--stats-json must report coalesced batches, hit rate, sheds."""
        budget = SearchBudget(mismatches=2)
        with make_service(max_queue_depth=1) as service:
            service.add_genome("default", small_genome)
            service.query_async((pool[0],), budget)
            with pytest.raises(ServiceOverloadedError):
                service.query_async((pool[1],), budget)
            service.flush()
            service.query((pool[0],), budget)  # cache-warm repeat
            stats = service.stats()
        assert stats["coalesced_batches"] == 0
        assert stats["batches"] == 2
        assert stats["requests"]["shed"] == 1
        assert stats["cache"]["hit_rate"] == pytest.approx(0.5)
        assert stats["obs"]["gauges"]["service.queue_depth"] == 0
