"""Unit tests for the analysis package."""

import pytest

from repro import SearchBudget
from repro.analysis.results import ResultSet, RunRecord
from repro.analysis.speedup import speedup_matrix, speedup_vs
from repro.analysis.tables import render_series, render_table
from repro.analysis.workloads import StandardWorkload, evaluate_platforms
from repro.errors import ReproError
from repro.platforms.timing import TimingBreakdown


def _record(tool, total, workload="w", hits=5, kernel=None):
    return RunRecord(
        tool=tool,
        workload=workload,
        genome_length=1000,
        num_guides=2,
        mismatches=3,
        rna_bulges=0,
        dna_bulges=0,
        modeled=TimingBreakdown(
            tool, setup_seconds=0.0, kernel_seconds=kernel or total, report_seconds=0.0
        ),
        num_hits=hits,
    )


class TestResultSet:
    def test_tools_and_workloads(self):
        results = ResultSet([_record("a", 1.0), _record("b", 2.0, workload="x")])
        assert results.tools() == ["a", "b"]
        assert results.workloads() == ["w", "x"]

    def test_get(self):
        results = ResultSet([_record("a", 1.0)])
        assert results.get("a").tool == "a"

    def test_get_missing(self):
        with pytest.raises(ReproError):
            ResultSet().get("a")

    def test_get_ambiguous(self):
        results = ResultSet([_record("a", 1.0), _record("a", 2.0)])
        with pytest.raises(ReproError):
            results.get("a")

    def test_agreement(self):
        agreeing = ResultSet([_record("a", 1.0, hits=5), _record("b", 2.0, hits=5)])
        assert agreeing.agreement()
        disagreeing = ResultSet([_record("a", 1.0, hits=5), _record("b", 2.0, hits=6)])
        assert not disagreeing.agreement()

    def test_filters(self):
        results = ResultSet([_record("a", 1.0), _record("b", 2.0, workload="x")])
        assert len(results.for_tool("a")) == 1
        assert len(results.for_workload("x")) == 1

    def test_budget_label(self):
        assert _record("a", 1.0).budget_label == "3mm/0rb/0db"


class TestSpeedup:
    def test_speedup_vs(self):
        results = ResultSet([_record("fast", 2.0), _record("slow", 20.0)])
        assert speedup_vs(results, "fast", "slow") == pytest.approx(10.0)

    def test_kernel_only(self):
        results = ResultSet(
            [_record("fast", 2.0, kernel=1.0), _record("slow", 20.0, kernel=10.0)]
        )
        assert speedup_vs(results, "fast", "slow", kernel_only=True) == pytest.approx(10.0)

    def test_matrix_excludes_baselines(self):
        results = ResultSet([_record("a", 1.0), _record("b", 2.0), _record("base", 10.0)])
        matrix = speedup_matrix(results, ["base"])
        assert set(matrix) == {"a", "b"}
        assert matrix["a"]["base"] == pytest.approx(10.0)


class TestTables:
    def test_render_table_alignment(self):
        text = render_table(["tool", "sec"], [["ap", 1.5], ["fpga", 20.25]])
        lines = text.splitlines()
        assert lines[0].startswith("tool")
        assert len(lines) == 4

    def test_render_table_title(self):
        assert render_table(["a"], [[1]], title="T2").splitlines()[0] == "T2"

    def test_float_formatting(self):
        text = render_table(["x"], [[0.000123], [123456.0], [1.5]])
        assert "0.000123" in text
        assert "1.23e+05" in text
        assert "1.5" in text

    def test_render_series(self):
        text = render_series("k", [1, 2], {"ap": [0.1, 0.2], "fpga": [0.3, 0.4]})
        lines = text.splitlines()
        assert lines[0].split() == ["k", "ap", "fpga"]
        assert lines[2].split() == ["1", "0.1", "0.3"]


class TestWorkloads:
    @pytest.fixture(scope="class")
    def workload(self):
        return StandardWorkload(
            name="test",
            modeled_genome_length=100_000_000,
            functional_genome_length=200_000,
            num_guides=3,
            budget=SearchBudget(mismatches=2),
            seed=77,
        )

    def test_deterministic_genome(self, workload):
        assert workload.genome.text == workload.genome.text
        assert len(workload.genome) == 200_000

    def test_library_sampled(self, workload):
        assert len(workload.library) == 3

    def test_scale(self, workload):
        assert workload.scale == pytest.approx(500.0)

    def test_modeled_profile_scales_traffic(self, workload):
        profile = workload.modeled_profile()
        assert profile.genome_length == 100_000_000
        assert profile.report_traffic.events >= len(workload.functional_hits)

    def test_with_budget_and_guides(self, workload):
        changed = workload.with_budget(SearchBudget(mismatches=1))
        assert changed.budget.mismatches == 1
        assert changed.name != workload.name
        grown = workload.with_guides(5)
        assert grown.num_guides == 5

    def test_evaluate_platforms(self, workload):
        results = evaluate_platforms(workload)
        assert set(results.tools()) == {
            "hyperscan",
            "infant2",
            "fpga",
            "ap",
            "cas-offinder",
            "casot",
        }
        assert results.agreement()
        # The paper's ordering: spatial < GPU NFA < tuned CPU < baselines.
        total = {tool: results.get(tool).modeled_total for tool in results.tools()}
        assert total["ap"] < total["fpga"] < total["infant2"] < total["hyperscan"]
        assert total["hyperscan"] < total["cas-offinder"] < total["casot"]

    def test_evaluate_with_functional_baselines(self):
        workload = StandardWorkload(
            name="mini",
            modeled_genome_length=10_000_000,
            functional_genome_length=50_000,
            num_guides=2,
            budget=SearchBudget(mismatches=2),
            seed=78,
        )
        results = evaluate_platforms(workload, run_functional_baselines=True)
        assert results.agreement()
        assert results.get("casot").extra["functional"] is True
