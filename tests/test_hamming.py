"""Unit tests for the mismatch-counting automaton compiler."""

import pytest

from repro import alphabet
from repro.core.hamming import PatternSegment, build_hamming_nfa, hamming_state_count
from repro.core.labels import MatchLabel
from repro.errors import CompileError


def _codes(text):
    return alphabet.encode(text)


def _nfa(protospacer, pam="NGG", k=2):
    return build_hamming_nfa(
        [PatternSegment(protospacer, budgeted=True), PatternSegment(pam, budgeted=False)],
        k,
        guide_name="g",
        strand="+",
    )


PROTO = "ACGTACGTAC"
TARGET = PROTO + "AGG"


class TestAcceptance:
    def test_exact_target_reported_with_zero_mismatches(self):
        nfa = _nfa(PROTO, k=2)
        reports = list(nfa.run(_codes(TARGET)))
        assert len(reports) == 1
        position, label = reports[0]
        assert position == len(TARGET) - 1
        assert label.mismatches == 0
        assert label.consumed == len(TARGET)

    def test_one_mismatch_counted(self):
        nfa = _nfa(PROTO, k=2)
        site = "A" + "GGTACGTAC"[0:].replace("", "")  # placeholder clarity below
        site = "AGGTACGTAC" + "AGG"  # position 1: C->G mismatch... build explicitly
        mutated = list(PROTO)
        mutated[3] = "A"  # T -> A
        site = "".join(mutated) + "AGG"
        labels = [label for _, label in nfa.run(_codes(site))]
        assert [l.mismatches for l in labels] == [1]

    def test_mismatch_budget_enforced(self):
        nfa = _nfa(PROTO, k=1)
        mutated = list(PROTO)
        mutated[2], mutated[5] = "T", "T"  # two substitutions (G->T, C->T)
        site = "".join(mutated) + "AGG"
        assert list(nfa.run(_codes(site))) == []

    def test_exactly_at_budget_accepted(self):
        nfa = _nfa(PROTO, k=2)
        mutated = list(PROTO)
        mutated[2], mutated[5] = "T", "T"
        site = "".join(mutated) + "AGG"
        labels = [label for _, label in nfa.run(_codes(site))]
        assert [l.mismatches for l in labels] == [2]

    def test_pam_is_exact_never_budgeted(self):
        nfa = _nfa(PROTO, k=3)
        bad_pam_site = PROTO + "ATT"
        assert list(nfa.run(_codes(bad_pam_site))) == []

    def test_pam_n_position_free(self):
        nfa = _nfa(PROTO, k=0)
        for pam_site in ("AGG", "CGG", "GGG", "TGG"):
            assert len(list(nfa.run(_codes(PROTO + pam_site)))) == 1

    def test_genome_n_counts_as_mismatch(self):
        nfa = _nfa(PROTO, k=1)
        site = "N" + PROTO[1:] + "AGG"
        labels = [label for _, label in nfa.run(_codes(site))]
        assert [l.mismatches for l in labels] == [1]

    def test_genome_n_in_pam_g_rejected(self):
        nfa = _nfa(PROTO, k=2)
        site = PROTO + "ANG"
        assert list(nfa.run(_codes(site))) == []

    def test_unanchored_search(self):
        nfa = _nfa(PROTO, k=0)
        stream = "TTTT" + TARGET + "CCCC" + TARGET
        positions = [p for p, _ in nfa.run(_codes(stream))]
        assert positions == [4 + len(TARGET) - 1, 4 + 2 * len(TARGET) + 4 - 1]

    def test_exact_segment_first(self):
        # Reverse-strand layout: PAM (CCN) before the budgeted part.
        nfa = build_hamming_nfa(
            [PatternSegment("CCN", budgeted=False), PatternSegment(PROTO, budgeted=True)],
            1,
            guide_name="g",
            strand="-",
        )
        site = "CCA" + PROTO
        reports = list(nfa.run(_codes(site)))
        assert len(reports) == 1
        assert reports[0][1].strand == "-"


class TestLabels:
    def test_labels_carry_identity(self):
        nfa = _nfa(PROTO, k=1)
        _, label = next(iter(nfa.run(_codes(TARGET))))
        assert isinstance(label, MatchLabel)
        assert label.guide_name == "g"
        assert label.strand == "+"
        assert label.rna_bulges == 0 and label.dna_bulges == 0

    def test_span_at(self):
        label = MatchLabel("g", "+", 0, 0, 0, consumed=23)
        assert label.span_at(22) == (0, 23)
        assert label.span_at(100) == (78, 101)

    def test_one_accept_state_per_row(self):
        nfa = _nfa(PROTO, k=3)
        accept_labels = [
            label for state in nfa.states() for label in state.accept_labels
        ]
        assert sorted(l.mismatches for l in accept_labels) == [0, 1, 2, 3]


class TestStateCount:
    @pytest.mark.parametrize("k", [0, 1, 2, 3, 5])
    def test_formula_matches_builder(self, k):
        segments = [
            PatternSegment(PROTO, budgeted=True),
            PatternSegment("NGG", budgeted=False),
        ]
        nfa = build_hamming_nfa(segments, k, guide_name="g", strand="+")
        assert nfa.num_states == hamming_state_count(segments, k)

    def test_formula_matches_builder_pam_first(self):
        segments = [
            PatternSegment("CCN", budgeted=False),
            PatternSegment(PROTO, budgeted=True),
        ]
        nfa = build_hamming_nfa(segments, 2, guide_name="g", strand="+")
        assert nfa.num_states == hamming_state_count(segments, 2)

    def test_canonical_closed_form(self):
        # 1 + sum_{i=1..m}(min(i,k)+1) + (k+1)*g for the 3'-PAM layout.
        m, g, k = 20, 3, 3
        segments = [
            PatternSegment("A" * m, budgeted=True),
            PatternSegment("N" * g, budgeted=False),
        ]
        expected = 1 + sum(min(i, k) + 1 for i in range(1, m + 1)) + (k + 1) * g
        assert hamming_state_count(segments, k) == expected


class TestValidation:
    def test_negative_budget_rejected(self):
        with pytest.raises(CompileError):
            _nfa(PROTO, k=-1)

    def test_empty_pattern_rejected(self):
        with pytest.raises(CompileError):
            build_hamming_nfa([], 1, guide_name="g", strand="+")

    def test_empty_segment_rejected(self):
        with pytest.raises(CompileError):
            PatternSegment("", budgeted=True)

    def test_bad_strand_rejected(self):
        with pytest.raises(CompileError):
            build_hamming_nfa(
                [PatternSegment("ACGT", budgeted=True)], 1, guide_name="g", strand="x"
            )
