"""Unit tests for repro.genome.synthetic."""

import pytest

from repro import Guide, SearchBudget
from repro.core.reference import NaiveSearcher
from repro.errors import AlphabetError
from repro.genome.synthetic import (
    SyntheticGenomeBuilder,
    plant_sites,
    random_genome,
)


class TestRandomGenome:
    def test_deterministic(self):
        assert random_genome(500, seed=3).text == random_genome(500, seed=3).text

    def test_seed_changes_output(self):
        assert random_genome(500, seed=3).text != random_genome(500, seed=4).text

    def test_length(self):
        assert len(random_genome(1234, seed=0)) == 1234

    def test_gc_content_respected(self):
        low = random_genome(50000, seed=1, gc_content=0.2)
        high = random_genome(50000, seed=1, gc_content=0.8)
        assert abs(low.gc_fraction() - 0.2) < 0.02
        assert abs(high.gc_fraction() - 0.8) < 0.02

    def test_no_ns(self):
        assert random_genome(2000, seed=5).count_n() == 0

    def test_rejects_bad_arguments(self):
        with pytest.raises(AlphabetError):
            random_genome(-1)
        with pytest.raises(AlphabetError):
            random_genome(10, gc_content=1.5)


class TestBuilder:
    def test_background_and_gap(self):
        genome = (
            SyntheticGenomeBuilder(seed=1)
            .add_background(100)
            .add_gap(20)
            .add_background(30)
            .build("chr")
        )
        assert len(genome) == 150
        assert genome.count_n() == 20
        assert genome.text[100:120] == "N" * 20

    def test_repeats_create_similar_copies(self):
        genome = (
            SyntheticGenomeBuilder(seed=2)
            .add_repeats(count=1, unit_length=100, copies=3, divergence=0.0)
            .build()
        )
        # With zero divergence the unit occurs verbatim 3 times.
        unit = genome.text[:100]
        assert genome.text.count(unit) == 3

    def test_add_text(self):
        genome = SyntheticGenomeBuilder().add_text("ACGTACGT").build()
        assert genome.text == "ACGTACGT"

    def test_empty_build(self):
        assert len(SyntheticGenomeBuilder().build()) == 0

    def test_rejects_negative(self):
        with pytest.raises(AlphabetError):
            SyntheticGenomeBuilder().add_background(-5)
        with pytest.raises(AlphabetError):
            SyntheticGenomeBuilder().add_gap(-5)

    def test_deterministic(self):
        first = SyntheticGenomeBuilder(seed=9).add_background(200).build().text
        second = SyntheticGenomeBuilder(seed=9).add_background(200).build().text
        assert first == second


class TestPlantSites:
    def _guides(self):
        return [Guide("g1", "GAGTCCGAGCAGAAGAAGAA")]

    def test_exact_plants_found_by_oracle(self):
        genome = random_genome(4000, seed=7)
        edited, planted = plant_sites(genome, self._guides(), per_guide=2, seed=8)
        assert len(planted) == 2
        hits = NaiveSearcher(SearchBudget(mismatches=0)).search(edited, self._guides())
        found = {(h.start, h.strand) for h in hits}
        for site in planted:
            assert (site.position, site.strand) in found

    def test_mismatch_plants_have_exact_count(self):
        genome = random_genome(4000, seed=9)
        edited, planted = plant_sites(
            genome, self._guides(), per_guide=3, mismatches=2, seed=10
        )
        hits = NaiveSearcher(SearchBudget(mismatches=2)).search(edited, self._guides())
        by_start = {h.start: h for h in hits}
        for site in planted:
            assert site.position in by_start
            assert by_start[site.position].mismatches == 2

    def test_bulge_plants_found(self):
        genome = random_genome(4000, seed=11)
        edited, planted = plant_sites(
            genome, self._guides(), per_guide=2, rna_bulges=1, seed=12
        )
        hits = NaiveSearcher(SearchBudget(mismatches=0, rna_bulges=1)).search(
            edited, self._guides()
        )
        starts = {h.start for h in hits}
        for site in planted:
            assert site.position in starts

    def test_pam_positions_protected(self):
        genome = random_genome(4000, seed=13)
        _, planted = plant_sites(
            genome, self._guides(), per_guide=5, mismatches=3, seed=14
        )
        for site in planted:
            assert site.site_text[-2:] == "GG"  # NGG PAM intact

    def test_genome_length_unchanged_without_bulges(self):
        genome = random_genome(2000, seed=15)
        edited, _ = plant_sites(genome, self._guides(), per_guide=1, seed=16)
        assert len(edited) == len(genome)

    def test_too_small_genome_rejected(self):
        genome = random_genome(60, seed=17)
        with pytest.raises(AlphabetError):
            plant_sites(genome, self._guides(), per_guide=10, seed=18)
