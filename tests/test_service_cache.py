"""Tests for the compiled-guide cache and its ``SVC`` invariant rules.

The hypothesis property at the bottom is the cache's contract in one
line: *a warm cache never changes an answer*. Every request in a
random sequence of guide/budget mixes — however warm the cache has
become — must return hits bit-identical to a cold solo
:class:`OffTargetSearch` run.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Guide,
    Metrics,
    OffTargetSearch,
    OffTargetService,
    SearchBudget,
    random_genome,
    sample_guides_from_genome,
)
from repro.check import check_guide_cache
from repro.errors import ServiceError
from repro.service import CompiledGuideCache, cache_key, canonical_name


@pytest.fixture(scope="module")
def genome():
    """A small genome so the property test stays fast per example."""
    return random_genome(1500, seed=17, name="chrCache")


@pytest.fixture(scope="module")
def guides(genome):
    return tuple(sample_guides_from_genome(genome, 4, seed=19))


BUDGETS = (
    SearchBudget(mismatches=1),
    SearchBudget(mismatches=2),
    SearchBudget(mismatches=1, rna_bulges=1, dna_bulges=1),
)


class TestCacheKeying:
    def test_key_ignores_display_name(self, guides):
        budget = BUDGETS[0]
        alias = Guide("totally-different", guides[0].protospacer, guides[0].pam)
        assert cache_key(guides[0], budget) == cache_key(alias, budget)

    def test_key_separates_budget_axes(self, guides):
        keys = {cache_key(guides[0], budget) for budget in BUDGETS}
        assert len(keys) == len(BUDGETS)

    def test_canonical_name_deterministic_and_distinct(self, guides):
        key_a = cache_key(guides[0], BUDGETS[0])
        key_b = cache_key(guides[1], BUDGETS[0])
        assert canonical_name(key_a) == canonical_name(key_a)
        assert canonical_name(key_a) != canonical_name(key_b)
        assert canonical_name(key_a).startswith("cg-")

    def test_entry_carries_canonical_name(self, guides):
        cache = CompiledGuideCache(4)
        compiled = cache.get(guides[0], BUDGETS[0])
        key = cache_key(guides[0], BUDGETS[0])
        assert compiled.guide.name == canonical_name(key)
        assert compiled.guide.protospacer == guides[0].protospacer

    def test_shared_entry_across_display_names(self, guides):
        cache = CompiledGuideCache(4)
        alias = Guide("alias", guides[0].protospacer, guides[0].pam)
        first = cache.get(guides[0], BUDGETS[0])
        second = cache.get(alias, BUDGETS[0])
        assert first is second
        assert len(cache) == 1
        assert cache.stats()["hits"] == 1


class TestLruSemantics:
    def test_capacity_is_never_exceeded(self, guides):
        cache = CompiledGuideCache(2)
        for guide in guides:
            cache.get(guide, BUDGETS[0])
            assert len(cache) <= 2
        stats = cache.stats()
        assert stats["size"] == 2
        assert stats["misses"] == len(guides)
        assert stats["evictions"] == len(guides) - 2

    def test_least_recently_used_is_evicted_first(self, guides):
        cache = CompiledGuideCache(2)
        cache.get(guides[0], BUDGETS[0])
        cache.get(guides[1], BUDGETS[0])
        cache.get(guides[0], BUDGETS[0])  # refresh 0 → 1 is now LRU
        cache.get(guides[2], BUDGETS[0])  # evicts 1
        assert cache_key(guides[0], BUDGETS[0]) in cache
        assert cache_key(guides[1], BUDGETS[0]) not in cache
        assert cache_key(guides[2], BUDGETS[0]) in cache

    def test_keys_are_lru_ordered(self, guides):
        cache = CompiledGuideCache(4)
        for guide in guides[:3]:
            cache.get(guide, BUDGETS[0])
        cache.get(guides[0], BUDGETS[0])  # most recent again
        assert cache.keys() == [
            cache_key(guides[1], BUDGETS[0]),
            cache_key(guides[2], BUDGETS[0]),
            cache_key(guides[0], BUDGETS[0]),
        ]

    def test_metrics_wiring(self, guides):
        metrics = Metrics()
        cache = CompiledGuideCache(1, metrics=metrics)
        cache.get(guides[0], BUDGETS[0])
        cache.get(guides[0], BUDGETS[0])
        cache.get(guides[1], BUDGETS[0])  # evicts guides[0]
        assert metrics.counter("service.cache.lookups") == 3
        assert metrics.counter("service.cache.hits") == 1
        assert metrics.counter("service.cache.misses") == 2
        assert metrics.counter("service.cache.evictions") == 1
        assert metrics.gauge_value("service.cache.size") == 1

    def test_clear_keeps_history(self, guides):
        cache = CompiledGuideCache(4)
        cache.get(guides[0], BUDGETS[0])
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["misses"] == 1

    @pytest.mark.parametrize("capacity", [0, -1, "many"])
    def test_invalid_capacity_rejected(self, capacity):
        with pytest.raises(ServiceError):
            CompiledGuideCache(capacity)


class TestCheckRules:
    def test_healthy_cache_passes(self, guides):
        cache = CompiledGuideCache(2)
        for guide in guides:
            cache.get(guide, BUDGETS[0])
        report = check_guide_cache(cache)
        assert report.ok, report.to_text()
        assert "SVC004" in report.rules()

    def test_svc001_capacity_violation(self, guides):
        cache = CompiledGuideCache(1)
        cache.get(guides[0], BUDGETS[0])
        # sabotage: stuff a second entry in behind the LRU's back
        key = cache_key(guides[1], BUDGETS[0])
        cache._entries[key] = CompiledGuideCache(1).get(guides[1], BUDGETS[0])
        report = check_guide_cache(cache)
        assert "SVC001" in {d.rule for d in report.errors}

    def test_svc002_key_entry_mismatch(self, guides):
        cache = CompiledGuideCache(4)
        cache.get(guides[0], BUDGETS[0])
        cache.get(guides[1], BUDGETS[0])
        # sabotage: swap the two artefacts under each other's keys
        keys = cache.keys()
        entries = dict(cache.items())
        cache._entries[keys[0]], cache._entries[keys[1]] = (
            entries[keys[1]],
            entries[keys[0]],
        )
        report = check_guide_cache(cache)
        assert "SVC002" in {d.rule for d in report.errors}

    def test_svc002_non_canonical_name(self, guides):
        cache = CompiledGuideCache(4)
        cache.get(guides[0], BUDGETS[0])
        key = cache.keys()[0]
        compiled = cache._entries[key]
        cache._entries[key] = dataclasses.replace(
            compiled, guide=Guide("sneaky", compiled.guide.protospacer, compiled.guide.pam)
        )
        report = check_guide_cache(cache)
        assert "SVC002" in {d.rule for d in report.errors}

    def test_svc003_counter_incoherence(self, guides):
        cache = CompiledGuideCache(4)
        cache.get(guides[0], BUDGETS[0])
        cache._hits += 7  # sabotage: hits + misses no longer equal lookups
        report = check_guide_cache(cache)
        assert "SVC003" in {d.rule for d in report.errors}

    def test_svc003_eviction_excess(self, guides):
        cache = CompiledGuideCache(4)
        cache.get(guides[0], BUDGETS[0])
        cache._evictions = 5  # sabotage: more evictions than misses
        report = check_guide_cache(cache)
        assert "SVC003" in {d.rule for d in report.errors}


class TestWarmColdProperty:
    """Cache-warm service answers == cold solo searches, bit for bit."""

    @given(
        plan=st.lists(
            st.tuples(
                st.sets(st.integers(min_value=0, max_value=3), min_size=1),
                st.integers(min_value=0, max_value=len(BUDGETS) - 1),
            ),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_warm_cache_never_changes_an_answer(self, genome, guides, plan):
        oracle: dict[tuple, tuple] = {}
        with OffTargetService(
            background=False, chunk_length=1 << 12, cache_capacity=3
        ) as service:
            # capacity 3 < the up-to-12 distinct (guide, budget) keys, so
            # long plans also exercise eviction mid-sequence.
            service.add_genome("default", genome)
            for indices, budget_index in plan:
                mix = tuple(guides[i] for i in sorted(indices))
                budget = BUDGETS[budget_index]
                witness = (tuple(sorted(indices)), budget_index)
                if witness not in oracle:
                    oracle[witness] = (
                        OffTargetSearch(mix, budget).run(genome).hits
                    )
                assert service.query(mix, budget).hits == oracle[witness]
            report = check_guide_cache(service.cache)
            assert report.ok, report.to_text()
