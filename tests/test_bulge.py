"""Unit tests for the mismatch+bulge automaton compiler."""

import pytest

from repro import alphabet
from repro.core.bulge import BulgeBudget, build_bulge_nfa
from repro.core.hamming import PatternSegment
from repro.errors import CompileError


def _codes(text):
    return alphabet.encode(text)


PROTO = "ACGTACGTAC"


def _nfa(k=0, rna=0, dna=0, proto=PROTO):
    return build_bulge_nfa(
        [PatternSegment(proto, budgeted=True), PatternSegment("NGG", budgeted=False)],
        k,
        BulgeBudget(rna=rna, dna=dna),
        guide_name="g",
        strand="+",
    )


class TestExact:
    def test_exact_still_accepted(self):
        nfa = _nfa(k=1, rna=1, dna=1)
        labels = [label for _, label in nfa.run(_codes(PROTO + "AGG"))]
        best = min(labels, key=lambda l: l.edits)
        assert (best.mismatches, best.rna_bulges, best.dna_bulges) == (0, 0, 0)


class TestRnaBulge:
    def test_deleted_interior_base_found(self):
        # Remove protospacer position 4 (interior): site one base shorter.
        site = PROTO[:4] + PROTO[5:] + "AGG"
        nfa = _nfa(rna=1)
        reports = list(nfa.run(_codes(site)))
        assert reports, "RNA-bulged site must be accepted"
        label = min((l for _, l in reports), key=lambda l: l.edits)
        assert label.rna_bulges == 1
        assert label.consumed == len(site)

    def test_rna_budget_enforced(self):
        site = PROTO[:3] + PROTO[4:6] + PROTO[7:] + "AGG"  # two deletions
        assert list(_nfa(rna=1).run(_codes(site))) == []
        assert list(_nfa(rna=2).run(_codes(site)))

    def test_terminal_deletion_not_an_rna_bulge(self):
        # Deleting the first base is just a shifted site; the automaton
        # must not spend a bulge on it (no accept of the shorter site
        # at that alignment with rna budget but zero mismatch budget and
        # a non-matching replacement).
        nfa = _nfa(rna=1)
        site_del_first = PROTO[1:] + "AGG"
        labels = [l for _, l in nfa.run(_codes("T" + site_del_first))]
        # Any acceptance here is the plain shifted exact match, not a bulge.
        assert all(l.rna_bulges == 0 for l in labels) or not labels


class TestDnaBulge:
    def test_inserted_interior_base_found(self):
        site = PROTO[:5] + "T" + PROTO[5:] + "AGG"  # insertion between 4 and 5
        nfa = _nfa(dna=1)
        reports = list(nfa.run(_codes(site)))
        assert reports, "DNA-bulged site must be accepted"
        label = min((l for _, l in reports), key=lambda l: l.edits)
        assert label.dna_bulges == 1
        assert label.consumed == len(site)

    def test_dna_budget_enforced(self):
        site = PROTO[:3] + "G" + PROTO[3:7] + "C" + PROTO[7:] + "AGG"
        assert list(_nfa(dna=1).run(_codes(site))) == []
        assert list(_nfa(dna=2).run(_codes(site)))

    def test_insertion_in_pam_rejected(self):
        site = PROTO + "AG" + "T" + "G"  # broken PAM
        assert list(_nfa(dna=1).run(_codes(site))) == []

    def test_inserted_n_absorbed(self):
        # A DNA bulge consumes any symbol, including N.
        site = PROTO[:5] + "N" + PROTO[5:] + "AGG"
        assert list(_nfa(dna=1).run(_codes(site)))


class TestCombined:
    def test_mismatch_plus_bulge(self):
        mutated = list(PROTO)
        mutated[2] = "T"  # G->T mismatch
        site = "".join(mutated[:6]) + "A" + "".join(mutated[6:]) + "AGG"
        nfa = _nfa(k=1, dna=1)
        reports = list(nfa.run(_codes(site)))
        assert reports
        label = min((l for _, l in reports), key=lambda l: l.edits)
        assert (label.mismatches, label.dna_bulges) == (1, 1)

    def test_consumed_accounting(self):
        nfa = _nfa(k=1, rna=1, dna=1)
        total = len(PROTO) + 3
        for state in nfa.states():
            for label in state.accept_labels:
                assert label.consumed == total + label.dna_bulges - label.rna_bulges

    def test_all_profiles_have_accept_rows(self):
        nfa = _nfa(k=1, rna=1, dna=1)
        profiles = {
            (l.mismatches, l.rna_bulges, l.dna_bulges)
            for state in nfa.states()
            for l in state.accept_labels
        }
        # Every in-budget profile is representable.
        assert (0, 0, 0) in profiles
        assert (1, 0, 0) in profiles
        assert (0, 1, 0) in profiles
        assert (0, 0, 1) in profiles
        assert (1, 1, 1) in profiles


class TestValidation:
    def test_requires_exactly_one_budgeted_segment(self):
        with pytest.raises(CompileError):
            build_bulge_nfa(
                [PatternSegment("NGG", budgeted=False)],
                1,
                BulgeBudget(rna=1),
                guide_name="g",
                strand="+",
            )
        with pytest.raises(CompileError):
            build_bulge_nfa(
                [
                    PatternSegment("ACGT", budgeted=True),
                    PatternSegment("ACGT", budgeted=True),
                ],
                1,
                BulgeBudget(rna=1),
                guide_name="g",
                strand="+",
            )

    def test_negative_budgets_rejected(self):
        with pytest.raises(CompileError):
            BulgeBudget(rna=-1)
        with pytest.raises(CompileError):
            _nfa(k=-1, rna=1)

    def test_budget_total(self):
        assert BulgeBudget(rna=1, dna=2).total == 3
