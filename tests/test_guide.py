"""Unit tests for repro.grna.guide."""

import numpy as np
import pytest

from repro.errors import GuideError
from repro.grna.guide import Guide
from repro.grna.pam import get_pam


class TestConstruction:
    def test_basic(self, guide):
        assert guide.name == "EMX1"
        assert len(guide) == 20
        assert guide.pam.name == "NGG"

    def test_pam_by_string(self):
        guide = Guide("g", "ACGTACGTACGTACGTACGT", "NAG")
        assert guide.pam.name == "NAG"

    def test_rna_u_normalised(self):
        guide = Guide("g", "ACGUACGUACGUACGUACGU")
        assert guide.protospacer == "ACGTACGTACGTACGTACGT"

    def test_lowercase_normalised(self):
        assert Guide("g", "acgtacgtacgtacgtacgt").protospacer == "ACGTACGTACGTACGTACGT"

    def test_rejects_ambiguous_protospacer(self):
        with pytest.raises(GuideError):
            Guide("g", "ACGTACGTACGTACGTACGN")

    def test_rejects_length_out_of_range(self):
        with pytest.raises(GuideError):
            Guide("g", "ACGTACGTA")  # 9 < 10
        with pytest.raises(GuideError):
            Guide("g", "A" * 31)


class TestMinLengthOverride:
    """The explicit floor override for short (tru-gRNA) designs."""

    def test_short_guide_allowed_with_override(self):
        guide = Guide("g", "ACGTACGTA", min_length=9)
        assert len(guide) == 9
        assert guide.min_length == 9

    def test_default_path_still_enforces_the_floor(self):
        # No override -> the 10 nt floor holds exactly as before.
        with pytest.raises(GuideError):
            Guide("g", "ACGTACGTA")
        with pytest.raises(GuideError):
            Guide("g", "ACGT", min_length=5)  # below even the override

    def test_override_does_not_lift_the_maximum(self):
        with pytest.raises(GuideError):
            Guide("g", "A" * 31, min_length=1)

    def test_override_must_be_positive(self):
        with pytest.raises(GuideError):
            Guide("g", "ACGTACGTACGTACGTACGT", min_length=0)
        with pytest.raises(GuideError):
            Guide("g", "ACGTACGTACGTACGTACGT", min_length=-3)

    def test_with_pam_preserves_the_override(self):
        guide = Guide("g", "ACGTACGTA", min_length=9)
        relaxed = guide.with_pam("NRG")
        assert relaxed.min_length == 9
        assert relaxed.protospacer == guide.protospacer

    def test_from_target_passes_the_override_through(self):
        guide = Guide.from_target("g", "ACGTACGTA" + "AGG", min_length=9)
        assert guide.protospacer == "ACGTACGTA"
        assert guide.min_length == 9


class TestPatterns:
    def test_target_pattern_3prime(self, guide):
        assert guide.target_pattern == guide.protospacer + "NGG"

    def test_target_pattern_5prime(self):
        guide = Guide("g", "ACGTACGTACGTACGTACGT", get_pam("TTTV"))
        assert guide.target_pattern == "TTTV" + guide.protospacer

    def test_site_length(self, guide):
        assert guide.site_length == 23

    def test_pam_positions_3prime(self, guide):
        assert list(guide.pam_positions()) == [20, 21, 22]

    def test_pam_positions_5prime(self):
        guide = Guide("g", "ACGTACGTACGTACGTACGT", get_pam("TTTV"))
        assert list(guide.pam_positions()) == [0, 1, 2, 3]

    def test_protospacer_positions(self, guide):
        assert list(guide.protospacer_positions()) == list(range(20))

    def test_reverse_complement_pattern(self, guide):
        pattern = guide.reverse_complement_pattern()
        assert pattern.startswith("CCN")
        assert len(pattern) == 23


class TestConcreteTarget:
    def test_deterministic_without_rng(self, guide):
        target = guide.concrete_target()
        assert target == guide.protospacer + "AGG"

    def test_random_resolution_valid(self, guide):
        rng = np.random.default_rng(1)
        for _ in range(10):
            target = guide.concrete_target(rng)
            assert guide.pam.matches(target[-3:])
            assert target[:-3] == guide.protospacer


class TestFromTarget:
    def test_roundtrip(self, guide):
        target = guide.concrete_target()
        rebuilt = Guide.from_target("g2", target)
        assert rebuilt.protospacer == guide.protospacer

    def test_5prime(self):
        guide = Guide.from_target("g", "TTTA" + "ACGTACGTACGTACGTACGT", get_pam("TTTV"))
        assert guide.protospacer == "ACGTACGTACGTACGTACGT"

    def test_rejects_invalid_pam(self):
        with pytest.raises(GuideError):
            Guide.from_target("g", "ACGTACGTACGTACGTACGT" + "ATT")

    def test_rejects_too_short(self):
        with pytest.raises(GuideError):
            Guide.from_target("g", "AGG")


def test_with_pam(guide):
    relaxed = guide.with_pam("NRG")
    assert relaxed.pam.name == "NRG"
    assert relaxed.protospacer == guide.protospacer
    assert guide.pam.name == "NGG"  # original untouched
