"""Unit tests for repro.core.compiler."""

import pytest

from repro import alphabet
from repro.core.compiler import (
    SearchBudget,
    _segments,
    compile_guide,
    compile_library,
)
from repro.errors import CompileError
from repro.grna.guide import Guide
from repro.grna.library import GuideLibrary
from repro.grna.pam import get_pam


class TestSearchBudget:
    def test_defaults(self):
        budget = SearchBudget()
        assert budget.mismatches == 3
        assert not budget.has_bulges

    def test_has_bulges(self):
        assert SearchBudget(rna_bulges=1).has_bulges
        assert SearchBudget(dna_bulges=1).has_bulges

    def test_bulge_budget_view(self):
        budget = SearchBudget(mismatches=1, rna_bulges=2, dna_bulges=1)
        assert budget.bulges.rna == 2
        assert budget.bulges.dna == 1

    def test_negative_rejected(self):
        with pytest.raises(CompileError):
            SearchBudget(mismatches=-1)


class TestSegments:
    def test_forward_3prime(self, guide):
        segments = _segments(guide, reverse=False)
        assert [s.budgeted for s in segments] == [True, False]
        assert segments[0].text == guide.protospacer
        assert segments[1].text == "NGG"

    def test_reverse_3prime(self, guide):
        segments = _segments(guide, reverse=True)
        assert [s.budgeted for s in segments] == [False, True]
        assert segments[0].text == "CCN"
        assert segments[1].text == alphabet.reverse_complement(guide.protospacer)

    def test_forward_5prime(self):
        guide = Guide("g", "ACGTACGTACGTACGTACGT", get_pam("TTTV"))
        segments = _segments(guide, reverse=False)
        assert [s.budgeted for s in segments] == [False, True]
        assert segments[0].text == "TTTV"

    def test_reverse_5prime(self):
        guide = Guide("g", "ACGTACGTACGTACGTACGT", get_pam("TTTV"))
        segments = _segments(guide, reverse=True)
        assert [s.budgeted for s in segments] == [True, False]
        assert segments[1].text == "BAAA"


class TestCompiledGuide:
    def test_strand_pair(self, compiled_guide):
        forward_labels = {
            l.strand for s in compiled_guide.forward.states() for l in s.accept_labels
        }
        reverse_labels = {
            l.strand for s in compiled_guide.reverse.states() for l in s.accept_labels
        }
        assert forward_labels == {"+"}
        assert reverse_labels == {"-"}

    def test_combined_counts(self, compiled_guide):
        assert (
            compiled_guide.combined.num_states
            == compiled_guide.forward.num_states + compiled_guide.reverse.num_states
        )
        assert compiled_guide.num_states == compiled_guide.combined.num_states

    def test_cached_properties_stable(self, compiled_guide):
        assert compiled_guide.homogeneous is compiled_guide.homogeneous
        assert compiled_guide.dfa is compiled_guide.dfa

    def test_num_stes(self, compiled_guide):
        assert compiled_guide.num_stes == compiled_guide.homogeneous.num_stes

    def test_bulged_compile_uses_bulge_builder(self, guide):
        compiled = compile_guide(guide, SearchBudget(mismatches=0, rna_bulges=1))
        profiles = {
            (l.rna_bulges, l.dna_bulges)
            for s in compiled.forward.states()
            for l in s.accept_labels
        }
        assert (1, 0) in profiles


class TestCompiledLibrary:
    def test_guides_compiled(self, compiled_library, library):
        assert len(compiled_library) == len(library)
        assert [c.guide.name for c in compiled_library] == [g.name for g in library]

    def test_combined_network_size(self, compiled_library):
        assert compiled_library.num_stes == sum(
            c.num_stes for c in compiled_library
        )
        assert compiled_library.homogeneous.num_stes == compiled_library.num_stes

    def test_stats(self, compiled_library):
        stats = compiled_library.stats()
        assert stats.num_stes == compiled_library.num_stes
        assert stats.num_reports >= 2 * len(compiled_library)

    def test_empty_library_rejected(self, mismatch_budget):
        with pytest.raises(Exception):
            compile_library(GuideLibrary(()), mismatch_budget)
