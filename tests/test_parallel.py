"""Differential tests pinning ParallelSearch to the serial paths.

The parallel executor's correctness story: for every genome, guide
set, budget, worker count, chunk size, and scheduling order, the
sharded search must produce the *identical* hit list as

* the whole-genome vectorised kernel (``matcher.find_hits``),
* the chunked serial path (``StreamingSearch``), and
* the independent ground-truth oracle (``NaiveSearcher``).

Property tests sweep randomised inputs (including adversarial chunk
lengths: barely above the overlap, prime-sized, longer than the
genome); deterministic regressions pin the chunk-boundary dedupe rule
(``hit.end <= chunk.overlap``) for the parallel merge, and the
degraded modes (``workers=1``, pool spawn failure) are exercised
explicitly.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    NaiveSearcher,
    OffTargetSearch,
    ParallelSearch,
    SearchBudget,
    StreamingSearch,
    random_genome,
    sample_guides_from_genome,
)
from repro.core import matcher
from repro.core import parallel as parallel_module
from repro.core.parallel import ShardTask, _search_shard, merge_shards
from repro.errors import EngineError
from repro.genome.sequence import Sequence
from repro.grna.guide import Guide

from differential import (
    DifferentialCase,
    adversarial_chunk_length as _chunk_length_for,
    assert_engines_agree,
)
from helpers import assert_equivalent_hits, hit_multiset, hit_spans

protospacer = st.text(alphabet="ACGT", min_size=10, max_size=14)
genome_text = st.text(alphabet="ACGTN", min_size=0, max_size=260)


# -- the differential property suite ------------------------------------------


@settings(max_examples=12, deadline=None)
@given(
    text=genome_text,
    protos=st.lists(protospacer, min_size=1, max_size=2),
    mismatches=st.integers(min_value=0, max_value=2),
    workers=st.integers(min_value=1, max_value=4),
    chunk_choice=st.integers(min_value=0, max_value=4),
)
def test_parallel_equals_streaming_equals_oracle(
    text, protos, mismatches, workers, chunk_choice
):
    genome = Sequence.from_text("chr", text)
    guides = tuple(Guide(f"g{i}", proto) for i, proto in enumerate(protos))
    budget = SearchBudget(mismatches=mismatches)
    overlap = max(g.site_length for g in guides) + budget.dna_bulges - 1
    case = DifferentialCase(
        genome=genome,
        guides=guides,
        budget=budget,
        chunk_length=_chunk_length_for(overlap, len(genome), chunk_choice),
        workers=workers,
    )
    assert_engines_agree(
        case, engines=("streaming", "streaming-matcher", "bitparallel", "parallel")
    )


@settings(max_examples=8, deadline=None)
@given(
    text=st.text(alphabet="ACGTN", min_size=0, max_size=160),
    proto=protospacer,
    mismatches=st.integers(min_value=0, max_value=1),
    rna=st.integers(min_value=0, max_value=1),
    dna=st.integers(min_value=0, max_value=1),
    workers=st.integers(min_value=1, max_value=3),
    chunk_choice=st.integers(min_value=0, max_value=4),
)
def test_parallel_equals_oracle_bulged(
    text, proto, mismatches, rna, dna, workers, chunk_choice
):
    genome = Sequence.from_text("chr", text)
    guides = [Guide("g", proto)]
    budget = SearchBudget(mismatches=mismatches, rna_bulges=rna, dna_bulges=dna)
    overlap = guides[0].site_length + budget.dna_bulges - 1
    chunk_length = _chunk_length_for(overlap, len(genome), chunk_choice)

    oracle = NaiveSearcher(budget).search(genome, guides)
    sharded = ParallelSearch(
        guides, budget, workers=workers, chunk_length=chunk_length
    ).search(genome)
    assert_equivalent_hits(oracle, sharded)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    order_seed=st.integers(min_value=0, max_value=10**6),
    chunk_choice=st.integers(min_value=0, max_value=4),
    batch_size=st.integers(min_value=1, max_value=3),
)
def test_merge_is_scheduling_order_independent(
    seed, order_seed, chunk_choice, batch_size
):
    # Execute the shards serially in a shuffled order and merge: the
    # result must be bit-identical to the canonical execution, which is
    # exactly the guarantee that makes pool completion order irrelevant.
    genome = random_genome(600, seed=seed, name="chrOrder")
    guides = sample_guides_from_genome(genome, 3, seed=seed + 1)
    budget = SearchBudget(mismatches=2)
    executor = ParallelSearch(
        guides,
        budget,
        workers=1,
        chunk_length=_chunk_length_for(25, len(genome), chunk_choice),
        guide_batch_size=batch_size,
    )
    tasks = executor.shard_tasks(genome)
    shuffled = list(tasks)
    random.Random(order_seed).shuffle(shuffled)
    merged = merge_shards(_search_shard(task) for task in shuffled)
    assert merged == executor.search(genome)
    assert merged == matcher.find_hits(genome, guides, budget)


@settings(max_examples=12, deadline=None)
@given(
    text=st.text(alphabet="ACGTN", min_size=0, max_size=120),
    proto=protospacer,
    workers=st.integers(min_value=2, max_value=12),
)
def test_workers_exceeding_shard_count_is_invariant(text, proto, workers):
    # One guide and a chunk longer than the genome: at most one shard,
    # always fewer than the configured workers. The executor must run
    # it in-process and still match the oracle — including the empty
    # genome, where there are zero shards.
    genome = Sequence.from_text("chr", text)
    guides = [Guide("g", proto)]
    budget = SearchBudget(mismatches=1)
    overlap = guides[0].site_length + budget.dna_bulges - 1
    chunk_length = max(len(text), overlap + 1) + 5
    executor = ParallelSearch(
        guides, budget, workers=workers, chunk_length=chunk_length
    )
    hits, stats = executor.search_with_stats(genome)
    assert stats["num_shards"] <= 1
    assert stats["num_shards"] < workers
    if not text:
        assert stats["num_shards"] == 0
        assert hits == []
    assert_equivalent_hits(NaiveSearcher(budget).search(genome, guides), hits)


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    workers=st.integers(min_value=4, max_value=10),
)
def test_pool_sized_to_shards_when_workers_exceed_them(seed, workers):
    # Three single-guide batches over one chunk: exactly three shards,
    # pooled with more workers configured than shards to fill. The
    # result must be identical to the serial kernel regardless.
    genome = random_genome(1200, seed=seed, name="chrWide")
    guides = sample_guides_from_genome(genome, 3, seed=seed + 1)
    budget = SearchBudget(mismatches=1)
    executor = ParallelSearch(
        guides,
        budget,
        workers=workers,
        chunk_length=4096,
        guide_batch_size=1,
    )
    hits, stats = executor.search_with_stats(genome)
    assert stats["num_shards"] == 3
    assert stats["num_shards"] < stats["workers"]
    assert_equivalent_hits(matcher.find_hits(genome, guides, budget), hits)


# -- chunk-boundary regressions (the `hit.end <= chunk.overlap` rule) ---------


class TestBoundaryStraddle:
    CHUNK = 200

    def _run(self, text, guide, workers=2):
        case = DifferentialCase(
            genome=Sequence.from_text("chrB", text),
            guides=(guide,),
            budget=SearchBudget(mismatches=0),
            chunk_length=self.CHUNK,
            workers=workers,
            label="boundary-straddle",
        )
        # The straddle genomes are crafted to stress the chunked paths,
        # so sweep the kernels too while we are here.
        return assert_engines_agree(case)

    def _genome_with_target_at(self, guide, position, total=600):
        target = guide.concrete_target()
        filler = random_genome(total, seed=7, name="f").text.replace("G", "A")
        # A/T-only filler cannot satisfy the NGG PAM, so the planted
        # target is the only hit and its position is fully controlled.
        filler = filler.replace("C", "T")
        return filler[:position] + target + filler[position + len(target):]

    def test_hit_straddles_chunk_boundary(self, guide):
        site = guide.site_length
        position = self.CHUNK - site // 2  # spans the first boundary
        hits = self._run(self._genome_with_target_at(guide, position), guide)
        assert [h.start for h in hits] == [position]

    def test_hit_wholly_inside_overlap_prefix(self, guide):
        # The site ends exactly at the first chunk's end, so chunk 2
        # sees it entirely inside its overlapped prefix (relative end
        # == overlap) and must drop it; chunk 1 reports it.
        site = guide.site_length
        position = self.CHUNK - site
        hits = self._run(self._genome_with_target_at(guide, position), guide)
        assert [h.start for h in hits] == [position]

    def test_hit_starting_at_position_zero_of_second_chunk(self, guide):
        # Chunk 2 starts at CHUNK - overlap; a site starting exactly
        # there has relative end == overlap + 1, one past the dedupe
        # threshold — the first span chunk 2 owns.
        overlap = guide.site_length - 1
        position = self.CHUNK - overlap
        hits = self._run(self._genome_with_target_at(guide, position), guide)
        assert [h.start for h in hits] == [position]

    def test_shard_filter_matches_streaming_rule(self, guide):
        # Every shard must apply exactly the streaming dedupe rule:
        # union of shard hits == streaming hits, with no duplicates.
        site = guide.site_length
        text = self._genome_with_target_at(guide, self.CHUNK - site + 3, total=700)
        genome = Sequence.from_text("chrB", text)
        budget = SearchBudget(mismatches=1)
        executor = ParallelSearch(
            [guide], budget, workers=1, chunk_length=self.CHUNK
        )
        shard_hits = []
        for task in executor.shard_tasks(genome):
            shard_hits.extend(_search_shard(task).hits)
        streamed = StreamingSearch(
            [guide], budget, chunk_length=self.CHUNK
        ).search(genome)
        assert hit_multiset(shard_hits) == hit_multiset(streamed)
        keys = [h.key for h in shard_hits]
        assert len(keys) == len(set(keys))


# -- degraded modes -----------------------------------------------------------


class TestDegradedModes:
    @pytest.fixture(scope="class")
    def genome(self):
        return random_genome(40_000, seed=31, name="chrPool")

    @pytest.fixture(scope="class")
    def guides(self, genome):
        return sample_guides_from_genome(genome, 2, seed=32)

    def test_workers_one_never_spawns_a_pool(self, genome, guides, monkeypatch):
        def boom(*args, **kwargs):  # pragma: no cover - must not be called
            raise AssertionError("workers=1 must not create a process pool")

        monkeypatch.setattr(parallel_module, "ProcessPoolExecutor", boom)
        executor = ParallelSearch(
            guides, SearchBudget(mismatches=2), workers=1, chunk_length=9000
        )
        hits, stats = executor.search_with_stats(genome)
        assert stats["pooled"] is False
        assert stats["serial_fallback"] is False
        assert hit_spans(hits) == hit_spans(
            matcher.find_hits(genome, guides, SearchBudget(mismatches=2))
        )

    def test_pool_spawn_failure_falls_back_to_serial(self, genome, guides, monkeypatch):
        def broken(*args, **kwargs):
            raise OSError("no processes for you")

        monkeypatch.setattr(parallel_module, "ProcessPoolExecutor", broken)
        executor = ParallelSearch(
            guides, SearchBudget(mismatches=2), workers=4, chunk_length=9000
        )
        hits, stats = executor.search_with_stats(genome)
        assert stats["serial_fallback"] is True
        assert stats["pooled"] is False
        assert hits == matcher.find_hits(genome, guides, SearchBudget(mismatches=2))

    def test_single_shard_runs_in_process(self, genome, guides, monkeypatch):
        monkeypatch.setattr(
            parallel_module, "ProcessPoolExecutor",
            lambda *a, **k: (_ for _ in ()).throw(AssertionError("pooled")),
        )
        executor = ParallelSearch(
            guides,
            SearchBudget(mismatches=1),
            workers=4,
            chunk_length=1 << 20,  # one chunk
            guide_batch_size=len(list(guides)),  # one batch -> one shard
        )
        hits, stats = executor.search_with_stats(genome)
        assert stats["num_shards"] == 1
        assert stats["pooled"] is False
        assert hit_spans(hits) == hit_spans(
            matcher.find_hits(genome, guides, SearchBudget(mismatches=1))
        )


# -- executor mechanics -------------------------------------------------------


class TestExecutor:
    @pytest.fixture(scope="class")
    def genome(self):
        return random_genome(60_000, seed=41, name="chrExec")

    @pytest.fixture(scope="class")
    def guides(self, genome):
        return sample_guides_from_genome(genome, 4, seed=42)

    def test_pooled_run_identical_to_serial(self, genome, guides):
        budget = SearchBudget(mismatches=3)
        serial = ParallelSearch(guides, budget, workers=1, chunk_length=16_000)
        pooled = ParallelSearch(guides, budget, workers=2, chunk_length=16_000)
        assert pooled.search(genome) == serial.search(genome)

    def test_stats_shape(self, genome, guides):
        executor = ParallelSearch(
            guides,
            SearchBudget(mismatches=2),
            workers=2,
            chunk_length=16_000,
            guide_batch_size=2,
        )
        hits, stats = executor.search_with_stats(genome)
        assert stats["workers"] == 2
        assert stats["num_guide_batches"] == 2
        assert stats["num_shards"] == stats["num_chunks"] * stats["num_guide_batches"]
        assert len(stats["shards"]) == stats["num_shards"]
        assert all(shard["seconds"] >= 0 for shard in stats["shards"])
        assert sum(shard["hits"] for shard in stats["shards"]) >= len(hits)
        assert stats["wall_seconds"] > 0
        assert stats["overlap"] == executor.overlap

    def test_guide_batches_partition_the_library(self, guides):
        executor = ParallelSearch(
            guides, SearchBudget(), workers=3, guide_batch_size=1
        )
        batches = executor.guide_batches
        assert [g for batch in batches for g in batch] == list(guides)
        assert all(len(batch) == 1 for batch in batches)

    def test_search_many(self, guides):
        chr1 = random_genome(20_000, seed=43, name="chr1")
        chr2 = random_genome(20_000, seed=44, name="chr2")
        budget = SearchBudget(mismatches=3)
        sharded = ParallelSearch(
            guides, budget, workers=2, chunk_length=7000
        ).search_many([chr1, chr2])
        whole = matcher.find_hits(chr1, guides, budget) + matcher.find_hits(
            chr2, guides, budget
        )
        assert hit_multiset(sharded) == hit_multiset(whole)

    def test_empty_genome(self, guides):
        executor = ParallelSearch(guides, SearchBudget(), workers=2)
        hits, stats = executor.search_with_stats(Sequence.from_text("e", ""))
        assert hits == []
        assert stats["num_shards"] == 0

    def test_task_payloads_are_packed(self, genome, guides):
        executor = ParallelSearch(guides, SearchBudget(), workers=2, chunk_length=16_000)
        task = executor.shard_tasks(genome)[0]
        assert isinstance(task, ShardTask)
        assert isinstance(task.packed, bytes)
        # 2-bit packing: four bases per byte (plus the N bitmap).
        assert len(task.packed) == (task.chunk_length + 3) // 4

    def test_validation(self, guides):
        with pytest.raises(EngineError):
            ParallelSearch([], SearchBudget())
        with pytest.raises(EngineError):
            ParallelSearch(guides, SearchBudget(), workers=0)
        with pytest.raises(EngineError):
            ParallelSearch(guides, SearchBudget(), workers=2.5)
        with pytest.raises(EngineError):
            ParallelSearch(guides, SearchBudget(), chunk_length=5)
        with pytest.raises(EngineError):
            ParallelSearch(guides, SearchBudget(), guide_batch_size=0)


# -- public API wiring --------------------------------------------------------


class TestOffTargetSearchWorkers:
    @pytest.fixture(scope="class")
    def genome(self):
        return random_genome(50_000, seed=51, name="chrApi")

    @pytest.fixture(scope="class")
    def guides(self, genome):
        return sample_guides_from_genome(genome, 3, seed=52)

    def test_parallel_run_matches_serial_run(self, genome, guides):
        budget = SearchBudget(mismatches=2)
        serial = OffTargetSearch(guides, budget).run(genome, engine="fpga")
        pooled = OffTargetSearch(guides, budget, workers=2, chunk_length=16_000).run(
            genome, engine="fpga"
        )
        assert pooled.hits == serial.hits
        assert pooled.stats["parallel"]["workers"] == 2
        # Modeled platform time does not depend on the host-side path.
        assert pooled.modeled_seconds == serial.modeled_seconds

    def test_workers_validation(self, guides):
        with pytest.raises(EngineError):
            OffTargetSearch(guides, workers=0)

    def test_baselines_still_run(self, genome, guides):
        report = OffTargetSearch(
            guides, SearchBudget(mismatches=2), workers=2
        ).run(genome, engine="cas-offinder")
        assert report.engine == "cas-offinder"
