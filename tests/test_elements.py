"""Unit tests for the full ANML element model (STE + boolean + counter)."""

import numpy as np
import pytest

from repro import alphabet
from repro.automata.charclass import CharClass
from repro.automata.elements import (
    CounterMode,
    ElementNetwork,
    GateKind,
)
from repro.automata.homogeneous import StartMode
from repro.errors import AutomatonError


def _codes(text):
    return alphabet.encode(text)


class TestSteChains:
    def test_literal_chain_reports(self):
        network = ElementNetwork()
        a = network.add_ste(CharClass.of("A"), start=StartMode.ALL_INPUT)
        c = network.add_ste(CharClass.of("C"))
        network.connect(a, c)
        network.mark_report(c, "hit")
        positions = [p for p, _ in network.run(_codes("ACACTAC"))]
        assert positions == [1, 3, 6]

    def test_start_of_data(self):
        network = ElementNetwork()
        a = network.add_ste(CharClass.of("A"), start=StartMode.START_OF_DATA)
        network.mark_report(a, "hit")
        assert [p for p, _ in network.run(_codes("AA"))] == [0]

    def test_gate_cannot_drive_ste(self):
        network = ElementNetwork()
        gate = network.add_gate(GateKind.OR)
        ste = network.add_ste(CharClass.of("A"))
        with pytest.raises(AutomatonError, match="STE outputs"):
            network.connect(gate, ste)

    def test_empty_class_rejected(self):
        with pytest.raises(AutomatonError):
            ElementNetwork().add_ste(CharClass.empty())


class TestGates:
    def _pair(self, kind):
        network = ElementNetwork()
        a = network.add_ste(CharClass.of("A"), start=StartMode.ALL_INPUT)
        c = network.add_ste(CharClass.of("AC"), start=StartMode.ALL_INPUT)
        gate = network.add_gate(kind)
        network.connect(a, gate)
        network.connect(c, gate)
        network.mark_report(gate, "hit")
        return network

    def test_and(self):
        # Both STEs matched only when symbol was A.
        network = self._pair(GateKind.AND)
        assert [p for p, _ in network.run(_codes("ACGA"))] == [0, 3]

    def test_or(self):
        network = self._pair(GateKind.OR)
        assert [p for p, _ in network.run(_codes("ACGA"))] == [0, 1, 3]

    def test_not(self):
        network = ElementNetwork()
        a = network.add_ste(CharClass.of("A"), start=StartMode.ALL_INPUT)
        inverter = network.add_gate(GateKind.NOT)
        network.connect(a, inverter)
        network.mark_report(inverter, "hit")
        # NOT is asserted whenever the previous symbol was not A
        # (including the drain cycle after the last symbol).
        positions = [p for p, _ in network.run(_codes("AC"))]
        assert positions == [1]

    def test_not_requires_one_input(self):
        network = ElementNetwork()
        inverter = network.add_gate(GateKind.NOT)
        network.mark_report(inverter, "x")
        with pytest.raises(AutomatonError):
            list(network.run(_codes("A")))

    def test_gate_chains_evaluate_in_order(self):
        network = ElementNetwork()
        a = network.add_ste(CharClass.of("A"), start=StartMode.ALL_INPUT)
        first = network.add_gate(GateKind.OR)
        network.connect(a, first)
        second = network.add_gate(GateKind.AND)
        network.connect(first, second)
        network.connect(a, second)
        network.mark_report(second, "hit")
        assert [p for p, _ in network.run(_codes("CA"))] == [1]


class TestCounters:
    def _counting_network(self, target, mode=CounterMode.LATCH):
        network = ElementNetwork()
        pulse = network.add_ste(CharClass.of("A"), start=StartMode.ALL_INPUT)
        counter = network.add_counter(target, mode=mode)
        network.connect_count(pulse, counter)
        network.mark_report(counter, "reached")
        return network, counter

    def test_latch_mode_stays_asserted(self):
        network, _ = self._counting_network(2, CounterMode.LATCH)
        positions = [p for p, _ in network.run(_codes("AACCC"))]
        assert positions == [1, 2, 3, 4]

    def test_pulse_mode_fires_once(self):
        network, _ = self._counting_network(2, CounterMode.PULSE)
        positions = [p for p, _ in network.run(_codes("AACAA"))]
        assert positions == [1]

    def test_saturation(self):
        network, _ = self._counting_network(1, CounterMode.PULSE)
        # Saturated counter does not pulse again without reset.
        assert [p for p, _ in network.run(_codes("AAAA"))] == [0]

    def test_reset_precedes_count(self):
        network = ElementNetwork()
        pulse = network.add_ste(CharClass.of("A"), start=StartMode.ALL_INPUT)
        reset = network.add_ste(CharClass.of("G"), start=StartMode.ALL_INPUT)
        counter = network.add_counter(2, mode=CounterMode.LATCH)
        network.connect_count(pulse, counter)
        network.connect_reset(reset, counter)
        network.mark_report(counter, "reached")
        # A A -> reached at pos 1; G resets; one more A is not enough.
        assert [p for p, _ in network.run(_codes("AAGA"))] == [1]

    def test_bad_target_rejected(self):
        with pytest.raises(AutomatonError):
            ElementNetwork().add_counter(0)

    def test_count_port_type_checked(self):
        network = ElementNetwork()
        ste = network.add_ste(CharClass.of("A"))
        with pytest.raises(AutomatonError):
            network.connect_count(ste, ste)
        with pytest.raises(AutomatonError):
            network.connect(ste, network.add_counter(1))


class TestIntrospection:
    def test_counts(self):
        network = ElementNetwork()
        network.add_ste(CharClass.of("A"))
        network.add_gate(GateKind.AND)
        network.add_counter(3)
        assert network.num_elements == 3
        assert network.num_stes() == 1
        assert network.num_gates() == 1
        assert network.num_counters() == 1

    def test_unknown_ids_rejected(self):
        network = ElementNetwork()
        with pytest.raises(AutomatonError):
            network.mark_report(5, "x")
