"""Cluster suite: consistent-hash routing, membership, cross-node chaos.

The headline invariant (ISSUE: fault-tolerant sharded serving): behind
a :class:`~repro.cluster.ClusterRouter` fronting N backend servers,
every client request either returns bit-identically to a solo
:class:`~repro.core.OffTargetSearch` or fails with a typed
:class:`~repro.errors.ReproError` — and **per backend** every request
id executes at most once, whatever the router re-issued during
failover. Layers:

1. ``TestHashRing`` / ``TestRouteKey`` — deterministic, balanced,
   canonically-keyed assignment; quarantine displaces only the keys
   that must move.
2. ``TestMembership`` — the hysteresis ladder against real backends:
   kill/quarantine/restart/rejoin, not-ready demotion, blackholed
   probes, traffic failures feeding the same ladder.
3. ``TestRouterConfigRules`` — the SVC008–SVC011 config checks.
4. ``TestClusterRouting`` / ``TestFailover`` / ``TestWarmupForwarding``
   — e2e routing, same-id failover re-issue, artefact adoption.
5. ``TestCrossNodeChaosSweep`` — the 20-seed acceptance sweep with
   backend kills mid-run and router→backend transport sabotage.
6. ``TestRetryDeadline`` — the client retry schedule bounded by an
   overall deadline budget.
7. ``TestRouteSubprocess`` — ``repro-offtarget route`` against three
   real ``serve`` subprocesses, SIGTERM drain, ``--stats-json``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from collections import Counter
from dataclasses import replace

import pytest

from repro import (
    Metrics,
    OffTargetSearch,
    OffTargetService,
    SearchBudget,
    random_genome,
    sample_guides_from_genome,
)
from repro.check import check_router_config, check_server
from repro.cluster import (
    BackendSpec,
    ClusterRouter,
    HashRing,
    Membership,
    RouterConfig,
    route_key,
    specs_from_endpoints,
)
from repro.errors import (
    DeadlineExceededError,
    ReproError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.service import ChaosPlan, OffTargetServer, RetryPolicy, ServiceClient

from differential import DifferentialCase, assert_engines_agree
from test_service_socket import (
    REPO,
    SRC,
    SUBPROCESS_TIMEOUT,
    start_serve_subprocess,
)

CLIENT_TIMEOUT = 20  # every socket op in this file is bounded

# The workload every routed request replays — the same differential
# case shape as the single-node chaos suite, so the oracle fixture is
# transitively pinned to the naive reference search.
_GENOME = random_genome(3000, seed=61, name="chrCluster")
CASE = DifferentialCase(
    genome=_GENOME,
    guides=tuple(sample_guides_from_genome(_GENOME, 3, seed=62)),
    budget=SearchBudget(mismatches=2),
    label="cluster-workload",
)

# A second genome for register-broadcast tests: sessions must exist on
# every backend because panels of one session hash to different nodes.
_GENOME2 = random_genome(2200, seed=71, name="chrSecond")


@pytest.fixture(scope="module")
def genome():
    return CASE.genome


@pytest.fixture(scope="module")
def guides():
    return CASE.guides


@pytest.fixture(scope="module")
def budget():
    return CASE.budget


@pytest.fixture(scope="module")
def oracle():
    """Solo-search hits, the bit-identical reference for every request."""
    return tuple(assert_engines_agree(CASE))


@pytest.fixture(scope="module")
def genome2():
    return _GENOME2


def make_backend(genome, *, port=0, batch_window=0.002, chaos=None, **kwargs):
    service = OffTargetService(
        background=True, batch_window_seconds=batch_window, chunk_length=1 << 12
    )
    service.add_genome("default", genome)
    server = OffTargetServer(service, port=port, chaos=chaos, **kwargs)
    if port:
        # Rebinding a just-died server's port can transiently hit
        # EADDRINUSE while the old acceptor thread's accept() poll
        # (<= 0.2 s) still pins the closed listener fd; retry briefly,
        # exactly as a process supervisor would.
        deadline = time.monotonic() + 5
        while True:
            try:
                server.start()
                break
            except OSError:
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.05)
    else:
        server.start()
    return server


def make_cluster(
    genome, count=3, *, replicas=2, chaos=None, batch_window=0.002, **config_kwargs
):
    """N in-process backends behind a router with isolated metrics.

    The router starts with ``probe=False``: liveness changes happen
    only through explicit ``probe_once`` calls or router-observed
    traffic failures, which is what makes these tests deterministic.
    """
    backends = {}
    specs = []
    for index in range(count):
        server = make_backend(genome, batch_window=batch_window)
        host, port = server.address
        name = f"b{index}"
        backends[name] = server
        specs.append(BackendSpec(name=name, host=host, port=port))
    config = RouterConfig(backends=tuple(specs), replicas=replicas, **config_kwargs)
    router = ClusterRouter(config, chaos=chaos, metrics=Metrics())
    router.start(probe=False)
    return router, backends


def stop_cluster(router, backends):
    router.stop()
    for server in backends.values():
        server.stop()


def router_client(router, **kwargs):
    host, port = router.address
    kwargs.setdefault("timeout_seconds", CLIENT_TIMEOUT)
    return ServiceClient(host, port, **kwargs)


def primary_of(router, key):
    """The live backend the router would forward *key* to first."""
    live = set(router.membership.live_names())
    for name in router.ring.preference(key):
        if name in live:
            return name
    return ""


def errors_of(report):
    return [d for d in report.diagnostics if d.severity.name == "ERROR"]


def rules_of(report):
    return [d.rule for d in report.errors]


class TestHashRing:
    def test_assignment_is_deterministic_and_total(self):
        ring = HashRing(("b0", "b1", "b2"))
        again = HashRing(("b2", "b1", "b0"))  # construction-order blind
        keys = [f"key-{index}" for index in range(50)]
        assert [ring.owner(key) for key in keys] == [
            again.owner(key) for key in keys
        ]
        for key in keys:
            preference = ring.preference(key)
            assert sorted(preference) == ["b0", "b1", "b2"]
            assert preference[0] == ring.owner(key)

    def test_spread_is_reasonable(self):
        names = tuple(f"b{index}" for index in range(4))
        ring = HashRing(names, virtual_nodes=64)
        owners = Counter(ring.owner(f"panel-{index}") for index in range(2000))
        assert set(owners) == set(names)
        for name in names:
            assert 0.10 <= owners[name] / 2000 <= 0.45, owners

    def test_quarantine_moves_only_the_displaced_keys(self):
        # Dropping one name from consideration must promote exactly
        # the next name in each affected key's walk and leave every
        # other assignment untouched — the consistent-hash property
        # that keeps failover cache damage local.
        ring = HashRing(("b0", "b1", "b2"))
        for index in range(300):
            preference = ring.preference(f"k{index}")
            survivors = [name for name in preference if name != "b1"]
            if preference[0] != "b1":
                assert survivors[0] == preference[0]
            else:
                assert survivors[0] == preference[1]

    def test_validation_is_typed(self):
        with pytest.raises(ServiceError):
            HashRing(())
        with pytest.raises(ServiceError):
            HashRing(("b0", "b0"))
        with pytest.raises(ServiceError):
            HashRing(("b0",), virtual_nodes=0)


class TestRouteKey:
    def test_key_is_canonical_over_names_and_order(self, guides, budget):
        renamed = tuple(
            replace(guide, name=f"alias-{index}")
            for index, guide in enumerate(guides)
        )
        assert route_key("s", guides, budget) == route_key("s", renamed, budget)
        assert route_key("s", tuple(reversed(guides)), budget) == route_key(
            "s", guides, budget
        )

    def test_key_separates_sessions_and_budgets(self, guides, budget):
        assert route_key("a", guides, budget) != route_key("b", guides, budget)
        assert route_key("a", guides, budget) != route_key(
            "a", guides, SearchBudget(mismatches=3)
        )


class TestMembership:
    def test_backend_spec_parse(self):
        spec = BackendSpec.parse("127.0.0.1:9100", name="b0")
        assert (spec.name, spec.host, spec.port) == ("b0", "127.0.0.1", 9100)
        assert spec.endpoint == "127.0.0.1:9100"
        for bad in ("127.0.0.1", ":9100", "127.0.0.1:web", "host:0"):
            with pytest.raises(ServiceError):
                BackendSpec.parse(bad)

    def test_specs_from_endpoints_names_are_stable(self):
        specs = specs_from_endpoints(["127.0.0.1:9100", "127.0.0.1:9101"])
        assert [spec.name for spec in specs] == ["b0", "b1"]
        assert [spec.port for spec in specs] == [9100, 9101]

    def test_kill_quarantine_restart_rejoin(self, genome):
        server = make_backend(genome)
        host, port = server.address
        membership = Membership(
            [BackendSpec("b0", host, port)],
            failure_threshold=2,
            recovery_threshold=2,
            probe_timeout_seconds=1.0,
        )
        assert membership.probe_once() == {"b0": True}
        health = membership.health_of("b0")
        assert health["ready"] and health["uptime_seconds"] >= 0
        server.die()
        # Hysteresis: one failure is not enough to demote...
        assert membership.probe_once() == {"b0": True}
        # ...the threshold-th consecutive failure is.
        assert membership.probe_once() == {"b0": False}
        assert membership.live_names() == ()
        restarted = make_backend(genome, port=port)
        try:
            # Recovery pays its own full ladder before traffic returns.
            assert membership.probe_once() == {"b0": False}
            assert membership.probe_once() == {"b0": True}
            state = membership.describe()["b0"]
            assert state["quarantines"] == 1
            assert state["rejoins"] == 1
        finally:
            restarted.stop()
            server.stop()

    def test_not_ready_backend_counts_as_probe_failure(self, genome):
        service = OffTargetService(
            background=True, batch_window_seconds=0.002, chunk_length=1 << 12
        )
        service.add_genome("default", genome)
        server = OffTargetServer(service)
        host, port = server.start()
        try:
            membership = Membership(
                [BackendSpec("b0", host, port)],
                failure_threshold=1,
                recovery_threshold=1,
            )
            assert membership.probe_once() == {"b0": True}
            service.close()  # alive on the socket, refusing work
            assert membership.probe_once() == {"b0": False}
            assert (
                membership.describe()["b0"]["last_error"]
                == "backend reports not ready"
            )
        finally:
            server.stop()

    def test_blackholed_probe_quarantines_then_recovers(self, genome):
        server = make_backend(genome)
        host, port = server.address
        plan = ChaosPlan.scripted({"probe.send": ["blackhole_probe"]})
        membership = Membership(
            [BackendSpec("b0", host, port)],
            failure_threshold=1,
            recovery_threshold=1,
            chaos=plan,
        )
        try:
            # The backend is perfectly healthy; only the probe path is
            # sabotaged — quarantine must still trip, and lift as soon
            # as probes get through again.
            assert membership.probe_once() == {"b0": False}
            assert membership.live_names() == ()
            assert membership.probe_once() == {"b0": True}
            assert membership.live_names() == ("b0",)
        finally:
            server.stop()

    def test_traffic_failures_feed_the_same_ladder(self):
        metrics = Metrics()
        membership = Membership(
            [BackendSpec("b0", "127.0.0.1", 9100)],
            failure_threshold=2,
            recovery_threshold=1,
            metrics=metrics,
        )
        membership.report_failure("b0", "connection reset")
        assert membership.is_live("b0")
        membership.report_failure("b0", "connection reset")
        assert not membership.is_live("b0")
        assert metrics.counter("route.members.traffic_failures") == 2
        assert metrics.counter("route.members.quarantines") == 1

    def test_unknown_backend_is_typed(self):
        membership = Membership([BackendSpec("b0", "127.0.0.1", 9100)])
        with pytest.raises(ServiceError):
            membership.probe("nope")
        with pytest.raises(ServiceError):
            membership.spec_of("nope")

    def test_validation_is_typed(self):
        spec = BackendSpec("b0", "127.0.0.1", 9100)
        with pytest.raises(ServiceError):
            Membership([])
        with pytest.raises(ServiceError):
            Membership([spec, BackendSpec("b0", "127.0.0.1", 9101)])
        with pytest.raises(ServiceError):
            Membership([spec], probe_interval_seconds=0)
        with pytest.raises(ServiceError):
            Membership([spec], failure_threshold=0)


class TestRouterConfigRules:
    @staticmethod
    def specs(count=2):
        return tuple(
            BackendSpec(f"b{index}", "127.0.0.1", 9100 + index)
            for index in range(count)
        )

    def test_svc008_empty_backends(self):
        report = check_router_config(RouterConfig())
        assert "SVC008" in rules_of(report)
        with pytest.raises(ServiceError):
            ClusterRouter(RouterConfig())

    def test_svc009_duplicate_endpoints_and_names(self):
        shared_port = (
            BackendSpec("b0", "127.0.0.1", 9100),
            BackendSpec("b1", "127.0.0.1", 9100),
        )
        assert "SVC009" in rules_of(
            check_router_config(RouterConfig(backends=shared_port))
        )
        shared_name = (
            BackendSpec("x", "127.0.0.1", 9100),
            BackendSpec("x", "127.0.0.1", 9101),
        )
        assert "SVC009" in rules_of(
            check_router_config(RouterConfig(backends=shared_name))
        )

    def test_svc010_replica_bounds(self):
        specs = self.specs()
        assert "SVC010" in rules_of(
            check_router_config(RouterConfig(backends=specs, replicas=0))
        )
        # More replicas than backends is degraded-but-runnable: warn.
        report = check_router_config(RouterConfig(backends=specs, replicas=5))
        assert not report.errors
        assert any(d.rule == "SVC010" for d in report.warnings)

    def test_svc011_timing_and_limit_bounds(self):
        specs = self.specs()
        for bad in (
            {"probe_interval_seconds": 0},
            {"probe_timeout_seconds": -1},
            {"failure_threshold": 0},
            {"recovery_threshold": 0},
            {"drain_deadline_seconds": -1},
            {"max_inflight": 0},
            {"virtual_nodes": 0},
        ):
            report = check_router_config(RouterConfig(backends=specs, **bad))
            assert "SVC011" in rules_of(report), bad
        slow = check_router_config(
            RouterConfig(
                backends=specs,
                probe_timeout_seconds=2.0,
                probe_interval_seconds=1.0,
            )
        )
        assert not slow.errors
        assert any(d.rule == "SVC011" for d in slow.warnings)

    def test_healthy_config_is_clean(self):
        report = check_router_config(RouterConfig(backends=self.specs(3)))
        assert not report.errors
        assert not report.warnings


class TestClusterRouting:
    def test_query_through_router_is_oracle_identical(
        self, genome, guides, budget, oracle
    ):
        router, backends = make_cluster(genome, 3)
        try:
            with router_client(router) as client:
                assert client.ping()
                result = client.query(guides, budget, request_id="route-1")
            assert result.hits == oracle
            executed = {
                name: server.execution_counts()
                for name, server in backends.items()
            }
            assert sum(len(counts) for counts in executed.values()) == 1
            assert all(
                count == 1
                for counts in executed.values()
                for count in counts.values()
            )
            assert router.metrics.counter("route.forwarded") == 1
        finally:
            stop_cluster(router, backends)

    def test_panel_affinity_pins_a_panel_to_one_backend(
        self, genome, guides, budget, oracle
    ):
        router, backends = make_cluster(genome, 3)
        key = route_key("default", guides, budget)
        owner = primary_of(router, key)
        try:
            with router_client(router) as client:
                for index in range(4):
                    result = client.query(
                        guides, budget, request_id=f"affinity-{index}"
                    )
                    assert result.hits == oracle
            counts = backends[owner].execution_counts()
            assert sorted(counts) == [f"affinity-{index}" for index in range(4)]
            assert all(count == 1 for count in counts.values())
            for name, server in backends.items():
                if name != owner:
                    assert server.execution_counts() == {}
        finally:
            stop_cluster(router, backends)

    def test_register_broadcasts_to_every_live_backend(
        self, genome, genome2, budget
    ):
        guides2 = tuple(sample_guides_from_genome(genome2, 2, seed=72))
        expected = OffTargetSearch(guides2, budget).run(genome2).hits
        router, backends = make_cluster(genome, 3)
        try:
            with router_client(router) as client:
                created = client.register_genome(
                    "second", [(genome2.name, genome2.text)]
                )
                assert created
                # Idempotent everywhere: the re-broadcast re-acks.
                assert not client.register_genome(
                    "second", [(genome2.name, genome2.text)]
                )
                result = client.query(
                    guides2, budget, session_id="second", request_id="second-1"
                )
            assert result.hits == expected
            for server in backends.values():
                assert "second" in server.health()["sessions"]
            assert router.metrics.counter("route.registers") == 2
        finally:
            stop_cluster(router, backends)

    def test_admission_control_sheds_typed_overloaded(
        self, genome, guides, budget, oracle
    ):
        router, backends = make_cluster(genome, 2, max_inflight=1)
        try:
            with router_client(router) as client:
                with router._state_lock:
                    router._inflight = 1  # pin the admission gauge full
                with pytest.raises(ServiceOverloadedError):
                    client.query(guides, budget, request_id="shed-1")
                with router._state_lock:
                    router._inflight = 0
                result = client.query(guides, budget, request_id="shed-2")
            assert result.hits == oracle
            assert router.metrics.counter("route.shed") == 1
        finally:
            stop_cluster(router, backends)

    def test_node_local_ops_are_refused(self, genome):
        router, backends = make_cluster(genome, 2)
        try:
            with router_client(router) as client:
                response = client.exchange({"op": "cache_adopt", "artefact": ""})
            assert response["ok"] is False
            assert response["error"] == "bad_request"
            assert "node-local" in response["detail"]
        finally:
            stop_cluster(router, backends)

    def test_router_health_and_stats_ops(self, genome, guides, budget):
        router, backends = make_cluster(genome, 3)
        try:
            with router_client(router) as client:
                client.query(guides, budget, request_id="obs-1")
                health = client.health()
                stats = client.stats()
            assert health["role"] == "router"
            assert health["ready"] is True
            assert set(health["live_members"]) == {"b0", "b1", "b2"}
            assert health["inflight"] == 0
            assert stats["role"] == "router"
            assert stats["forwarded"] == 1
            assert stats["failovers"] == 0
            assert set(stats["backends"]) == {"b0", "b1", "b2"}
        finally:
            stop_cluster(router, backends)

    def test_backend_health_carries_load_signals(self, genome, guides, budget):
        # The enriched health op: the signals a load-aware membership
        # prober reads without a separate stats roundtrip.
        server = make_backend(genome)
        host, port = server.address
        try:
            with ServiceClient(
                host, port, timeout_seconds=CLIENT_TIMEOUT
            ) as client:
                client.query(guides, budget, request_id="h-1")
                health = client.health()
            assert health["inflight"] == 0
            assert health["uptime_seconds"] > 0
            assert health["sessions"] == ["default"]
            cache = health["cache"]
            assert cache["misses"] == len(guides)
            assert cache["adoptions"] == 0
            assert health["executions"] == 1
        finally:
            server.stop()


class TestFailover:
    def test_kill_mid_batch_reissues_same_id_to_a_replica(
        self, genome, guides, budget, oracle
    ):
        # The deterministic heart of the tentpole: the primary dies
        # while the query sits in its batch window; the router must
        # re-issue the identical payload — same request id — to the
        # next candidate, and the client sees one oracle answer.
        router, backends = make_cluster(
            genome, 3, batch_window=0.05, failure_threshold=1
        )
        key = route_key("default", guides, budget)
        primary = primary_of(router, key)
        outcome = {}

        def issue():
            with router_client(router) as client:
                outcome["result"] = client.query(
                    guides, budget, request_id="mid-batch-1"
                )

        try:
            worker = threading.Thread(target=issue)
            worker.start()
            time.sleep(0.02)  # inside the primary's 50 ms batch window
            backends[primary].die()
            worker.join(timeout=CLIENT_TIMEOUT)
            assert not worker.is_alive(), "failover hung"
            assert outcome["result"].hits == oracle
            assert router.metrics.counter("route.failovers") >= 1
            assert router.metrics.counter("route.reissues") >= 1
            # Per backend, the id executed at most once — the dead
            # primary may legitimately have executed before dying; no
            # surviving node may have executed twice.
            survivors_serving = 0
            for name, server in backends.items():
                counts = server.execution_counts()
                assert set(counts) <= {"mid-batch-1"}, (name, counts)
                assert all(count == 1 for count in counts.values()), (
                    name,
                    counts,
                )
                if name != primary and counts:
                    survivors_serving += 1
            assert survivors_serving == 1
            # The traffic failure fed the membership ladder directly.
            assert not router.membership.is_live(primary)
        finally:
            stop_cluster(router, backends)

    def test_all_candidates_dead_is_typed_overloaded(
        self, genome, guides, budget
    ):
        router, backends = make_cluster(genome, 2, failure_threshold=1)
        try:
            for server in backends.values():
                server.die()
            with router_client(router) as client:
                # First attempt: both candidates fail over and are
                # quarantined by their traffic failures.
                with pytest.raises(ServiceOverloadedError):
                    client.query(guides, budget, request_id="doomed-1")
                assert router.membership.live_names() == ()
                # Second attempt: no candidates at all, still typed.
                with pytest.raises(ServiceOverloadedError):
                    client.query(guides, budget, request_id="doomed-2")
                health = client.health()
            assert router.metrics.counter("route.no_backend") >= 1
            assert health["ready"] is False
            for server in backends.values():
                assert server.execution_counts() == {}
        finally:
            stop_cluster(router, backends)


class TestWarmupForwarding:
    def test_displaced_panel_adopts_the_holders_artefacts(
        self, genome, guides, budget, oracle
    ):
        router, backends = make_cluster(
            genome, 2, replicas=1, failure_threshold=1, recovery_threshold=1
        )
        key = route_key("default", guides, budget)
        holder = primary_of(router, key)
        target = next(name for name in backends if name != holder)
        try:
            with router_client(router) as client:
                assert client.query(
                    guides, budget, request_id="warm-1"
                ).hits == oracle
                assert set(router.compiled_holders().values()) == {holder}
                # Quarantine the holder: routing moves off it, but the
                # node itself stays up — exports still work, which is
                # the point (quarantine gates routing, not artefacts).
                router.membership.report_failure(holder, "operator quarantine")
                assert router.membership.live_names() == (target,)
                assert client.query(
                    guides, budget, request_id="warm-2"
                ).hits == oracle
            assert router.metrics.counter("route.warmup_forwards") == len(guides)
            assert set(router.compiled_holders().values()) == {target}
            # The target served from adopted artefacts, not recompiles.
            cache = backends[target].health()["cache"]
            assert cache["adoptions"] == len(guides)
            assert cache["misses"] == 0
            assert backends[target].execution_counts() == {"warm-2": 1}
        finally:
            stop_cluster(router, backends)


class TestQuarantineRejoin:
    def test_recovered_backend_rejoins_within_one_probe_cycle(
        self, genome, guides, budget, oracle
    ):
        # The acceptance statement, literally: a killed node is
        # quarantined, a restart on the same endpoint rejoins after
        # ONE probe_once call, and the very next query lands on it.
        router, backends = make_cluster(
            genome, 2, replicas=1, failure_threshold=1, recovery_threshold=1
        )
        key = route_key("default", guides, budget)
        primary = primary_of(router, key)
        host, port = backends[primary].address
        restarted = None
        try:
            backends[primary].die()
            assert router.membership.probe_once()[primary] is False
            with router_client(router) as client:
                # Routed around the quarantined node, still oracle-true.
                assert client.query(
                    guides, budget, request_id="rq-1"
                ).hits == oracle
                restarted = make_backend(genome, port=port)
                assert router.membership.probe_once()[primary] is True
                state = router.membership.describe()[primary]
                assert state["quarantines"] == 1
                assert state["rejoins"] == 1
                assert client.query(
                    guides, budget, request_id="rq-2"
                ).hits == oracle
            assert restarted.execution_counts() == {"rq-2": 1}
            assert router.metrics.counter("route.members.rejoins") == 1
        finally:
            if restarted is not None:
                restarted.stop()
            stop_cluster(router, backends)


class TestCrossNodeChaosSweep:
    """The acceptance sweep: 20 seeded plans across a 3-node cluster."""

    @pytest.mark.parametrize("seed", range(20))
    def test_every_request_is_oracle_or_typed(
        self, genome, guides, budget, oracle, seed
    ):
        plan = ChaosPlan(
            seed,
            router_rate=0.25,
            backend_rate=0.2,
            slow_pause_seconds=0.0002,
        )
        router, backends = make_cluster(
            genome,
            3,
            chaos=plan,
            failure_threshold=2,
            recovery_threshold=1,
        )
        key = route_key("default", guides, budget)
        alive = set(backends)
        answered = failed = 0
        try:
            host, port = router.address
            with ServiceClient(
                host,
                port,
                timeout_seconds=CLIENT_TIMEOUT,
                retry=RetryPolicy(seed=seed, base_delay_seconds=0.001),
            ) as client:
                for request in range(6):
                    # backend.serve is the harness's crash schedule:
                    # the plan decides when a backend dies, the test
                    # kills the one the router would route to next
                    # (always leaving at least one node standing).
                    action = plan.draw("backend.serve")
                    if action == "kill_mid_batch" and len(alive) > 1:
                        victim = next(
                            (
                                name
                                for name in router.ring.preference(key)
                                if name in alive
                            ),
                            None,
                        )
                        if victim is not None:
                            backends[victim].die()
                            alive.discard(victim)
                    try:
                        result = client.query(
                            guides, budget, request_id=f"cx-{seed}-{request}"
                        )
                    except ReproError:
                        failed += 1  # typed, allowed; never a hang
                    else:
                        assert result.hits == oracle, f"seed {seed} diverged"
                        answered += 1
            assert answered + failed == 6
            # Per backend — dead ones included, their state is still
            # inspectable post-mortem — every id executed exactly once.
            for name, server in backends.items():
                counts = server.execution_counts()
                assert all(count == 1 for count in counts.values()), (
                    seed,
                    name,
                    counts,
                )
            for name in alive:
                assert errors_of(check_server(backends[name])) == []
        finally:
            stop_cluster(router, backends)


class TestRetryDeadline:
    def test_deadline_validation_is_typed(self):
        with pytest.raises(ServiceError):
            RetryPolicy(deadline_seconds=0)
        with pytest.raises(ServiceError):
            RetryPolicy(deadline_seconds=-1.0)

    def test_retry_schedule_is_clamped_to_the_deadline(
        self, genome, guides, budget
    ):
        # Eight retryable failures are on offer, but the deadline
        # budget spends long before the attempt budget: the client
        # must give up typed instead of burning all eight.
        server = make_backend(
            genome,
            chaos=ChaosPlan.scripted(
                {"server.write": ["drop_before_write"] * 8}
            ),
        )
        host, port = server.address
        try:
            client = ServiceClient(
                host,
                port,
                timeout_seconds=10,
                retry=RetryPolicy(
                    seed=5,
                    max_attempts=8,
                    base_delay_seconds=0.2,
                    deadline_seconds=0.25,
                ),
            )
            started = time.monotonic()
            with client:
                with pytest.raises(DeadlineExceededError):
                    client.query(guides, budget, request_id="deadline-1")
            elapsed = time.monotonic() - started
            assert elapsed < 5, "deadline did not bound the schedule"
            assert (
                client.metrics.counter("service.client.deadline_exhausted") == 1
            )
            assert client.metrics.counter("service.client.retries") <= 3
        finally:
            server.stop()

    def test_request_timeout_bounds_retries_too(self, genome, guides, budget):
        server = make_backend(
            genome,
            chaos=ChaosPlan.scripted(
                {"server.write": ["drop_before_write"] * 8}
            ),
        )
        host, port = server.address
        try:
            client = ServiceClient(
                host,
                port,
                timeout_seconds=10,
                retry=RetryPolicy(
                    seed=7, max_attempts=8, base_delay_seconds=0.15
                ),
            )
            with client:
                with pytest.raises(DeadlineExceededError):
                    client.query(
                        guides,
                        budget,
                        request_id="deadline-2",
                        timeout_seconds=0.2,
                    )
            assert (
                client.metrics.counter("service.client.deadline_exhausted") == 1
            )
        finally:
            server.stop()

    def test_generous_deadline_still_recovers(
        self, genome, guides, budget, oracle
    ):
        server = make_backend(
            genome,
            chaos=ChaosPlan.scripted({"server.write": ["drop_before_write"]}),
        )
        host, port = server.address
        try:
            client = ServiceClient(
                host,
                port,
                timeout_seconds=10,
                retry=RetryPolicy(
                    seed=9, base_delay_seconds=0.001, deadline_seconds=30.0
                ),
            )
            with client:
                result = client.query(guides, budget, request_id="recover-1")
            assert result.hits == oracle
            assert client.metrics.counter("service.client.retries") == 1
            assert server.execution_counts() == {"recover-1": 1}
        finally:
            server.stop()


def start_route_subprocess(backend_ports, *extra_args):
    """Launch ``python -m repro route`` and parse the announce line."""
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "route",
            "--backends",
            *[f"127.0.0.1:{port}" for port in backend_ports],
            "--port",
            "0",
            "--probe-interval",
            "0.2",
            "--probe-timeout",
            "1.0",
            *extra_args,
        ],
        cwd=REPO,
        env={**os.environ, "PYTHONPATH": str(SRC)},
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    announce: list[str] = []

    def read_announce() -> None:
        announce.append(process.stdout.readline())

    reader = threading.Thread(target=read_announce, daemon=True)
    reader.start()
    reader.join(timeout=SUBPROCESS_TIMEOUT)
    if not announce or "# routing" not in announce[0]:
        process.kill()
        raise AssertionError(
            f"router never announced; stderr: {process.stderr.read()}"
        )
    port = int(announce[0].rstrip().rsplit(":", 1)[-1])
    return process, port


class TestRouteSubprocess:
    def test_three_backend_cluster_end_to_end(self, tmp_path, genome, guides):
        budget = SearchBudget(mismatches=2)
        expected = OffTargetSearch(guides, budget).run(genome).hits
        stats_path = tmp_path / "route-stats.json"
        servers = [start_serve_subprocess(tmp_path, genome) for _ in range(3)]
        processes = [process for process, _ in servers]
        ports = [port for _, port in servers]
        router_process = None
        try:
            router_process, router_port = start_route_subprocess(
                ports, "--stats-json", str(stats_path)
            )
            with ServiceClient(
                "127.0.0.1", router_port, timeout_seconds=60
            ) as client:
                assert client.ping()
                health = client.health()
                assert health["role"] == "router"
                assert len(health["live_members"]) == 3
                first = client.query(guides, budget, request_id="e2e-1")
                second = client.query(guides, budget, request_id="e2e-2")
                stats = client.stats()
            assert first.hits == expected
            assert second.hits == expected
            assert stats["role"] == "router"
            assert stats["forwarded"] == 2
            assert stats["failovers"] == 0
            # SIGTERM drains the router and flushes --stats-json.
            router_process.send_signal(signal.SIGTERM)
            assert router_process.wait(timeout=SUBPROCESS_TIMEOUT) == 0
            payload = json.loads(stats_path.read_text())
            assert payload["command"] == "route"
            assert payload["stats"]["forwarded"] >= 2
            for port in ports:
                with ServiceClient(
                    "127.0.0.1", port, timeout_seconds=60
                ) as client:
                    client.shutdown()
            for process in processes:
                assert process.wait(timeout=SUBPROCESS_TIMEOUT) == 0
        finally:
            for process in processes + (
                [router_process] if router_process is not None else []
            ):
                if process.poll() is None:
                    process.kill()
                    process.wait(timeout=10)

    def test_invalid_config_exits_2_with_report(self):
        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "route",
                "--backends",
                "127.0.0.1:9100",
                "127.0.0.1:9100",
            ],
            cwd=REPO,
            env={**os.environ, "PYTHONPATH": str(SRC)},
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert completed.returncode == 2
        assert "SVC009" in completed.stderr
