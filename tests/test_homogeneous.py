"""Unit tests for repro.automata.homogeneous."""

import numpy as np
import pytest

from repro import alphabet
from repro.automata.charclass import CharClass
from repro.automata.homogeneous import (
    HomogeneousAutomaton,
    StartMode,
    nfa_to_homogeneous,
)
from repro.automata.nfa import Nfa
from repro.core.compiler import SearchBudget, compile_guide
from repro.errors import AutomatonError
from repro.grna.guide import Guide


def _codes(text):
    return alphabet.encode(text)


def _literal_automaton(pattern, label="hit"):
    automaton = HomogeneousAutomaton()
    previous = None
    for index, symbol in enumerate(pattern):
        ste = automaton.add_ste(
            CharClass.from_iupac(symbol),
            start=StartMode.ALL_INPUT if index == 0 else StartMode.NONE,
            reports=(label,) if index == len(pattern) - 1 else (),
        )
        if previous is not None:
            automaton.connect(previous, ste)
        previous = ste
    return automaton


class TestExecution:
    def test_literal_search(self):
        automaton = _literal_automaton("ACG")
        assert [c for c, _ in automaton.run(_codes("ACGTACG"))] == [2, 6]

    def test_overlaps(self):
        automaton = _literal_automaton("AA")
        assert [c for c, _ in automaton.run(_codes("AAAA"))] == [1, 2, 3]

    def test_start_of_data(self):
        automaton = HomogeneousAutomaton()
        ste = automaton.add_ste(
            CharClass.of("A"), start=StartMode.START_OF_DATA, reports=("hit",)
        )
        assert [c for c, _ in automaton.run(_codes("AA"))] == [0]

    def test_single_all_input_reporting_ste(self):
        automaton = HomogeneousAutomaton()
        automaton.add_ste(CharClass.of("G"), start=StartMode.ALL_INPUT, reports=("g",))
        assert [c for c, _ in automaton.run(_codes("AGGA"))] == [1, 2]

    def test_empty_class_rejected(self):
        automaton = HomogeneousAutomaton()
        with pytest.raises(AutomatonError):
            automaton.add_ste(CharClass.empty())

    def test_connect_unknown_rejected(self):
        automaton = HomogeneousAutomaton()
        automaton.add_ste(CharClass.of("A"))
        with pytest.raises(AutomatonError):
            automaton.connect(0, 3)

    def test_stats_collection(self):
        automaton = _literal_automaton("ACG")
        reports, stats = automaton.run_with_stats(_codes("ACGACG"))
        assert stats.cycles == 6
        assert stats.report_events == 2
        assert stats.report_cycles == 2
        assert stats.peak_active >= 1
        assert stats.mean_active > 0
        assert len(reports) == 2

    def test_stats_on_empty_input(self):
        automaton = _literal_automaton("AC")
        _, stats = automaton.run_with_stats(_codes(""))
        assert stats.cycles == 0
        assert stats.report_events == 0


class TestStructure:
    def test_merge_disjoint_union(self):
        a = _literal_automaton("AC", label="a")
        b = _literal_automaton("GT", label="b")
        mapping = a.merge(b)
        assert a.num_stes == 4
        assert mapping[0] == 2
        labels = sorted(label for _, label in a.run(_codes("ACGT")))
        assert labels == ["a", "b"]

    def test_max_fanout(self):
        automaton = HomogeneousAutomaton()
        hub = automaton.add_ste(CharClass.of("A"))
        for _ in range(3):
            automaton.connect(hub, automaton.add_ste(CharClass.of("C")))
        assert automaton.max_fanout() == 3

    def test_duplicate_edges_collapsed(self):
        automaton = HomogeneousAutomaton()
        a = automaton.add_ste(CharClass.of("A"))
        b = automaton.add_ste(CharClass.of("C"))
        automaton.connect(a, b)
        automaton.connect(a, b)
        assert automaton.num_edges == 1

    def test_report_and_start_listings(self):
        automaton = _literal_automaton("ACG")
        assert len(automaton.report_stes()) == 1
        assert len(automaton.start_stes()) == 1


class TestConversion:
    def test_literal_nfa_converts(self):
        nfa = Nfa()
        start = nfa.add_state("start")
        nfa.mark_start(start)
        current = start
        for symbol in "ACG":
            nxt = nfa.add_state()
            nfa.add_transition(current, CharClass.from_iupac(symbol), nxt)
            current = nxt
        nfa.mark_accept(current, "hit")
        automaton = nfa_to_homogeneous(nfa)
        text = "TACGACGA"
        assert list(automaton.run(_codes(text))) == list(nfa.run(_codes(text)))

    def test_compiled_guide_equivalence(self):
        guide = Guide("g", "ACGTACGTACGTACGTACGT")
        compiled = compile_guide(guide, SearchBudget(mismatches=2))
        nfa = compiled.combined
        automaton = compiled.homogeneous
        rng = np.random.default_rng(7)
        codes = rng.integers(0, 4, 600).astype(np.uint8)
        assert sorted(automaton.run(codes)) == sorted(nfa.run(codes))

    def test_bulged_guide_equivalence(self):
        guide = Guide("g", "ACGTACGTACGTACGTACGT")
        compiled = compile_guide(
            guide, SearchBudget(mismatches=1, rna_bulges=1, dna_bulges=1)
        )
        rng = np.random.default_rng(8)
        codes = rng.integers(0, 4, 400).astype(np.uint8)
        assert sorted(compiled.homogeneous.run(codes)) == sorted(
            compiled.combined.run(codes)
        )

    def test_grid_splits_match_and_mismatch_copies(self):
        # Each interior grid state entered by both a match and a mismatch
        # edge becomes two STEs (the paper's match/mismatch STE pairs).
        guide = Guide("g", "ACGTACGTACGTACGTACGT")
        compiled = compile_guide(guide, SearchBudget(mismatches=1))
        classes = {ste.char_class.cardinality() for ste in compiled.homogeneous.stes()}
        assert 1 in classes  # match copies (single base)
        assert 4 in classes  # mismatch copies (3 bases + N)

    def test_rejects_accepting_start(self):
        nfa = Nfa()
        start = nfa.add_state()
        nfa.mark_start(start)
        nfa.mark_accept(start, "x")
        with pytest.raises(AutomatonError):
            nfa_to_homogeneous(nfa)

    def test_rejects_start_with_incoming(self):
        nfa = Nfa()
        start = nfa.add_state()
        other = nfa.add_state()
        nfa.mark_start(start)
        nfa.add_transition(other, CharClass.of("A"), start)
        nfa.add_transition(start, CharClass.of("C"), other)
        with pytest.raises(AutomatonError):
            nfa_to_homogeneous(nfa)
