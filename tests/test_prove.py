"""Tests for the symbolic equivalence prover (``repro.check.prove``).

Three layers:

* fast representative proofs that run on every push — one point per
  budget family (mismatch-only, RNA bulge, DNA bulge, 5' PAM), plus
  the mutation tests that corrupt an automaton and check the prover
  refutes it with a replayable shortest witness;
* the CLI / engine-pre-flight / observability plumbing around the
  prover;
* the full acceptance grid (guide length x mismatch budget x PAM x
  bulge shape) under ``@pytest.mark.prove_grid``, run by the CI prove
  job with ``-m prove_grid``.
"""

import json

import pytest

from repro.automata.dfa import Dfa, determinize, minimize
from repro.check import (
    PROVE_OBS,
    equivalence_diagnostics,
    prove_dfa,
    prove_guide,
    require_equivalence,
)
from repro.check.prove import EquivalenceProof, _diagnose_proof
from repro.check.report import CheckReport
from repro.cli import main
from repro.core.compiler import SearchBudget, compile_guide, compile_library
from repro.core.spec_dfa import build_spec_dfa, spec_state_space
from repro.engines.base import get_engine
from repro.errors import EquivalenceError, StateBlowupError
from repro.grna.guide import Guide
from repro.grna.library import GuideLibrary
from repro.grna.pam import Pam

from differential import (
    PROVER_SEEDED_CASES,
    assert_engines_agree,
    case_from_counterexample,
    oracle_hits,
)

EMX1 = "GAGTCCGAGCAGAAGAAGAA"

#: A custom 5'-side PAM (not in the catalog) for the PAM sweep.
CUSTOM_5PRIME = Pam("TTYN", "TTYN", "5prime", "custom")


def _proved(guide: Guide, budget: SearchBudget) -> None:
    compiled = compile_guide(guide, budget)
    proof = prove_guide(compiled)
    assert proof.consistent
    assert proof.equivalent, (
        f"{guide.name}: witness {proof.witness and proof.witness.word!r}"
    )
    assert proof.compiled_states == proof.spec_states  # isomorphic => equal size


# -- representative proofs (every push) ------------------------------------


class TestRepresentativeProofs:
    def test_mismatch_only_ngg(self):
        _proved(Guide("emx1", EMX1), SearchBudget(mismatches=1))

    def test_zero_budget_exact_match(self):
        _proved(Guide("emx1", EMX1), SearchBudget(mismatches=0))

    def test_rna_bulge(self):
        _proved(Guide("emx1", EMX1), SearchBudget(mismatches=0, rna_bulges=1))

    def test_dna_bulge(self):
        _proved(Guide("emx1", EMX1), SearchBudget(mismatches=0, dna_bulges=1))

    def test_five_prime_pam(self):
        _proved(Guide("cas12a", EMX1, "TTTV"), SearchBudget(mismatches=1))

    def test_custom_five_prime_pam(self):
        _proved(Guide("custom5", EMX1, CUSTOM_5PRIME), SearchBudget(mismatches=0))

    def test_short_guide(self):
        _proved(Guide("short", EMX1[:16]), SearchBudget(mismatches=1))

    def test_diagnostics_render_eqv004_and_pricing(self):
        compiled = compile_guide(Guide("emx1", EMX1), SearchBudget(mismatches=1))
        report = equivalence_diagnostics([compiled])
        assert report.ok, report.to_text(verbose=True)
        rules = report.rules()
        assert "EQV004" in rules and "EQV005" in rules
        assert all(d.subject == "guide:emx1" for d in report.sorted())


# -- mutation tests: the prover must refute corrupted automata -------------


class TestMutationRefutation:
    def _compiled_and_spec(self, guide, budget):
        compiled = compile_guide(guide, budget)
        dfa = determinize(compiled.combined.without_epsilon())
        spec = build_spec_dfa(guide, budget)
        return dfa, spec

    def test_corrupted_transition_is_refuted_with_witness(self):
        guide = Guide("emx1", EMX1)
        budget = SearchBudget(mismatches=1)
        dfa, spec = self._compiled_and_spec(guide, budget)
        table = dfa.transitions.copy()
        # Redirect one reachable mid-automaton edge back to the start.
        table[40, 2] = dfa.start_state
        broken = Dfa(table, dfa.start_state, dict(dfa.accepts))
        proof = prove_dfa(broken, spec, subject="emx1")
        assert proof.consistent and not proof.equivalent
        witness = proof.witness
        assert witness is not None
        assert witness.left_labels != witness.right_labels

    def test_witness_plants_as_differential_case(self):
        # The acceptance loop: corrupt a transition, extract the EQV001
        # witness, plant it through the differential harness, and check
        # (a) every real engine still agrees with the naive oracle on
        # the planted genome and (b) the oracle takes the *spec* side of
        # the disagreement — i.e. the witness genuinely separates the
        # broken automaton from the budget semantics.
        guide = Guide("emx1", EMX1)
        budget = SearchBudget(mismatches=1)
        dfa, spec = self._compiled_and_spec(guide, budget)
        table = dfa.transitions.copy()
        table[40, 2] = dfa.start_state
        broken = minimize(Dfa(table, dfa.start_state, dict(dfa.accepts)))
        proof = prove_dfa(broken, spec, subject="emx1")
        witness = proof.witness
        assert witness is not None

        case = case_from_counterexample(guide, budget, witness.word, label="mut")
        hits = assert_engines_agree(case)
        # Oracle hits ending at the witness's final position, per strand.
        final = len(witness.word) - 1
        oracle_labels = {
            (h.guide_name, h.strand) for h in hits if h.end - 1 == final
        }
        spec_labels = {(l.guide_name, l.strand) for l in witness.right_labels}
        broken_labels = {(l.guide_name, l.strand) for l in witness.left_labels}
        assert oracle_labels == spec_labels
        assert oracle_labels != broken_labels

    def test_silenced_accepts_are_refuted(self):
        guide = Guide("emx1", EMX1)
        budget = SearchBudget(mismatches=0)
        dfa, spec = self._compiled_and_spec(guide, budget)
        silenced = Dfa(dfa.transitions.copy(), dfa.start_state, {})
        proof = prove_dfa(silenced, spec, subject="emx1")
        assert not proof.equivalent
        assert proof.witness is not None
        # Shortest separation of "never reports" from the spec is an
        # exact on-target site.
        assert len(proof.witness.word) == guide.site_length

    def test_misdeclared_budget_is_refuted(self):
        # Compile at mm=1 but spec at mm=0: the compiled machine accepts
        # one-mismatch sites the spec rejects, and the witness is a
        # shortest such site.
        guide = Guide("emx1", EMX1)
        dfa, _ = self._compiled_and_spec(guide, SearchBudget(mismatches=1))
        strict_spec = build_spec_dfa(guide, SearchBudget(mismatches=0))
        proof = prove_dfa(dfa, strict_spec, subject="emx1")
        assert proof.consistent and not proof.equivalent
        witness = proof.witness
        assert witness is not None
        assert witness.left_labels and not witness.right_labels
        assert len(witness.word) == guide.site_length
        # The planted witness replays through the real engines too.
        assert_engines_agree(
            case_from_counterexample(
                guide, SearchBudget(mismatches=1), witness.word, label="mm"
            )
        )

    def test_eqv001_diagnostic_carries_plant_hint(self):
        guide = Guide("emx1", EMX1)
        budget = SearchBudget(mismatches=0)
        dfa, spec = self._compiled_and_spec(guide, budget)
        silenced = Dfa(dfa.transitions.copy(), dfa.start_state, {})
        proof = prove_dfa(silenced, spec, subject="emx1")
        report = CheckReport()
        _diagnose_proof(report, proof, spec_state_space(guide, budget))
        errors = [d for d in report.errors if d.rule == "EQV001"]
        assert len(errors) == 1
        assert "case_from_counterexample" in errors[0].hint
        assert repr(proof.witness.word) in errors[0].hint
        assert report.exit_code == 1


# -- guards, inconsistency, thresholds -------------------------------------


class TestGuardsAndThresholds:
    def test_blowup_guard_raises_from_prove_guide(self):
        compiled = compile_guide(Guide("emx1", EMX1), SearchBudget(mismatches=1))
        with pytest.raises(StateBlowupError):
            prove_guide(compiled, max_states=25)

    def test_blowup_guard_is_eqv002_error(self):
        compiled = compile_guide(Guide("emx1", EMX1), SearchBudget(mismatches=1))
        report = equivalence_diagnostics([compiled], max_states=25)
        assert not report.ok
        findings = [d for d in report.errors if d.rule == "EQV002"]
        assert len(findings) == 1
        assert "unknown" in findings[0].message
        assert "--prove-max-states" in findings[0].hint

    def test_inconsistency_is_eqv003(self):
        proof = EquivalenceProof(
            subject="emx1",
            equivalent=False,
            compiled_states=3,
            spec_states=3,
            nfa_states=3,
            witness=None,
            consistent=False,
        )
        report = CheckReport()
        _diagnose_proof(report, proof, thread_space=10)
        assert [d.rule for d in report.errors] == ["EQV003"]

    def test_state_threshold_warns_eqv006(self, monkeypatch):
        monkeypatch.setattr("repro.check.prove.STATE_WARN_THRESHOLD", 1)
        compiled = compile_guide(Guide("emx1", EMX1), SearchBudget(mismatches=0))
        report = equivalence_diagnostics([compiled])
        assert report.ok  # warning, not error
        assert "EQV006" in report.rules()

    def test_require_equivalence_passes_clean_library(self):
        library = GuideLibrary.from_guides([Guide("emx1", EMX1)])
        compiled = compile_library(library, SearchBudget(mismatches=0))
        require_equivalence(compiled)  # must not raise

    def test_require_equivalence_raises_on_unproven(self):
        library = GuideLibrary.from_guides([Guide("emx1", EMX1)])
        compiled = compile_library(library, SearchBudget(mismatches=1))
        with pytest.raises(EquivalenceError, match="EQV002"):
            require_equivalence(compiled, max_states=25)


# -- engine pre-flight ------------------------------------------------------


class TestEnginePreflight:
    def test_validate_equivalence_clean(self):
        engine = get_engine("cpu-nfa")
        library = GuideLibrary.from_guides([Guide("emx1", EMX1)])
        compiled = compile_library(library, SearchBudget(mismatches=0))
        engine.validate_equivalence(compiled)  # must not raise

    def test_validate_equivalence_surfaces_refutation(self):
        engine = get_engine("hyperscan")
        library = GuideLibrary.from_guides([Guide("emx1", EMX1)])
        compiled = compile_library(library, SearchBudget(mismatches=1))
        with pytest.raises(EquivalenceError):
            engine.validate_equivalence(compiled, max_states=25)


# -- observability -----------------------------------------------------------


class TestProverObservability:
    def test_counters_advance_through_a_proof(self):
        before = PROVE_OBS.snapshot()["counters"]
        compiled = compile_guide(Guide("emx1", EMX1), SearchBudget(mismatches=0))
        report = equivalence_diagnostics([compiled])
        assert report.ok
        after = PROVE_OBS.snapshot()["counters"]
        for key in (
            "prove.guides_checked",
            "prove.proofs",
            "prove.minimization_passes",
            "prove.states.explored",
            "prove.states.compiled",
            "prove.states.spec",
        ):
            assert after.get(key, 0) > before.get(key, 0), key
        timers = PROVE_OBS.snapshot()["timers"]
        assert "prove.determinize_seconds" in timers
        assert "prove.spec_build_seconds" in timers

    def test_refutations_and_blowups_are_counted(self):
        guide = Guide("emx1", EMX1)
        budget = SearchBudget(mismatches=0)
        compiled = compile_guide(guide, budget)
        before = PROVE_OBS.snapshot()["counters"]
        dfa = determinize(compiled.combined.without_epsilon())
        silenced = Dfa(dfa.transitions.copy(), dfa.start_state, {})
        prove_dfa(silenced, build_spec_dfa(guide, budget))
        equivalence_diagnostics([compiled], max_states=25)
        after = PROVE_OBS.snapshot()["counters"]
        assert after.get("prove.counterexamples", 0) > before.get(
            "prove.counterexamples", 0
        )
        assert after.get("prove.blowups", 0) > before.get("prove.blowups", 0)


# -- CLI --------------------------------------------------------------------


class TestProveCommand:
    @pytest.fixture()
    def guide_table(self, tmp_path):
        path = tmp_path / "guides.txt"
        path.write_text("EMX1 GAGTCCGAGCAGAAGAAGAA\n")
        return path

    def test_prove_clean_exit_0(self, guide_table, capsys):
        code = main(
            ["check", "--guides", str(guide_table), "--mismatches", "0",
             "--prove", "--verbose"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "EQV004" in out and "EQV005" in out

    def test_prove_requires_guides(self, tmp_path, capsys):
        empty = tmp_path / "x.py"
        empty.write_text("")
        code = main(["check", "--lint", str(empty), "--prove"])
        assert code == 2
        assert "--prove" in capsys.readouterr().err

    def test_prove_max_states_guard_exits_1(self, guide_table, capsys):
        code = main(
            ["check", "--guides", str(guide_table), "--prove",
             "--prove-max-states", "25"]
        )
        assert code == 1
        assert "EQV002" in capsys.readouterr().out

    def test_stats_json_carries_prover_counters(self, guide_table, tmp_path):
        stats = tmp_path / "stats.json"
        code = main(
            ["check", "--guides", str(guide_table), "--mismatches", "0",
             "--prove", "--stats-json", str(stats)]
        )
        assert code == 0
        payload = json.loads(stats.read_text())
        assert payload["command"] == "check"
        counters = payload["prove"]["counters"]
        assert counters["prove.guides_checked"] >= 1
        assert "prove.determinize_seconds" in payload["prove"]["timers"]

    def test_stats_json_null_without_prove(self, guide_table, tmp_path):
        stats = tmp_path / "stats.json"
        code = main(
            ["check", "--guides", str(guide_table), "--stats-json", str(stats)]
        )
        assert code == 0
        assert json.loads(stats.read_text())["prove"] is None

    def test_prove_json_output_is_machine_readable(self, guide_table, capsys):
        code = main(
            ["check", "--guides", str(guide_table), "--mismatches", "0",
             "--prove", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        rules = {d["rule"] for d in payload["diagnostics"]}
        assert "EQV004" in rules


# -- prover-seeded permanent regressions ------------------------------------


class TestSeededCounterexamples:
    def test_seeded_cases_replay_bit_identically(self):
        # Empty while every automaton proves equal; any witness the
        # prover ever extracts gets planted here and must keep all
        # engines in agreement forever after.
        for case in PROVER_SEEDED_CASES:
            assert_engines_agree(case)

    def test_case_from_counterexample_shape(self):
        guide = Guide("emx1", EMX1)
        budget = SearchBudget(mismatches=1)
        case = case_from_counterexample(guide, budget, "ACGT" * 8, label="shape")
        assert case.genome.name == "chrProver_shape"
        assert case.guides == (guide,)
        assert case.resolved_chunk_length() == case.overlap + 1
        assert "prover[shape]" == case.label
        oracle_hits(case)  # runnable end to end


# -- the full acceptance grid (CI prove job) --------------------------------

GRID_PROTOSPACER = "GAGTCCGAGCAGAAGAAGAAGCGT"  # 24-mer; sliced per length

GRID_PAMS = [
    pytest.param("NGG", id="NGG"),
    pytest.param("NAG", id="NAG"),
    pytest.param("TTTV", id="TTTV"),
    pytest.param(CUSTOM_5PRIME, id="custom5"),
]

GRID_BULGE_SHAPES = [
    pytest.param(SearchBudget(mismatches=0, rna_bulges=1), id="r1"),
    pytest.param(SearchBudget(mismatches=0, dna_bulges=1), id="d1"),
    pytest.param(SearchBudget(mismatches=1, rna_bulges=1), id="mm1-r1"),
    pytest.param(SearchBudget(mismatches=1, rna_bulges=1, dna_bulges=1), id="mm1-r1-d1"),
]


@pytest.mark.prove_grid
class TestProveGrid:
    @pytest.mark.parametrize("pam", GRID_PAMS)
    @pytest.mark.parametrize("mismatches", [0, 1, 2, 3])
    @pytest.mark.parametrize("length", [16, 20, 24])
    def test_mismatch_grid(self, length, mismatches, pam):
        guide = Guide(f"g{length}", GRID_PROTOSPACER[:length], pam)
        _proved(guide, SearchBudget(mismatches=mismatches))

    @pytest.mark.parametrize("budget", GRID_BULGE_SHAPES)
    def test_bulged_shapes(self, budget):
        _proved(Guide("emx1", EMX1), budget)

    @pytest.mark.parametrize("budget", GRID_BULGE_SHAPES)
    def test_bulged_shapes_five_prime(self, budget):
        _proved(Guide("cas12a", EMX1, "TTTV"), budget)
