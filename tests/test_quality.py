"""Repository-wide quality gates: docstrings, error hierarchy, registries."""

import importlib
import inspect
import pkgutil

import pytest

import repro
from repro import errors


def _iter_modules():
    yield repro
    for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(module_info.name)


ALL_MODULES = list(_iter_modules())


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_every_module_has_a_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), f"{module.__name__} lacks a docstring"


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_public_api_documented(module):
    """Every public class and function defined in the package has a docstring."""
    undocumented = []
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", "") != module.__name__:
            continue  # re-exports are documented at their definition site
        if not (member.__doc__ and member.__doc__.strip()):
            undocumented.append(name)
    assert not undocumented, f"{module.__name__}: undocumented public items {undocumented}"


class TestErrorHierarchy:
    def test_all_errors_subclass_repro_error(self):
        for name, member in vars(errors).items():
            if inspect.isclass(member) and issubclass(member, Exception):
                assert issubclass(member, errors.ReproError) or member is errors.ReproError

    def test_capacity_is_engine_error(self):
        assert issubclass(errors.CapacityError, errors.EngineError)

    def test_catchable_at_the_top(self):
        with pytest.raises(errors.ReproError):
            raise errors.PamError("x")


class TestRegistries:
    def test_duplicate_engine_rejected(self):
        from repro.engines.base import Engine, register_engine
        from repro.errors import EngineError

        class Duplicate(Engine):
            """Test double."""

            name = "fpga"

            def model_time(self, profile):
                """Unused."""

            def simulate(self, codes, compiled):
                """Unused."""

        with pytest.raises(EngineError, match="duplicate"):
            register_engine(Duplicate)

    def test_unnamed_engine_rejected(self):
        from repro.engines.base import Engine, register_engine
        from repro.errors import EngineError

        class Nameless(Engine):
            """Test double."""

            def model_time(self, profile):
                """Unused."""

            def simulate(self, codes, compiled):
                """Unused."""

        with pytest.raises(EngineError, match="name"):
            register_engine(Nameless)

    def test_duplicate_baseline_rejected(self):
        from repro.baselines.base import Baseline, register_baseline
        from repro.errors import EngineError

        class Duplicate(Baseline):
            """Test double."""

            name = "casot"

            def search(self, genome, library, budget):
                """Unused."""

        with pytest.raises(EngineError, match="duplicate"):
            register_baseline(Duplicate)


def test_version_exposed():
    assert repro.__version__
    assert all(part.isdigit() for part in repro.__version__.split("."))


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ lists missing name {name}"
