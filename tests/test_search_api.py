"""Integration tests for the public OffTargetSearch API."""

import pytest

from repro import (
    Guide,
    OffTargetSearch,
    SearchBudget,
    random_genome,
    sample_guides_from_genome,
)
from repro.errors import EngineError

from helpers import hit_spans

ALL_TOOLS = ["cpu-nfa", "hyperscan", "infant2", "fpga", "ap", "cas-offinder", "casot"]


@pytest.fixture(scope="module")
def genome():
    return random_genome(40_000, seed=61, name="chrApi")


@pytest.fixture(scope="module")
def guides(genome):
    return sample_guides_from_genome(genome, 3, seed=62)


@pytest.mark.parametrize("tool", ALL_TOOLS)
def test_every_tool_through_api(genome, guides, tool):
    search = OffTargetSearch(guides, SearchBudget(mismatches=2))
    report = search.run(genome, engine=tool)
    assert report.engine == tool
    assert report.num_hits >= len(guides)  # at least the on-targets
    assert report.modeled_seconds > 0
    assert report.genome_length == len(genome)


def test_all_tools_agree(genome, guides):
    search = OffTargetSearch(guides, SearchBudget(mismatches=2))
    spans = [
        hit_spans(search.run(genome, engine=tool).hits) for tool in ALL_TOOLS
    ]
    assert all(s == spans[0] for s in spans)


def test_bulged_tools_agree(genome, guides):
    search = OffTargetSearch(guides, SearchBudget(mismatches=1, rna_bulges=1, dna_bulges=1))
    tools = [t for t in ALL_TOOLS if t != "cas-offinder"]
    spans = [hit_spans(search.run(genome, engine=tool).hits) for tool in tools]
    assert all(s == spans[0] for s in spans)


def test_guides_accepts_iterable():
    search = OffTargetSearch([Guide("g", "ACGTACGTACGTACGTACGT")])
    assert len(search.library) == 1


def test_multiple_sequences(guides):
    chr1 = random_genome(20_000, seed=63, name="chr1")
    chr2 = random_genome(20_000, seed=64, name="chr2")
    search = OffTargetSearch(guides, SearchBudget(mismatches=3))
    report = search.run([chr1, chr2])
    assert report.genome_length == 40_000
    names = {h.sequence_name for h in report.hits}
    assert names <= {"chr1", "chr2"}


def test_empty_sequence_list_rejected(guides):
    search = OffTargetSearch(guides)
    with pytest.raises(EngineError):
        search.run([])


def test_unknown_engine_rejected(genome, guides):
    search = OffTargetSearch(guides)
    with pytest.raises(EngineError, match="unknown engine"):
        search.run(genome, engine="abacus")


def test_compiled_cached(guides):
    search = OffTargetSearch(guides)
    assert search.compiled is search.compiled


def test_report_helpers(genome, guides):
    search = OffTargetSearch(guides, SearchBudget(mismatches=2))
    report = search.run(genome)
    name = guides[0].name
    for hit in report.hits_for(name):
        assert hit.guide_name == name
    for hit in report.hits_within(0):
        assert hit.edits == 0
    assert "candidate off-target sites" in report.summary()


def test_on_targets_always_reported(genome, guides):
    search = OffTargetSearch(guides, SearchBudget(mismatches=0))
    report = search.run(genome)
    found = {h.guide_name for h in report.hits if h.mismatches == 0}
    assert found == {g.name for g in guides}


def test_mixed_pam_library(genome):
    # One pass may search guides with different PAMs simultaneously.
    guides = [
        Guide("strict", "GAGTCCGAGCAGAAGAAGAA", "NGG"),
        Guide("relaxed", "GAGTCCGAGCAGAAGAAGAA", "NRG"),
    ]
    report = OffTargetSearch(guides, SearchBudget(mismatches=3)).run(genome)
    strict = {h.key for h in report.hits_for("strict")}
    relaxed = {
        (h.guide_name.replace("relaxed", "strict"), *h.key[1:])
        for h in report.hits_for("relaxed")
    }
    # NRG is a strict superset of NGG sites.
    assert strict <= relaxed


def test_cas_offinder_rejects_mixed_pams(genome):
    guides = [
        Guide("a", "GAGTCCGAGCAGAAGAAGAA", "NGG"),
        Guide("b", "ACCTTGGACGTTAACGGCAT", "NAG"),
    ]
    with pytest.raises(EngineError, match="one PAM"):
        OffTargetSearch(guides, SearchBudget(mismatches=1)).run(
            genome, engine="cas-offinder"
        )


def test_cas12a_five_prime_pam(genome):
    from repro import sample_guides_from_genome as sample

    guides = sample(genome, 2, pam="TTTV", seed=77)
    report = OffTargetSearch(guides, SearchBudget(mismatches=1)).run(genome)
    assert {h.guide_name for h in report.hits} >= {g.name for g in guides}
