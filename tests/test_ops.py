"""Unit tests for repro.automata.ops."""

import pytest

from repro import alphabet
from repro.automata import ops
from repro.automata.charclass import CharClass
from repro.automata.nfa import Nfa
from repro.core.compiler import SearchBudget, compile_guide
from repro.errors import AutomatonError
from repro.grna.guide import Guide


def _literal(pattern, label):
    nfa = Nfa()
    start = nfa.add_state("start")
    nfa.mark_start(start)
    current = start
    for symbol in pattern:
        nxt = nfa.add_state()
        nfa.add_transition(current, CharClass.from_iupac(symbol), nxt)
        current = nxt
    nfa.mark_accept(current, label)
    return nfa


def test_union_runs_both():
    merged = ops.union([_literal("AC", "a"), _literal("GT", "b")])
    labels = [label for _, label in merged.run(alphabet.encode("ACGT"))]
    assert labels == ["a", "b"]


def test_union_state_count_additive():
    a, b = _literal("AC", "a"), _literal("GTA", "b")
    merged = ops.union([a, b])
    assert merged.num_states == a.num_states + b.num_states


def test_union_homogeneous():
    guide = Guide("g", "ACGTACGTACGTACGTACGT")
    compiled = compile_guide(guide, SearchBudget(mismatches=0))
    merged = ops.union_homogeneous([compiled.homogeneous, compiled.homogeneous])
    assert merged.num_stes == 2 * compiled.homogeneous.num_stes


def test_reachable_states():
    nfa = _literal("AC", "a")
    orphan = nfa.add_state("orphan")
    reachable = ops.reachable_states(nfa)
    assert orphan not in reachable
    assert len(reachable) == nfa.num_states - 1


def test_prune_unreachable_preserves_behaviour():
    nfa = _literal("ACG", "a")
    nfa.add_state("orphan1")
    orphan2 = nfa.add_state("orphan2")
    nfa.mark_accept(orphan2, "never")
    pruned = ops.prune_unreachable(nfa)
    assert pruned.num_states == nfa.num_states - 2
    text = alphabet.encode("ACGACG")
    assert list(pruned.run(text)) == list(nfa.run(text))


def test_stats():
    guide = Guide("g", "ACGTACGTACGTACGTACGT")
    compiled = compile_guide(guide, SearchBudget(mismatches=2))
    stats = ops.stats(compiled.homogeneous)
    assert stats.num_stes == compiled.homogeneous.num_stes
    assert stats.num_edges == compiled.homogeneous.num_edges
    assert stats.num_reports == len(compiled.homogeneous.report_stes())
    assert stats.num_starts >= 1
    assert stats.max_fanout >= stats.mean_fanout > 0
    assert 0 < stats.transition_density < 10
    assert stats.distinct_classes >= 2


def test_stats_empty_rejected():
    from repro.automata.homogeneous import HomogeneousAutomaton

    with pytest.raises(AutomatonError):
        ops.stats(HomogeneousAutomaton())
