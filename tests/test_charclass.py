"""Unit tests for repro.automata.charclass."""

import pytest

from repro.automata.charclass import CharClass
from repro.errors import AutomatonError


class TestConstruction:
    def test_of(self):
        cc = CharClass.of("AG")
        assert "A" in cc
        assert "G" in cc
        assert "C" not in cc

    def test_empty_and_any(self):
        assert not CharClass.empty()
        assert CharClass.any().cardinality() == 5

    def test_bases_excludes_n(self):
        cc = CharClass.bases()
        assert cc.cardinality() == 4
        assert "N" not in cc

    def test_from_iupac_concrete(self):
        assert CharClass.from_iupac("A").symbols() == "A"

    def test_from_iupac_r(self):
        assert CharClass.from_iupac("R").symbols() == "AG"

    def test_from_iupac_n_includes_genome_n(self):
        assert CharClass.from_iupac("N").symbols() == "ACGTN"

    def test_mismatch_of_concrete_includes_n(self):
        cc = CharClass.mismatch_of("A")
        assert cc.symbols() == "CGTN"

    def test_mismatch_of_n_is_empty(self):
        assert not CharClass.mismatch_of("N")

    def test_match_and_mismatch_partition_alphabet(self):
        for symbol in "ACGTRYSWKMN":
            match = CharClass.from_iupac(symbol)
            mismatch = CharClass.mismatch_of(symbol)
            assert (match | mismatch) == CharClass.any()
            assert match.is_disjoint(mismatch)

    def test_mask_bounds(self):
        with pytest.raises(AutomatonError):
            CharClass(1 << 6)
        with pytest.raises(AutomatonError):
            CharClass(-1)


class TestAlgebra:
    def test_or(self):
        assert (CharClass.of("A") | CharClass.of("C")).symbols() == "AC"

    def test_and(self):
        assert (CharClass.of("ACG") & CharClass.of("GT")).symbols() == "G"

    def test_invert(self):
        assert (~CharClass.of("A")).symbols() == "CGTN"

    def test_contains_code(self):
        assert 0 in CharClass.of("A")
        assert 1 not in CharClass.of("A")

    def test_bool(self):
        assert CharClass.of("A")
        assert not CharClass.empty()

    def test_ordering_and_hash(self):
        a = CharClass.of("A")
        also_a = CharClass.of("A")
        assert a == also_a
        assert hash(a) == hash(also_a)
        assert len({a, also_a}) == 1

    def test_cardinality(self):
        assert CharClass.of("ACGT").cardinality() == 4
