"""Unit tests for repro.genome.index."""

import pytest

from repro.errors import AlphabetError
from repro.genome.index import KmerIndex
from repro.genome.sequence import Sequence
from repro.genome.synthetic import random_genome


def test_lookup_finds_all_occurrences():
    seq = Sequence.from_text("s", "ACGTACGTACGT")
    index = KmerIndex(seq, 4)
    assert index.lookup("ACGT").tolist() == [0, 4, 8]
    assert index.lookup("CGTA").tolist() == [1, 5]


def test_lookup_missing_kmer_empty():
    index = KmerIndex(Sequence.from_text("s", "AAAA"), 2)
    assert index.lookup("GG").size == 0


def test_lookup_wrong_length_rejected():
    index = KmerIndex(Sequence.from_text("s", "ACGT"), 2)
    with pytest.raises(AlphabetError):
        index.lookup("ACG")


def test_windows_with_n_skipped():
    seq = Sequence.from_text("s", "ACGTNACGT")
    index = KmerIndex(seq, 3)
    # Windows overlapping position 4 (N) are not indexed.
    assert index.lookup("ACG").tolist() == [0, 5]
    assert index.lookup("GTA").size == 0


def test_num_positions_counts_valid_windows():
    seq = Sequence.from_text("s", "ACGTNACGT")
    index = KmerIndex(seq, 3)
    # 7 windows total, 3 contain the N.
    assert index.num_positions() == 4


def test_matches_bruteforce_on_random_genome():
    genome = random_genome(3000, seed=21)
    index = KmerIndex(genome, 6)
    text = genome.text
    for kmer in ("ACGTAC", "GGGGGG", "TTTAAA"):
        expected = [
            i for i in range(len(text) - 5) if text[i : i + 6] == kmer
        ]
        assert index.lookup(kmer).tolist() == expected


def test_sequence_shorter_than_k():
    index = KmerIndex(Sequence.from_text("s", "AC"), 5)
    assert index.num_positions() == 0
    assert index.lookup("ACGTA").size == 0


def test_pack_rejects_n():
    with pytest.raises(AlphabetError):
        KmerIndex.pack("ACN")


def test_pack_value():
    assert KmerIndex.pack("AA") == 0
    assert KmerIndex.pack("AC") == 1
    assert KmerIndex.pack("CA") == 4
    assert KmerIndex.pack("TT") == 15


def test_k_bounds_rejected():
    seq = Sequence.from_text("s", "ACGT")
    with pytest.raises(AlphabetError):
        KmerIndex(seq, 0)
    with pytest.raises(AlphabetError):
        KmerIndex(seq, 31)


def test_lookup_ambiguous_expands():
    seq = Sequence.from_text("s", "AGGAAGGACGG")
    index = KmerIndex(seq, 3)
    # NGG matches AGG (0, 4) and CGG (8).
    assert index.lookup_ambiguous("NGG").tolist() == [0, 4, 8]


def test_lookup_ambiguous_rejects_explosive_patterns():
    seq = Sequence.from_text("s", "ACGTACGTACGT")
    index = KmerIndex(seq, 10)
    with pytest.raises(AlphabetError):
        index.lookup_ambiguous("NNNNNNNNNN")


def test_num_kmers():
    index = KmerIndex(Sequence.from_text("s", "AAAAA"), 2)
    assert index.num_kmers() == 1
