"""Unit tests for the chunked streaming search."""

import pytest

from repro import SearchBudget, StreamingSearch, random_genome, sample_guides_from_genome
from repro.core import matcher
from repro.core.streaming import iter_chunks
from repro.errors import EngineError
from repro.genome.sequence import Sequence

from helpers import hit_spans


class TestIterChunks:
    def test_covers_everything(self):
        genome = random_genome(1000, seed=81)
        chunks = list(iter_chunks(genome, chunk_length=300, overlap=22))
        rebuilt = chunks[0].sequence.text
        for chunk in chunks[1:]:
            rebuilt += chunk.sequence.text[chunk.overlap :]
        assert rebuilt == genome.text

    def test_overlap_repeats_previous_tail(self):
        genome = random_genome(500, seed=82)
        chunks = list(iter_chunks(genome, chunk_length=200, overlap=30))
        for previous, current in zip(chunks, chunks[1:]):
            assert current.sequence.text[:30] == previous.sequence.text[-30:]

    def test_first_chunk_has_no_overlap(self):
        genome = random_genome(100, seed=83)
        first = next(iter_chunks(genome, chunk_length=60, overlap=10))
        assert first.overlap == 0
        assert first.start == 0

    def test_short_genome_single_chunk(self):
        genome = random_genome(50, seed=84)
        chunks = list(iter_chunks(genome, chunk_length=200, overlap=22))
        assert len(chunks) == 1
        assert len(chunks[0]) == 50

    def test_empty_genome(self):
        genome = Sequence.from_text("e", "")
        assert list(iter_chunks(genome, chunk_length=10, overlap=2)) == []

    def test_validation(self):
        genome = random_genome(100, seed=85)
        with pytest.raises(EngineError):
            list(iter_chunks(genome, chunk_length=0, overlap=0))
        with pytest.raises(EngineError):
            list(iter_chunks(genome, chunk_length=10, overlap=10))

    @pytest.mark.parametrize("delta", [-2, -1, 0, 1, 2])
    def test_chunk_length_near_total(self, delta):
        # The regression this pins: with chunk_length within a couple of
        # symbols of the genome length, the final chunk must never be a
        # fully-duplicated tail — it is always at least overlap+1 long
        # (or the genome fits in a single chunk), and coverage stays
        # exact with no position streamed as new content twice.
        total = 100
        overlap = 22
        genome = random_genome(total, seed=95)
        chunks = list(iter_chunks(genome, chunk_length=total + delta, overlap=overlap))
        rebuilt = chunks[0].sequence.text
        for chunk in chunks[1:]:
            assert len(chunk) > chunk.overlap  # tail carries new content
            rebuilt += chunk.sequence.text[chunk.overlap :]
        assert rebuilt == genome.text
        if delta >= 0:
            assert len(chunks) == 1

    @pytest.mark.parametrize("total", [23, 24, 40, 99, 100, 101])
    def test_no_tail_chunk_shorter_than_overlap(self, total):
        overlap = 22
        genome = random_genome(total, seed=96)
        for chunk_length in range(overlap + 1, total + 2):
            chunks = list(
                iter_chunks(genome, chunk_length=chunk_length, overlap=overlap)
            )
            for chunk in chunks[1:]:
                assert len(chunk) >= overlap + 1
            # Chunks cover the genome exactly, in order.
            assert chunks[0].start == 0
            assert chunks[-1].start + len(chunks[-1]) == total


class TestStreamingSearch:
    @pytest.fixture(scope="class")
    def genome(self):
        return random_genome(120_000, seed=86, name="chrStream")

    @pytest.fixture(scope="class")
    def guides(self, genome):
        return sample_guides_from_genome(genome, 3, seed=87)

    @pytest.mark.parametrize("chunk_length", [4096, 10_000, 65_536])
    def test_identical_to_whole_genome(self, genome, guides, chunk_length):
        budget = SearchBudget(mismatches=3)
        whole = matcher.find_hits(genome, guides, budget)
        chunked = StreamingSearch(guides, budget, chunk_length=chunk_length).search(genome)
        assert hit_spans(chunked) == hit_spans(whole)

    def test_identical_with_bulges(self, genome, guides):
        budget = SearchBudget(mismatches=1, rna_bulges=1, dna_bulges=1)
        whole = matcher.find_hits(genome, guides, budget)
        chunked = StreamingSearch(guides, budget, chunk_length=8192).search(genome)
        assert hit_spans(chunked) == hit_spans(whole)

    def test_boundary_straddling_site_found(self, guides):
        # Place a site exactly across a chunk boundary.
        guide = guides[0]
        target = guide.concrete_target()
        chunk_length = 1000
        boundary = chunk_length  # site straddles the first boundary
        prefix_len = boundary - len(target) // 2
        text = (
            random_genome(prefix_len, seed=88).text
            + target
            + random_genome(2000, seed=89).text
        )
        genome = Sequence.from_text("chrB", text)
        budget = SearchBudget(mismatches=0)
        hits = StreamingSearch([guide], budget, chunk_length=chunk_length).search(genome)
        assert any(h.start == prefix_len for h in hits)

    def test_overlap_derived_from_budget(self, guides):
        no_bulges = StreamingSearch(guides, SearchBudget(mismatches=2))
        bulged = StreamingSearch(guides, SearchBudget(mismatches=2, dna_bulges=2))
        assert bulged.overlap == no_bulges.overlap + 2

    def test_search_many(self, guides):
        chr1 = random_genome(30_000, seed=90, name="chr1")
        chr2 = random_genome(30_000, seed=91, name="chr2")
        budget = SearchBudget(mismatches=3)
        streamed = StreamingSearch(guides, budget, chunk_length=7000).search_many(
            [chr1, chr2]
        )
        whole = matcher.find_hits(chr1, guides, budget) + matcher.find_hits(
            chr2, guides, budget
        )
        assert hit_spans(streamed) == hit_spans(whole)

    def test_chunk_length_near_genome_length(self, genome, guides):
        budget = SearchBudget(mismatches=2)
        whole = matcher.find_hits(genome, guides, budget)
        for delta in (-1, 0, 1):
            chunked = StreamingSearch(
                guides, budget, chunk_length=len(genome) + delta
            ).search(genome)
            assert hit_spans(chunked) == hit_spans(whole)

    def test_no_duplicate_hits(self, genome, guides):
        budget = SearchBudget(mismatches=3)
        hits = StreamingSearch(guides, budget, chunk_length=5000).search(genome)
        keys = [h.key for h in hits]
        assert len(keys) == len(set(keys))

    def test_validation(self, guides):
        with pytest.raises(EngineError):
            StreamingSearch([], SearchBudget())
        with pytest.raises(EngineError):
            StreamingSearch(guides, SearchBudget(), chunk_length=10)
