"""Unit tests for repro.alphabet."""

import numpy as np
import pytest

from repro import alphabet
from repro.errors import AlphabetError


class TestEncodeDecode:
    def test_encode_basic(self):
        codes = alphabet.encode("ACGTN")
        assert codes.tolist() == [0, 1, 2, 3, 4]

    def test_encode_lowercase(self):
        assert alphabet.encode("acgtn").tolist() == [0, 1, 2, 3, 4]

    def test_encode_u_aliases_t(self):
        assert alphabet.encode("U").tolist() == [alphabet.CODE_T]
        assert alphabet.encode("u").tolist() == [alphabet.CODE_T]

    def test_encode_empty(self):
        assert alphabet.encode("").size == 0

    def test_encode_rejects_bad_symbol(self):
        with pytest.raises(AlphabetError, match="position 2"):
            alphabet.encode("ACXGT")

    def test_decode_roundtrip(self):
        text = "ACGTNNACGT"
        assert alphabet.decode(alphabet.encode(text)) == text

    def test_decode_rejects_out_of_range(self):
        with pytest.raises(AlphabetError):
            alphabet.decode(np.array([0, 5], dtype=np.uint8))

    def test_decode_empty(self):
        assert alphabet.decode(np.array([], dtype=np.uint8)) == ""


class TestValidation:
    def test_is_dna(self):
        assert alphabet.is_dna("ACGT")
        assert alphabet.is_dna("acgt")
        assert not alphabet.is_dna("ACGN")
        assert not alphabet.is_dna("ACGR")

    def test_is_genome(self):
        assert alphabet.is_genome("ACGTN")
        assert not alphabet.is_genome("ACGR")

    def test_is_iupac(self):
        assert alphabet.is_iupac("ACGTRYSWKMBDHVN")
        assert not alphabet.is_iupac("ACGZ")

    def test_validate_genome_uppercases(self):
        assert alphabet.validate_genome("acgtn") == "ACGTN"

    def test_validate_genome_u_to_t(self):
        assert alphabet.validate_genome("augc") == "ATGC"

    def test_validate_genome_rejects(self):
        with pytest.raises(AlphabetError, match="what-label"):
            alphabet.validate_genome("ACR", what="what-label")

    def test_validate_iupac(self):
        assert alphabet.validate_iupac("nrg") == "NRG"

    def test_validate_iupac_rejects(self):
        with pytest.raises(AlphabetError):
            alphabet.validate_iupac("NR!")


class TestComplement:
    def test_complement_bases(self):
        assert alphabet.complement("ACGT") == "TGCA"

    def test_reverse_complement(self):
        assert alphabet.reverse_complement("AACG") == "CGTT"

    def test_reverse_complement_involution(self):
        text = "ACGTNRYSWKM"
        assert alphabet.reverse_complement(alphabet.reverse_complement(text)) == text

    def test_complement_iupac(self):
        assert alphabet.complement("RY") == "YR"
        assert alphabet.complement("N") == "N"

    def test_complement_rejects_unknown(self):
        with pytest.raises(AlphabetError):
            alphabet.complement("Z")

    def test_ngg_reverse_complement_is_ccn(self):
        assert alphabet.reverse_complement("NGG") == "CCN"


class TestIupac:
    def test_bases_of_concrete(self):
        assert alphabet.iupac_bases("A") == "A"

    def test_bases_of_r(self):
        assert alphabet.iupac_bases("R") == "AG"

    def test_bases_of_n(self):
        assert alphabet.iupac_bases("N") == "ACGT"

    def test_bases_rejects_unknown(self):
        with pytest.raises(AlphabetError):
            alphabet.iupac_bases("Z")

    def test_matches_concrete(self):
        assert alphabet.iupac_matches("A", "A")
        assert not alphabet.iupac_matches("A", "G")

    def test_matches_ambiguous(self):
        assert alphabet.iupac_matches("R", "G")
        assert not alphabet.iupac_matches("R", "C")

    def test_genome_n_only_matches_pattern_n(self):
        assert alphabet.iupac_matches("N", "N")
        assert not alphabet.iupac_matches("A", "N")
        assert not alphabet.iupac_matches("R", "N")

    def test_code_mask_concrete(self):
        assert alphabet.iupac_code_mask("A") == 0b00001
        assert alphabet.iupac_code_mask("T") == 0b01000

    def test_code_mask_n_includes_genome_n(self):
        assert alphabet.iupac_code_mask("N") == 0b11111

    def test_code_mask_r(self):
        assert alphabet.iupac_code_mask("R") == 0b00101


class TestCodes:
    def test_code_of(self):
        assert [alphabet.code_of(b) for b in "ACGTN"] == [0, 1, 2, 3, 4]

    def test_code_of_lowercase(self):
        assert alphabet.code_of("g") == 2

    def test_code_of_rejects(self):
        with pytest.raises(AlphabetError):
            alphabet.code_of("R")

    def test_base_of(self):
        assert [alphabet.base_of(c) for c in range(5)] == list("ACGTN")

    def test_base_of_rejects(self):
        with pytest.raises(AlphabetError):
            alphabet.base_of(5)
        with pytest.raises(AlphabetError):
            alphabet.base_of(-1)
