"""Unit tests for hit-report serialisation."""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.report_io import read_tsv, write_bed, write_tsv
from repro.errors import ReproError
from repro.grna.hit import OffTargetHit


def _hits():
    return [
        OffTargetHit("g1", "chr1", "+", 100, 123, 2, 0, 0, "A" * 23),
        OffTargetHit("g2", "chr2", "-", 5, 27, 1, 1, 0, "C" * 22),
    ]


class TestBed:
    def test_write_rows(self):
        buffer = io.StringIO()
        count = write_bed(_hits(), buffer)
        lines = buffer.getvalue().splitlines()
        assert count == 2
        assert lines[0] == "chr1\t100\t123\tg1\t2\t+"
        assert lines[1] == "chr2\t5\t27\tg2\t1\t-"

    def test_write_to_path(self, tmp_path):
        path = tmp_path / "hits.bed"
        write_bed(_hits(), path)
        assert len(path.read_text().splitlines()) == 2

    def test_empty(self):
        buffer = io.StringIO()
        assert write_bed([], buffer) == 0
        assert buffer.getvalue() == ""


class TestTsv:
    def test_roundtrip(self):
        buffer = io.StringIO()
        write_tsv(_hits(), buffer)
        buffer.seek(0)
        back = read_tsv(buffer)
        assert back == _hits()

    def test_roundtrip_via_path(self, tmp_path):
        path = tmp_path / "hits.tsv"
        write_tsv(_hits(), path)
        assert read_tsv(path) == _hits()

    def test_header_written(self):
        buffer = io.StringIO()
        write_tsv(_hits(), buffer)
        assert buffer.getvalue().startswith("#guide\t")

    def test_empty_site_dot(self):
        hit = OffTargetHit("g", "c", "+", 0, 23, 0)
        buffer = io.StringIO()
        write_tsv([hit], buffer)
        assert "\t.\t" in buffer.getvalue()
        buffer.seek(0)
        assert read_tsv(buffer)[0].site == ""

    def test_read_skips_blank_and_comments(self):
        text = "#c\n\n" + "g\tAAA\tchr\t1\t24\t+\t0\t0\t0\n"
        assert len(read_tsv(io.StringIO(text))) == 1

    def test_read_rejects_bad_field_count(self):
        with pytest.raises(ReproError, match="9 fields"):
            read_tsv(io.StringIO("a\tb\tc\n"))

    def test_read_rejects_bad_integers(self):
        with pytest.raises(ReproError, match="line 1"):
            read_tsv(io.StringIO("g\tA\tchr\tx\t24\t+\t0\t0\t0\n"))


# -- round-trip properties -----------------------------------------------------

# TSV fields are tab-separated, one row per line, '#' starts a comment:
# names may be any printable ASCII that avoids those three collisions.
_name = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    min_size=1,
    max_size=12,
).filter(lambda s: not s.startswith("#"))
# 'ACGT-' covers real sites (bulges render as '-') and can never
# collide with the '.' that stands for an empty site on disk.
_site = st.text(alphabet="ACGT-", min_size=0, max_size=30)
_count = st.integers(min_value=0, max_value=9)

_hit = st.builds(
    OffTargetHit,
    guide_name=_name,
    sequence_name=_name,
    strand=st.sampled_from("+-"),
    start=st.integers(min_value=0, max_value=2**31),
    end=st.integers(min_value=0, max_value=2**31),
    mismatches=_count,
    rna_bulges=_count,
    dna_bulges=_count,
    site=_site,
)


class TestRoundTripProperties:
    @settings(max_examples=60, deadline=None)
    @given(hits=st.lists(_hit, max_size=20))
    def test_tsv_write_read_is_identity(self, hits):
        buffer = io.StringIO()
        assert write_tsv(hits, buffer) == len(hits)
        buffer.seek(0)
        assert read_tsv(buffer) == hits

    @settings(max_examples=30, deadline=None)
    @given(hits=st.lists(_hit, max_size=20))
    def test_tsv_roundtrip_via_path(self, hits, tmp_path_factory):
        path = tmp_path_factory.mktemp("tsv") / "hits.tsv"
        write_tsv(hits, path)
        assert read_tsv(path) == hits

    @settings(max_examples=60, deadline=None)
    @given(hits=st.lists(_hit, max_size=20))
    def test_bed_line_structure(self, hits):
        buffer = io.StringIO()
        assert write_bed(hits, buffer) == len(hits)
        lines = buffer.getvalue().splitlines()
        assert len(lines) == len(hits)
        for line, hit in zip(lines, hits):
            fields = line.split("\t")
            assert fields == [
                hit.sequence_name,
                str(hit.start),
                str(hit.end),
                hit.guide_name,
                str(hit.mismatches),
                hit.strand,
            ]
