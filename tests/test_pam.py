"""Unit tests for repro.grna.pam."""

import pytest

from repro.errors import PamError
from repro.grna.pam import PAM_CATALOG, Pam, get_pam


class TestCatalog:
    def test_catalog_contains_spcas9(self):
        assert "NGG" in PAM_CATALOG
        assert PAM_CATALOG["NGG"].nuclease == "SpCas9"

    def test_catalog_names_match_keys(self):
        for name, pam in PAM_CATALOG.items():
            assert pam.name == name

    def test_cas12a_is_5prime(self):
        assert PAM_CATALOG["TTTV"].side == "5prime"

    def test_get_pam_by_name(self):
        assert get_pam("ngg") is PAM_CATALOG["NGG"]

    def test_get_pam_custom_pattern(self):
        pam = get_pam("NGRRT")
        assert pam.pattern == "NGRRT"
        assert pam.side == "3prime"
        assert pam.nuclease == "custom"

    def test_get_pam_rejects_garbage(self):
        with pytest.raises(PamError):
            get_pam("XYZ!")

    def test_sacas9_preset_is_pinned(self):
        # Satellite regression: the SaCas9 preset must stay in the
        # catalog with its 6 bp 3' motif.
        pam = PAM_CATALOG["NNGRRT"]
        assert pam.nuclease == "SaCas9"
        assert pam.side == "3prime"
        assert len(pam) == 6
        assert pam.reverse_complement_pattern() == "AYYCNN"


class TestMatching:
    def test_ngg_matches(self):
        pam = get_pam("NGG")
        assert pam.matches("AGG")
        assert pam.matches("TGG")
        assert not pam.matches("AGA")
        assert not pam.matches("ACG")

    def test_length_mismatch(self):
        assert not get_pam("NGG").matches("AG")
        assert not get_pam("NGG").matches("AGGT")

    def test_nrg_matches_both_relaxed(self):
        pam = get_pam("NRG")
        assert pam.matches("AGG")
        assert pam.matches("AAG")
        assert not pam.matches("ACG")

    def test_nngrrt(self):
        pam = get_pam("NNGRRT")
        assert pam.matches("ACGAGT")
        assert pam.matches("TTGGAT")
        assert not pam.matches("ACGACT")

    def test_case_insensitive_site(self):
        assert get_pam("NGG").matches("agg")

    def test_n_in_genome_matches_only_pattern_n(self):
        pam = get_pam("NGG")
        assert not pam.matches("ANG")
        assert pam.matches("NGG")  # N position accepts genome N


class TestProperties:
    def test_expected_hit_rate_ngg(self):
        rate = get_pam("NGG").expected_hit_rate(gc_content=0.5)
        assert rate == pytest.approx(1.0 * 0.25 * 0.25)

    def test_hit_rate_monotone_in_gc(self):
        pam = get_pam("NGG")
        assert pam.expected_hit_rate(0.6) > pam.expected_hit_rate(0.3)

    def test_nrg_rate_double_of_ngg_at_even_gc(self):
        assert get_pam("NRG").expected_hit_rate(0.5) == pytest.approx(
            2 * get_pam("NGG").expected_hit_rate(0.5)
        )

    def test_reverse_complement_pattern(self):
        assert get_pam("NGG").reverse_complement_pattern() == "CCN"
        assert get_pam("TTTV").reverse_complement_pattern() == "BAAA"

    def test_len(self):
        assert len(get_pam("NGG")) == 3
        assert len(get_pam("NNGRRT")) == 6


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(PamError):
            Pam("X", "", "3prime", "x")

    def test_rejects_bad_side(self):
        with pytest.raises(PamError):
            Pam("X", "NGG", "middle", "x")

    def test_rejects_bad_symbols(self):
        with pytest.raises(Exception):
            Pam("X", "NG!", "3prime", "x")

    def test_u_normalised(self):
        assert Pam("X", "UGG", "3prime", "x").pattern == "TGG"
