"""The differential harness, and the full cross-engine grid it drives.

Two layers: meta-tests that the harness itself is trustworthy (the
grid is deterministic, the engine registry is complete, a corrupted
hit list *fails* the agreement check — a harness that can't fail
pins nothing), and then the actual differential sweep: every engine
bit-identical to the naive oracle across the genome x panel x budget x
chunk grid, including empty genomes, N-runs, and adversarial chunk
lengths.
"""

import pytest

from repro import SearchBudget

from differential import (
    ALL_ENGINES,
    BULGED_GRID_SPEC,
    CHUNKED_ENGINES,
    KERNEL_ENGINES,
    NUM_CHUNK_CHOICES,
    DifferentialCase,
    GridSpec,
    adversarial_chunk_length,
    assert_engines_agree,
    bulged_differential_grid,
    case_from_seed,
    differential_grid,
    duplicate_keys,
    next_prime_above,
    oracle_hits,
    planted_bulge_cases,
    run_engine,
)

GRID_CASES = list(differential_grid())
GRID_IDS = [case.label for case in GRID_CASES]

BULGED_GRID_CASES = list(bulged_differential_grid())
BULGED_GRID_IDS = [case.label for case in BULGED_GRID_CASES]

PLANTED_CASES = list(planted_bulge_cases())
PLANTED_IDS = [case.label for case in PLANTED_CASES]


# -- the sweep: every engine, every grid case ----------------------------------


class TestCrossEngineGrid:
    @pytest.mark.parametrize("case", GRID_CASES, ids=GRID_IDS)
    def test_all_engines_agree(self, case):
        assert_engines_agree(case)

    @pytest.mark.parametrize("case", GRID_CASES, ids=GRID_IDS)
    def test_no_engine_duplicates_a_site(self, case):
        for name in ALL_ENGINES:
            assert duplicate_keys(run_engine(name, case)) == [], name

    def test_grid_is_not_vacuous(self):
        # A sweep where nothing ever matches would pass trivially; the
        # grid must include cases with real hits (panels are sampled
        # from their genomes, so on-targets guarantee some).
        assert any(oracle_hits(case) for case in GRID_CASES)

    def test_multiworker_agreement_on_largest_case(self):
        case = max(GRID_CASES, key=lambda c: len(c.genome))
        sharded = DifferentialCase(
            genome=case.genome,
            guides=case.guides,
            budget=case.budget,
            chunk_length=case.chunk_length,
            workers=2,
            label=case.label + ",workers=2",
        )
        assert_engines_agree(sharded, engines=("parallel",))


# -- harness meta-tests --------------------------------------------------------


class TestHarnessSelf:
    def test_grid_is_deterministic(self):
        again = list(differential_grid())
        assert [c.label for c in again] == GRID_IDS
        assert [c.genome.text for c in again] == [c.genome.text for c in GRID_CASES]
        assert [c.guides for c in again] == [c.guides for c in GRID_CASES]

    def test_grid_covers_declared_axes(self):
        spec = GridSpec()
        lengths = {len(c.genome) for c in GRID_CASES}
        assert {0} <= lengths  # the empty genome is swept
        assert {len(c.guides) for c in GRID_CASES} == set(spec.panel_sizes)
        assert {c.budget.mismatches for c in GRID_CASES} == set(
            spec.mismatch_budgets
        )
        assert any("N" in c.genome.text for c in GRID_CASES)

    def test_engine_registry_is_complete(self):
        assert set(ALL_ENGINES) == set(KERNEL_ENGINES) | set(CHUNKED_ENGINES)
        case = case_from_seed(7, genome_length=400, panel_size=1)
        for name in ALL_ENGINES:
            assert isinstance(run_engine(name, case), list), name

    def test_unknown_engine_is_an_error(self):
        case = case_from_seed(7, genome_length=400, panel_size=1)
        with pytest.raises(ValueError, match="unknown differential engine"):
            run_engine("quantum", case)

    def test_harness_can_fail(self, monkeypatch):
        # The load-bearing meta-test: corrupt one engine's output and
        # the agreement check must raise. A harness that cannot fail
        # would certify anything.
        import differential as harness

        case = case_from_seed(11, genome_length=600, panel_size=1, mismatches=2)
        assert oracle_hits(case), "need a case with hits to corrupt"
        real_run_engine = harness.run_engine

        def corrupted(name, inner_case):
            hits = real_run_engine(name, inner_case)
            if name == "bitparallel" and hits:
                return hits[:-1]  # drop one hit
            return hits

        monkeypatch.setattr(harness, "run_engine", corrupted)
        with pytest.raises(AssertionError, match="bitparallel != naive"):
            harness.assert_engines_agree(case, engines=("bitparallel",))

    def test_harness_catches_reordering(self, monkeypatch):
        import differential as harness

        case = case_from_seed(11, genome_length=900, panel_size=3, mismatches=3)
        assert len(oracle_hits(case)) >= 2, "need >= 2 hits to reorder"
        real_run_engine = harness.run_engine

        def reordered(name, inner_case):
            hits = real_run_engine(name, inner_case)
            if name == "matcher":
                return list(reversed(hits))
            return hits

        monkeypatch.setattr(harness, "run_engine", reordered)
        with pytest.raises(AssertionError, match="ordered hit list"):
            harness.assert_engines_agree(case, engines=("matcher",))

    def test_case_from_seed_reproducible(self):
        a = case_from_seed(42)
        b = case_from_seed(42)
        assert a.genome.text == b.genome.text
        assert a.guides == b.guides
        assert oracle_hits(a) == oracle_hits(b)

    def test_overlap_matches_streaming_rule(self):
        case = case_from_seed(5, genome_length=400, panel_size=2)
        assert case.overlap == max(g.site_length for g in case.guides) - 1
        bulged = DifferentialCase(
            genome=case.genome,
            guides=case.guides,
            budget=SearchBudget(mismatches=1, dna_bulges=2),
        )
        assert bulged.overlap == case.overlap + 2

    def test_resolved_chunk_length_never_below_overlap(self):
        case = case_from_seed(5, genome_length=400, panel_size=1, chunk_length=1)
        assert case.resolved_chunk_length() > case.overlap


class TestChunkMenu:
    def test_next_prime_above(self):
        assert next_prime_above(1) == 2
        assert next_prime_above(24) == 29
        assert next_prime_above(29) == 29

    def test_menu_spans_the_adversarial_shapes(self):
        overlap, total = 22, 900
        lengths = [
            adversarial_chunk_length(overlap, total, c)
            for c in range(NUM_CHUNK_CHOICES)
        ]
        assert lengths[0] == overlap + 1  # minimum legal chunk
        assert lengths[3] > total  # one chunk swallows the genome
        assert all(length > overlap for length in lengths)

    def test_menu_never_returns_illegal_chunk(self):
        # Choice 4 is a fixed prime that can fall below a large
        # overlap; the clamp must keep every choice legal.
        for overlap in (10, 60, 61, 200):
            for choice in range(NUM_CHUNK_CHOICES):
                assert adversarial_chunk_length(overlap, 50, choice) > overlap


class TestBulgedBudgetsThroughHarness:
    """The bulge-first differential layer: every engine — the banded
    bit-parallel kernel included, natively, with no matcher fallback —
    bit-identical to the naive oracle across the bulged budget-shape
    grid and the planted-bulge adversaries (word-boundary straddles,
    genome-position-0 sites, PAM-adjacent bulges, saturating mixes)."""

    @pytest.mark.parametrize("case", BULGED_GRID_CASES, ids=BULGED_GRID_IDS)
    def test_bulged_grid_agreement(self, case):
        assert_engines_agree(case)

    @pytest.mark.parametrize("case", PLANTED_CASES, ids=PLANTED_IDS)
    def test_planted_bulge_agreement(self, case):
        assert_engines_agree(case)

    @pytest.mark.parametrize("case", PLANTED_CASES, ids=PLANTED_IDS)
    def test_no_engine_duplicates_a_planted_site(self, case):
        for name in ALL_ENGINES:
            assert duplicate_keys(run_engine(name, case)) == [], name

    def test_bulged_grid_covers_declared_shapes(self):
        shapes = {
            (c.budget.rna_bulges, c.budget.dna_bulges) for c in BULGED_GRID_CASES
        }
        assert shapes == set(BULGED_GRID_SPEC.bulge_shapes)
        assert (0, 0) not in shapes  # the bulged grid is all-bulged
        # Saturation is swept at both ends: a zero-mismatch bulged
        # budget and a budget where every dimension is spent.
        assert any(c.budget.mismatches == 0 for c in BULGED_GRID_CASES)
        assert any(
            c.budget.mismatches + c.budget.rna_bulges + c.budget.dna_bulges >= 5
            for c in BULGED_GRID_CASES
        )

    def test_planted_cases_are_not_vacuous(self):
        # The planted layer must contain found sites (the point of
        # planting) and at least one over-budget plant that no engine
        # may report.
        found = {case.label: len(oracle_hits(case)) for case in PLANTED_CASES}
        assert sum(found.values()) > 0
        assert found["plant[over-budget-mix]"] == 0
        assert found["plant[saturating-mix]"] == 1

    def test_planted_sites_straddle_words_and_chunks(self):
        by_label = {case.label: case for case in PLANTED_CASES}
        straddle = by_label["plant[rna-word-straddle]"]
        (hit,) = oracle_hits(straddle)
        assert hit.start < 64 < hit.end  # crosses the uint64 word seam
        assert straddle.resolved_chunk_length() < len(straddle.genome)
        at_zero = by_label["plant[rna-at-genome-start]"]
        (hit,) = oracle_hits(at_zero)
        assert hit.start == 0

    def test_bulged_multiworker_agreement(self):
        case = case_from_seed(
            23, genome_length=700, panel_size=1, mismatches=1,
            rna_bulges=1, dna_bulges=1,
        )
        sharded = DifferentialCase(
            genome=case.genome,
            guides=case.guides,
            budget=case.budget,
            chunk_length=64,
            workers=2,
            label="bulged,workers=2",
        )
        assert_engines_agree(sharded, engines=("parallel",))
