"""Chaos suite: the socket serving path under seeded fault injection.

The headline invariant (ISSUE: chaos-hardened serving): under **any**
seeded :class:`~repro.service.chaos.ChaosPlan`, every request either
returns bit-identically to a solo :class:`~repro.core.OffTargetSearch`
or fails with a typed :class:`~repro.errors.ReproError` — no hangs, no
duplicate executions, no silent truncation. Four layers:

1. ``TestChaosPlan`` — the plan itself is a reproducible adversary
   (deterministic schedules, scripted mode, fault caps).
2. ``TestScriptedFaults`` — one targeted regression per action
   (dropped/truncated response writes, slowloris, garbage, oversize
   lines, mid-line disconnects, connection floods).
3. ``TestDifferentialSweep`` — 20 seeded plans driving a retrying
   client against a chaotic server; every response is checked against
   the oracle, every failure against the typed hierarchy, and the
   server against ``check_server`` (SVC005/SVC006).
4. ``TestGracefulDrain`` — drain/stop semantics in-process and under a
   real ``SIGTERM`` against a ``repro-offtarget serve`` subprocess.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro import (
    OffTargetSearch,
    OffTargetService,
    SearchBudget,
    random_genome,
    sample_guides_from_genome,
)
from repro.check import check_server
from repro.errors import ReproError, ServiceError, ServiceTransportError
from repro.service import (
    ChaosPlan,
    OffTargetServer,
    RetryPolicy,
    ServiceClient,
    open_flood,
)
from repro.service.chaos import (
    CLIENT_ACTIONS,
    DEGRADE_ACTIONS,
    SERVER_ACTIONS,
)

from differential import DifferentialCase, assert_engines_agree
from test_service_socket import (
    REPO,
    SRC,
    start_serve_subprocess,
    write_guides_table,
)

CLIENT_TIMEOUT = 20  # every socket op in this file is bounded

# The workload every chaotic request replays, as a differential case so
# the harness can pin the solo-search reference to the naive oracle.
_GENOME = random_genome(3000, seed=41, name="chrChaos")
CASE = DifferentialCase(
    genome=_GENOME,
    guides=tuple(sample_guides_from_genome(_GENOME, 3, seed=43)),
    budget=SearchBudget(mismatches=2),
    label="chaos-workload",
)


@pytest.fixture(scope="module")
def genome():
    return CASE.genome


@pytest.fixture(scope="module")
def guides():
    return CASE.guides


@pytest.fixture(scope="module")
def budget():
    return CASE.budget


@pytest.fixture(scope="module")
def oracle():
    """Solo-search hits, the bit-identical reference for every seed.

    ``assert_engines_agree`` first pins the solo search (and every
    other engine) to the naive oracle, so a chaotic response checked
    against this list is transitively checked against ground truth.
    """
    return tuple(assert_engines_agree(CASE))


def make_server(genome, *, chaos=None, **kwargs):
    service = OffTargetService(
        background=True, batch_window_seconds=0.002, chunk_length=1 << 12
    )
    service.add_genome("default", genome)
    server = OffTargetServer(service, chaos=chaos, **kwargs)
    server.start()
    return server


def errors_of(report):
    return [d for d in report.diagnostics if d.severity.name == "ERROR"]


class TestChaosPlan:
    def test_same_seed_replays_the_same_schedule(self):
        plan_a = ChaosPlan(17)
        draws_a = [plan_a.draw("client.send") for _ in range(200)]
        plan_b = ChaosPlan(17)
        draws_b = [plan_b.draw("client.send") for _ in range(200)]
        assert draws_a == draws_b
        assert any(a is not None for a in draws_a)  # rate 0.25 fires
        assert any(a is None for a in draws_a)

    def test_sites_draw_independent_streams(self):
        # Interleaving draws at one site must not perturb the other's
        # schedule (each site derives its own generator stream).
        plan = ChaosPlan(99)
        reference = ChaosPlan(99)
        client_only = [reference.draw("client.send") for _ in range(50)]
        interleaved = []
        for _ in range(50):
            interleaved.append(plan.draw("client.send"))
            plan.draw("server.write")
        assert interleaved == client_only

    def test_actions_belong_to_their_site(self):
        plan = ChaosPlan(5, client_rate=1.0, server_rate=1.0)
        for _ in range(100):
            assert plan.draw("client.send") in CLIENT_ACTIONS
            assert plan.draw("server.write") in SERVER_ACTIONS

    def test_unknown_site_and_bad_rate_are_typed(self):
        with pytest.raises(ServiceError):
            ChaosPlan(0).draw("server.accept")
        with pytest.raises(ServiceError):
            ChaosPlan(0, client_rate=1.5)
        with pytest.raises(ServiceError):
            ChaosPlan.scripted({"client.send": ["explode"]})
        with pytest.raises(ServiceError):
            ChaosPlan.scripted({"nope": []})

    def test_scripted_mode_plays_in_order_then_behaves(self):
        plan = ChaosPlan.scripted(
            {"server.write": ["drop_before_write", None, "slow_write"]}
        )
        assert plan.draw("server.write") == "drop_before_write"
        assert plan.draw("server.write") is None
        assert plan.draw("server.write") == "slow_write"
        assert all(plan.draw("server.write") is None for _ in range(20))
        assert plan.faults_injected == 1  # slow_write degrades, uncounted

    def test_max_faults_caps_sabotage_but_not_degrades(self):
        plan = ChaosPlan(3, client_rate=1.0, max_faults=2)
        drawn = [plan.draw("client.send") for _ in range(300)]
        sabotage = [a for a in drawn if a is not None and a not in DEGRADE_ACTIONS]
        assert len(sabotage) == 2
        assert plan.faults_injected == 2
        tallies = plan.describe()
        assert tallies["drawn"]["client.send"] == 300

    def test_helper_lines_are_newline_terminated(self):
        plan = ChaosPlan(1, oversize_bytes=100, garbage_bytes=32)
        garbage = plan.garbage_line()
        assert garbage.endswith(b"\n") and len(garbage) == 33
        oversize = plan.oversize_line()
        assert oversize.endswith(b"\n") and len(oversize) == 101
        assert plan.garbage_line() != ChaosPlan(2).garbage_line()


class TestScriptedFaults:
    """One targeted regression per fault, via scripted plans."""

    def run_query(self, server, guides, budget, *, chaos=None, request_id=""):
        host, port = server.address
        with ServiceClient(
            host,
            port,
            timeout_seconds=CLIENT_TIMEOUT,
            retry=RetryPolicy(seed=7, base_delay_seconds=0.001),
            chaos=chaos,
        ) as client:
            return client.query(guides, budget, request_id=request_id)

    @pytest.mark.parametrize("action", ["drop_before_write", "truncate_write"])
    def test_lost_response_is_retried_without_reexecution(
        self, genome, guides, budget, oracle, action
    ):
        # The response to the first attempt is sabotaged after the query
        # executed; the retried id must be answered from the idempotency
        # record — bit-identical hits, execution count still 1.
        server = make_server(genome, chaos=ChaosPlan.scripted({"server.write": [action]}))
        try:
            result = self.run_query(
                server, guides, budget, request_id=f"lost-{action}"
            )
            assert result.hits == oracle
            assert server.execution_counts() == {f"lost-{action}": 1}
            assert errors_of(check_server(server)) == []
        finally:
            server.stop()

    def test_slow_write_reassembles(self, genome, guides, budget, oracle):
        # A slowloris response (dribbled in 8-byte chunks) must still
        # reassemble into the full hit list — no silent truncation.
        plan = ChaosPlan.scripted({"server.write": ["slow_write"]})
        plan.slow_chunk_bytes = 8
        plan.slow_pause_seconds = 0.0002
        server = make_server(genome, chaos=plan)
        try:
            assert self.run_query(server, guides, budget).hits == oracle
        finally:
            server.stop()

    @pytest.mark.parametrize(
        "action",
        [
            "disconnect_before_send",
            "truncate_send",
            "garbage_line",
            "disconnect_after_send",
            "slow_send",
        ],
    )
    def test_client_side_sabotage_recovers(
        self, genome, guides, budget, oracle, action
    ):
        plan = ChaosPlan.scripted({"client.send": [action]})
        server = make_server(genome)
        try:
            result = self.run_query(
                server, guides, budget, chaos=plan, request_id=f"cs-{action}"
            )
            assert result.hits == oracle
            # disconnect_after_send delivered the request (execution 1,
            # answered from the record on retry); the others never did.
            assert server.execution_counts()[f"cs-{action}"] == 1
            assert errors_of(check_server(server)) == []
        finally:
            server.stop()

    def test_oversize_line_rejected_typed_then_closed(self, genome):
        # Satellite 1 regression: an overlong line must be answered with
        # one typed bad_request and a close — never parsed as a truncated
        # request plus a garbage remainder (two bogus responses).
        server = make_server(genome, max_line_bytes=1024)
        host, port = server.address
        try:
            with socket.create_connection((host, port), timeout=10) as raw:
                raw.sendall(b"x" * 4096 + b"\n" + b'{"op": "ping"}\n')
                raw.settimeout(10)
                received = bytearray()
                while True:
                    try:
                        chunk = raw.recv(1 << 16)
                    except socket.timeout:
                        break
                    if not chunk:
                        break
                    received.extend(chunk)
            lines = bytes(received).splitlines()
            assert len(lines) == 1  # exactly one response, then close
            response = json.loads(lines[0])
            assert response["ok"] is False
            assert response["error"] == "bad_request"
            assert "too long" in response["detail"]
            metrics = server.service.metrics
            assert metrics.counter("service.server.oversize_rejected") == 1
        finally:
            server.stop()

    def test_oversize_line_without_newline_is_rejected(self, genome):
        # The truncation bug's other face: the limit must trip even when
        # the newline never arrives (readline(limit) used to return a
        # partial line here and parse it as a request).
        server = make_server(genome, max_line_bytes=1024)
        host, port = server.address
        try:
            with socket.create_connection((host, port), timeout=10) as raw:
                raw.sendall(b"y" * 4096)  # no newline
                response = json.loads(raw.makefile("rb").readline())
            assert response["ok"] is False
            assert response["error"] == "bad_request"
        finally:
            server.stop()

    def test_midline_disconnect_is_counted_and_dropped(self, genome):
        server = make_server(genome)
        host, port = server.address
        try:
            with socket.create_connection((host, port), timeout=10) as raw:
                raw.sendall(b'{"op": "pi')  # partial line, then close
            metrics = server.service.metrics
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if metrics.counter("service.server.midline_disconnects"):
                    break
                time.sleep(0.02)
            assert metrics.counter("service.server.midline_disconnects") == 1
            # The server is unharmed: a fresh client still gets answers.
            with ServiceClient(host, port, timeout_seconds=10) as client:
                assert client.ping()
        finally:
            server.stop()

    def test_connection_flood_is_shed_typed(self, genome):
        server = make_server(genome, max_connections=2)
        host, port = server.address
        flood = []
        try:
            flood = list(open_flood(host, port, 6, timeout_seconds=5))
            assert len(flood) == 6  # all connect; the excess get refused
            refused = 0
            for held in flood:
                held.settimeout(5)
                try:
                    line = held.makefile("rb").readline()
                except OSError:
                    continue
                if line:
                    payload = json.loads(line)
                    assert payload["error"] == "overloaded"
                    assert "connection limit" in payload["detail"]
                    refused += 1
            assert refused == 4
            metrics = server.service.metrics
            assert metrics.counter("service.connections.rejected") == 4
        finally:
            for held in flood:
                held.close()
            server.stop()

    def test_internal_errors_are_not_blamed_on_the_client(
        self, genome, guides, budget, monkeypatch
    ):
        # Satellite 3: a stdlib exception escaping server-side code is an
        # `internal` error; malformed wire payloads stay `bad_request`.
        server = make_server(genome)
        host, port = server.address
        try:
            with ServiceClient(host, port, timeout_seconds=10) as client:
                with pytest.raises(ServiceError) as bad:
                    client.roundtrip(
                        {"op": "query", "guides": [{"name": "g"}]}
                    )  # missing protospacer -> malformed wire
                assert "malformed query" in str(bad.value)

                def explode(*args, **kwargs):
                    raise KeyError("server-side bug")

                monkeypatch.setattr(server.service, "query_async", explode)
                raw = client.roundtrip({"op": "ping"})  # connection intact
                assert raw["op"] == "pong"
                response = server._respond(
                    json.dumps(
                        {
                            "op": "query",
                            "guides": [
                                {"name": "g", "protospacer": guides[0].protospacer}
                            ],
                        }
                    ).encode("ascii")
                )
                assert response["ok"] is False
                assert response["error"] == "internal"
                metrics = server.service.metrics
                assert metrics.counter("service.server.internal_errors") == 1
        finally:
            server.stop()


class TestRetryPolicy:
    def test_validation_is_typed(self):
        with pytest.raises(ServiceError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ServiceError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ServiceError):
            RetryPolicy(jitter_fraction=2.0)

    def test_backoff_is_capped_exponential_with_seeded_jitter(self):
        import numpy as np

        policy = RetryPolicy(
            base_delay_seconds=0.1, max_delay_seconds=0.5, jitter_fraction=0.5
        )
        rng = np.random.default_rng(0)
        delays = [policy.delay_seconds(n, rng) for n in range(1, 8)]
        ceilings = [0.1, 0.2, 0.4, 0.5, 0.5, 0.5, 0.5]
        for delay, ceiling in zip(delays, ceilings):
            assert ceiling * 0.5 <= delay <= ceiling
        rng_b = np.random.default_rng(0)
        assert delays == [policy.delay_seconds(n, rng_b) for n in range(1, 8)]

    def test_only_safe_classes_are_retryable(self):
        from repro.errors import (
            CapacityError,
            DeadlineExceededError,
            ServiceOverloadedError,
        )

        policy = RetryPolicy()
        assert policy.is_retryable(ServiceTransportError("reset"))
        assert policy.is_retryable(ServiceOverloadedError("shed"))
        no_overload = RetryPolicy(retry_overloaded=False)
        assert not no_overload.is_retryable(ServiceOverloadedError("shed"))
        for final in (
            DeadlineExceededError("late"),
            CapacityError("big"),
            ServiceError("bad"),
            ValueError("bug"),
        ):
            assert not policy.is_retryable(final)

    def test_unstamped_query_is_never_resent(self, genome, guides, budget):
        # A query that somehow lacks an id must not be retried (a resend
        # could double-execute); transport failure surfaces immediately.
        server = make_server(
            genome, chaos=ChaosPlan.scripted({"server.write": ["drop_before_write"]})
        )
        host, port = server.address
        try:
            client = ServiceClient(
                host,
                port,
                timeout_seconds=10,
                retry=RetryPolicy(seed=3, base_delay_seconds=0.001),
            )
            with client:
                payload = {
                    "op": "query",
                    "guides": [
                        {"name": "g", "protospacer": guides[0].protospacer}
                    ],
                    "budget": {"mismatches": 1},
                }  # no "id"
                with pytest.raises(ServiceTransportError):
                    client.roundtrip(payload)
            assert client.metrics.counter("service.client.retries") == 0
        finally:
            server.stop()


class TestDifferentialSweep:
    """The acceptance sweep: >= 20 seeded plans, oracle or typed error."""

    @pytest.mark.parametrize("seed", range(20))
    def test_every_request_is_oracle_or_typed(
        self, genome, guides, budget, oracle, seed
    ):
        plan = ChaosPlan(
            seed,
            client_rate=0.3,
            server_rate=0.3,
            oversize_bytes=8192,
            slow_pause_seconds=0.0002,
        )
        server = make_server(genome, chaos=plan, max_line_bytes=4096)
        host, port = server.address
        answered = failed = 0
        try:
            with ServiceClient(
                host,
                port,
                timeout_seconds=CLIENT_TIMEOUT,
                retry=RetryPolicy(seed=seed, base_delay_seconds=0.001),
                chaos=plan,
            ) as client:
                for request in range(6):
                    try:
                        result = client.query(
                            guides, budget, request_id=f"sweep-{seed}-{request}"
                        )
                    except ReproError:
                        failed += 1  # typed, allowed; never a hang
                    else:
                        assert result.hits == oracle, f"seed {seed} diverged"
                        answered += 1
            assert answered + failed == 6
            counts = server.execution_counts()
            assert all(count == 1 for count in counts.values()), counts
            assert errors_of(check_server(server)) == []
        finally:
            server.stop()
        assert server.stopped and not server.accepting
        assert server.active_connections == 0

    def test_sweep_injects_meaningfully(self, genome, guides, budget, oracle):
        # Guard against a vacuous sweep: at least one seeded plan must
        # actually fire faults on both sides of the wire.
        plan = ChaosPlan(1, client_rate=0.5, server_rate=0.5)
        server = make_server(genome, chaos=plan)
        host, port = server.address
        try:
            with ServiceClient(
                host,
                port,
                timeout_seconds=CLIENT_TIMEOUT,
                retry=RetryPolicy(seed=1, base_delay_seconds=0.001),
                chaos=plan,
            ) as client:
                for request in range(8):
                    try:
                        client.query(guides, budget, request_id=f"inj-{request}")
                    except ReproError:
                        pass
            tallies = plan.describe()["injected"]
            assert tallies.get("client.send", 0) > 0
            assert tallies.get("server.write", 0) > 0
        finally:
            server.stop()


class TestCheckServerRules:
    """SVC005–SVC007 catch sabotaged idempotency/lifecycle state."""

    def test_healthy_server_passes_with_svc007_info(self, genome):
        server = make_server(genome)
        try:
            report = check_server(server)
            assert report.ok, report.render()
            assert "SVC007" in {d.rule for d in report.diagnostics}
        finally:
            server.stop()

    def test_svc005_duplicate_execution(self, genome):
        server = make_server(genome)
        try:
            server._executions["req-1"] = 2  # sabotage: a double-execution
            report = check_server(server)
            assert "SVC005" in {d.rule for d in errors_of(report)}
        finally:
            server.stop()

    def test_svc005_record_over_capacity(self, genome):
        server = make_server(genome, idempotency_capacity=1)
        try:
            server._completed["a"] = {"id": "a"}  # sabotage: bypass the LRU
            server._completed["b"] = {"id": "b"}
            report = check_server(server)
            assert "SVC005" in {d.rule for d in errors_of(report)}
        finally:
            server.stop()

    def test_svc005_mismatched_recorded_response(self, genome):
        server = make_server(genome)
        try:
            server._completed["a"] = {"id": "b", "ok": True}
            report = check_server(server)
            assert "SVC005" in {d.rule for d in errors_of(report)}
        finally:
            server.stop()

    def test_svc006_draining_but_still_accepting(self, genome):
        server = make_server(genome)
        try:
            server._draining.set()  # sabotage: flag without closing listener
            report = check_server(server)
            assert "SVC006" in {d.rule for d in errors_of(report)}
        finally:
            server._draining.clear()
            server.stop()

    def test_svc006_stopped_with_live_handlers(self, genome):
        server = make_server(genome)
        release = threading.Event()
        straggler = threading.Thread(target=release.wait, daemon=True)
        straggler.start()
        try:
            server.stop()
            server._handlers[straggler] = None  # sabotage: abandoned handler
            report = check_server(server)
            assert "SVC006" in {d.rule for d in errors_of(report)}
        finally:
            release.set()
            straggler.join(timeout=5)


class TestGracefulDrain:
    def test_drain_answers_inflight_then_stops(self, genome, guides, budget, oracle):
        # A query admitted before the drain began must be answered in
        # full; the drain then closes the listener and joins handlers.
        service = OffTargetService(
            background=True, batch_window_seconds=0.25, chunk_length=1 << 12
        )
        service.add_genome("default", genome)
        server = OffTargetServer(service)
        host, port = server.start()
        results = []

        def slow_query():
            with ServiceClient(host, port, timeout_seconds=CLIENT_TIMEOUT) as client:
                results.append(client.query(guides, budget, request_id="inflight"))

        worker = threading.Thread(target=slow_query)
        worker.start()
        deadline = time.monotonic() + 10  # wait until the query is admitted
        while time.monotonic() < deadline and not service.metrics.counter(
            "service.server.executions"
        ):
            time.sleep(0.005)
        server.request_drain()
        worker.join(timeout=CLIENT_TIMEOUT)
        assert not worker.is_alive()
        assert results and results[0].hits == oracle
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and not server.stopped:
            time.sleep(0.01)
        assert server.stopped and not server.accepting
        assert server.active_connections == 0
        assert errors_of(check_server(server)) == []
        assert service.metrics.counter("service.drain.completed") == 1

    def test_draining_server_refuses_new_connections(self, genome):
        server = make_server(genome)
        host, port = server.address
        with ServiceClient(host, port, timeout_seconds=10) as client:
            assert client.drain()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and not server.stopped:
            time.sleep(0.01)
        assert server.stopped
        with pytest.raises(ServiceTransportError):
            with ServiceClient(host, port, timeout_seconds=2) as late:
                late.ping()

    def test_stop_is_drain(self, genome, guides, budget):
        # Satellite 2 regression: stop() must join in-flight handlers
        # before closing the service, so a straggling request is
        # answered (or typed), never abandoned mid-execution.
        service = OffTargetService(
            background=True, batch_window_seconds=0.2, chunk_length=1 << 12
        )
        service.add_genome("default", genome)
        server = OffTargetServer(service)
        host, port = server.start()
        outcome = []

        def straggler():
            try:
                with ServiceClient(host, port, timeout_seconds=CLIENT_TIMEOUT) as c:
                    outcome.append(c.query(guides, budget, request_id="straggle"))
            except ReproError as error:
                outcome.append(error)

        worker = threading.Thread(target=straggler)
        worker.start()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and not service.metrics.counter(
            "service.server.executions"
        ):
            time.sleep(0.005)
        server.stop()  # synchronous: returns only when drained
        worker.join(timeout=CLIENT_TIMEOUT)
        assert not worker.is_alive()
        assert outcome, "in-flight request was abandoned without an answer"
        assert server.stopped and server.active_connections == 0
        assert errors_of(check_server(server)) == []

    def test_health_op_reports_readiness(self, genome):
        server = make_server(genome, max_connections=9)
        host, port = server.address
        try:
            with ServiceClient(host, port, timeout_seconds=10) as client:
                health = client.health()
            assert health["live"] and health["ready"]
            assert health["draining"] is False
            assert health["max_connections"] == 9
            assert health["sessions"] == ["default"]
            assert health["queue_depth"] == 0
            assert health["cache"]["capacity"] > 0
        finally:
            server.stop()
        assert server.health()["live"] is False
        assert server.health()["ready"] is False

    def test_sigterm_finishes_inflight_query(self, tmp_path, genome, guides, budget):
        # Acceptance: SIGTERM arriving mid-query completes that query
        # before the serve subprocess exits 0.
        oracle = OffTargetSearch(guides, budget).run(genome).hits
        process, port = start_serve_subprocess(
            tmp_path, genome, "--batch-window", "0.5"
        )
        results = []
        try:
            with ServiceClient("127.0.0.1", port, timeout_seconds=60) as client:

                def inflight():
                    results.append(
                        client.query(guides, budget, request_id="sigterm-q")
                    )

                worker = threading.Thread(target=inflight)
                worker.start()
                time.sleep(0.15)  # inside the 0.5 s batch window
                process.send_signal(signal.SIGTERM)
                worker.join(timeout=60)
                assert not worker.is_alive()
            assert process.wait(timeout=60) == 0
            assert results and results[0].hits == oracle
            assert "draining" in process.stderr.read()
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)

    def test_cli_query_retries_flag(self, tmp_path, genome, guides):
        # --retries 1 disables retry: nothing listening -> quick exit 2.
        table = tmp_path / "guides.txt"
        write_guides_table(table, guides[:1])
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "query",
                str(table),
                "--port",
                str(free_port),
                "--retries",
                "1",
            ],
            cwd=REPO,
            env={**os.environ, "PYTHONPATH": str(SRC)},
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert completed.returncode == 2
        assert "cannot connect" in completed.stderr
