"""Unit tests for repro.grna.hit."""

from repro.grna.guide import Guide
from repro.grna.hit import OffTargetHit, dedupe_hits, render_alignment


def _hit(**overrides):
    fields = dict(
        guide_name="g",
        sequence_name="chr",
        strand="+",
        start=10,
        end=33,
        mismatches=1,
        rna_bulges=0,
        dna_bulges=0,
        site="",
    )
    fields.update(overrides)
    return OffTargetHit(**fields)


class TestHit:
    def test_edits(self):
        assert _hit(mismatches=2, rna_bulges=1, dna_bulges=1).edits == 4

    def test_key_identity(self):
        assert _hit().key == _hit(mismatches=3).key
        assert _hit().key != _hit(start=11).key

    def test_ordering(self):
        assert _hit(start=5) < _hit(start=6)

    def test_bed_line(self):
        line = _hit().to_bed_line()
        assert line.split("\t") == ["chr", "10", "33", "g", "1", "+"]


class TestDedupe:
    def test_keeps_distinct_spans(self):
        hits = [_hit(start=1, end=24), _hit(start=2, end=25)]
        assert len(dedupe_hits(hits)) == 2

    def test_collapses_same_span_keeps_fewest_edits(self):
        better = _hit(mismatches=1)
        worse = _hit(mismatches=0, rna_bulges=1, dna_bulges=1)
        assert dedupe_hits([worse, better]) == [better]
        assert dedupe_hits([better, worse]) == [better]

    def test_tie_broken_by_fewer_bulges(self):
        mismatchy = _hit(mismatches=2)
        bulgy = _hit(mismatches=1, rna_bulges=1)
        assert dedupe_hits([bulgy, mismatchy]) == [mismatchy]

    def test_different_strands_not_merged(self):
        hits = [_hit(strand="+"), _hit(strand="-")]
        assert len(dedupe_hits(hits)) == 2

    def test_different_guides_not_merged(self):
        hits = [_hit(guide_name="a"), _hit(guide_name="b")]
        assert len(dedupe_hits(hits)) == 2

    def test_idempotent(self):
        hits = [_hit(start=s) for s in (3, 1, 2)] + [_hit(start=1, mismatches=0)]
        once = dedupe_hits(hits)
        assert dedupe_hits(once) == once

    def test_output_sorted(self):
        hits = [_hit(start=9), _hit(start=1), _hit(start=5)]
        assert [h.start for h in dedupe_hits(hits)] == [1, 5, 9]


class TestRenderAlignment:
    def test_perfect_match_rail(self):
        guide = Guide("g", "ACGTACGTACGTACGTACGT")
        site = guide.protospacer + "TGG"
        hit = _hit(site=site, mismatches=0)
        lines = render_alignment(guide, hit).splitlines()
        assert lines[0] == guide.target_pattern
        assert set(lines[1]) == {"|"}
        assert lines[2] == site

    def test_mismatches_marked(self):
        guide = Guide("g", "ACGTACGTACGTACGTACGT")
        site = "GCGTACGTACGTACGTACGT" + "AGG"
        hit = _hit(site=site, mismatches=1)
        lines = render_alignment(guide, hit).splitlines()
        assert lines[1][0] == "*"
        assert lines[2][0] == "g"  # mismatch lower-cased

    def test_bulged_hit_renders_notice(self):
        guide = Guide("g", "ACGTACGTACGTACGTACGT")
        hit = _hit(site="A" * 22, rna_bulges=1)
        text = render_alignment(guide, hit)
        assert "bulged alignment" in text
