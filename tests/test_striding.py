"""Unit tests for the 2-symbol strided automata."""

import numpy as np
import pytest

from repro import alphabet
from repro.automata.charclass import CharClass
from repro.automata.striding import (
    PAIR_CODES,
    PairClass,
    StridedAutomaton,
    build_strided_hamming,
    pack_pairs,
    strided_search,
    strided_state_count,
)
from repro.core.compiler import SearchBudget, _segments, compile_guide
from repro.core.labels import MatchLabel
from repro.errors import AutomatonError, CompileError
from repro.grna.guide import Guide

GUIDE = Guide("g", "ACGTACGTACGTACGTACGT")


def _strided_for(guide, strand, k):
    segments = _segments(guide, reverse=strand == "-")
    total = sum(len(segment.text) for segment in segments)

    def label_factory(mismatches):
        return MatchLabel(guide.name, strand, mismatches, 0, 0, total)

    return build_strided_hamming(segments, k, label_factory=label_factory)


class TestPairClass:
    def test_from_classes_product(self):
        pair = PairClass.from_classes(CharClass.of("A"), CharClass.of("CG"))
        assert pair.cardinality() == 2
        assert (0 * 5 + 1) in pair  # (A, C)
        assert (0 * 5 + 2) in pair  # (A, G)
        assert (1 * 5 + 0) not in pair

    def test_or(self):
        a = PairClass.from_classes(CharClass.of("A"), CharClass.of("A"))
        b = PairClass.from_classes(CharClass.of("C"), CharClass.of("C"))
        assert (a | b).cardinality() == 2

    def test_empty_falsy(self):
        assert not PairClass(0)
        assert PairClass.from_classes(CharClass.any(), CharClass.any()).cardinality() == 25

    def test_mask_bounds(self):
        with pytest.raises(AutomatonError):
            PairClass(1 << PAIR_CODES)


class TestPackPairs:
    def test_even_length(self):
        pairs = pack_pairs(alphabet.encode("ACGT"))
        assert pairs.tolist() == [0 * 5 + 1, 2 * 5 + 3]

    def test_odd_length_padded_with_n(self):
        pairs = pack_pairs(alphabet.encode("ACG"))
        assert pairs.tolist() == [0 * 5 + 1, 2 * 5 + alphabet.CODE_N]

    def test_empty(self):
        assert pack_pairs(np.array([], dtype=np.uint8)).size == 0


class TestEquivalence:
    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    @pytest.mark.parametrize("strand", ["+", "-"])
    def test_matches_one_stride_nfa(self, k, strand):
        compiled = compile_guide(GUIDE, SearchBudget(mismatches=k))
        strided = _strided_for(GUIDE, strand, k)
        nfa = compiled.forward if strand == "+" else compiled.reverse
        rng = np.random.default_rng(17)
        for length in (230, 301):
            codes = rng.integers(0, 4, length).astype(np.uint8)
            assert set(strided_search(codes, strided)) == set(nfa.run(codes))

    def test_both_parities_found(self):
        target = GUIDE.concrete_target()
        strided = _strided_for(GUIDE, "+", 0)
        for prefix in ("", "T"):  # even and odd site starts
            codes = alphabet.encode(prefix + target + "AAAA")
            reports = strided_search(codes, strided)
            assert [p for p, _ in reports] == [len(prefix) + len(target) - 1]

    def test_no_phantom_hits_beyond_stream_end(self):
        # A site whose final base is the N pad must not report.
        target = GUIDE.concrete_target()
        truncated = alphabet.encode("G" + target[:-1])  # odd length, site incomplete
        strided = _strided_for(GUIDE, "+", 0)
        assert strided_search(truncated, strided) == []

    def test_mismatch_rows_labelled(self):
        target = list(GUIDE.concrete_target())
        target[4] = "A" if target[4] != "A" else "C"
        codes = alphabet.encode("".join(target))
        strided = _strided_for(GUIDE, "+", 2)
        labels = [label for _, label in strided_search(codes, strided)]
        assert [l.mismatches for l in labels] == [1]

    def test_genome_n_counts_as_mismatch(self):
        target = "N" + GUIDE.concrete_target()[1:]
        strided = _strided_for(GUIDE, "+", 1)
        labels = [label for _, label in strided_search(alphabet.encode(target), strided)]
        assert [l.mismatches for l in labels] == [1]


class TestStructure:
    def test_state_count_predictor_exact(self):
        for k in (0, 1, 2, 4):
            segments = _segments(GUIDE, reverse=False)
            strided = build_strided_hamming(
                segments, k, label_factory=lambda j: ("g", j)
            )
            assert strided.num_states == strided_state_count(segments, k)

    def test_state_overhead_factor(self):
        # The real stride-2 cost over the 1-stride STE count, which the
        # F7 resource model uses: between 1x and 2.5x for these budgets.
        from repro.platforms.resources import estimate_stes

        segments = _segments(GUIDE, reverse=False)
        for k in (1, 2, 3):
            strided_states = strided_state_count(segments, k)
            one_stride = estimate_stes(20, 3, k, both_strands=False)
            assert 1.0 < strided_states / one_stride < 2.5

    def test_merge_offsets_edges(self):
        a = StridedAutomaton()
        s0 = a.add_state(PairClass.from_classes(CharClass.of("A"), CharClass.of("A")))
        s1 = a.add_state(PairClass.from_classes(CharClass.of("C"), CharClass.of("C")))
        a.connect(s0, s1)
        b = StridedAutomaton()
        b.add_state(PairClass.from_classes(CharClass.of("G"), CharClass.of("G")))
        a.merge(b)
        assert a.num_states == 3
        assert a.num_edges == 1

    def test_empty_class_rejected(self):
        automaton = StridedAutomaton()
        with pytest.raises(AutomatonError):
            automaton.add_state(PairClass(0))

    def test_negative_budget_rejected(self):
        with pytest.raises(CompileError):
            build_strided_hamming(
                _segments(GUIDE, reverse=False), -1, label_factory=lambda j: j
            )
