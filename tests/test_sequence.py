"""Unit tests for repro.genome.sequence."""

import numpy as np
import pytest

from repro.errors import AlphabetError
from repro.genome.sequence import Sequence, TwoBitSequence


class TestSequence:
    def test_from_text(self):
        seq = Sequence.from_text("s", "ACGTN")
        assert seq.text == "ACGTN"
        assert len(seq) == 5

    def test_codes_immutable(self):
        seq = Sequence.from_text("s", "ACGT")
        with pytest.raises(ValueError):
            seq.codes[0] = 2

    def test_rejects_bad_codes(self):
        with pytest.raises(AlphabetError):
            Sequence("s", np.array([0, 9], dtype=np.uint8))

    def test_rejects_2d(self):
        with pytest.raises(AlphabetError):
            Sequence("s", np.zeros((2, 2), dtype=np.uint8))

    def test_getitem_scalar_and_slice(self):
        seq = Sequence.from_text("s", "ACGTN")
        assert seq[1] == "C"
        assert seq[1:4] == "CGT"

    def test_equality_and_hash(self):
        a = Sequence.from_text("s", "ACGT")
        b = Sequence.from_text("s", "ACGT")
        c = Sequence.from_text("t", "ACGT")
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_window(self):
        seq = Sequence.from_text("s", "ACGTACGT")
        assert seq.window(2, 3) == "GTA"

    def test_window_out_of_bounds(self):
        seq = Sequence.from_text("s", "ACGT")
        with pytest.raises(IndexError):
            seq.window(2, 3)
        with pytest.raises(IndexError):
            seq.window(-1, 2)

    def test_reverse_complement(self):
        seq = Sequence.from_text("s", "AACGTN")
        assert seq.reverse_complement().text == "NACGTT"

    def test_reverse_complement_involution(self):
        seq = Sequence.from_text("s", "ACGGTTANC")
        assert seq.reverse_complement().reverse_complement().text == seq.text

    def test_gc_fraction(self):
        assert Sequence.from_text("s", "GGCC").gc_fraction() == 1.0
        assert Sequence.from_text("s", "AATT").gc_fraction() == 0.0
        assert Sequence.from_text("s", "ACGT").gc_fraction() == 0.5

    def test_gc_fraction_ignores_n(self):
        assert Sequence.from_text("s", "GCNN").gc_fraction() == 1.0

    def test_gc_fraction_empty(self):
        assert Sequence.from_text("s", "").gc_fraction() == 0.0
        assert Sequence.from_text("s", "NNN").gc_fraction() == 0.0

    def test_count_n(self):
        assert Sequence.from_text("s", "ANNGT").count_n() == 2


class TestTwoBitSequence:
    def test_pack_unpack_roundtrip(self):
        text = "ACGTNACGTNGGCCAATT"
        seq = Sequence.from_text("s", text)
        packed = TwoBitSequence.pack(seq)
        assert packed.unpack().text == text

    def test_roundtrip_various_lengths(self):
        for length in (0, 1, 3, 4, 5, 8, 9, 17):
            text = ("ACGTN" * 5)[:length]
            seq = Sequence.from_text("s", text)
            assert TwoBitSequence.pack(seq).unpack().text == text

    def test_length(self):
        seq = Sequence.from_text("s", "ACGTACG")
        assert len(TwoBitSequence.pack(seq)) == 7

    def test_base_at(self):
        text = "ACGTNACGT"
        packed = TwoBitSequence.pack(Sequence.from_text("s", text))
        for index, base in enumerate(text):
            assert packed.base_at(index) == base

    def test_base_at_out_of_range(self):
        packed = TwoBitSequence.pack(Sequence.from_text("s", "ACGT"))
        with pytest.raises(IndexError):
            packed.base_at(4)

    def test_nbytes_compression(self):
        seq = Sequence.from_text("s", "ACGT" * 100)
        packed = TwoBitSequence.pack(seq)
        # 2 bits/base + 1 bit/base bitmap < 1 byte/base.
        assert packed.nbytes < len(seq)
        assert packed.nbytes == 100 + 50

    def test_rejects_short_buffers(self):
        with pytest.raises(AlphabetError):
            TwoBitSequence(np.zeros(1, dtype=np.uint8), np.zeros(1, dtype=np.uint8), 100)

    def test_rejects_negative_length(self):
        with pytest.raises(AlphabetError):
            TwoBitSequence(np.zeros(1, dtype=np.uint8), np.zeros(1, dtype=np.uint8), -1)
