"""Property tests (hypothesis) for the socket protocol's wire schemas.

The serving layer's correctness rests on three encode/decode pairs —
``guide_to_wire``/``guide_from_wire``, ``hit_to_wire``/``hit_from_wire``
and ``budget_from_wire`` — being exact inverses through a JSON line.
These round-trips are what make the chaos suite's "bit-identical to the
solo search" invariant meaningful: if the wire lost information, the
differential comparison would be vacuous. Guide names are deliberately
arbitrary unicode (labs name guides freely); the protocol's
``ensure_ascii`` JSON escaping must carry them intact over an ASCII
socket.
"""

from __future__ import annotations

import json

from hypothesis import given, settings, strategies as st

from repro.core.compiler import SearchBudget
from repro.grna.guide import Guide
from repro.grna.hit import OffTargetHit
from repro.grna.pam import PAM_CATALOG, Pam
from repro.service.server import (
    budget_from_wire,
    guide_from_wire,
    guide_to_wire,
    hit_from_wire,
    hit_to_wire,
)

#: Names are free-form unicode (no surrogate halves; JSON can't carry
#: them and neither can a real guide table).
names = st.text(min_size=1, max_size=40).filter(lambda s: s.strip() != "")
protospacers = st.text(alphabet="ACGT", min_size=10, max_size=30)
iupac = "ACGTRYSWKMBDHVN"

catalog_pams = st.sampled_from(sorted(PAM_CATALOG))
custom_pams = st.builds(
    Pam,
    name=names,
    pattern=st.text(alphabet=iupac, min_size=1, max_size=8),
    side=st.sampled_from(["3prime", "5prime"]),
    nuclease=st.text(min_size=1, max_size=20),
)
guides = st.builds(
    Guide,
    name=names,
    protospacer=protospacers,
    pam=st.one_of(catalog_pams, custom_pams),
)

#: Short (tru-gRNA style) guides carrying an explicit length floor; the
#: wire must round-trip ``min_length`` or the server would reject them
#: when rebuilding the Guide.
short_guides = st.integers(min_value=1, max_value=9).flatmap(
    lambda n: st.builds(
        Guide,
        name=names,
        protospacer=st.text(alphabet="ACGT", min_size=n, max_size=9),
        pam=catalog_pams,
        min_length=st.just(n),
    )
)

hits = st.builds(
    OffTargetHit,
    guide_name=names,
    sequence_name=names,
    strand=st.sampled_from(["+", "-"]),
    start=st.integers(min_value=0, max_value=1 << 40),
    end=st.integers(min_value=0, max_value=1 << 40),
    mismatches=st.integers(min_value=0, max_value=10),
    rna_bulges=st.integers(min_value=0, max_value=4),
    dna_bulges=st.integers(min_value=0, max_value=4),
    site=st.text(alphabet="ACGT-", max_size=36),
)

budgets = st.builds(
    SearchBudget,
    mismatches=st.integers(min_value=0, max_value=12),
    rna_bulges=st.integers(min_value=0, max_value=6),
    dna_bulges=st.integers(min_value=0, max_value=6),
)


def over_the_wire(payload):
    """Exactly what the socket does: one ASCII JSON line each way."""
    line = json.dumps(payload).encode("ascii") + b"\n"
    return json.loads(line)


@given(guides)
@settings(max_examples=200)
def test_guide_round_trips_bit_identically(guide):
    assert guide_from_wire(over_the_wire(guide_to_wire(guide))) == guide


@given(guides)
def test_guide_wire_dict_is_self_contained(guide):
    payload = guide_to_wire(guide)
    assert set(payload) == {"name", "protospacer", "pam"}
    assert set(payload["pam"]) == {"name", "pattern", "side", "nuclease"}


@given(short_guides)
@settings(max_examples=100)
def test_short_guide_round_trips_with_min_length(guide):
    payload = guide_to_wire(guide)
    assert payload["min_length"] == guide.min_length
    rebuilt = guide_from_wire(over_the_wire(payload))
    assert rebuilt == guide
    assert rebuilt.min_length == guide.min_length


@given(names, protospacers, catalog_pams)
def test_guide_from_wire_accepts_catalog_pam_strings(name, protospacer, pam_name):
    # The compact client form: "pam" as a catalog name rather than the
    # full object guide_to_wire emits.
    payload = {"name": name, "protospacer": protospacer, "pam": pam_name}
    rebuilt = guide_from_wire(over_the_wire(payload))
    assert rebuilt == Guide(name, protospacer, pam_name)


@given(names, protospacers)
def test_guide_from_wire_default_pam(name, protospacer):
    assert guide_from_wire({"name": name, "protospacer": protospacer}) == Guide(
        name, protospacer
    )


@given(hits)
@settings(max_examples=200)
def test_hit_round_trips_bit_identically(hit):
    assert hit_from_wire(over_the_wire(hit_to_wire(hit))) == hit


@given(hits)
def test_hit_wire_defaults_match_dataclass_defaults(hit):
    # A minimal payload (bulge counts and site omitted) must decode to
    # the dataclass defaults — old clients stay readable.
    payload = hit_to_wire(hit)
    for optional in ("rna_bulges", "dna_bulges", "site"):
        payload.pop(optional)
    rebuilt = hit_from_wire(over_the_wire(payload))
    assert rebuilt == OffTargetHit(
        guide_name=hit.guide_name,
        sequence_name=hit.sequence_name,
        strand=hit.strand,
        start=hit.start,
        end=hit.end,
        mismatches=hit.mismatches,
    )


@given(budgets)
@settings(max_examples=200)
def test_budget_round_trips_bit_identically(budget):
    payload = {
        "mismatches": budget.mismatches,
        "rna_bulges": budget.rna_bulges,
        "dna_bulges": budget.dna_bulges,
    }
    assert budget_from_wire(over_the_wire(payload)) == budget


def test_budget_from_wire_defaults():
    assert budget_from_wire({}) == SearchBudget()
    assert budget_from_wire({"mismatches": 1}) == SearchBudget(mismatches=1)
