"""Unit tests for repro.automata.dfa."""

import numpy as np
import pytest

from repro import alphabet
from repro.automata.charclass import CharClass
from repro.automata.dfa import Dfa, determinize, minimize
from repro.automata.nfa import Nfa
from repro.core.compiler import SearchBudget, compile_guide
from repro.errors import AutomatonError
from repro.grna.guide import Guide


def _codes(text):
    return alphabet.encode(text)


def _search_nfa(pattern, label="hit"):
    nfa = Nfa()
    start = nfa.add_state("start")
    nfa.mark_start(start)
    current = start
    for symbol in pattern:
        nxt = nfa.add_state()
        nfa.add_transition(current, CharClass.from_iupac(symbol), nxt)
        current = nxt
    nfa.mark_accept(current, label)
    return nfa


class TestDeterminize:
    def test_equivalent_to_nfa(self):
        nfa = _search_nfa("ANGA")
        dfa = determinize(nfa)
        text = "AAGGATTANGAACGA".replace("N", "T")
        assert list(dfa.run(_codes(text))) == list(nfa.run(_codes(text)))

    def test_on_compiled_guide(self):
        guide = Guide("g", "ACGTACGTACGTACGTACGT")
        compiled = compile_guide(guide, SearchBudget(mismatches=1))
        nfa = compiled.combined
        dfa = determinize(nfa.without_epsilon())
        rng = np.random.default_rng(3)
        codes = rng.integers(0, 4, 400).astype(np.uint8)
        assert sorted(dfa.run(codes)) == sorted(nfa.run(codes))

    def test_overlapping_occurrences(self):
        nfa = _search_nfa("AA")
        dfa = determinize(nfa)
        assert [p for p, _ in dfa.run(_codes("AAAA"))] == [1, 2, 3]

    def test_rejects_accepting_start(self):
        nfa = Nfa()
        start = nfa.add_state()
        nfa.mark_start(start)
        nfa.mark_accept(start, "bad")
        with pytest.raises(AutomatonError):
            determinize(nfa)


class TestMinimize:
    def test_reduces_states_preserves_language(self):
        guide = Guide("g", "ACGTACGTACGTACGTACGT")
        compiled = compile_guide(guide, SearchBudget(mismatches=1))
        dfa = determinize(compiled.combined.without_epsilon())
        small = minimize(dfa)
        assert small.num_states <= dfa.num_states
        rng = np.random.default_rng(4)
        codes = rng.integers(0, 5, 500).astype(np.uint8)
        assert sorted(small.run(codes)) == sorted(dfa.run(codes))

    def test_collapses_redundant_states(self):
        # Two literal branches accepting the same label minimise smaller.
        nfa = Nfa()
        start = nfa.add_state()
        nfa.mark_start(start)
        for _ in range(2):
            current = start
            for symbol in "ACG":
                nxt = nfa.add_state()
                nfa.add_transition(current, CharClass.of(symbol), nxt)
                current = nxt
            nfa.mark_accept(current, "same")
        dfa = determinize(nfa)
        assert minimize(dfa).num_states <= dfa.num_states

    def test_distinct_labels_not_merged(self):
        nfa = _search_nfa("AC", label="first")
        other = _search_nfa("AG", label="second")
        from repro.automata import ops

        merged = ops.union([nfa, other])
        dfa = minimize(determinize(merged))
        text = "ACAG"
        labels = [label for _, label in dfa.run(_codes(text))]
        assert labels == ["first", "second"]


class TestDfaValidation:
    def test_rejects_bad_shape(self):
        with pytest.raises(AutomatonError):
            Dfa(np.zeros((2, 3), dtype=np.int64), 0)

    def test_rejects_bad_start(self):
        with pytest.raises(AutomatonError):
            Dfa(np.zeros((2, 5), dtype=np.int64), 7)

    def test_rejects_dangling_transition(self):
        table = np.zeros((2, 5), dtype=np.int64)
        table[1, 3] = 9
        with pytest.raises(AutomatonError):
            Dfa(table, 0)

    def test_match_count(self):
        dfa = determinize(_search_nfa("AC"))
        assert dfa.match_count(_codes("ACAC")) == 2
