"""Unit tests for repro.automata.dfa."""

import numpy as np
import pytest

from repro import alphabet
from repro.automata.charclass import CharClass
from repro.automata.dfa import (
    Dfa,
    determinize,
    isomorphic,
    minimize,
    shortest_distinguishing_word,
)
from repro.automata.nfa import Nfa
from repro.core.compiler import SearchBudget, compile_guide
from repro.errors import AutomatonError, StateBlowupError
from repro.grna.guide import Guide


def _codes(text):
    return alphabet.encode(text)


def _search_nfa(pattern, label="hit"):
    nfa = Nfa()
    start = nfa.add_state("start")
    nfa.mark_start(start)
    current = start
    for symbol in pattern:
        nxt = nfa.add_state()
        nfa.add_transition(current, CharClass.from_iupac(symbol), nxt)
        current = nxt
    nfa.mark_accept(current, label)
    return nfa


class TestDeterminize:
    def test_equivalent_to_nfa(self):
        nfa = _search_nfa("ANGA")
        dfa = determinize(nfa)
        text = "AAGGATTANGAACGA".replace("N", "T")
        assert list(dfa.run(_codes(text))) == list(nfa.run(_codes(text)))

    def test_on_compiled_guide(self):
        guide = Guide("g", "ACGTACGTACGTACGTACGT")
        compiled = compile_guide(guide, SearchBudget(mismatches=1))
        nfa = compiled.combined
        dfa = determinize(nfa.without_epsilon())
        rng = np.random.default_rng(3)
        codes = rng.integers(0, 4, 400).astype(np.uint8)
        assert sorted(dfa.run(codes)) == sorted(nfa.run(codes))

    def test_overlapping_occurrences(self):
        nfa = _search_nfa("AA")
        dfa = determinize(nfa)
        assert [p for p, _ in dfa.run(_codes("AAAA"))] == [1, 2, 3]

    def test_rejects_accepting_start(self):
        nfa = Nfa()
        start = nfa.add_state()
        nfa.mark_start(start)
        nfa.mark_accept(start, "bad")
        with pytest.raises(AutomatonError):
            determinize(nfa)


class TestMinimize:
    def test_reduces_states_preserves_language(self):
        guide = Guide("g", "ACGTACGTACGTACGTACGT")
        compiled = compile_guide(guide, SearchBudget(mismatches=1))
        dfa = determinize(compiled.combined.without_epsilon())
        small = minimize(dfa)
        assert small.num_states <= dfa.num_states
        rng = np.random.default_rng(4)
        codes = rng.integers(0, 5, 500).astype(np.uint8)
        assert sorted(small.run(codes)) == sorted(dfa.run(codes))

    def test_collapses_redundant_states(self):
        # Two literal branches accepting the same label minimise smaller.
        nfa = Nfa()
        start = nfa.add_state()
        nfa.mark_start(start)
        for _ in range(2):
            current = start
            for symbol in "ACG":
                nxt = nfa.add_state()
                nfa.add_transition(current, CharClass.of(symbol), nxt)
                current = nxt
            nfa.mark_accept(current, "same")
        dfa = determinize(nfa)
        assert minimize(dfa).num_states <= dfa.num_states

    def test_distinct_labels_not_merged(self):
        nfa = _search_nfa("AC", label="first")
        other = _search_nfa("AG", label="second")
        from repro.automata import ops

        merged = ops.union([nfa, other])
        dfa = minimize(determinize(merged))
        text = "ACAG"
        labels = [label for _, label in dfa.run(_codes(text))]
        assert labels == ["first", "second"]


class TestSubsetConstructionPin:
    """Exact subset-construction pins on a hand-built 3-state NFA."""

    def test_three_state_nfa_pins_subsets(self):
        # start --A--> s1 --C--> s2(accept "hit"), start re-injected.
        # Subsets: {start}, {start,s1}, {start,s2} — exactly three.
        nfa = _search_nfa("AC")
        assert nfa.num_states == 3
        dfa = determinize(nfa)
        assert dfa.num_states == 3
        # State 0 is the start subset; 'A' leaves it, any other symbol
        # loops (re-injection only).
        a, c = alphabet.code_of("A"), alphabet.code_of("C")
        assert dfa.start_state == 0
        assert dfa.transitions[0, c] == 0
        mid = int(dfa.transitions[0, a])
        assert mid != 0
        # 'A' from the mid subset re-enters it ({s1} ∪ {start}).
        assert dfa.transitions[mid, a] == mid
        accept = int(dfa.transitions[mid, c])
        assert dfa.accepts == {accept: ("hit",)}
        # The accept subset behaves like the start subset afterwards.
        assert dfa.transitions[accept, a] == mid
        assert dfa.transitions[accept, c] == 0

    def test_max_states_guard_trips(self):
        guide = Guide("g", "ACGTACGTACGTACGTACGT")
        compiled = compile_guide(guide, SearchBudget(mismatches=1))
        with pytest.raises(StateBlowupError):
            determinize(compiled.combined.without_epsilon(), max_states=10)

    def test_max_states_guard_permits_exact_fit(self):
        nfa = _search_nfa("AC")
        assert determinize(nfa, max_states=3).num_states == 3


class TestMinimizePin:
    """Minimisation pins on a known-minimal pair."""

    def test_duplicated_branches_minimise_to_known_minimal(self):
        from repro.automata import ops

        single = minimize(determinize(_search_nfa("AC")))
        doubled = ops.union([_search_nfa("AC"), _search_nfa("AC", label="hit")])
        merged = minimize(determinize(doubled))
        # The duplicated automaton minimises to exactly the known
        # minimal machine: same size, same language, isomorphic.
        assert single.num_states == 3
        assert merged.num_states == 3
        assert isomorphic(single, merged)

    def test_known_minimal_machine_is_fixed_point(self):
        minimal = minimize(determinize(_search_nfa("ACG")))
        again = minimize(minimal)
        assert again.num_states == minimal.num_states
        assert isomorphic(minimal, again)

    def test_deterministic_output(self):
        guide = Guide("g", "ACGTACGTACGTACGTACGT")
        compiled = compile_guide(guide, SearchBudget(mismatches=1))
        dfa = determinize(compiled.combined.without_epsilon())
        first, second = minimize(dfa), minimize(dfa)
        assert np.array_equal(first.transitions, second.transitions)
        assert first.start_state == second.start_state
        assert first.accepts == second.accepts


class TestIsomorphic:
    def test_same_language_different_construction(self):
        from repro.automata import ops

        left = minimize(determinize(_search_nfa("ACG")))
        right = minimize(
            determinize(ops.union([_search_nfa("ACG"), _search_nfa("ACG")]))
        )
        assert isomorphic(left, right)

    def test_different_language_refuted(self):
        left = minimize(determinize(_search_nfa("AC")))
        right = minimize(determinize(_search_nfa("AG")))
        assert not isomorphic(left, right)

    def test_different_labels_refuted(self):
        left = minimize(determinize(_search_nfa("AC", label="x")))
        right = minimize(determinize(_search_nfa("AC", label="y")))
        assert not isomorphic(left, right)


class TestShortestDistinguishingWord:
    def test_agreeing_machines_have_no_witness(self):
        left = minimize(determinize(_search_nfa("ACG")))
        assert shortest_distinguishing_word(left, left) is None

    def test_broken_accept_yields_minimal_word(self):
        intact = minimize(determinize(_search_nfa("AC")))
        # Deliberately break the automaton: silence its accept state.
        broken = Dfa(intact.transitions.copy(), intact.start_state, {})
        witness = shortest_distinguishing_word(intact, broken)
        assert witness is not None
        assert witness.word == "AC"  # the unique shortest disagreement
        assert witness.left_labels == frozenset({"hit"})
        assert witness.right_labels == frozenset()
        assert witness.pairs_explored >= 1

    def test_broken_transition_yields_replayable_word(self):
        intact = minimize(determinize(_search_nfa("ACGT")))
        table = intact.transitions.copy()
        g = alphabet.code_of("G")
        # Redirect one mid-pattern edge to the start subset.
        source = int(
            intact.transitions[
                int(intact.transitions[intact.start_state, alphabet.code_of("A")]),
                alphabet.code_of("C"),
            ]
        )
        table[source, g] = intact.start_state
        broken = Dfa(table, intact.start_state, dict(intact.accepts))
        witness = shortest_distinguishing_word(intact, broken)
        assert witness is not None
        # Replaying the witness on both machines exhibits the difference
        # at the final position.
        final = len(witness.word) - 1
        left = {l for p, l in intact.run(_codes(witness.word)) if p == final}
        right = {l for p, l in broken.run(_codes(witness.word)) if p == final}
        assert left != right


class TestDfaValidation:
    def test_rejects_bad_shape(self):
        with pytest.raises(AutomatonError):
            Dfa(np.zeros((2, 3), dtype=np.int64), 0)

    def test_rejects_bad_start(self):
        with pytest.raises(AutomatonError):
            Dfa(np.zeros((2, 5), dtype=np.int64), 7)

    def test_rejects_dangling_transition(self):
        table = np.zeros((2, 5), dtype=np.int64)
        table[1, 3] = 9
        with pytest.raises(AutomatonError):
            Dfa(table, 0)

    def test_match_count(self):
        dfa = determinize(_search_nfa("AC"))
        assert dfa.match_count(_codes("ACAC")) == 2
