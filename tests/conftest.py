"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import Guide, GuideLibrary, SearchBudget, random_genome, sample_guides_from_genome
from repro.core.compiler import compile_guide, compile_library


@pytest.fixture(scope="session")
def small_genome():
    """A deterministic 5 kbp genome for engine-level tests."""
    return random_genome(5000, seed=11, name="chrTest")


@pytest.fixture(scope="session")
def tiny_genome():
    """A deterministic 800 bp genome for oracle-heavy tests."""
    return random_genome(800, seed=12, name="chrTiny")


@pytest.fixture(scope="session")
def guide():
    """A single concrete NGG guide."""
    return Guide("EMX1", "GAGTCCGAGCAGAAGAAGAA")


@pytest.fixture(scope="session")
def library(small_genome):
    """Three guides sampled from the small genome (on-targets included)."""
    return sample_guides_from_genome(small_genome, 3, seed=13)


@pytest.fixture(scope="session")
def mismatch_budget():
    return SearchBudget(mismatches=2)


@pytest.fixture(scope="session")
def bulge_budget():
    return SearchBudget(mismatches=1, rna_bulges=1, dna_bulges=1)


@pytest.fixture(scope="session")
def compiled_guide(guide, mismatch_budget):
    return compile_guide(guide, mismatch_budget)


@pytest.fixture(scope="session")
def compiled_library(library, mismatch_budget):
    return compile_library(library, mismatch_budget)
