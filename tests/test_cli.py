"""Tests for the command-line interface."""

import json

import pytest

from repro.analysis.results import load_stats_json
from repro.cli import build_parser, main
from repro.genome.fasta import write_fasta
from repro.genome.synthetic import random_genome


@pytest.fixture()
def reference(tmp_path):
    path = tmp_path / "ref.fa"
    write_fasta([random_genome(30_000, seed=71, name="chrCli")], path)
    return path


@pytest.fixture()
def guide_table(tmp_path):
    path = tmp_path / "guides.txt"
    path.write_text("EMX1 GAGTCCGAGCAGAAGAAGAA\nVEGFA GGGTGGGGGGAGTTTGCTCC\n")
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_search_defaults(self):
        args = build_parser().parse_args(["search", "r.fa", "g.txt"])
        assert args.engine == "hyperscan"
        assert args.mismatches == 3

    def test_budget_flags(self):
        args = build_parser().parse_args(
            ["search", "r.fa", "g.txt", "--mismatches", "2", "--rna-bulges", "1"]
        )
        assert (args.mismatches, args.rna_bulges, args.dna_bulges) == (2, 1, 0)

    def test_workers_default_is_serial_kernel(self):
        args = build_parser().parse_args(["search", "r.fa", "g.txt"])
        assert args.workers is None

    @pytest.mark.parametrize("bad", ["0", "-2", "two"])
    def test_workers_rejects_invalid_values(self, bad, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["search", "r.fa", "g.txt", "--workers", bad])
        assert excinfo.value.code == 2
        assert "--workers" in capsys.readouterr().err

    @pytest.mark.parametrize("bad", ["0", "-1", "huge"])
    def test_chunk_length_rejects_nonpositive(self, bad, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(
                ["search", "r.fa", "g.txt", "--chunk-length", bad]
            )
        assert excinfo.value.code == 2
        assert "--chunk-length" in capsys.readouterr().err

    @pytest.mark.parametrize("flag", ["--mismatches", "--rna-bulges", "--dna-bulges"])
    @pytest.mark.parametrize("command", ["search", "evaluate", "check"])
    def test_budget_flags_reject_negative(self, command, flag, capsys):
        argv = {
            "search": ["search", "r.fa", "g.txt"],
            "evaluate": ["evaluate"],
            "check": ["check", "--guides", "g.txt"],
        }[command]
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args([*argv, flag, "-1"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert flag in err and "non-negative" in err

    def test_budget_flags_accept_zero(self):
        args = build_parser().parse_args(["search", "r.fa", "g.txt", "--mismatches", "0"])
        assert args.mismatches == 0

    def test_synthesize_rejects_nonpositive_length(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["synthesize", "--length", "0", "--out", "x.fa"])
        assert excinfo.value.code == 2
        assert "--length" in capsys.readouterr().err


class TestSearch:
    def test_search_outputs_bed(self, reference, guide_table, capsys):
        code = main(["search", str(reference), str(guide_table), "--mismatches", "4"])
        assert code == 0
        out = capsys.readouterr().out
        for line in out.splitlines():
            fields = line.split("\t")
            assert len(fields) == 6
            assert fields[0] == "chrCli"

    def test_search_each_engine(self, reference, guide_table, capsys):
        for engine in ("fpga", "ap", "cas-offinder"):
            assert main(
                ["search", str(reference), str(guide_table), "--engine", engine]
            ) == 0

    def test_search_unknown_engine_errors(self, reference, guide_table, capsys):
        code = main(["search", str(reference), str(guide_table), "--engine", "nope"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestSearchWorkers:
    def _hit_lines(self, capsys):
        return sorted(capsys.readouterr().out.splitlines())

    def test_workers_matches_serial_output(self, reference, guide_table, capsys):
        assert main(["search", str(reference), str(guide_table)]) == 0
        serial = self._hit_lines(capsys)
        assert (
            main(["search", str(reference), str(guide_table), "--workers", "2"]) == 0
        )
        assert self._hit_lines(capsys) == serial

    def test_workers_one_takes_serial_sharded_path(self, reference, guide_table, capsys):
        code = main(["search", str(reference), str(guide_table), "--workers", "1"])
        assert code == 0
        captured = capsys.readouterr()
        assert "sharded search (1 worker(s), serial)" in captured.err
        for line in captured.out.splitlines():
            assert len(line.split("\t")) == 6

    def test_workers_with_chunk_length(self, reference, guide_table, capsys):
        code = main(
            [
                "search",
                str(reference),
                str(guide_table),
                "--workers",
                "2",
                "--chunk-length",
                "8192",
            ]
        )
        assert code == 0
        assert "pooled" in capsys.readouterr().err

    def test_invalid_workers_exits_with_usage_error(self, reference, guide_table, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["search", str(reference), str(guide_table), "--workers", "0"])
        assert excinfo.value.code == 2


class TestBadInputs:
    """Exit codes and stderr for malformed invocations, pinned."""

    def test_missing_reference_exits_2(self, guide_table, tmp_path, capsys):
        code = main(["search", str(tmp_path / "absent.fa"), str(guide_table)])
        assert code == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert captured.out == ""

    def test_malformed_fasta_exits_2(self, guide_table, tmp_path, capsys):
        bad = tmp_path / "garbage.fa"
        bad.write_text("this is not\na fasta file\n")
        code = main(["search", str(bad), str(guide_table)])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_guide_table_exits_2(self, reference, tmp_path, capsys):
        code = main(["search", str(reference), str(tmp_path / "absent.txt")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_unwritable_stats_json_exits_2(self, reference, guide_table, tmp_path, capsys):
        target = tmp_path / "no" / "such" / "dir" / "stats.json"
        code = main(
            ["search", str(reference), str(guide_table), "--stats-json", str(target)]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestStatsJson:
    def _run(self, reference, guide_table, tmp_path, *extra):
        path = tmp_path / "stats.json"
        argv = [
            "search",
            str(reference),
            str(guide_table),
            "--stats-json",
            str(path),
            *extra,
        ]
        assert main(argv) == 0
        return json.loads(path.read_text()), path

    def test_engine_mode_payload(self, reference, guide_table, tmp_path, capsys):
        payload, _ = self._run(reference, guide_table, tmp_path)
        hit_lines = capsys.readouterr().out.splitlines()
        assert payload["mode"] == "engine"
        assert payload["engine"] == "hyperscan"
        assert payload["num_hits"] == len(hit_lines)
        assert payload["num_guides"] == 2
        assert payload["budget"] == {"mismatches": 3, "rna_bulges": 0, "dna_bulges": 0}
        run = payload["engine_runs"][0]
        assert run["sequence"] == "chrCli"
        assert run["stats"]["obs"]["counters"]["kernel.positions_scanned"] == 30_000
        assert payload["report_events_per_mbp"] >= 0.0

    def test_sharded_mode_payload(self, reference, guide_table, tmp_path, capsys):
        payload, _ = self._run(
            reference, guide_table, tmp_path,
            "--workers", "2", "--chunk-length", "8192", "--max-retries", "1",
        )
        capsys.readouterr()
        assert payload["mode"] == "sharded-pooled"
        per_sequence = payload["parallel"]
        assert len(per_sequence) == 1
        run = per_sequence[0]
        assert run["sequence"] == "chrCli"
        assert run["shards"], "per-shard rows must be present"
        for shard in run["shards"]:
            assert shard["seconds"] >= 0.0
            assert shard["attempts"] >= 1
        ft = run["fault_tolerance"]
        assert ft["max_retries"] == 1
        assert ft["retries"] == 0
        assert ft["timeouts"] == 0

    def test_streaming_mode_payload(self, reference, guide_table, tmp_path, capsys):
        payload, _ = self._run(
            reference, guide_table, tmp_path, "--chunked", "--chunk-length", "8192"
        )
        capsys.readouterr()
        assert payload["mode"] == "streaming"
        run = payload["streaming"][0]
        assert run["num_chunks"] == len(run["chunks"])
        assert run["wall_seconds"] >= 0.0

    def test_stats_json_to_stdout(self, reference, guide_table, tmp_path, capsys):
        out_path = tmp_path / "hits.bed"
        code = main(
            [
                "search",
                str(reference),
                str(guide_table),
                "--out",
                str(out_path),
                "--stats-json",
                "-",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "search"
        assert payload["num_hits"] == len(out_path.read_text().splitlines())

    def test_payload_loads_into_analysis_record(
        self, reference, guide_table, tmp_path, capsys
    ):
        payload, path = self._run(
            reference, guide_table, tmp_path, "--workers", "1"
        )
        capsys.readouterr()
        record = load_stats_json(path)
        assert record.tool == "hyperscan"
        assert record.num_hits == payload["num_hits"]
        assert record.genome_length == 30_000
        assert record.mismatches == 3
        assert record.extra["mode"] == "sharded-serial"
        assert record.extra["retries"] == 0
        assert record.measured_seconds > 0.0


class TestEvaluate:
    def test_evaluate_prints_tables(self, capsys):
        code = main(
            [
                "evaluate",
                "--guides",
                "2",
                "--functional-length",
                "60000",
                "--mismatches",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "casot" in out
        assert "Speedups" in out
        assert "vs cas-offinder" in out

    def test_evaluate_bulged_drops_cas_offinder(self, capsys):
        code = main(
            [
                "evaluate",
                "--guides",
                "2",
                "--functional-length",
                "60000",
                "--mismatches",
                "1",
                "--rna-bulges",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "vs casot" in out
        assert "vs cas-offinder" not in out


class TestSynthesize:
    def test_synthesize_writes_fasta(self, tmp_path, capsys):
        out_path = tmp_path / "syn.fa"
        code = main(
            ["synthesize", "--length", "5000", "--seed", "3", "--out", str(out_path)]
        )
        assert code == 0
        from repro.genome.fasta import read_fasta

        records = read_fasta(out_path)
        assert len(records[0].sequence) == 5000

    def test_synthesize_deterministic(self, tmp_path):
        a, b = tmp_path / "a.fa", tmp_path / "b.fa"
        main(["synthesize", "--length", "2000", "--seed", "9", "--out", str(a)])
        main(["synthesize", "--length", "2000", "--seed", "9", "--out", str(b)])
        assert a.read_text() == b.read_text()


class TestDesignCli:
    @pytest.fixture()
    def region(self, tmp_path):
        from repro.genome.sequence import Sequence

        genome = random_genome(30_000, seed=71, name="chrCli")
        path = tmp_path / "region.fa"
        region = Sequence.from_text("region", genome.window(2_000, 400))
        write_fasta([region], path)
        return path

    def test_design_tsv_is_deterministic(self, region, reference, capsys):
        argv = ["design", str(region), "--genome", str(reference), "--mismatches", "2"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        header, *rows = first.splitlines()
        assert header.startswith("#rank\tname\t")
        assert rows
        ranks = [int(row.split("\t")[0]) for row in rows]
        assert ranks == list(range(1, len(rows) + 1))

    def test_design_json_document(self, region, reference, tmp_path):
        out = tmp_path / "report.json"
        stats = tmp_path / "stats.json"
        code = main(
            [
                "design",
                str(region),
                "--genome",
                str(reference),
                "--nuclease",
                "NNGRRT",
                "--format",
                "json",
                "--out",
                str(out),
                "--stats-json",
                str(stats),
            ]
        )
        assert code == 0
        document = json.loads(out.read_text())
        assert document["pam"]["name"] == "NNGRRT"
        assert document["candidates"] == len(document["ranked"])
        assert document["genome_passes"] == 1
        payload = json.loads(stats.read_text())
        assert payload["command"] == "design"
        assert payload["num_candidates"] == document["candidates"]

    def test_design_empty_region_exits_1_with_dsg001(self, tmp_path, capsys):
        path = tmp_path / "tiny.fa"
        write_fasta([random_genome(8, seed=1, name="tiny")], path)
        assert main(["design", str(path)]) == 1
        assert "DSG001" in capsys.readouterr().err

    def test_design_bad_weights_exit_codes(self, region, tmp_path, capsys):
        weights = tmp_path / "weights.json"
        weights.write_text('{"gc_weight": 2.0}')
        assert main(["design", str(region), "--weights", str(weights)]) == 1
        assert "DSG002" in capsys.readouterr().err
        weights.write_text("{not json")
        assert main(["design", str(region), "--weights", str(weights)]) == 2
        assert "unreadable" in capsys.readouterr().err

    def test_design_capacity_preflight_exits_1(self, region, capsys):
        code = main(
            [
                "design",
                str(region),
                "--platform",
                "ap",
                "--capacity-stes",
                "4",
            ]
        )
        assert code == 1
        assert "DSG003" in capsys.readouterr().err

    def test_design_unknown_pam_exits_2(self, region, capsys):
        assert main(["design", str(region), "--pam", "XYZ!"]) == 2
        assert "error:" in capsys.readouterr().err
