"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.genome.fasta import write_fasta
from repro.genome.synthetic import random_genome


@pytest.fixture()
def reference(tmp_path):
    path = tmp_path / "ref.fa"
    write_fasta([random_genome(30_000, seed=71, name="chrCli")], path)
    return path


@pytest.fixture()
def guide_table(tmp_path):
    path = tmp_path / "guides.txt"
    path.write_text("EMX1 GAGTCCGAGCAGAAGAAGAA\nVEGFA GGGTGGGGGGAGTTTGCTCC\n")
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_search_defaults(self):
        args = build_parser().parse_args(["search", "r.fa", "g.txt"])
        assert args.engine == "hyperscan"
        assert args.mismatches == 3

    def test_budget_flags(self):
        args = build_parser().parse_args(
            ["search", "r.fa", "g.txt", "--mismatches", "2", "--rna-bulges", "1"]
        )
        assert (args.mismatches, args.rna_bulges, args.dna_bulges) == (2, 1, 0)

    def test_workers_default_is_serial_kernel(self):
        args = build_parser().parse_args(["search", "r.fa", "g.txt"])
        assert args.workers is None

    @pytest.mark.parametrize("bad", ["0", "-2", "two"])
    def test_workers_rejects_invalid_values(self, bad, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["search", "r.fa", "g.txt", "--workers", bad])
        assert excinfo.value.code == 2
        assert "--workers" in capsys.readouterr().err


class TestSearch:
    def test_search_outputs_bed(self, reference, guide_table, capsys):
        code = main(["search", str(reference), str(guide_table), "--mismatches", "4"])
        assert code == 0
        out = capsys.readouterr().out
        for line in out.splitlines():
            fields = line.split("\t")
            assert len(fields) == 6
            assert fields[0] == "chrCli"

    def test_search_each_engine(self, reference, guide_table, capsys):
        for engine in ("fpga", "ap", "cas-offinder"):
            assert main(
                ["search", str(reference), str(guide_table), "--engine", engine]
            ) == 0

    def test_search_unknown_engine_errors(self, reference, guide_table, capsys):
        code = main(["search", str(reference), str(guide_table), "--engine", "nope"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestSearchWorkers:
    def _hit_lines(self, capsys):
        return sorted(capsys.readouterr().out.splitlines())

    def test_workers_matches_serial_output(self, reference, guide_table, capsys):
        assert main(["search", str(reference), str(guide_table)]) == 0
        serial = self._hit_lines(capsys)
        assert (
            main(["search", str(reference), str(guide_table), "--workers", "2"]) == 0
        )
        assert self._hit_lines(capsys) == serial

    def test_workers_one_takes_serial_sharded_path(self, reference, guide_table, capsys):
        code = main(["search", str(reference), str(guide_table), "--workers", "1"])
        assert code == 0
        captured = capsys.readouterr()
        assert "sharded search (1 worker(s), serial)" in captured.err
        for line in captured.out.splitlines():
            assert len(line.split("\t")) == 6

    def test_workers_with_chunk_length(self, reference, guide_table, capsys):
        code = main(
            [
                "search",
                str(reference),
                str(guide_table),
                "--workers",
                "2",
                "--chunk-length",
                "8192",
            ]
        )
        assert code == 0
        assert "pooled" in capsys.readouterr().err

    def test_invalid_workers_exits_with_usage_error(self, reference, guide_table, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["search", str(reference), str(guide_table), "--workers", "0"])
        assert excinfo.value.code == 2


class TestEvaluate:
    def test_evaluate_prints_tables(self, capsys):
        code = main(
            [
                "evaluate",
                "--guides",
                "2",
                "--functional-length",
                "60000",
                "--mismatches",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "casot" in out
        assert "Speedups" in out
        assert "vs cas-offinder" in out

    def test_evaluate_bulged_drops_cas_offinder(self, capsys):
        code = main(
            [
                "evaluate",
                "--guides",
                "2",
                "--functional-length",
                "60000",
                "--mismatches",
                "1",
                "--rna-bulges",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "vs casot" in out
        assert "vs cas-offinder" not in out


class TestSynthesize:
    def test_synthesize_writes_fasta(self, tmp_path, capsys):
        out_path = tmp_path / "syn.fa"
        code = main(
            ["synthesize", "--length", "5000", "--seed", "3", "--out", str(out_path)]
        )
        assert code == 0
        from repro.genome.fasta import read_fasta

        records = read_fasta(out_path)
        assert len(records[0].sequence) == 5000

    def test_synthesize_deterministic(self, tmp_path):
        a, b = tmp_path / "a.fa", tmp_path / "b.fa"
        main(["synthesize", "--length", "2000", "--seed", "9", "--out", str(a)])
        main(["synthesize", "--length", "2000", "--seed", "9", "--out", str(b)])
        assert a.read_text() == b.read_text()
