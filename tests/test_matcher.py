"""Unit tests for the vectorised matching kernel."""

import pytest

from repro import SearchBudget, random_genome
from repro.core import matcher
from repro.core.reference import NaiveSearcher
from repro.genome.sequence import Sequence
from repro.genome.synthetic import plant_sites
from repro.grna.guide import Guide
from repro.grna.library import sample_guides_from_genome

from helpers import hit_spans


BUDGETS = [
    SearchBudget(mismatches=0),
    SearchBudget(mismatches=2),
    SearchBudget(mismatches=4),
    SearchBudget(mismatches=0, rna_bulges=1),
    SearchBudget(mismatches=0, dna_bulges=1),
    SearchBudget(mismatches=1, rna_bulges=1, dna_bulges=1),
]


@pytest.mark.parametrize("budget", BUDGETS, ids=lambda b: f"{b.mismatches}mm{b.rna_bulges}rb{b.dna_bulges}db")
def test_matcher_equals_oracle(tiny_genome, budget):
    guides = sample_guides_from_genome(tiny_genome, 2, seed=41)
    fast = matcher.find_hits(tiny_genome, guides, budget)
    slow = NaiveSearcher(budget).search(tiny_genome, guides)
    assert hit_spans(fast) == hit_spans(slow)


def test_planted_mismatch_sites_found():
    genome = random_genome(30000, seed=50)
    guides = [Guide("g1", "GAGTCCGAGCAGAAGAAGAA"), Guide("g2", "ACCTTGGACGTTAACGGCAT")]
    edited, planted = plant_sites(genome, guides, per_guide=3, mismatches=2, seed=51)
    hits = matcher.find_hits(edited, guides, SearchBudget(mismatches=2))
    starts = {(h.guide_name, h.start) for h in hits}
    for site in planted:
        assert (guides[site.guide_index].name, site.position) in starts


def test_planted_bulge_sites_found():
    genome = random_genome(30000, seed=52)
    guides = [Guide("g1", "GAGTCCGAGCAGAAGAAGAA")]
    edited, planted = plant_sites(
        genome, guides, per_guide=3, rna_bulges=1, dna_bulges=1, seed=53
    )
    hits = matcher.find_hits(
        edited, guides, SearchBudget(mismatches=0, rna_bulges=1, dna_bulges=1)
    )
    starts = {h.start for h in hits}
    for site in planted:
        assert site.position in starts


def test_strandedness():
    guide = Guide("g", "ACGTACGTCAACGTACGTCA")
    target = guide.protospacer + "TGG"
    from repro import alphabet

    text = "A" * 10 + target + "T" * 10 + alphabet.reverse_complement(target) + "A" * 10
    genome = Sequence.from_text("chr", text)
    hits = matcher.find_hits(genome, [guide], SearchBudget(mismatches=0))
    assert {h.strand for h in hits} == {"+", "-"}
    minus = next(h for h in hits if h.strand == "-")
    assert minus.site == target


def test_no_hits_on_empty_genome():
    genome = Sequence.from_text("chr", "")
    guide = Guide("g", "ACGTACGTCAACGTACGTCA")
    assert matcher.find_hits(genome, [guide], SearchBudget(mismatches=3)) == []


def test_genome_shorter_than_site():
    genome = Sequence.from_text("chr", "ACGT")
    guide = Guide("g", "ACGTACGTCAACGTACGTCA")
    for budget in (SearchBudget(mismatches=2), SearchBudget(mismatches=1, dna_bulges=1)):
        assert matcher.find_hits(genome, [guide], budget) == []


def test_site_at_genome_end():
    guide = Guide("g", "ACGTACGTCAACGTACGTCA")
    target = guide.protospacer + "AGG"
    genome = Sequence.from_text("chr", "TTTT" + target)
    hits = matcher.find_hits(genome, [guide], SearchBudget(mismatches=0))
    assert [h.end for h in hits] == [len(genome.text)]


def test_site_at_genome_start():
    guide = Guide("g", "ACGTACGTCAACGTACGTCA")
    target = guide.protospacer + "AGG"
    genome = Sequence.from_text("chr", target + "TTTT")
    hits = matcher.find_hits(genome, [guide], SearchBudget(mismatches=0))
    assert [h.start for h in hits] == [0]


def test_count_report_rows_at_least_hits(tiny_genome):
    guides = sample_guides_from_genome(tiny_genome, 2, seed=42)
    budget = SearchBudget(mismatches=1, rna_bulges=1, dna_bulges=1)
    hits = matcher.find_hits(tiny_genome, guides, budget)
    rows = matcher.count_report_rows(tiny_genome, guides, budget)
    assert rows >= len(hits)


def test_count_report_rows_equals_hits_for_mismatch_only(tiny_genome):
    guides = sample_guides_from_genome(tiny_genome, 2, seed=43)
    budget = SearchBudget(mismatches=2)
    hits = matcher.find_hits(tiny_genome, guides, budget)
    assert matcher.count_report_rows(tiny_genome, guides, budget) == len(hits)


def test_n_run_blocks_hits():
    guide = Guide("g", "ACGTACGTCAACGTACGTCA")
    target = guide.protospacer + "AGG"
    masked = "N" * len(target)
    genome = Sequence.from_text("chr", masked + target)
    hits = matcher.find_hits(genome, [guide], SearchBudget(mismatches=1))
    assert all(h.start >= len(target) for h in hits)


@pytest.mark.parametrize(
    "budget",
    [
        SearchBudget(mismatches=2),
        SearchBudget(mismatches=1, rna_bulges=1),
        SearchBudget(mismatches=1, dna_bulges=1),
        SearchBudget(mismatches=1, rna_bulges=1, dna_bulges=1),
    ],
    ids=lambda b: f"{b.mismatches}mm{b.rna_bulges}rb{b.dna_bulges}db",
)
def test_matcher_equals_oracle_5prime_pam(tiny_genome, budget):
    # Cas12a-style guides: the exact PAM segment precedes the budgeted
    # protospacer on the forward strand and follows it on the reverse —
    # the layout that exercises the post-budgeted shift logic.
    guides = sample_guides_from_genome(tiny_genome, 2, pam="TTTV", seed=44)
    fast = matcher.find_hits(tiny_genome, guides, budget)
    slow = NaiveSearcher(budget).search(tiny_genome, guides)
    assert hit_spans(fast) == hit_spans(slow)


def test_casot_5prime_pam_bulged(tiny_genome):
    from repro.baselines import CasotBaseline

    guides = sample_guides_from_genome(tiny_genome, 1, pam="TTTV", seed=45)
    budget = SearchBudget(mismatches=1, rna_bulges=1, dna_bulges=1)
    result = CasotBaseline().search(tiny_genome, guides, budget)
    expected = matcher.find_hits(tiny_genome, guides, budget)
    assert hit_spans(result.hits) == hit_spans(expected)
