"""Unit tests for repro.grna.library."""

import io

import pytest

from repro.errors import GuideError
from repro.genome.synthetic import random_genome
from repro.grna.guide import Guide
from repro.grna.library import (
    GuideLibrary,
    parse_guide_table,
    sample_guides_from_genome,
)


class TestGuideLibrary:
    def _library(self):
        return GuideLibrary.from_guides(
            [Guide("a", "ACGTACGTACGTACGTACGT"), Guide("b", "TGCATGCATGCATGCATGCA")]
        )

    def test_len_iter_getitem(self):
        library = self._library()
        assert len(library) == 2
        assert [g.name for g in library] == ["a", "b"]
        assert library[1].name == "b"

    def test_by_name(self):
        assert self._library().by_name("b").name == "b"

    def test_by_name_missing(self):
        with pytest.raises(GuideError):
            self._library().by_name("zzz")

    def test_duplicate_names_rejected(self):
        with pytest.raises(GuideError, match="duplicate"):
            GuideLibrary.from_guides(
                [Guide("a", "ACGTACGTACGTACGTACGT"), Guide("a", "TGCATGCATGCATGCATGCA")]
            )

    def test_subset(self):
        subset = self._library().subset(1)
        assert len(subset) == 1
        assert subset[0].name == "a"

    def test_subset_bounds(self):
        with pytest.raises(GuideError):
            self._library().subset(3)


class TestParseGuideTable:
    def test_two_column(self):
        library = parse_guide_table(
            io.StringIO("# comment\nEMX1 GAGTCCGAGCAGAAGAAGAA\n\nVEGFA GGGTGGGGGGAGTTTGCTCC\n")
        )
        assert [g.name for g in library] == ["EMX1", "VEGFA"]

    def test_single_column_autonamed(self):
        library = parse_guide_table(io.StringIO("GAGTCCGAGCAGAAGAAGAA\n"))
        assert library[0].name == "guide1"

    def test_custom_pam(self):
        library = parse_guide_table(
            io.StringIO("g GAGTCCGAGCAGAAGAAGAA\n"), pam="NAG"
        )
        assert library[0].pam.name == "NAG"

    def test_error_reports_line_number(self):
        with pytest.raises(GuideError, match="line 2"):
            parse_guide_table(io.StringIO("g GAGTCCGAGCAGAAGAAGAA\nbad NOTDNA!\n"))

    def test_empty_table_rejected(self):
        with pytest.raises(GuideError):
            parse_guide_table(io.StringIO("# nothing\n"))

    def test_from_path(self, tmp_path):
        path = tmp_path / "guides.txt"
        path.write_text("g GAGTCCGAGCAGAAGAAGAA\n")
        assert len(parse_guide_table(path)) == 1


class TestSampling:
    def test_samples_have_on_targets(self):
        genome = random_genome(20000, seed=31)
        library = sample_guides_from_genome(genome, 5, seed=32)
        assert len(library) == 5
        text = genome.text
        for guide in library:
            position = text.find(guide.protospacer)
            assert position >= 0
            assert guide.pam.matches(text[position + 20 : position + 23])

    def test_deterministic(self):
        genome = random_genome(20000, seed=31)
        first = [g.protospacer for g in sample_guides_from_genome(genome, 3, seed=5)]
        second = [g.protospacer for g in sample_guides_from_genome(genome, 3, seed=5)]
        assert first == second

    def test_unique_protospacers(self):
        genome = random_genome(20000, seed=31)
        library = sample_guides_from_genome(genome, 8, seed=6)
        protospacers = [g.protospacer for g in library]
        assert len(set(protospacers)) == 8

    def test_custom_pam_sampling(self):
        genome = random_genome(50000, seed=31)
        library = sample_guides_from_genome(genome, 2, pam="TTTV", seed=7)
        for guide in library:
            assert guide.pam.name == "TTTV"

    def test_too_small_genome_rejected(self):
        with pytest.raises(GuideError):
            sample_guides_from_genome(random_genome(10, seed=1), 1)

    def test_impossible_request_fails_cleanly(self):
        # An all-A genome has no GG PAMs.
        from repro.genome.sequence import Sequence

        genome = Sequence.from_text("s", "A" * 500)
        with pytest.raises(GuideError):
            sample_guides_from_genome(genome, 1, seed=1)
