"""Unit tests for repro.automata.nfa."""

import pytest

from repro import alphabet
from repro.automata.charclass import CharClass
from repro.automata.nfa import Nfa
from repro.errors import AutomatonError


def _codes(text):
    return alphabet.encode(text)


def _literal_nfa(pattern, *, all_input=True, label="hit"):
    """Search NFA accepting the literal *pattern*."""
    nfa = Nfa()
    start = nfa.add_state("start")
    nfa.mark_start(start, all_input=all_input)
    current = start
    for symbol in pattern:
        nxt = nfa.add_state()
        nfa.add_transition(current, CharClass.from_iupac(symbol), nxt)
        current = nxt
    nfa.mark_accept(current, label)
    return nfa


class TestConstruction:
    def test_counts(self):
        nfa = _literal_nfa("ACG")
        assert nfa.num_states == 4
        assert nfa.num_transitions == 3
        assert nfa.num_epsilon == 0

    def test_unknown_state_rejected(self):
        nfa = Nfa()
        nfa.add_state()
        with pytest.raises(AutomatonError):
            nfa.add_transition(0, CharClass.of("A"), 5)
        with pytest.raises(AutomatonError):
            nfa.mark_start(3)
        with pytest.raises(AutomatonError):
            nfa.mark_accept(3, "x")

    def test_empty_class_edge_rejected(self):
        nfa = Nfa()
        a, b = nfa.add_state(), nfa.add_state()
        with pytest.raises(AutomatonError):
            nfa.add_transition(a, CharClass.empty(), b)

    def test_states_view(self):
        nfa = _literal_nfa("AC")
        states = list(nfa.states())
        assert states[0].is_start and states[0].all_input
        assert states[-1].accept_labels == ("hit",)


class TestRun:
    def test_finds_all_occurrences(self):
        nfa = _literal_nfa("ACG")
        positions = [pos for pos, _ in nfa.run(_codes("ACGACGTACG"))]
        # Reports at the last consumed symbol of each occurrence.
        assert positions == [2, 5, 9]

    def test_overlapping_matches(self):
        nfa = _literal_nfa("AA")
        positions = [pos for pos, _ in nfa.run(_codes("AAAA"))]
        assert positions == [1, 2, 3]

    def test_anchored_start(self):
        nfa = _literal_nfa("AC", all_input=False)
        assert [p for p, _ in nfa.run(_codes("ACAC"))] == [1]
        assert [p for p, _ in nfa.run(_codes("TACAC"))] == []

    def test_iupac_class_edges(self):
        nfa = _literal_nfa("NGG")
        positions = [pos for pos, _ in nfa.run(_codes("AGGTGGCCG"))]
        assert positions == [2, 5]

    def test_match_count(self):
        assert _literal_nfa("AC").match_count(_codes("ACACAC")) == 3

    def test_labels_reported(self):
        nfa = _literal_nfa("AC", label=("g", 0))
        assert list(nfa.run(_codes("AC"))) == [(1, ("g", 0))]

    def test_multiple_labels_per_state(self):
        nfa = _literal_nfa("A")
        nfa.mark_accept(1, "second")
        labels = [label for _, label in nfa.run(_codes("A"))]
        assert sorted(labels) == ["hit", "second"]


class TestEpsilon:
    def _eps_nfa(self):
        # start --A--> s1 --eps--> s2 --C--> s3(accept)
        nfa = Nfa()
        start = nfa.add_state("start")
        s1, s2, s3 = (nfa.add_state() for _ in range(3))
        nfa.mark_start(start)
        nfa.add_transition(start, CharClass.of("A"), s1)
        nfa.add_epsilon(s1, s2)
        nfa.add_transition(s2, CharClass.of("C"), s3)
        nfa.mark_accept(s3, "hit")
        return nfa

    def test_epsilon_closure(self):
        nfa = self._eps_nfa()
        assert nfa.epsilon_closure([1]) == frozenset({1, 2})

    def test_run_through_epsilon(self):
        nfa = self._eps_nfa()
        assert [p for p, _ in nfa.run(_codes("AC"))] == [1]

    def test_epsilon_accept_fires_on_entry(self):
        # start --A--> s1 --eps--> s2(accept): accept fires at the A.
        nfa = Nfa()
        start, s1, s2 = (nfa.add_state() for _ in range(3))
        nfa.mark_start(start)
        nfa.add_transition(start, CharClass.of("A"), s1)
        nfa.add_epsilon(s1, s2)
        nfa.mark_accept(s2, "hit")
        assert [p for p, _ in nfa.run(_codes("A"))] == [0]

    def test_without_epsilon_equivalent(self):
        nfa = self._eps_nfa()
        flat = nfa.without_epsilon()
        assert flat.num_epsilon == 0
        text = "ACACTACAAC"
        assert list(flat.run(_codes(text))) == list(nfa.run(_codes(text)))

    def test_without_epsilon_chain(self):
        nfa = Nfa()
        states = [nfa.add_state() for _ in range(4)]
        nfa.mark_start(states[0])
        nfa.add_transition(states[0], CharClass.of("A"), states[1])
        nfa.add_epsilon(states[1], states[2])
        nfa.add_epsilon(states[2], states[3])
        nfa.mark_accept(states[3], "hit")
        flat = nfa.without_epsilon()
        assert list(flat.run(_codes("A"))) == [(0, "hit")]
