"""Property-based tests (hypothesis) for the core invariants.

These are the load-bearing guarantees of the reproduction:

* every execution substrate accepts exactly the same language — the
  vectorised kernel, the oracle DP, the edge-labelled NFA, the
  homogeneous (STE) form, the DFA, and the bit-parallel rows;
* structural predictions (state counts) match the builders;
* serialisation round-trips preserve behaviour.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import alphabet
from repro.core import matcher
from repro.core.compiler import SearchBudget, compile_guide, _segments
from repro.core.hamming import PatternSegment, build_hamming_nfa, hamming_state_count
from repro.core.reference import NaiveSearcher
from repro.genome.sequence import Sequence, TwoBitSequence
from repro.grna.guide import Guide
from repro.grna.hit import dedupe_hits

from helpers import hit_spans, report_spans

dna = st.text(alphabet="ACGT", min_size=1)
genome_text = st.text(alphabet="ACGTN", min_size=0, max_size=300)
protospacer = st.text(alphabet="ACGT", min_size=10, max_size=14)


# -- encoding round-trips -----------------------------------------------------


@given(st.text(alphabet="ACGTN", max_size=200))
def test_encode_decode_roundtrip(text):
    assert alphabet.decode(alphabet.encode(text)) == text


@given(st.text(alphabet="ACGTNRYSWKMBDHV", max_size=100))
def test_reverse_complement_involution(text):
    assert alphabet.reverse_complement(alphabet.reverse_complement(text)) == text


@given(st.text(alphabet="ACGTN", max_size=200))
def test_twobit_roundtrip(text):
    seq = Sequence.from_text("s", text)
    assert TwoBitSequence.pack(seq).unpack().text == text


@given(st.text(alphabet="ACGTN", min_size=1, max_size=100))
def test_revcomp_preserves_length_and_composition(text):
    seq = Sequence.from_text("s", text)
    rc = seq.reverse_complement()
    assert len(rc) == len(seq)
    assert rc.count_n() == seq.count_n()


# -- match/mismatch classes ---------------------------------------------------


@given(st.sampled_from("ACGTRYSWKMBDHVN"), st.sampled_from("ACGTN"))
def test_charclass_consistent_with_iupac_matches(pattern_symbol, base):
    from repro.automata.charclass import CharClass

    in_class = base in CharClass.from_iupac(pattern_symbol)
    assert in_class == alphabet.iupac_matches(pattern_symbol, base)


# -- matcher == oracle --------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    text=genome_text,
    proto=protospacer,
    mismatches=st.integers(min_value=0, max_value=3),
)
def test_matcher_equals_oracle_mismatch_only(text, proto, mismatches):
    genome = Sequence.from_text("chr", text)
    guide = Guide("g", proto)
    budget = SearchBudget(mismatches=mismatches)
    fast = matcher.find_hits(genome, [guide], budget)
    slow = NaiveSearcher(budget).search(genome, [guide])
    assert hit_spans(fast) == hit_spans(slow)


@settings(max_examples=15, deadline=None)
@given(
    text=st.text(alphabet="ACGTN", max_size=150),
    proto=protospacer,
    mismatches=st.integers(min_value=0, max_value=1),
    rna=st.integers(min_value=0, max_value=1),
    dna=st.integers(min_value=0, max_value=1),
)
def test_matcher_equals_oracle_bulged(text, proto, mismatches, rna, dna):
    genome = Sequence.from_text("chr", text)
    guide = Guide("g", proto)
    budget = SearchBudget(mismatches=mismatches, rna_bulges=rna, dna_bulges=dna)
    fast = matcher.find_hits(genome, [guide], budget)
    slow = NaiveSearcher(budget).search(genome, [guide])
    assert hit_spans(fast) == hit_spans(slow)


# -- automata executions accept the same language -----------------------------


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    proto=protospacer,
    mismatches=st.integers(min_value=0, max_value=2),
)
def test_nfa_homogeneous_dfa_agree(seed, proto, mismatches):
    guide = Guide("g", proto)
    compiled = compile_guide(guide, SearchBudget(mismatches=mismatches))
    rng = np.random.default_rng(seed)
    codes = rng.integers(0, 5, 200).astype(np.uint8)
    nfa_spans = report_spans(compiled.combined.run(codes))
    ste_spans = report_spans(compiled.homogeneous.run(codes))
    dfa_spans = report_spans(compiled.dfa.run(codes))
    assert nfa_spans == ste_spans == dfa_spans


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    proto=protospacer,
    rna=st.integers(min_value=0, max_value=1),
    dna=st.integers(min_value=0, max_value=1),
)
def test_bulged_nfa_and_homogeneous_agree(seed, proto, rna, dna):
    guide = Guide("g", proto)
    compiled = compile_guide(
        guide, SearchBudget(mismatches=1, rna_bulges=rna, dna_bulges=dna)
    )
    rng = np.random.default_rng(seed)
    codes = rng.integers(0, 4, 150).astype(np.uint8)
    assert report_spans(compiled.combined.run(codes)) == report_spans(
        compiled.homogeneous.run(codes)
    )


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    proto=protospacer,
    mismatches=st.integers(min_value=0, max_value=2),
)
def test_bitparallel_agrees_with_nfa(seed, proto, mismatches):
    from repro.engines.hyperscan import HyperscanEngine

    guide = Guide("g", proto)
    compiled = compile_guide(guide, SearchBudget(mismatches=mismatches))
    rng = np.random.default_rng(seed)
    codes = rng.integers(0, 5, 200).astype(np.uint8)
    engine = HyperscanEngine()
    assert report_spans(engine.simulate_bitparallel(codes, compiled)) == report_spans(
        compiled.combined.run(codes)
    )


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    proto=protospacer,
)
def test_automaton_run_matches_matcher_on_text(seed, proto):
    guide = Guide("g", proto)
    budget = SearchBudget(mismatches=1)
    compiled = compile_guide(guide, budget)
    rng = np.random.default_rng(seed)
    codes = rng.integers(0, 4, 250).astype(np.uint8)
    genome = Sequence("chr", codes.copy())
    expected = {
        (h.strand, h.start, h.end) for h in matcher.find_hits(genome, [guide], budget)
    }
    got = {(label.strand, *label.span_at(p)) for p, label in compiled.combined.run(codes)}
    assert got == expected


# -- structural predictions ---------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    proto=protospacer,
    pam_first=st.booleans(),
    mismatches=st.integers(min_value=0, max_value=5),
)
def test_state_count_formula(proto, pam_first, mismatches):
    segments = [
        PatternSegment(proto, budgeted=True),
        PatternSegment("NGG", budgeted=False),
    ]
    if pam_first:
        segments.reverse()
    nfa = build_hamming_nfa(segments, mismatches, guide_name="g", strand="+")
    assert nfa.num_states == hamming_state_count(segments, mismatches)


@settings(max_examples=20, deadline=None)
@given(proto=protospacer, mismatches=st.integers(min_value=0, max_value=4))
def test_ste_estimate_exact_for_mismatch_grids(proto, mismatches):
    from repro.platforms.resources import estimate_stes

    guide = Guide("g", proto)
    compiled = compile_guide(guide, SearchBudget(mismatches=mismatches))
    assert compiled.num_stes == estimate_stes(len(proto), 3, mismatches)


# -- hit algebra ---------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    text=genome_text,
    proto=protospacer,
    mismatches=st.integers(min_value=0, max_value=2),
)
def test_dedupe_idempotent_and_sorted(text, proto, mismatches):
    genome = Sequence.from_text("chr", text)
    hits = matcher.find_hits(genome, [Guide("g", proto)], SearchBudget(mismatches=mismatches))
    once = dedupe_hits(hits)
    assert dedupe_hits(once) == once
    assert once == sorted(once)


@settings(max_examples=20, deadline=None)
@given(
    prefix=st.text(alphabet="ACGT", max_size=40),
    suffix=st.text(alphabet="ACGT", max_size=40),
    proto=protospacer,
)
def test_planted_exact_target_always_found(prefix, suffix, proto):
    guide = Guide("g", proto)
    target = guide.concrete_target()
    genome = Sequence.from_text("chr", prefix + target + suffix)
    hits = matcher.find_hits(genome, [guide], SearchBudget(mismatches=0))
    assert any(
        h.start == len(prefix) and h.strand == "+" and h.mismatches == 0 for h in hits
    )


@settings(max_examples=20, deadline=None)
@given(
    prefix=st.text(alphabet="ACGT", max_size=30),
    proto=protospacer,
)
def test_reverse_strand_symmetry(prefix, proto):
    # Searching the reverse complement of a genome swaps strands but
    # preserves the multiset of (guide, mismatches) hits.
    guide = Guide("g", proto)
    target = guide.concrete_target()
    genome = Sequence.from_text("chr", prefix + target)
    budget = SearchBudget(mismatches=1)
    forward = matcher.find_hits(genome, [guide], budget)
    flipped = matcher.find_hits(genome.reverse_complement(), [guide], budget)
    assert sorted(h.mismatches for h in forward) == sorted(
        h.mismatches for h in flipped
    )
    assert {h.strand for h in forward} == {
        {"+": "-", "-": "+"}[h.strand] for h in flipped
    }


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6), proto=protospacer)
def test_anml_roundtrip_preserves_behaviour(seed, proto):
    from repro.automata.anml import from_anml, to_anml

    compiled = compile_guide(Guide("g", proto), SearchBudget(mismatches=1))
    original = compiled.homogeneous
    back = from_anml(to_anml(original))
    rng = np.random.default_rng(seed)
    codes = rng.integers(0, 4, 150).astype(np.uint8)
    assert sorted(c for c, _ in original.run(codes)) == sorted(
        c for c, _ in back.run(codes)
    )


@settings(max_examples=25, deadline=None)
@given(
    text=st.text(alphabet="ACGTN", max_size=200),
    proto=protospacer,
    mismatches=st.integers(min_value=0, max_value=2),
)
def test_budget_monotonicity(text, proto, mismatches):
    # Every hit at budget k is still a hit at budget k+1.
    genome = Sequence.from_text("chr", text)
    guide = Guide("g", proto)
    small = matcher.find_hits(genome, [guide], SearchBudget(mismatches=mismatches))
    large = matcher.find_hits(genome, [guide], SearchBudget(mismatches=mismatches + 1))
    small_keys = {h.key for h in small}
    large_keys = {h.key for h in large}
    assert small_keys <= large_keys


@settings(max_examples=15, deadline=None)
@given(
    text=st.text(alphabet="ACGTN", min_size=0, max_size=400),
    proto=protospacer,
    mismatches=st.integers(min_value=0, max_value=2),
    chunk_length=st.integers(min_value=40, max_value=120),
)
def test_streaming_equals_whole_genome(text, proto, mismatches, chunk_length):
    from repro.core.streaming import StreamingSearch

    genome = Sequence.from_text("chr", text)
    guide = Guide("g", proto)
    budget = SearchBudget(mismatches=mismatches)
    whole = matcher.find_hits(genome, [guide], budget)
    chunked = StreamingSearch([guide], budget, chunk_length=chunk_length).search(genome)
    assert hit_spans(chunked) == hit_spans(whole)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    proto=protospacer,
    mismatches=st.integers(min_value=0, max_value=2),
    length=st.integers(min_value=0, max_value=260),
)
def test_strided_equals_one_stride(seed, proto, mismatches, length):
    from repro.automata.striding import build_strided_hamming, strided_search
    from repro.core.compiler import _segments
    from repro.core.labels import MatchLabel

    guide = Guide("g", proto)
    compiled = compile_guide(guide, SearchBudget(mismatches=mismatches))
    rng = np.random.default_rng(seed)
    codes = rng.integers(0, 5, length).astype(np.uint8)
    for strand, nfa in (("+", compiled.forward), ("-", compiled.reverse)):
        segments = _segments(guide, reverse=strand == "-")
        total = sum(len(segment.text) for segment in segments)

        def label_factory(j, strand=strand, total=total):
            return MatchLabel(guide.name, strand, j, 0, 0, total)

        strided = build_strided_hamming(segments, mismatches, label_factory=label_factory)
        assert set(strided_search(codes, strided)) == set(nfa.run(codes))


@settings(max_examples=25, deadline=None)
@given(
    text=genome_text,
    proto=protospacer,
    mismatches=st.integers(min_value=0, max_value=2),
)
def test_tsv_roundtrip_preserves_hits(text, proto, mismatches):
    import io

    from repro.analysis.report_io import read_tsv, write_tsv

    genome = Sequence.from_text("chr", text)
    hits = matcher.find_hits(genome, [Guide("g", proto)], SearchBudget(mismatches=mismatches))
    buffer = io.StringIO()
    write_tsv(hits, buffer)
    buffer.seek(0)
    assert read_tsv(buffer) == hits
