"""Tests for the static verifier and project-invariant linter.

The broken-automata corpus here is the acceptance contract of
``repro.check``: each deliberately malformed artefact must produce the
documented rule id and a nonzero exit, and every artefact the real
pipeline produces must verify clean (no false positives).
"""

import json
from pathlib import Path

import pytest

from repro.automata.anml import from_anml, to_anml
from repro.automata.charclass import CharClass
from repro.automata.elements import ElementNetwork, GateKind
from repro.automata.homogeneous import HomogeneousAutomaton, StartMode
from repro.automata.nfa import Nfa
from repro.automata.striding import (
    PairClass,
    StridedAutomaton,
    StridedReport,
    build_strided_hamming,
)
from repro.check import (
    CheckReport,
    Diagnostic,
    Severity,
    capacity_diagnostics,
    check_compiled_library,
    check_element_network,
    check_homogeneous,
    check_nfa,
    check_strided,
    kernel_plane_diagnostics,
    lint_paths,
    lint_source,
    require_capacity,
)
from repro.check.automata import KERNEL_PLANE_WARN_THRESHOLD
from repro.cli import main
from repro.core.compiler import SearchBudget, _segments, compile_library
from repro.core.counter_design import build_counter_design
from repro.errors import AutomatonError, CapacityError
from repro.grna.guide import Guide
from repro.grna.library import GuideLibrary
from repro.platforms.spec import ApSpec, FpgaSpec

GUIDES = GuideLibrary.from_guides(
    [
        Guide("EMX1", "GAGTCCGAGCAGAAGAAGAA"),
        Guide("VEGFA", "GGGTGGGGGGAGTTTGCTCC"),
    ]
)


def tiny_ap(capacity: int) -> ApSpec:
    return ApSpec(
        stes_per_chip=capacity, chips_per_rank=1, ranks=1, routable_fraction=1.0
    )


# -- diagnostics / report plumbing ----------------------------------------


class TestReport:
    def test_render_shape(self):
        diagnostic = Diagnostic(
            Severity.ERROR, "AUT001", "boom", subject="net", element="ste3", hint="fix"
        )
        assert diagnostic.render() == "error[AUT001] net::ste3: boom (hint: fix)"

    def test_sorted_puts_errors_first(self):
        report = CheckReport()
        report.add(Diagnostic(Severity.INFO, "CAP004", "i"))
        report.add(Diagnostic(Severity.ERROR, "AUT001", "e"))
        report.add(Diagnostic(Severity.WARNING, "AUT002", "w"))
        assert [d.severity for d in report.sorted()] == [
            Severity.ERROR,
            Severity.WARNING,
            Severity.INFO,
        ]

    def test_exit_code_tracks_errors(self):
        report = CheckReport()
        assert (report.ok, report.exit_code) == (True, 0)
        report.add(Diagnostic(Severity.WARNING, "AUT002", "w"))
        assert report.exit_code == 0
        report.add(Diagnostic(Severity.ERROR, "AUT001", "e"))
        assert (report.ok, report.exit_code) == (False, 1)

    def test_text_hides_info_unless_verbose(self):
        report = CheckReport()
        report.add(Diagnostic(Severity.INFO, "CAP004", "utilisation"))
        assert "utilisation" not in report.to_text()
        assert "utilisation" in report.to_text(verbose=True)
        assert "0 error(s), 0 warning(s), 1 info" in report.to_text()

    def test_json_payload(self):
        report = CheckReport()
        report.add(Diagnostic(Severity.ERROR, "AUT004", "empty", subject="s"))
        payload = json.loads(report.to_json())
        assert payload["ok"] is False
        assert payload["num_errors"] == 1
        assert payload["diagnostics"][0]["rule"] == "AUT004"

    def test_json_is_stable_sorted_by_rule_then_location(self):
        # Diagnostics arrive in arbitrary order; the JSON payload must
        # order them by (rule, subject, element), independent of
        # severity, so diffing two runs diffs the findings.
        report = CheckReport()
        report.add(Diagnostic(Severity.INFO, "EQV005", "pricing", subject="guide:b"))
        report.add(Diagnostic(Severity.ERROR, "EQV001", "refuted", subject="guide:b"))
        report.add(Diagnostic(Severity.ERROR, "AUT001", "unreachable", subject="net"))
        report.add(Diagnostic(Severity.INFO, "EQV005", "pricing", subject="guide:a"))
        payload = json.loads(report.to_json())
        assert [(d["rule"], d["subject"]) for d in payload["diagnostics"]] == [
            ("AUT001", "net"),
            ("EQV001", "guide:b"),
            ("EQV005", "guide:a"),
            ("EQV005", "guide:b"),
        ]

    def test_json_is_byte_identical_across_runs(self):
        def build(order):
            report = CheckReport()
            diagnostics = [
                Diagnostic(Severity.WARNING, "EQV006", "big", subject="guide:x"),
                Diagnostic(Severity.ERROR, "EQV001", "refuted", subject="guide:x"),
                Diagnostic(Severity.INFO, "CAP004", "util", subject="library"),
            ]
            for index in order:
                report.add(diagnostics[index])
            return report.to_json()

        # Same findings, different insertion orders: identical bytes.
        assert build([0, 1, 2]) == build([2, 1, 0]) == build([1, 2, 0])


# -- no false positives on real pipeline artefacts ------------------------


class TestCleanArtefacts:
    @pytest.mark.parametrize(
        "budget",
        [SearchBudget(mismatches=3), SearchBudget(mismatches=1, rna_bulges=1, dna_bulges=1)],
    )
    def test_compiled_library_is_clean(self, budget):
        compiled = compile_library(GUIDES, budget)
        report = check_compiled_library(compiled, specs=(ApSpec(), FpgaSpec()))
        assert report.ok, report.to_text()
        assert not report.warnings, report.to_text()

    def test_strided_is_clean(self):
        segments = _segments(GUIDES.guides[0], reverse=False)
        automaton = build_strided_hamming(
            segments, 3, label_factory=lambda mismatches: ("EMX1", mismatches)
        )
        report = check_strided(automaton)
        assert report.ok, report.to_text()
        assert not report.warnings, report.to_text()

    @pytest.mark.parametrize("streaming", [True, False])
    def test_counter_design_is_clean(self, streaming):
        segments = _segments(GUIDES.guides[0], reverse=False)
        network = build_counter_design(segments, 3, label="EMX1", streaming=streaming)
        report = check_element_network(network)
        assert report.ok, report.to_text()

    def test_own_sources_pass_the_linter(self):
        report = lint_paths(["src"])
        assert report.ok, report.to_text()


# -- broken-automata corpus -----------------------------------------------


class TestBrokenAutomata:
    def test_unreachable_report_state(self):
        automaton = HomogeneousAutomaton()
        automaton.add_ste(CharClass.of("A"), start=StartMode.ALL_INPUT)
        automaton.add_ste(CharClass.of("C"), reports=("hit",))  # never wired
        report = check_homogeneous(automaton)
        errors = {d.rule for d in report.errors}
        assert "AUT001" in errors
        assert "AUT003" in errors  # the start now reports nothing either
        assert report.exit_code == 1

    def test_unreachable_nonreport_state_is_warning(self):
        automaton = HomogeneousAutomaton()
        a = automaton.add_ste(CharClass.of("A"), start=StartMode.ALL_INPUT)
        b = automaton.add_ste(CharClass.of("C"), reports=("hit",))
        automaton.connect(a, b)
        automaton.add_ste(CharClass.of("G"))  # floating, no reports
        report = check_homogeneous(automaton)
        assert report.ok
        assert {d.rule for d in report.warnings} == {"AUT001"}

    def test_dead_state_is_warning(self):
        automaton = HomogeneousAutomaton()
        a = automaton.add_ste(CharClass.of("A"), start=StartMode.ALL_INPUT)
        b = automaton.add_ste(CharClass.of("C"), reports=("hit",))
        dead = automaton.add_ste(CharClass.of("G"))
        automaton.connect(a, b)
        automaton.connect(a, dead)
        report = check_homogeneous(automaton)
        assert report.ok
        assert {d.rule for d in report.warnings} == {"AUT002"}

    def test_no_starts_and_no_reports(self):
        automaton = HomogeneousAutomaton()
        automaton.add_ste(CharClass.of("A"))
        report = check_homogeneous(automaton)
        assert {"AUT005", "AUT006"}.issubset(report.rules())
        assert report.exit_code == 1

    def test_empty_char_class_via_permissive_anml_load(self):
        xml = (
            '<anml><automata-network id="x">'
            '<state-transition-element id="a" symbol-set="" start="all-input"'
            ' report-on-match="true"/>'
            "</automata-network></anml>"
        )
        with pytest.raises(AutomatonError):
            from_anml(xml)  # strict load refuses it
        automaton = from_anml(xml, strict=False)
        report = check_homogeneous(automaton)
        assert "AUT004" in {d.rule for d in report.errors}
        assert report.exit_code == 1

    def test_nfa_constructor_fails_fast_on_empty_class(self):
        # NFAs have no external load path, so the empty-class defect is
        # rejected at construction; AUT004 covers the forms that do
        # (permissively-loaded ANML).
        nfa = Nfa()
        a = nfa.add_state()
        b = nfa.add_state()
        with pytest.raises(AutomatonError):
            nfa.add_transition(a, CharClass.empty(), b)

    def test_nfa_unreachable_accept_state(self):
        nfa = Nfa()
        a = nfa.add_state()
        b = nfa.add_state()
        nfa.mark_start(a)
        nfa.mark_accept(b, "hit")  # never wired
        report = check_nfa(nfa)
        assert "AUT001" in {d.rule for d in report.errors}
        assert report.exit_code == 1

    def test_nfa_counts_epsilon_edges_as_reachability(self):
        nfa = Nfa()
        a = nfa.add_state()
        b = nfa.add_state()
        nfa.mark_start(a)
        nfa.mark_accept(b, "hit")
        nfa.add_epsilon(a, b)
        assert check_nfa(nfa).ok


class TestBrokenNetworks:
    def _base(self):
        network = ElementNetwork()
        start = network.add_ste(CharClass.any(), start=StartMode.ALL_INPUT)
        return network, start

    def test_counter_without_count_inputs(self):
        network, start = self._base()
        counter = network.add_counter(2)
        network.mark_report(counter, "hit")
        report = check_element_network(network)
        assert "CNT001" in {d.rule for d in report.errors}

    def test_counter_target_exceeds_inputs(self):
        network, start = self._base()
        counter = network.add_counter(5)
        network.connect_count(start, counter)
        network.mark_report(counter, "hit")
        report = check_element_network(network)
        assert "CNT002" in {d.rule for d in report.warnings}

    def test_not_gate_arity(self):
        network, start = self._base()
        other = network.add_ste(CharClass.any())
        network.connect(start, other)
        gate = network.add_gate(GateKind.NOT)
        network.connect(start, gate)
        network.connect(other, gate)
        network.mark_report(gate, "hit")
        report = check_element_network(network)
        assert "GAT001" in {d.rule for d in report.errors}

    def test_undriven_report_element(self):
        network, start = self._base()
        network.mark_report(start, "ok")
        gate = network.add_gate(GateKind.OR)
        floating = network.add_ste(CharClass.any())
        network.connect(floating, gate)
        network.mark_report(gate, "hit")
        report = check_element_network(network)
        assert "NET001" in {d.rule for d in report.errors}


class TestBrokenStrided:
    def _pair(self):
        return PairClass.from_classes(CharClass.bases(), CharClass.bases())

    def test_ambiguous_pair_depth(self):
        automaton = StridedAutomaton()
        a = automaton.add_state(self._pair(), all_input_start=True)
        b = automaton.add_state(self._pair())
        c = automaton.add_state(
            self._pair(), reports=(StridedReport("hit", 4, 0),)
        )
        automaton.connect(a, c)  # depth 2 ...
        automaton.connect(a, b)
        automaton.connect(b, c)  # ... and depth 3
        report = check_strided(automaton)
        assert "STR001" in {d.rule for d in report.errors}

    def test_report_geometry_mismatch(self):
        automaton = StridedAutomaton()
        a = automaton.add_state(self._pair(), all_input_start=True)
        b = automaton.add_state(
            self._pair(), reports=(StridedReport("hit", 23, 0),)
        )
        automaton.connect(a, b)  # depth 2 -> spans 4 symbols, not 23
        report = check_strided(automaton)
        assert "STR002" in {d.rule for d in report.errors}

    def test_bad_report_metadata(self):
        automaton = StridedAutomaton()
        automaton.add_state(
            self._pair(),
            all_input_start=True,
            reports=(StridedReport("hit", 2, pad_suffix=7),),
        )
        report = check_strided(automaton)
        assert "STR003" in {d.rule for d in report.errors}

    def test_empty_pair_class_rejected_at_construction(self):
        automaton = StridedAutomaton()
        with pytest.raises(AutomatonError):
            automaton.add_state(PairClass(0), all_input_start=True)


# -- capacity pre-flight --------------------------------------------------


class TestCapacity:
    def test_over_capacity_guide_is_cap001(self):
        compiled = compile_library(GUIDES, SearchBudget(mismatches=3))
        report = capacity_diagnostics(compiled, tiny_ap(64))
        assert {d.rule for d in report.errors} == {"CAP001"}
        first = report.errors[0]
        assert first.element == "EMX1"
        assert "needs" in first.message and "64" in first.message
        assert report.exit_code == 1

    def test_require_capacity_raises_with_breakdown(self):
        compiled = compile_library(GUIDES, SearchBudget(mismatches=3))
        with pytest.raises(CapacityError) as excinfo:
            require_capacity(compiled, tiny_ap(64))
        message = str(excinfo.value)
        assert "EMX1" in message and "CAP001" in message

    def test_multi_pass_is_cap002_with_per_guide_breakdown(self):
        compiled = compile_library(GUIDES, SearchBudget(mismatches=3))
        per_guide = max(g.num_stes for g in compiled.guides)
        report = capacity_diagnostics(compiled, tiny_ap(per_guide))
        assert report.ok  # legal, just slow
        assert "CAP002" in {d.rule for d in report.warnings}
        breakdown = [d for d in report if d.rule == "CAP003"]
        assert [d.element for d in breakdown] == ["EMX1", "VEGFA"]
        assert "pass 1" in breakdown[0].message
        assert "pass 2" in breakdown[1].message
        # multi-pass placements must still pass require_capacity
        require_capacity(compiled, tiny_ap(per_guide))

    def test_fpga_capacity_counts_luts(self):
        compiled = compile_library(GUIDES, SearchBudget(mismatches=3))
        spec = FpgaSpec(luts=100)
        report = capacity_diagnostics(compiled, spec)
        assert {d.rule for d in report.errors} == {"CAP001"}
        assert "LUTs" in report.errors[0].message

    def test_real_devices_fit_easily(self):
        compiled = compile_library(GUIDES, SearchBudget(mismatches=3))
        for spec in (ApSpec(), FpgaSpec()):
            require_capacity(compiled, spec)  # must not raise


class TestKernelPlanePricing:
    """CAP005/CAP006: the bit-parallel kernel's banded state-plane cost."""

    def test_bulged_budget_prices_bands(self):
        budget = SearchBudget(mismatches=1, rna_bulges=1, dna_bulges=1)
        compiled = compile_library(GUIDES, budget)
        report = kernel_plane_diagnostics(compiled)
        (info,) = [d for d in report if d.rule == "CAP005"]
        # (1+1) x (1+1) bands, each with mm+1 = 2 planes -> 8 per
        # pattern; 2 guides x 2 strands = 4 patterns -> 32 plane-rows.
        assert "4 diagonal band(s)" in info.message
        assert "8 state plane(s)" in info.message
        assert "32 plane-rows" in info.message
        assert report.ok

    def test_each_extra_band_costs_a_plane_set(self):
        def planes_per_pattern(budget):
            compiled = compile_library(GUIDES, budget)
            (info,) = [
                d for d in kernel_plane_diagnostics(compiled) if d.rule == "CAP005"
            ]
            return int(info.message.split("bit-parallel kernel: ")[1].split()[0])

        base = planes_per_pattern(SearchBudget(mismatches=2, rna_bulges=1, dna_bulges=0))
        wider = planes_per_pattern(SearchBudget(mismatches=2, rna_bulges=1, dna_bulges=1))
        # Going from 2 bands to 4 doubles the plane count: each band
        # carries its own full mismatch plane set.
        assert wider == 2 * base

    def test_mismatch_only_prices_thermometer(self):
        compiled = compile_library(GUIDES, SearchBudget(mismatches=3))
        report = kernel_plane_diagnostics(compiled)
        (info,) = [d for d in report if d.rule == "CAP005"]
        assert "thermometer" in info.message
        assert not [d for d in report if d.rule == "CAP006"]

    def test_plane_explosion_warns_cap006(self):
        budget = SearchBudget(mismatches=4, rna_bulges=3, dna_bulges=3)
        compiled = compile_library(GUIDES, budget)
        report = kernel_plane_diagnostics(compiled)
        # 16 bands x 5 planes = 80 > the threshold of 64.
        assert KERNEL_PLANE_WARN_THRESHOLD == 64
        (warning,) = [d for d in report if d.rule == "CAP006"]
        assert warning.severity is Severity.WARNING
        assert "80" in warning.message
        assert report.ok  # a warning, not an error: the scan still runs

    def test_threshold_boundary_is_not_a_warning(self):
        # 16 bands x 4 planes = exactly 64: at the threshold, not over.
        budget = SearchBudget(mismatches=3, rna_bulges=3, dna_bulges=3)
        compiled = compile_library(GUIDES, budget)
        report = kernel_plane_diagnostics(compiled)
        assert not [d for d in report if d.rule == "CAP006"]

    def test_check_compiled_library_includes_plane_pricing(self):
        budget = SearchBudget(mismatches=1, rna_bulges=1, dna_bulges=1)
        compiled = compile_library(GUIDES, budget)
        report = check_compiled_library(compiled)
        assert "CAP005" in {d.rule for d in report}


# -- project-invariant linter ---------------------------------------------


class TestLintRules:
    def test_syntax_error_is_l000(self):
        report = lint_source("def broken(:\n", "src/repro/x.py")
        assert {d.rule for d in report.errors} == {"L000"}

    def test_mutable_default_argument(self):
        source = "def f(items=[]):\n    return items\n"
        report = lint_source(source, "src/repro/analysis/x.py")
        assert "L001" in report.rules()
        source = "def f(*, cache=dict()):\n    return cache\n"
        assert "L001" in lint_source(source, "src/repro/analysis/x.py").rules()

    def test_unseeded_random(self):
        assert "L002" in lint_source("import random\n", "src/repro/x.py").rules()
        source = "from numpy.random import default_rng\nrng = default_rng()\n"
        assert "L002" in lint_source(source, "src/repro/x.py").rules()
        # seeded is fine, and synthetic.py is exempt entirely
        source_seeded = "from numpy.random import default_rng\nrng = default_rng(7)\n"
        assert lint_source(source_seeded, "src/repro/x.py").ok
        assert lint_source("import random\n", "src/repro/genome/synthetic.py").ok

    def test_heavy_worker_payload(self):
        source = (
            "from dataclasses import dataclass\n"
            "from repro.automata.nfa import Nfa\n"
            "@dataclass\n"
            "class ShardTask:\n"
            "    shard_id: int\n"
            "    automaton: Nfa\n"
        )
        report = lint_source(source, "src/repro/core/parallel.py")
        findings = [d for d in report.errors if d.rule == "L003"]
        assert findings, report.to_text()
        assert "ShardTask" in findings[0].message
        assert "automaton" in findings[0].message

    def test_heavy_payload_inside_container_annotation(self):
        source = (
            "class RetryPayload:\n"
            "    libraries: 'list[CompiledLibrary]'\n"
        )
        report = lint_source(source, "src/repro/core/parallel.py")
        assert "L003" in report.rules()

    def test_light_payload_is_fine(self):
        source = (
            "class ShardTask:\n"
            "    shard_id: int\n"
            "    guides: tuple\n"
            "    start: int\n"
        )
        assert lint_source(source, "src/repro/core/parallel.py").ok

    def test_engine_bypass(self):
        source = "from repro.core.compiler import compile_library\n"
        report = lint_source(source, "src/repro/engines/rogue.py")
        assert "L004" in report.rules()
        source = "def search(self, seq):\n    nfa = Nfa()\n"
        assert "L004" in lint_source(source, "src/repro/engines/rogue.py").rules()
        # the same code outside engines/ is legitimate (path outside the
        # strict packages so L005 stays out of the picture)
        assert lint_source(source, "src/repro/analysis/builder.py").ok

    def test_untyped_def_in_strict_package(self):
        source = "def f(x):\n    return x\n"
        report = lint_source(source, "src/repro/core/x.py")
        findings = [d for d in report.errors if d.rule == "L005"]
        assert findings
        assert "x" in findings[0].message and "return" in findings[0].message
        # permissive packages are not held to it
        assert lint_source(source, "src/repro/analysis/x.py").ok
        # self is exempt, annotations satisfy it
        typed = "class C:\n    def f(self, x: int) -> int:\n        return x\n"
        assert lint_source(typed, "src/repro/core/x.py").ok

    def test_bitparallel_kernel_is_in_strict_scope(self):
        # The bit-parallel kernel must stay under the L005/mypy-strict
        # gate (the `core` package), like every other kernel module.
        source = "def f(x):\n    return x\n"
        report = lint_source(source, "src/repro/core/bitparallel.py")
        assert "L005" in {d.rule for d in report.errors}
        # And the real module passes the gate as shipped.
        real = Path("src/repro/core/bitparallel.py").read_text()
        assert lint_source(real, "src/repro/core/bitparallel.py").ok

    def test_oracle_construction_outside_tests(self):
        source = (
            "from repro.core.reference import NaiveSearcher\n"
            "def slow_path(genome, guides, budget):\n"
            "    return NaiveSearcher(budget).search(genome, guides)\n"
        )
        report = lint_source(source, "src/repro/analysis/report_io.py")
        findings = [d for d in report.errors if d.rule == "L006"]
        assert findings, report.to_text()
        assert "NaiveSearcher" in findings[0].message
        assert findings[0].element.startswith("NaiveSearcher:")

    def test_literal_engine_construction_outside_tests(self):
        source = "engine = CpuNfaEngine()\n"
        assert "L006" in lint_source(source, "src/repro/service/handler.py").rules()
        source = "engine = FpgaEngine()\n"
        assert "L006" in lint_source(source, "src/repro/cli.py").rules()

    def test_oracle_construction_sanctioned_locations(self):
        source = "oracle = NaiveSearcher(budget)\n"
        assert lint_source(source, "tests/test_faults.py").ok
        assert lint_source(source, "benchmarks/bench_oracle.py").ok
        assert lint_source(source, "src/repro/baselines/crispritz.py").ok

    def test_own_sources_are_l006_clean(self):
        # The rule must hold on the shipped tree: no oracle or literal
        # engine construction outside the sanctioned directories.
        report = lint_paths([Path("src")])
        assert not [d for d in report.sorted() if d.rule == "L006"], report.to_text()

    def test_lint_paths_walks_directories(self, tmp_path):
        package = tmp_path / "engines"
        package.mkdir()
        (package / "bad.py").write_text("from x import compile_library\n")
        report = lint_paths([tmp_path])
        assert "L004" in report.rules()


# -- `repro-offtarget check` CLI ------------------------------------------


class TestCheckCommand:
    @pytest.fixture()
    def guide_table(self, tmp_path):
        path = tmp_path / "guides.txt"
        path.write_text("EMX1 GAGTCCGAGCAGAAGAAGAA\n")
        return path

    def test_clean_guides_exit_0(self, guide_table, capsys):
        code = main(["check", "--guides", str(guide_table)])
        assert code == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_verbose_lists_capacity_breakdown(self, guide_table, capsys):
        main(["check", "--guides", str(guide_table), "--verbose"])
        out = capsys.readouterr().out
        assert "CAP003" in out and "CAP004" in out

    def test_capacity_override_exits_1(self, guide_table, capsys):
        code = main(
            ["check", "--guides", str(guide_table), "--capacity-stes", "64",
             "--platform", "ap"]
        )
        assert code == 1
        assert "CAP001" in capsys.readouterr().out

    def test_bulged_budget_skips_alternative_designs(self, guide_table, capsys):
        code = main(
            ["check", "--guides", str(guide_table), "--rna-bulges", "1",
             "--platform", "none"]
        )
        assert code == 0

    def test_broken_anml_exits_1_with_rule(self, tmp_path, capsys):
        automaton = HomogeneousAutomaton()
        automaton.add_ste(CharClass.of("A"), start=StartMode.ALL_INPUT)
        automaton.add_ste(CharClass.of("C"), reports=("hit",))  # unreachable
        path = tmp_path / "broken.anml"
        path.write_text(to_anml(automaton))
        code = main(["check", "--anml", str(path), "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        rules = {d["rule"] for d in payload["diagnostics"]}
        assert "AUT001" in rules

    def test_lint_target(self, tmp_path, capsys):
        bad = tmp_path / "engines"
        bad.mkdir()
        (bad / "rogue.py").write_text("from repro.core.compiler import compile_guide\n")
        code = main(["check", "--lint", str(bad)])
        assert code == 1
        assert "L004" in capsys.readouterr().out

    def test_no_targets_exits_2(self, capsys):
        code = main(["check"])
        assert code == 2
        assert "nothing to check" in capsys.readouterr().err

    def test_missing_anml_exits_2(self, tmp_path, capsys):
        code = main(["check", "--anml", str(tmp_path / "absent.anml")])
        assert code == 2
        assert "error:" in capsys.readouterr().err
