"""Unit tests for Graphviz DOT export."""

from repro import SearchBudget
from repro.automata.dot import homogeneous_to_dot, nfa_to_dot
from repro.core.compiler import compile_guide
from repro.grna.guide import Guide

GUIDE = Guide("g", "ACGTACGTACGTACGTACGT")


def test_homogeneous_dot_structure():
    compiled = compile_guide(GUIDE, SearchBudget(mismatches=1))
    text = homogeneous_to_dot(compiled.homogeneous, name="net")
    assert text.startswith('digraph "net"')
    assert text.rstrip().endswith("}")
    assert text.count("->") == compiled.homogeneous.num_edges
    assert "doublecircle" in text  # reporting STEs
    assert "house" in text  # start STEs


def test_nfa_dot_structure():
    compiled = compile_guide(GUIDE, SearchBudget(mismatches=1, rna_bulges=1))
    text = nfa_to_dot(compiled.forward)
    assert 'label="ε"' in text  # RNA-bulge epsilon edges rendered dashed
    assert "doublecircle" in text


def test_node_count_matches():
    compiled = compile_guide(GUIDE, SearchBudget(mismatches=0))
    text = homogeneous_to_dot(compiled.homogeneous)
    node_lines = [l for l in text.splitlines() if l.strip().startswith("s") and "[" in l]
    assert len(node_lines) == compiled.homogeneous.num_stes


def test_quotes_escaped():
    text = homogeneous_to_dot(
        compile_guide(GUIDE, SearchBudget(mismatches=0)).homogeneous,
        name='with "quotes"',
    )
    assert 'digraph "with \\"quotes\\""' in text
