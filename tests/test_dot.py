"""Unit tests for Graphviz DOT export."""

from repro import SearchBudget
from repro.automata.dot import homogeneous_to_dot, nfa_to_dot
from repro.core.compiler import compile_guide
from repro.grna.guide import Guide

GUIDE = Guide("g", "ACGTACGTACGTACGTACGT")


def test_homogeneous_dot_structure():
    compiled = compile_guide(GUIDE, SearchBudget(mismatches=1))
    text = homogeneous_to_dot(compiled.homogeneous, name="net")
    assert text.startswith('digraph "net"')
    assert text.rstrip().endswith("}")
    assert text.count("->") == compiled.homogeneous.num_edges
    assert "doublecircle" in text  # reporting STEs
    assert "house" in text  # start STEs


def test_nfa_dot_structure():
    compiled = compile_guide(GUIDE, SearchBudget(mismatches=1, rna_bulges=1))
    text = nfa_to_dot(compiled.forward)
    assert 'label="ε"' in text  # RNA-bulge epsilon edges rendered dashed
    assert "doublecircle" in text


def test_node_count_matches():
    compiled = compile_guide(GUIDE, SearchBudget(mismatches=0))
    text = homogeneous_to_dot(compiled.homogeneous)
    node_lines = [l for l in text.splitlines() if l.strip().startswith("s") and "[" in l]
    assert len(node_lines) == compiled.homogeneous.num_stes


def test_quotes_escaped():
    text = homogeneous_to_dot(
        compile_guide(GUIDE, SearchBudget(mismatches=0)).homogeneous,
        name='with "quotes"',
    )
    assert 'digraph "with \\"quotes\\""' in text


def test_output_is_deterministic():
    compiled = compile_guide(GUIDE, SearchBudget(mismatches=2))
    first = homogeneous_to_dot(compiled.homogeneous)
    second = homogeneous_to_dot(
        compile_guide(GUIDE, SearchBudget(mismatches=2)).homogeneous
    )
    assert first == second
    assert nfa_to_dot(compiled.forward) == nfa_to_dot(
        compile_guide(GUIDE, SearchBudget(mismatches=2)).forward
    )


def test_every_ste_id_appears_exactly_once_as_a_node():
    compiled = compile_guide(GUIDE, SearchBudget(mismatches=1))
    automaton = compiled.homogeneous
    text = homogeneous_to_dot(automaton)
    lines = text.splitlines()
    for ste in automaton.stes():
        node_lines = [
            line
            for line in lines
            if line.strip().startswith(f"s{ste.ste_id} [")
        ]
        assert len(node_lines) == 1, f"ste{ste.ste_id} not rendered exactly once"


def test_edges_match_network_wiring():
    compiled = compile_guide(GUIDE, SearchBudget(mismatches=1))
    automaton = compiled.homogeneous
    text = homogeneous_to_dot(automaton)
    rendered = {
        tuple(part.strip().rstrip(";") for part in line.split("->"))
        for line in text.splitlines()
        if "->" in line
    }
    expected = {
        (f"s{source}", f"s{target}")
        for source in range(automaton.num_stes)
        for target in automaton.successors(source)
    }
    assert rendered == expected
