"""Symbolic equivalence prover: compiled automata vs budget semantics.

The differential harness samples the input space; this pass closes it.
For every compiled guide it determinises the compiled NFA
(:func:`repro.automata.dfa.determinize`), builds an *independent*
reference DFA straight from the budget definition
(:mod:`repro.core.spec_dfa` — alignment threads over position ×
mismatch × bulge counters, sharing no code with the NFA builders),
minimises both, and decides language equality exactly:

* two minimal reachable Moore machines are equivalent **iff** they are
  isomorphic, so :func:`repro.automata.dfa.isomorphic` is the proof;
* on refutation, a BFS over the product DFA extracts the *shortest*
  input on which the two machines report different labels
  (:func:`repro.automata.dfa.shortest_distinguishing_word`), and the
  finding carries that word so it can be planted as a permanent
  regression through ``tests.differential.case_from_counterexample``.

Rules (priced and rendered like the CAP family):

======== ======== ======================================================
rule     severity meaning
======== ======== ======================================================
EQV001   E        the compiled automaton provably disagrees with its
                  budget-spec language; the finding carries the
                  shortest distinguishing word and both label sets.
EQV002   E        proof abandoned: the state-blowup guard tripped
                  during determinisation or spec construction, so
                  equality is *unknown* — an unproven automaton is an
                  error, not a pass.
EQV003   E        prover self-inconsistency: the isomorphism check
                  refuted equality but the product BFS found no
                  distinguishing word (or vice versa) — a bug in the
                  prover itself, never a property of the guide.
EQV004   I        proof succeeded: the compiled automaton recognises
                  exactly the within-budget off-target language.
EQV005   I        state pricing: minimal-DFA size, subset-construction
                  blowup over the source NFA, and the semantic thread
                  space the spec construction ranged over.
EQV006   W        the minimal DFA crossed the pricing threshold: the
                  proof still holds, but determinisation-based
                  consumers (HyperScan-style engines, this prover) are
                  budget-shaped, not guide-shaped, at this size.
======== ======== ======================================================

Observability: the module-level :data:`PROVE_OBS` metrics collect
states explored, minimisation passes, BFS pairs, and proof/refutation
tallies; ``repro-offtarget check --prove --stats-json`` surfaces its
snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Union

from ..automata.dfa import (
    Dfa,
    Distinguisher,
    determinize,
    isomorphic,
    minimize,
    shortest_distinguishing_word,
)
from ..core.compiler import CompiledGuide, CompiledLibrary
from ..core.spec_dfa import build_spec_dfa, spec_state_space
from ..errors import EquivalenceError, StateBlowupError
from ..obs import Metrics
from .report import CheckReport, Diagnostic, Severity

#: Prover observability: states explored, minimisation passes, proof and
#: counterexample tallies (the ``prove.*`` counter family).
PROVE_OBS = Metrics()

#: Default state-blowup guard for determinisation and spec construction.
#: The worst default-grid point (guide length 24, three mismatches, both
#: strands) determinises to ~22k states and a one-each bulge budget to
#: ~25k, so a quarter million states means the budget shape is far
#: outside anything the pipeline compiles — stop and report rather than
#: subset-construct without bound.
DEFAULT_MAX_STATES = 250_000

#: Minimal-DFA size above which EQV006 warns. Past ~50k states the
#: transition table alone is ~2 MB per guide (states x 5 codes x 8
#: bytes), the size where DFA scanning stops being cache-resident and
#: per-guide determinisation work dominates compile time — the same
#: "budget shape, not input, now dominates" inflection CAP006 prices
#: for the kernel planes.
STATE_WARN_THRESHOLD = 50_000


@dataclass(frozen=True)
class EquivalenceProof:
    """Outcome of one guide's language-equality decision.

    ``equivalent`` is the verdict; on refutation ``witness`` holds the
    shortest distinguishing word. ``consistent`` is False only when the
    isomorphism check and the product BFS disagreed — a prover bug
    (EQV003), never a property of the guide.
    """

    subject: str
    equivalent: bool
    compiled_states: int
    spec_states: int
    nfa_states: int
    witness: Optional[Distinguisher]
    consistent: bool = True

    @property
    def blowup(self) -> float:
        """Minimal-DFA states per source-NFA state."""
        return self.compiled_states / max(self.nfa_states, 1)


def prove_dfa(
    compiled: Dfa,
    spec: Dfa,
    *,
    subject: str = "dfa",
    nfa_states: int = 0,
) -> EquivalenceProof:
    """Decide language equality of two search DFAs.

    Both inputs are minimised here, so callers may pass raw
    determinisation output (or a deliberately corrupted table — this is
    the mutation-test seam). *nfa_states* is carried through for blowup
    pricing when known.
    """
    compiled_min = minimize(compiled)
    spec_min = minimize(spec)
    PROVE_OBS.incr("prove.minimization_passes", 2)
    PROVE_OBS.incr("prove.states.compiled", compiled_min.num_states)
    PROVE_OBS.incr("prove.states.spec", spec_min.num_states)

    witness: Optional[Distinguisher] = None
    consistent = True
    equivalent = isomorphic(compiled_min, spec_min)
    if equivalent:
        PROVE_OBS.incr("prove.proofs")
    else:
        witness = shortest_distinguishing_word(compiled_min, spec_min)
        if witness is None:
            # Isomorphism refuted equality but no input exhibits a
            # difference: the prover contradicts itself.
            consistent = False
            PROVE_OBS.incr("prove.inconsistencies")
        else:
            PROVE_OBS.incr("prove.counterexamples")
            PROVE_OBS.incr("prove.pairs_explored", witness.pairs_explored)
    return EquivalenceProof(
        subject=subject,
        equivalent=equivalent,
        compiled_states=compiled_min.num_states,
        spec_states=spec_min.num_states,
        nfa_states=nfa_states or compiled.num_states,
        witness=witness,
        consistent=consistent,
    )


def prove_guide(
    compiled_guide: CompiledGuide,
    *,
    max_states: int = DEFAULT_MAX_STATES,
) -> EquivalenceProof:
    """Prove one compiled guide equal to its budget-semantics language.

    Raises :class:`~repro.errors.StateBlowupError` when either bounded
    construction exceeds *max_states* (converted to EQV002 by
    :func:`equivalence_diagnostics`).
    """
    nfa = compiled_guide.combined.without_epsilon()
    with PROVE_OBS.timer("prove.determinize_seconds"):
        compiled_dfa = determinize(nfa, max_states=max_states)
    with PROVE_OBS.timer("prove.spec_build_seconds"):
        spec = build_spec_dfa(
            compiled_guide.guide, compiled_guide.budget, max_states=max_states
        )
    PROVE_OBS.incr("prove.states.explored", compiled_dfa.num_states + spec.num_states)
    return prove_dfa(
        compiled_dfa,
        spec,
        subject=compiled_guide.guide.name,
        nfa_states=nfa.num_states,
    )


def _diagnose_proof(
    report: CheckReport, proof: EquivalenceProof, thread_space: int
) -> None:
    subject = f"guide:{proof.subject}"
    if not proof.consistent:
        report.add(
            Diagnostic(
                Severity.ERROR,
                "EQV003",
                "prover inconsistency: isomorphism refuted equality but no "
                "distinguishing word exists",
                subject=subject,
                hint="this is a prover bug, not a guide property — file it "
                "against repro.check.prove",
            )
        )
    elif not proof.equivalent and proof.witness is not None:
        witness = proof.witness
        report.add(
            Diagnostic(
                Severity.ERROR,
                "EQV001",
                f"compiled automaton disagrees with the budget semantics on "
                f"{witness.word!r}: at the final position the compiled DFA "
                f"reports {len(witness.left_labels)} label(s), the spec DFA "
                f"{len(witness.right_labels)}",
                subject=subject,
                element="witness",
                hint="plant it as a permanent regression: "
                "tests.differential.case_from_counterexample(guide, budget, "
                f"{witness.word!r})",
            )
        )
    else:
        report.add(
            Diagnostic(
                Severity.INFO,
                "EQV004",
                f"proven: compiled automaton ({proof.compiled_states} minimal "
                f"state(s)) recognises exactly the within-budget language "
                f"({proof.spec_states} spec state(s))",
                subject=subject,
            )
        )
    report.add(
        Diagnostic(
            Severity.INFO,
            "EQV005",
            f"state pricing: {proof.nfa_states} NFA state(s) -> "
            f"{proof.compiled_states} minimal DFA state(s) "
            f"(x{proof.blowup:.1f} blowup) over a semantic thread space "
            f"of {thread_space}",
            subject=subject,
        )
    )
    if proof.compiled_states > STATE_WARN_THRESHOLD:
        report.add(
            Diagnostic(
                Severity.WARNING,
                "EQV006",
                f"minimal DFA has {proof.compiled_states} states (threshold "
                f"{STATE_WARN_THRESHOLD}); determinisation-based consumers "
                "are budget-shaped at this size",
                subject=subject,
                hint="lower the mismatch/bulge budget, or accept that "
                "DFA-path engines and proofs scale with the budget here",
            )
        )


def equivalence_diagnostics(
    compiled: Union[CompiledLibrary, Iterable[CompiledGuide]],
    *,
    max_states: int = DEFAULT_MAX_STATES,
) -> CheckReport:
    """Prove every guide in *compiled*; render verdicts as diagnostics.

    A tripped state-blowup guard becomes an EQV002 *error*: an unproven
    automaton is treated as a failure of the check, not a silent skip.
    """
    report = CheckReport()
    for compiled_guide in compiled:
        PROVE_OBS.incr("prove.guides_checked")
        name = compiled_guide.guide.name
        try:
            proof = prove_guide(compiled_guide, max_states=max_states)
        except StateBlowupError as error:
            PROVE_OBS.incr("prove.blowups")
            report.add(
                Diagnostic(
                    Severity.ERROR,
                    "EQV002",
                    f"proof abandoned: {error} — language equality is unknown",
                    subject=f"guide:{name}",
                    hint="raise --prove-max-states, or lower the "
                    "mismatch/bulge budget to shrink the construction",
                )
            )
            continue
        _diagnose_proof(
            report,
            proof,
            spec_state_space(compiled_guide.guide, compiled_guide.budget),
        )
    return report


def require_equivalence(
    compiled: Union[CompiledLibrary, Iterable[CompiledGuide]],
    *,
    max_states: int = DEFAULT_MAX_STATES,
) -> None:
    """Raise :class:`EquivalenceError` unless every guide proves equal.

    The exception message carries the rendered findings — including any
    shortest distinguishing word — so the operator sees the exact input
    on which an automaton and its budget semantics part ways. This is
    the engine pre-flight entry point
    (:meth:`repro.engines.base.Engine.validate_equivalence`).
    """
    report = equivalence_diagnostics(compiled, max_states=max_states)
    if report.ok:
        return
    raise EquivalenceError(
        "\n".join(diagnostic.render() for diagnostic in report.errors)
    )
