"""Structured diagnostics for the static-analysis passes.

Every checker rule — automata well-formedness, capacity pre-flight,
project-invariant lint — emits :class:`Diagnostic` records rather than
raising, so a single run can report *all* defects of an automaton or a
source tree at once, the way the AP SDK's compile-time validation and
HyperScan's pattern-compile errors batch their findings. A
:class:`CheckReport` aggregates diagnostics and renders them as plain
text for terminals or as JSON for CI and tooling.

Severities
----------
``ERROR``
    The artefact is unusable as-is: loading it onto a platform would
    either be rejected (over-capacity) or silently compute the wrong
    thing (unreachable report state, empty character class).
``WARNING``
    Legal but suspicious: costs resources or risks surprising
    behaviour (dead states, multi-pass placement).
``INFO``
    Observations useful for capacity planning (utilisation, pass
    counts).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so that ``ERROR`` sorts first."""

    ERROR = 0
    WARNING = 1
    INFO = 2

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding of a checker rule.

    Attributes
    ----------
    severity:
        How bad the finding is (see module docstring).
    rule:
        Stable rule identifier (``AUT001``, ``CAP001``, ``LINT004``,
        ...). Tests and tooling key off this, never off the message.
    message:
        Human-readable statement of the defect.
    subject:
        The artefact the finding is about (automaton name, guide name,
        file path).
    element:
        The offending element within the subject (STE id, state name,
        ``file:line``), when one exists.
    hint:
        A suggested fix, when the rule knows one.
    """

    severity: Severity
    rule: str
    message: str
    subject: str = ""
    element: str = ""
    hint: str = ""

    def render(self) -> str:
        """One-line terminal rendering."""
        location = self.subject
        if self.element:
            location = f"{location}::{self.element}" if location else self.element
        prefix = f"{self.severity.label}[{self.rule}]"
        body = f"{prefix} {location}: {self.message}" if location else f"{prefix} {self.message}"
        if self.hint:
            body += f" (hint: {self.hint})"
        return body

    def as_dict(self) -> dict[str, str]:
        """JSON-ready mapping."""
        return {
            "severity": self.severity.label,
            "rule": self.rule,
            "message": self.message,
            "subject": self.subject,
            "element": self.element,
            "hint": self.hint,
        }


@dataclass
class CheckReport:
    """An ordered collection of diagnostics from one check run."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no ERROR-severity diagnostic was recorded."""
        return not self.errors

    @property
    def exit_code(self) -> int:
        """Process exit code: 0 clean, 1 when any error was found."""
        return 0 if self.ok else 1

    def rules(self) -> set[str]:
        """The set of rule ids that fired."""
        return {d.rule for d in self.diagnostics}

    def sorted(self) -> list[Diagnostic]:
        """Diagnostics ordered by severity, then subject/element."""
        return sorted(self.diagnostics)

    def stable_sorted(self) -> list[Diagnostic]:
        """Diagnostics in rule-id-then-location order.

        This is the machine-consumer ordering: a CI diff of two JSON
        reports should show *finding* changes, never reordering noise,
        so the key is (rule, subject, element) with the remaining
        fields as tie-breakers — independent of both insertion order
        and severity.
        """
        return sorted(
            self.diagnostics,
            key=lambda d: (d.rule, d.subject, d.element, d.severity, d.message, d.hint),
        )

    def to_text(self, *, verbose: bool = False) -> str:
        """Terminal rendering: findings plus a one-line summary.

        Without *verbose*, INFO diagnostics are summarised but not
        listed.
        """
        lines = [
            d.render()
            for d in self.sorted()
            if verbose or d.severity is not Severity.INFO
        ]
        counts = {severity: 0 for severity in Severity}
        for diagnostic in self.diagnostics:
            counts[diagnostic.severity] += 1
        lines.append(
            f"check: {counts[Severity.ERROR]} error(s), "
            f"{counts[Severity.WARNING]} warning(s), "
            f"{counts[Severity.INFO]} info"
        )
        return "\n".join(lines)

    def to_json(self, **dump_kwargs: Any) -> str:
        """JSON rendering, byte-stable across runs.

        Findings are emitted in :meth:`stable_sorted` order (rule id,
        then location) so two runs over the same inputs produce
        byte-identical output — the property CI report diffing relies
        on.
        """
        payload = {
            "ok": self.ok,
            "num_errors": len(self.errors),
            "num_warnings": len(self.warnings),
            "diagnostics": [d.as_dict() for d in self.stable_sorted()],
        }
        return json.dumps(payload, **dump_kwargs)
