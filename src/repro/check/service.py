"""Static verification of the serving layer's invariants.

The serving components whose corruption would be *silent* get checker
rules rather than scattered asserts — the compiled-guide cache (a key
pointing at the wrong artefact demultiplexes one guide's hits under
another guide's name) and, since the chaos-hardening PR, the socket
server's idempotency and drain machinery (a double-executed retry or
an abandoned in-flight handler corrupts results without crashing
anything):

======== ======== ======================================================
rule     severity invariant
======== ======== ======================================================
SVC001   E        cache occupancy respects the capacity bound (the LRU
                  must evict before exceeding it).
SVC002   E        every cache entry coheres with its key: the cached
                  artefact's protospacer / PAM / budget equal the
                  key's, and its name is the key's canonical name.
SVC003   E        cache counters cohere: ``hits + misses == lookups``
                  and ``evictions <= misses + adoptions`` (every
                  eviction was caused by a miss-driven or
                  adoption-driven insertion).
SVC004   I        cache occupancy / hit-rate observation for capacity
                  planning.
SVC005   E        retry idempotency: no request id was submitted for
                  execution more than once, every recorded response
                  echoes its own id, and the idempotency record
                  respects its capacity bound.
SVC006   E        drain/lifecycle coherence: a stopped or draining
                  server holds no accepting listener, and a stopped
                  server has no live connection handlers (nothing was
                  abandoned mid-request).
SVC007   I        serving-edge observation: connections accepted /
                  rejected / active, executions vs deduped replays,
                  drain completions.
SVC008   E        a router config names at least one backend (an empty
                  set routes nothing and fails every request).
SVC009   E        backend endpoints and names are unique (a duplicate
                  endpoint double-weights one node on the hash ring; a
                  duplicate name makes membership state ambiguous).
SVC010   E/W      replica count is positive (E) and does not exceed
                  the number of backends (W: extra replicas are dead
                  weight in the preference walk).
SVC011   E/W      probe/drain timing sanity: probe interval, probe
                  timeout positive, hysteresis thresholds >= 1, drain
                  deadline and in-flight bound sane (E); a probe
                  timeout exceeding the probe interval overlaps probe
                  cycles (W).
======== ======== ======================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .report import CheckReport, Diagnostic, Severity

if TYPE_CHECKING:  # imported lazily to keep check importable standalone
    from ..cluster.router import RouterConfig
    from ..service.cache import CompiledGuideCache
    from ..service.server import OffTargetServer


def check_guide_cache(
    cache: "CompiledGuideCache", *, subject: str = "guide-cache"
) -> CheckReport:
    """Verify the structural invariants of one compiled-guide cache."""
    from ..service.cache import cache_key, canonical_name

    report = CheckReport()
    entries = list(cache.items())

    if len(entries) > cache.capacity:
        report.add(
            Diagnostic(
                Severity.ERROR,
                "SVC001",
                f"cache holds {len(entries)} entries over its capacity "
                f"{cache.capacity}",
                subject=subject,
                hint="the LRU must evict before an insert exceeds capacity",
            )
        )

    for key, compiled in entries:
        expected_name = canonical_name(key)
        actual_key = cache_key(compiled.guide, compiled.budget)
        if actual_key != key:
            report.add(
                Diagnostic(
                    Severity.ERROR,
                    "SVC002",
                    f"entry under key {key!r} holds an artefact compiled for "
                    f"{actual_key!r}",
                    subject=subject,
                    element=compiled.guide.name,
                    hint="a mismatched entry demultiplexes hits under the "
                    "wrong guide — rebuild the cache",
                )
            )
        elif compiled.guide.name != expected_name:
            report.add(
                Diagnostic(
                    Severity.ERROR,
                    "SVC002",
                    f"entry for key {key!r} is named {compiled.guide.name!r}, "
                    f"expected canonical {expected_name!r}",
                    subject=subject,
                    element=compiled.guide.name,
                )
            )

    counters = cache.counters()
    if counters["hits"] + counters["misses"] != counters["lookups"]:
        report.add(
            Diagnostic(
                Severity.ERROR,
                "SVC003",
                f"counters incoherent: hits {counters['hits']} + misses "
                f"{counters['misses']} != lookups {counters['lookups']}",
                subject=subject,
            )
        )
    adoptions = counters.get("adoptions", 0)
    if counters["evictions"] > counters["misses"] + adoptions:
        report.add(
            Diagnostic(
                Severity.ERROR,
                "SVC003",
                f"counters incoherent: evictions {counters['evictions']} exceed "
                f"misses {counters['misses']} + adoptions {adoptions} (every "
                f"eviction follows a miss- or adoption-driven insertion)",
                subject=subject,
            )
        )

    lookups = counters["lookups"]
    hit_rate = counters["hits"] / lookups if lookups else 0.0
    report.add(
        Diagnostic(
            Severity.INFO,
            "SVC004",
            f"cache at {len(entries)}/{cache.capacity} entries, "
            f"{lookups} lookups, hit rate {hit_rate:.1%}, "
            f"{counters['evictions']} evictions",
            subject=subject,
        )
    )
    return report


def check_server(
    server: "OffTargetServer", *, subject: str = "offtarget-server"
) -> CheckReport:
    """Verify the socket server's idempotency and drain invariants.

    The chaos suite's structural backstop: after any seeded
    :class:`~repro.service.chaos.ChaosPlan` run, a clean report here
    means no retried request double-executed (SVC005) and the
    lifecycle machinery abandoned nothing (SVC006).
    """
    report = CheckReport()

    duplicates = {
        request_id: count
        for request_id, count in server.execution_counts().items()
        if count > 1
    }
    for request_id, count in sorted(duplicates.items()):
        report.add(
            Diagnostic(
                Severity.ERROR,
                "SVC005",
                f"request id {request_id!r} was submitted for execution "
                f"{count} times — a retry double-executed",
                subject=subject,
                element=request_id,
                hint="retried ids must be answered from the idempotency "
                "record, never resubmitted to the scheduler",
            )
        )
    recorded = server.idempotent_ids()
    completed_ids = [request_id for request_id, done in recorded if done]
    if len(completed_ids) > server.idempotency_capacity:
        report.add(
            Diagnostic(
                Severity.ERROR,
                "SVC005",
                f"idempotency record holds {len(completed_ids)} completed "
                f"responses over its capacity {server.idempotency_capacity}",
                subject=subject,
                hint="the LRU must evict before an insert exceeds capacity",
            )
        )
    for request_id in completed_ids:
        response = server.completed_response(request_id)
        if response is not None and response.get("id") != request_id:
            report.add(
                Diagnostic(
                    Severity.ERROR,
                    "SVC005",
                    f"idempotency record for id {request_id!r} holds a "
                    f"response for id {response.get('id')!r}",
                    subject=subject,
                    element=request_id,
                    hint="a mismatched record would answer a retried request "
                    "with another request's hits",
                )
            )

    if (server.stopped or server.draining) and server.accepting:
        report.add(
            Diagnostic(
                Severity.ERROR,
                "SVC006",
                "server is draining/stopped but still holds an accepting "
                "listener",
                subject=subject,
                hint="drain must close the listener before joining handlers",
            )
        )
    if server.stopped and server.active_connections:
        report.add(
            Diagnostic(
                Severity.ERROR,
                "SVC006",
                f"server is stopped with {server.active_connections} live "
                f"connection handler(s) — in-flight work was abandoned",
                subject=subject,
                hint="stop()/drain() must join handlers before closing the "
                "service",
            )
        )

    counters = server.service.metrics.counters_with_prefix("service.")
    report.add(
        Diagnostic(
            Severity.INFO,
            "SVC007",
            "serving edge: "
            f"{int(counters.get('service.connections.accepted', 0))} accepted / "
            f"{int(counters.get('service.connections.rejected', 0))} rejected "
            f"connections, {server.active_connections} active; "
            f"{int(counters.get('service.server.executions', 0))} executions, "
            f"{int(counters.get('service.server.requests.deduped', 0))} deduped "
            f"replays, "
            f"{int(counters.get('service.drain.completed', 0))} drains",
            subject=subject,
        )
    )
    return report


def check_router_config(
    config: "RouterConfig", *, subject: str = "cluster-router"
) -> CheckReport:
    """Verify a router configuration before it takes traffic.

    A misconfigured router fails *quietly* — a duplicate endpoint
    double-weights one node on the hash ring, a zero probe interval
    spins the prober, an oversized replica count silently walks past
    the membership it has — so the SVC008–SVC011 rules run at router
    construction and under ``repro-offtarget route`` before binding.
    """
    report = CheckReport()

    if not config.backends:
        report.add(
            Diagnostic(
                Severity.ERROR,
                "SVC008",
                "router has no backends — every key would fail to route",
                subject=subject,
                hint="pass at least one host:port via --backends",
            )
        )

    seen_endpoints: dict[tuple[str, int], str] = {}
    seen_names: set[str] = set()
    for backend in config.backends:
        endpoint = (backend.host, backend.port)
        if endpoint in seen_endpoints:
            report.add(
                Diagnostic(
                    Severity.ERROR,
                    "SVC009",
                    f"backend endpoint {backend.host}:{backend.port} appears "
                    f"more than once (as {seen_endpoints[endpoint]!r} and "
                    f"{backend.name!r}) — one node would be double-weighted "
                    f"on the hash ring",
                    subject=subject,
                    element=backend.name,
                )
            )
        else:
            seen_endpoints[endpoint] = backend.name
        if backend.name in seen_names:
            report.add(
                Diagnostic(
                    Severity.ERROR,
                    "SVC009",
                    f"backend name {backend.name!r} appears more than once — "
                    f"membership state would be ambiguous",
                    subject=subject,
                    element=backend.name,
                )
            )
        seen_names.add(backend.name)

    if config.replicas < 1:
        report.add(
            Diagnostic(
                Severity.ERROR,
                "SVC010",
                f"replica count must be >= 1, got {config.replicas}",
                subject=subject,
            )
        )
    elif config.backends and config.replicas > len(config.backends):
        report.add(
            Diagnostic(
                Severity.WARNING,
                "SVC010",
                f"replica count {config.replicas} exceeds the "
                f"{len(config.backends)}-backend membership — the preference "
                f"walk can never visit more nodes than exist",
                subject=subject,
            )
        )

    if config.probe_interval_seconds <= 0:
        report.add(
            Diagnostic(
                Severity.ERROR,
                "SVC011",
                f"probe interval must be positive, got "
                f"{config.probe_interval_seconds!r}",
                subject=subject,
            )
        )
    if config.probe_timeout_seconds <= 0:
        report.add(
            Diagnostic(
                Severity.ERROR,
                "SVC011",
                f"probe timeout must be positive, got "
                f"{config.probe_timeout_seconds!r}",
                subject=subject,
            )
        )
    elif (
        config.probe_interval_seconds > 0
        and config.probe_timeout_seconds > config.probe_interval_seconds
    ):
        report.add(
            Diagnostic(
                Severity.WARNING,
                "SVC011",
                f"probe timeout {config.probe_timeout_seconds!r}s exceeds the "
                f"probe interval {config.probe_interval_seconds!r}s — probe "
                f"cycles can overlap",
                subject=subject,
                hint="keep the timeout below the interval so one slow backend "
                "cannot stall the next cycle",
            )
        )
    if config.failure_threshold < 1 or config.recovery_threshold < 1:
        report.add(
            Diagnostic(
                Severity.ERROR,
                "SVC011",
                f"hysteresis thresholds must be >= 1, got failure "
                f"{config.failure_threshold!r} / recovery "
                f"{config.recovery_threshold!r}",
                subject=subject,
            )
        )
    if config.drain_deadline_seconds < 0:
        report.add(
            Diagnostic(
                Severity.ERROR,
                "SVC011",
                f"drain deadline must be >= 0, got "
                f"{config.drain_deadline_seconds!r}",
                subject=subject,
            )
        )
    if config.max_inflight < 1:
        report.add(
            Diagnostic(
                Severity.ERROR,
                "SVC011",
                f"max_inflight must be >= 1, got {config.max_inflight!r}",
                subject=subject,
            )
        )
    if config.virtual_nodes < 1:
        report.add(
            Diagnostic(
                Severity.ERROR,
                "SVC011",
                f"virtual_nodes must be >= 1, got {config.virtual_nodes!r}",
                subject=subject,
            )
        )
    return report
