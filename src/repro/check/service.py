"""Static verification of the serving layer's compiled-guide cache.

The cache is the one serving component whose corruption would be
*silent*: a key pointing at the wrong artefact demultiplexes one
guide's hits under another guide's name. So, like the automata and
capacity passes, its invariants are a checker rule rather than
scattered asserts:

======== ======== ======================================================
rule     severity invariant
======== ======== ======================================================
SVC001   E        occupancy respects the capacity bound (the LRU must
                  evict before exceeding it).
SVC002   E        every entry coheres with its key: the cached
                  artefact's protospacer / PAM / budget equal the
                  key's, and its name is the key's canonical name.
SVC003   E        counters cohere: ``hits + misses == lookups`` and
                  ``evictions <= misses`` (every eviction was caused
                  by a miss-driven insertion).
SVC004   I        occupancy / hit-rate observation for capacity
                  planning.
======== ======== ======================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .report import CheckReport, Diagnostic, Severity

if TYPE_CHECKING:  # imported lazily to keep check importable standalone
    from ..service.cache import CompiledGuideCache


def check_guide_cache(
    cache: "CompiledGuideCache", *, subject: str = "guide-cache"
) -> CheckReport:
    """Verify the structural invariants of one compiled-guide cache."""
    from ..service.cache import cache_key, canonical_name

    report = CheckReport()
    entries = list(cache.items())

    if len(entries) > cache.capacity:
        report.add(
            Diagnostic(
                Severity.ERROR,
                "SVC001",
                f"cache holds {len(entries)} entries over its capacity "
                f"{cache.capacity}",
                subject=subject,
                hint="the LRU must evict before an insert exceeds capacity",
            )
        )

    for key, compiled in entries:
        expected_name = canonical_name(key)
        actual_key = cache_key(compiled.guide, compiled.budget)
        if actual_key != key:
            report.add(
                Diagnostic(
                    Severity.ERROR,
                    "SVC002",
                    f"entry under key {key!r} holds an artefact compiled for "
                    f"{actual_key!r}",
                    subject=subject,
                    element=compiled.guide.name,
                    hint="a mismatched entry demultiplexes hits under the "
                    "wrong guide — rebuild the cache",
                )
            )
        elif compiled.guide.name != expected_name:
            report.add(
                Diagnostic(
                    Severity.ERROR,
                    "SVC002",
                    f"entry for key {key!r} is named {compiled.guide.name!r}, "
                    f"expected canonical {expected_name!r}",
                    subject=subject,
                    element=compiled.guide.name,
                )
            )

    counters = cache.counters()
    if counters["hits"] + counters["misses"] != counters["lookups"]:
        report.add(
            Diagnostic(
                Severity.ERROR,
                "SVC003",
                f"counters incoherent: hits {counters['hits']} + misses "
                f"{counters['misses']} != lookups {counters['lookups']}",
                subject=subject,
            )
        )
    if counters["evictions"] > counters["misses"]:
        report.add(
            Diagnostic(
                Severity.ERROR,
                "SVC003",
                f"counters incoherent: evictions {counters['evictions']} exceed "
                f"misses {counters['misses']} (every eviction follows a "
                f"miss-driven insertion)",
                subject=subject,
            )
        )

    lookups = counters["lookups"]
    hit_rate = counters["hits"] / lookups if lookups else 0.0
    report.add(
        Diagnostic(
            Severity.INFO,
            "SVC004",
            f"cache at {len(entries)}/{cache.capacity} entries, "
            f"{lookups} lookups, hit rate {hit_rate:.1%}, "
            f"{counters['evictions']} evictions",
            subject=subject,
        )
    )
    return report
