"""Static verification of a design-pipeline request (the DSG rules).

A design run is operator input end to end — a region, a PAM choice, a
guide length, a weight table — so each failure mode that would
otherwise surface as a mid-pipeline exception (or worse, a silently
empty report) gets a checker rule:

======== ======== ======================================================
rule     severity invariant
======== ======== ======================================================
DSG001   E        the region yields at least one candidate for the
                  chosen PAM and guide length (an empty panel means
                  the run can only produce an empty report).
DSG002   E        the score-weight table is well-formed: component
                  weights sum to 1, per-mismatch multipliers in
                  (0, 1], position table (when given) covers the
                  guide length.
DSG003   E/W      capacity pre-flight of the coalesced candidate
                  panel on the configured device specs, routed
                  through the shared CAP rules — an unplaceable
                  candidate fails before any genome pass is paid.
DSG004   I        panel observation: candidate count, distinct panel
                  guides (repeat-region dedup), candidate density.
======== ======== ======================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence as SequenceType

from .report import CheckReport, Diagnostic, Severity

if TYPE_CHECKING:  # imported lazily to keep check importable standalone
    from ..core.compiler import SearchBudget
    from ..design.enumerate import Candidate
    from ..grna.pam import Pam
    from ..platforms.spec import ApSpec, FpgaSpec


def check_design_request(
    candidates: SequenceType["Candidate"],
    pam: "Pam",
    *,
    guide_length: int,
    weights: Mapping[str, Any] | None = None,
    budget: "SearchBudget | None" = None,
    specs: Iterable["ApSpec | FpgaSpec"] = (),
    subject: str = "design-request",
) -> CheckReport:
    """Pre-flight one design request; empty report means go.

    *weights* is the raw operator mapping (wire/CLI form), not a
    constructed table, so malformed values are reported as DSG002
    diagnostics instead of exceptions. *specs* are the device targets
    to pre-flight the coalesced panel against (DSG003).
    """
    from ..core.compiler import SearchBudget as Budget
    from ..design.score import weights_from_mapping
    from ..design.vet import build_panel
    from ..errors import DesignError

    report = CheckReport()

    if not candidates:
        report.add(
            Diagnostic(
                Severity.ERROR,
                "DSG001",
                f"region yields no {pam.name} candidate of length {guide_length}",
                subject=subject,
                hint="widen the region, relax the PAM, or change the guide "
                "length — an empty panel can only produce an empty report",
            )
        )

    try:
        weights_from_mapping(weights, guide_length=guide_length)
    except DesignError as error:
        report.add(
            Diagnostic(
                Severity.ERROR,
                "DSG002",
                str(error),
                subject=subject,
                hint="fix the score-weight table; see "
                "repro.design.score.ScoreWeights",
            )
        )

    specs = list(specs)
    if candidates and specs:
        report.extend(_panel_capacity(candidates, pam, budget or Budget(), specs))

    if candidates:
        panel, _ = build_panel(list(candidates), pam)
        report.add(
            Diagnostic(
                Severity.INFO,
                "DSG004",
                f"panel: {len(candidates)} candidate(s), {len(panel)} distinct "
                f"guide(s) after content dedup",
                subject=subject,
            )
        )
    return report


def _panel_capacity(
    candidates: SequenceType["Candidate"],
    pam: "Pam",
    budget: "SearchBudget",
    specs: list["ApSpec | FpgaSpec"],
) -> CheckReport:
    """DSG003: route the coalesced panel through the shared CAP rules."""
    from ..core.compiler import compile_library
    from ..design.vet import build_panel
    from ..grna.library import GuideLibrary
    from .automata import capacity_diagnostics

    report = CheckReport()
    panel, _ = build_panel(list(candidates), pam)
    compiled = compile_library(GuideLibrary.from_guides(list(panel)), budget)
    for spec in specs:
        capacity = capacity_diagnostics(compiled, spec)
        for diagnostic in capacity.diagnostics:
            report.add(
                Diagnostic(
                    diagnostic.severity,
                    "DSG003",
                    f"[{diagnostic.rule}] {diagnostic.message}",
                    subject=diagnostic.subject,
                    element=diagnostic.element,
                    hint=diagnostic.hint,
                )
            )
    return report
