"""AST-based linter for this repository's own invariants.

Generic linters cannot know that a ``ShardTask`` crosses a process
boundary or that engines must consume :class:`CompiledLibrary` rather
than compiling their own automata. These rules encode the hazards this
codebase has actually hit (or is structured to avoid):

======== ======== ======================================================
rule     severity invariant
======== ======== ======================================================
L001     E        no mutable default arguments — a shared-list default
                  in a worker-payload or budget class aliases state
                  across calls and across pickling round-trips.
L002     E        no unseeded randomness outside ``genome/synthetic.py``
                  — every run must be reproducible, which is the whole
                  point of a reproduction repo. Flags ``import random``
                  and zero-argument ``default_rng()``.
L003     E        worker-payload classes (``*Task`` / ``*Payload`` in a
                  ``parallel.py`` module) must stay cheap to pickle: no
                  automaton/NFA/compiled-library fields. Workers
                  recompile from the guide records; shipping automata
                  through the pool serialises megabytes per shard and
                  couples worker lifetime to automaton internals.
L004     E        engines must not bypass :class:`CompiledLibrary` by
                  building automata themselves (``Nfa()``,
                  ``build_hamming_nfa``, ``compile_library``, ...) —
                  compilation happens once, upstream, so every engine
                  sees the identical network.
L005     E        strict-typed packages (``automata/``, ``core/``,
                  ``grna/``, ``platforms/``, ``check/``, ``service/``)
                  require fully annotated
                  function signatures — the locally-runnable proxy for
                  the mypy strict gate CI enforces.
L006     E        oracle and engine objects (``NaiveSearcher``, the
                  ``*Engine`` classes) must not be constructed outside
                  ``tests/``, ``benchmarks/`` and ``baselines/`` — the
                  naive oracle is O(sites x guides) and a literal
                  engine construction bypasses the ``get_engine``
                  factory's registry; both have silently crept onto
                  hot paths before in systems like this.
======== ======== ======================================================

``lint_source`` classifies a file by its *path string*, so tests can
exercise every rule on fixture snippets with virtual paths.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, Union

from .report import CheckReport, Diagnostic, Severity

#: packages under src/repro that the typing gate holds to strict rules.
STRICT_PACKAGES = frozenset(
    {"automata", "cluster", "core", "design", "grna", "platforms", "check", "service"}
)

#: field types too heavy to ship through the process pool.
HEAVY_PAYLOAD_TYPES = frozenset(
    {
        "Nfa",
        "Dfa",
        "HomogeneousAutomaton",
        "StridedAutomaton",
        "ElementNetwork",
        "CompiledGuide",
        "CompiledLibrary",
    }
)

#: names whose use inside an engine means it is compiling automata itself.
COMPILER_ONLY_NAMES = frozenset(
    {
        "Nfa",
        "build_hamming_nfa",
        "build_bulge_nfa",
        "compile_guide",
        "compile_library",
        "nfa_to_homogeneous",
    }
)

#: classes whose construction is confined to tests, benchmarks and
#: baseline harnesses: the quadratic naive oracle plus every concrete
#: engine (library code goes through the ``get_engine`` factory).
ORACLE_CONSTRUCTORS = frozenset(
    {
        "NaiveSearcher",
        "CpuNfaEngine",
        "HyperscanEngine",
        "Infant2Engine",
        "FpgaEngine",
        "ApEngine",
    }
)

#: path parts where constructing oracles/engines directly is sanctioned.
ORACLE_SANCTIONED_PARTS = frozenset({"tests", "benchmarks", "baselines"})

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray", "deque", "defaultdict"})


def _parts(path: str) -> tuple[str, ...]:
    return Path(path).parts


def _is_synthetic_module(path: str) -> bool:
    parts = _parts(path)
    return Path(path).name == "synthetic.py" and "genome" in parts


def _is_engine_module(path: str) -> bool:
    return "engines" in _parts(path)


def _is_worker_module(path: str) -> bool:
    return Path(path).name == "parallel.py"


def _is_strict_module(path: str) -> bool:
    return bool(STRICT_PACKAGES.intersection(_parts(path)))


def _annotation_names(annotation: ast.expr) -> Iterator[str]:
    """Every identifier appearing anywhere in an annotation expression."""
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name):
            yield node.id
        elif isinstance(node, ast.Attribute):
            yield node.attr
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            # String (forward-reference) annotations: re-parse best-effort.
            try:
                parsed = ast.parse(node.value, mode="eval")
            except SyntaxError:
                continue
            yield from _annotation_names(parsed.body)


def _call_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _lint_mutable_defaults(tree: ast.AST, path: str, report: CheckReport) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            default for default in node.args.kw_defaults if default is not None
        ]
        for default in defaults:
            mutable = isinstance(default, _MUTABLE_LITERALS) or (
                isinstance(default, ast.Call)
                and _call_name(default.func) in _MUTABLE_CONSTRUCTORS
            )
            if mutable:
                report.add(
                    Diagnostic(
                        Severity.ERROR,
                        "L001",
                        f"function {node.name!r} has a mutable default argument",
                        subject=path,
                        element=f"{node.name}:{default.lineno}",
                        hint="default to None (or a frozen value) and build the "
                        "mutable object inside the function",
                    )
                )


def _lint_unseeded_random(tree: ast.AST, path: str, report: CheckReport) -> None:
    if _is_synthetic_module(path):
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    report.add(
                        Diagnostic(
                            Severity.ERROR,
                            "L002",
                            "stdlib `random` imported outside genome/synthetic.py",
                            subject=path,
                            element=f"import:{node.lineno}",
                            hint="all randomness flows through seeded "
                            "numpy Generators in genome/synthetic.py",
                        )
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                report.add(
                    Diagnostic(
                        Severity.ERROR,
                        "L002",
                        "stdlib `random` imported outside genome/synthetic.py",
                        subject=path,
                        element=f"import:{node.lineno}",
                        hint="all randomness flows through seeded "
                        "numpy Generators in genome/synthetic.py",
                    )
                )
        elif isinstance(node, ast.Call):
            if (
                _call_name(node.func) == "default_rng"
                and not node.args
                and not node.keywords
            ):
                report.add(
                    Diagnostic(
                        Severity.ERROR,
                        "L002",
                        "default_rng() called without a seed",
                        subject=path,
                        element=f"default_rng:{node.lineno}",
                        hint="pass an explicit seed so runs are reproducible",
                    )
                )


def _lint_worker_payloads(tree: ast.AST, path: str, report: CheckReport) -> None:
    if not _is_worker_module(path):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not (node.name.endswith("Task") or node.name.endswith("Payload")):
            continue
        for statement in node.body:
            if not isinstance(statement, ast.AnnAssign) or statement.annotation is None:
                continue
            heavy = HEAVY_PAYLOAD_TYPES.intersection(
                _annotation_names(statement.annotation)
            )
            if heavy:
                field = (
                    statement.target.id
                    if isinstance(statement.target, ast.Name)
                    else ast.dump(statement.target)
                )
                report.add(
                    Diagnostic(
                        Severity.ERROR,
                        "L003",
                        f"worker payload {node.name!r} field {field!r} carries "
                        f"{sorted(heavy)[0]} — payloads must stay cheap to pickle",
                        subject=path,
                        element=f"{node.name}.{field}:{statement.lineno}",
                        hint="ship guides + budget and recompile in the worker; "
                        "never serialise automata through the pool",
                    )
                )


def _lint_engine_bypass(tree: ast.AST, path: str, report: CheckReport) -> None:
    if not _is_engine_module(path):
        return

    def flag(name: str, lineno: int, what: str) -> None:
        report.add(
            Diagnostic(
                Severity.ERROR,
                "L004",
                f"engine module {what} {name!r} — engines must consume "
                "CompiledLibrary, not compile automata themselves",
                subject=path,
                element=f"{name}:{lineno}",
                hint="compile once upstream (core.compiler) so every engine "
                "executes the identical network",
            )
        )

    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name in COMPILER_ONLY_NAMES:
                    flag(alias.name, node.lineno, "imports")
        elif isinstance(node, ast.Call):
            name = _call_name(node.func)
            if name in COMPILER_ONLY_NAMES:
                flag(name, node.lineno, "calls")


def _lint_typed_defs(tree: ast.AST, path: str, report: CheckReport) -> None:
    if not _is_strict_module(path):
        return
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        missing: list[str] = []
        arguments = node.args
        named = arguments.posonlyargs + arguments.args + arguments.kwonlyargs
        for index, argument in enumerate(named):
            if index == 0 and argument.arg in ("self", "cls"):
                continue
            if argument.annotation is None:
                missing.append(argument.arg)
        for star in (arguments.vararg, arguments.kwarg):
            if star is not None and star.annotation is None:
                missing.append(f"*{star.arg}")
        if node.returns is None:
            missing.append("return")
        if missing:
            report.add(
                Diagnostic(
                    Severity.ERROR,
                    "L005",
                    f"function {node.name!r} in a strict-typed package is missing "
                    f"annotations: {', '.join(missing)}",
                    subject=path,
                    element=f"{node.name}:{node.lineno}",
                    hint="automata/, core/, grna/, platforms/ and check/ are "
                    "mypy-strict; annotate every parameter and the return",
                )
            )


def _lint_oracle_constructions(tree: ast.AST, path: str, report: CheckReport) -> None:
    if ORACLE_SANCTIONED_PARTS.intersection(_parts(path)):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node.func)
        if name in ORACLE_CONSTRUCTORS:
            report.add(
                Diagnostic(
                    Severity.ERROR,
                    "L006",
                    f"{name!r} constructed outside tests/, benchmarks/ and "
                    "baselines/ — the naive oracle and concrete engines must "
                    "not reach library hot paths",
                    subject=path,
                    element=f"{name}:{node.lineno}",
                    hint="go through engines.base.get_engine (engines) or keep "
                    "the oracle inside the differential/benchmark harnesses",
                )
            )


_RULES = (
    _lint_mutable_defaults,
    _lint_unseeded_random,
    _lint_worker_payloads,
    _lint_engine_bypass,
    _lint_typed_defs,
    _lint_oracle_constructions,
)


def lint_source(source: str, path: str) -> CheckReport:
    """Lint one module's *source*, classified by its *path* string."""
    report = CheckReport()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        report.add(
            Diagnostic(
                Severity.ERROR,
                "L000",
                f"syntax error: {error.msg}",
                subject=path,
                element=f"line {error.lineno}",
            )
        )
        return report
    for rule in _RULES:
        rule(tree, path, report)
    return report


def iter_python_files(paths: Iterable[Union[str, Path]]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


def lint_paths(paths: Iterable[Union[str, Path]]) -> CheckReport:
    """Lint every python file under *paths* (files or directories)."""
    report = CheckReport()
    for path in iter_python_files(paths):
        report.extend(lint_source(path.read_text(encoding="utf-8"), str(path)))
    return report
