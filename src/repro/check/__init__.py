"""Static analysis: automata verification, capacity pre-flight, lint.

Three passes, all emitting :class:`~repro.check.report.Diagnostic`
records through a :class:`~repro.check.report.CheckReport`:

* :mod:`repro.check.automata` — well-formedness of every automaton form
  plus device capacity pre-flight (the AP-SDK/HyperScan-style
  compile-time validation layer);
* :mod:`repro.check.lint` — AST rules for this repository's own
  invariants (picklable worker payloads, seeded randomness, engines
  consuming ``CompiledLibrary``, strict-package annotations);
* :mod:`repro.check.prove` — the symbolic equivalence prover: exact
  language equality between every compiled automaton and its
  budget-semantics reference DFA, with shortest-counterexample
  extraction on refutation (the ``EQV`` rule family);
* the ``repro-offtarget check`` CLI subcommand wires all of them over
  guide tables, ANML files and source trees.
"""

from .automata import (
    capacity_diagnostics,
    check_compiled_library,
    check_element_network,
    check_homogeneous,
    check_nfa,
    check_strided,
    kernel_plane_diagnostics,
    require_capacity,
)
from .design import check_design_request
from .lint import lint_paths, lint_source
from .prove import (
    PROVE_OBS,
    EquivalenceProof,
    equivalence_diagnostics,
    prove_dfa,
    prove_guide,
    require_equivalence,
)
from .service import check_guide_cache, check_router_config, check_server
from .report import CheckReport, Diagnostic, Severity

__all__ = [
    "CheckReport",
    "Diagnostic",
    "EquivalenceProof",
    "PROVE_OBS",
    "Severity",
    "capacity_diagnostics",
    "check_compiled_library",
    "check_element_network",
    "check_homogeneous",
    "check_nfa",
    "check_strided",
    "equivalence_diagnostics",
    "kernel_plane_diagnostics",
    "prove_dfa",
    "prove_guide",
    "require_capacity",
    "require_equivalence",
    "check_design_request",
    "check_guide_cache",
    "check_router_config",
    "check_server",
    "lint_paths",
    "lint_source",
]
