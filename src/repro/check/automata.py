"""Static well-formedness verification of compiled automata.

Every automaton form the pipeline produces — edge-labelled NFAs,
homogeneous (STE) networks, full ANML element networks with counters
and gates, and 2-stride pair automata — is checked *before* anything
executes it, the way the AP SDK's placement tools and HyperScan's
pattern compiler validate their inputs. Each rule models a concrete
platform failure:

======== ======== ======================================================
rule     severity platform constraint it models
======== ======== ======================================================
AUT001   E/W      unreachable state: a report STE no enable path ever
                  drives silently never fires (missed off-targets);
                  unreachable non-report states waste fabric capacity.
AUT002   W        dead state: reachable but no path to any report —
                  occupies STEs/LUTs without ever contributing a match.
AUT003   E        a start STE that cannot reach any report state scans
                  the whole genome for nothing.
AUT004   E        empty character class: the STE can never match, so
                  every path through it is severed at run time.
AUT005   E        no start states: the network never activates.
AUT006   E        no report states: the search can never produce a hit.
CNT001   E        counter with no count inputs holds 0 forever; its
                  budget gate output is a constant.
CNT002   W        counter target exceeds its count-input count: in a
                  window design each mismatch STE pulses at most once
                  per window, so the counter can never saturate and the
                  over-budget suppression is inert.
CNT003   E        non-positive counter target (rejected by constructors,
                  caught here for externally-loaded networks).
GAT001   E        malformed gate arity: NOT needs exactly one input,
                  AND/OR at least one — anything else is a wiring bug.
NET001   E        report element not driven (transitively) by any start
                  STE — the element-network form of AUT001.
STR001   E        strided state reachable at two different pair depths:
                  its report geometry is ambiguous, so genomic spans
                  cannot be reconstructed from pair indices.
STR002   E        report geometry mismatch: the state's pair depth
                  implies a symbol span that contradicts the report's
                  declared ``site_length``/``pad_suffix``.
STR003   E        nonsensical report metadata (``pad_suffix`` outside
                  {0, 1}, non-positive ``site_length``).
CAP001   E        one guide's automaton exceeds the device: a guide is
                  an indivisible placement unit, so no number of passes
                  makes it fit.
CAP002   W        the library needs multiple configuration passes —
                  legal, but each pass re-streams the genome and pays
                  reconfiguration time.
CAP003   I        per-guide placement breakdown (STEs/LUTs needed vs
                  remaining in the current pass).
CAP004   I        device utilisation of the full library.
CAP005   I        bit-parallel kernel state-plane pricing: every
                  (rna, dna) diagonal band of a bulged budget costs a
                  full set of mismatch planes per strand pattern, so a
                  bulged panel's working set scales with
                  bands x (mismatches + 1) x 2 x guides.
CAP006   W        a single pattern's plane count exceeds the pricing
                  threshold: per-block kernel state no longer fits the
                  fast cache tier, so the budget shape — not the
                  genome — dominates scan cost.
======== ======== ======================================================

Reachability here is structural (wires), not symbolic: an STE whose
class is empty still "conducts" for reachability purposes but is
flagged by AUT004 on its own.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Sequence

from ..automata.elements import ElementNetwork, ElementView
from ..automata.homogeneous import HomogeneousAutomaton, StartMode
from ..automata.nfa import Nfa
from ..automata.striding import StridedAutomaton
from ..core.compiler import CompiledLibrary
from ..errors import CapacityError
from ..platforms.resources import fpga_luts_for
from ..platforms.spec import ApSpec, FpgaSpec
from .report import CheckReport, Diagnostic, Severity


def _reachable(starts: Iterable[int], edges: Sequence[Sequence[int]]) -> set[int]:
    """States reachable from *starts* over the forward edge lists."""
    seen = set(starts)
    queue = deque(seen)
    while queue:
        state = queue.popleft()
        for target in edges[state]:
            if target not in seen:
                seen.add(target)
                queue.append(target)
    return seen


def _reverse(num_states: int, edges: Sequence[Sequence[int]]) -> list[list[int]]:
    reverse: list[list[int]] = [[] for _ in range(num_states)]
    for source in range(num_states):
        for target in edges[source]:
            reverse[target].append(source)
    return reverse


def _check_graph(
    report: CheckReport,
    *,
    subject: str,
    num_states: int,
    starts: list[int],
    reporters: list[int],
    edges: Sequence[Sequence[int]],
    element_name: Callable[[int], str],
    kind: str,
) -> set[int]:
    """The shared start/report/reachability rules; returns the reachable set."""
    if not starts:
        report.add(
            Diagnostic(
                Severity.ERROR,
                "AUT005",
                f"{kind} has no start states — it can never activate",
                subject=subject,
                hint="mark at least one start state (all-input for unanchored search)",
            )
        )
    if not reporters:
        report.add(
            Diagnostic(
                Severity.ERROR,
                "AUT006",
                f"{kind} has no report states — it can never produce a hit",
                subject=subject,
                hint="attach a report/accept label to the final states",
            )
        )
    reachable = _reachable(starts, edges)
    reporter_set = set(reporters)
    for state in range(num_states):
        if state in reachable:
            continue
        if state in reporter_set:
            report.add(
                Diagnostic(
                    Severity.ERROR,
                    "AUT001",
                    "report state is unreachable from every start — its reports can never fire",
                    subject=subject,
                    element=element_name(state),
                    hint="wire an enable path from a start state, or mark it a start",
                )
            )
        else:
            report.add(
                Diagnostic(
                    Severity.WARNING,
                    "AUT001",
                    "state is unreachable from every start",
                    subject=subject,
                    element=element_name(state),
                    hint="remove it or wire it in; unreachable states still occupy capacity",
                )
            )
    co_reachable = _reachable(reporters, _reverse(num_states, edges))
    for state in sorted(reachable):
        if state in co_reachable:
            continue
        if state in set(starts):
            report.add(
                Diagnostic(
                    Severity.ERROR,
                    "AUT003",
                    "start state cannot reach any report state",
                    subject=subject,
                    element=element_name(state),
                    hint="a start that reports nothing scans the input for nothing",
                )
            )
        else:
            report.add(
                Diagnostic(
                    Severity.WARNING,
                    "AUT002",
                    "dead state: no path to any report state",
                    subject=subject,
                    element=element_name(state),
                    hint="dead states occupy STEs/LUTs without contributing matches",
                )
            )
    return reachable


# -- homogeneous (STE) automata ------------------------------------------


def check_homogeneous(
    automaton: HomogeneousAutomaton, *, subject: str = "automaton"
) -> CheckReport:
    """Verify a homogeneous automaton (the form spatial platforms load)."""
    report = CheckReport()
    stes = list(automaton.stes())
    for ste in stes:
        if not ste.char_class:
            report.add(
                Diagnostic(
                    Severity.ERROR,
                    "AUT004",
                    f"STE {ste.name!r} has an empty character class and can never match",
                    subject=subject,
                    element=f"ste{ste.ste_id}",
                    hint="give the STE a non-empty symbol set or delete it",
                )
            )
    edges = [automaton.successors(ste.ste_id) for ste in stes]
    _check_graph(
        report,
        subject=subject,
        num_states=len(stes),
        starts=[ste.ste_id for ste in stes if ste.start is not StartMode.NONE],
        reporters=[ste.ste_id for ste in stes if ste.reports],
        edges=edges,
        element_name=lambda state: f"ste{state}",
        kind="automaton",
    )
    return report


# -- edge-labelled NFAs --------------------------------------------------


def check_nfa(nfa: Nfa, *, subject: str = "nfa") -> CheckReport:
    """Verify an edge-labelled NFA (the compilers' intermediate form)."""
    report = CheckReport()
    edges: list[list[int]] = []
    for state in range(nfa.num_states):
        out = [target for _, target in nfa.transitions_from(state)]
        out.extend(nfa.epsilon_from(state))
        edges.append(out)
        for char_class, target in nfa.transitions_from(state):
            if not char_class:
                report.add(
                    Diagnostic(
                        Severity.ERROR,
                        "AUT004",
                        f"edge {nfa.name_of(state)!r} -> {nfa.name_of(target)!r} "
                        "has an empty character class",
                        subject=subject,
                        element=nfa.name_of(state),
                        hint="an empty-class edge can never be taken",
                    )
                )
    _check_graph(
        report,
        subject=subject,
        num_states=nfa.num_states,
        starts=sorted(nfa.start_states()),
        reporters=[
            state for state in range(nfa.num_states) if nfa.accept_labels(state)
        ],
        edges=edges,
        element_name=nfa.name_of,
        kind="NFA",
    )
    return report


# -- full ANML element networks ------------------------------------------


def check_element_network(
    network: ElementNetwork, *, subject: str = "network"
) -> CheckReport:
    """Verify a mixed STE/gate/counter network (the counter design's form)."""
    report = CheckReport()
    views: list[ElementView] = list(network.elements())
    n = len(views)
    edges: list[list[int]] = [[] for _ in range(n)]
    for view in views:
        for source in (*view.inputs, *view.count_inputs, *view.reset_inputs):
            edges[source].append(view.element_id)
    starts = [
        view.element_id
        for view in views
        if view.kind == "ste" and view.start is not StartMode.NONE
    ]
    reporters = [view.element_id for view in views if view.reports]
    if not starts:
        report.add(
            Diagnostic(
                Severity.ERROR,
                "AUT005",
                "element network has no start STEs — it can never activate",
                subject=subject,
                hint="mark at least one STE all-input or start-of-data",
            )
        )
    if not reporters:
        report.add(
            Diagnostic(
                Severity.ERROR,
                "AUT006",
                "element network has no reporting elements",
                subject=subject,
                hint="mark_report() the accept gate or final STE",
            )
        )
    reachable = _reachable(starts, edges)
    for view in views:
        name = f"{view.kind}{view.element_id}"
        if view.kind == "ste" and view.char_class is not None and not view.char_class:
            report.add(
                Diagnostic(
                    Severity.ERROR,
                    "AUT004",
                    "STE has an empty character class and can never match",
                    subject=subject,
                    element=name,
                    hint="give the STE a non-empty symbol set or delete it",
                )
            )
        if view.kind == "gate":
            arity_bad = (
                len(view.inputs) != 1
                if view.gate_kind is not None and view.gate_kind.value == "not"
                else not view.inputs
            )
            if arity_bad:
                report.add(
                    Diagnostic(
                        Severity.ERROR,
                        "GAT001",
                        f"{view.gate_kind.value if view.gate_kind else 'gate'} gate has "
                        f"{len(view.inputs)} input(s)",
                        subject=subject,
                        element=name,
                        hint="NOT gates take exactly one input; AND/OR at least one",
                    )
                )
        if view.kind == "counter":
            target = view.counter_target or 0
            if target <= 0:
                report.add(
                    Diagnostic(
                        Severity.ERROR,
                        "CNT003",
                        f"counter target {target} is not positive",
                        subject=subject,
                        element=name,
                        hint="a saturating counter needs a positive target",
                    )
                )
            if not view.count_inputs:
                report.add(
                    Diagnostic(
                        Severity.ERROR,
                        "CNT001",
                        "counter has no count inputs — it holds zero forever",
                        subject=subject,
                        element=name,
                        hint="connect_count() the mismatch STEs to it",
                    )
                )
            elif target > len(view.count_inputs):
                report.add(
                    Diagnostic(
                        Severity.WARNING,
                        "CNT002",
                        f"counter target {target} exceeds its {len(view.count_inputs)} "
                        "count input(s); in a window design it can never saturate",
                        subject=subject,
                        element=name,
                        hint="the over-budget gate is inert — lower the target or the budget",
                    )
                )
        if view.reports and view.element_id not in reachable:
            report.add(
                Diagnostic(
                    Severity.ERROR,
                    "NET001",
                    "reporting element is not driven by any start STE",
                    subject=subject,
                    element=name,
                    hint="wire an enable/count path from a start STE",
                )
            )
        elif view.element_id not in reachable:
            report.add(
                Diagnostic(
                    Severity.WARNING,
                    "AUT001",
                    "element is not driven by any start STE",
                    subject=subject,
                    element=name,
                    hint="remove it or wire it in",
                )
            )
    return report


# -- 2-stride pair automata ----------------------------------------------


def check_strided(
    automaton: StridedAutomaton, *, subject: str = "strided"
) -> CheckReport:
    """Verify a 2-symbol strided automaton, including report geometry."""
    report = CheckReport()
    n = automaton.num_states
    edges = [automaton.successors(state) for state in range(n)]
    starts = [state for state in range(n) if automaton.is_start(state)]
    reporters = [state for state in range(n) if automaton.reports_of(state)]
    reachable = _check_graph(
        report,
        subject=subject,
        num_states=n,
        starts=starts,
        reporters=reporters,
        edges=edges,
        element_name=lambda state: f"state{state}",
        kind="strided automaton",
    )
    for state in range(n):
        if not automaton.pair_class_of(state):
            report.add(
                Diagnostic(
                    Severity.ERROR,
                    "AUT004",
                    "strided state matches no symbol pair",
                    subject=subject,
                    element=f"state{state}",
                    hint="give the state a non-empty pair class or delete it",
                )
            )
    # Pair-depth analysis: every reachable state must sit at a unique
    # number of consumed pairs, or report spans are ambiguous.
    depth: dict[int, int] = {}
    inconsistent: set[int] = set()
    queue: deque[int] = deque()
    for state in starts:
        depth[state] = 1
        queue.append(state)
    while queue:
        state = queue.popleft()
        for target in edges[state]:
            proposed = depth[state] + 1
            if target not in depth:
                depth[target] = proposed
                queue.append(target)
            elif depth[target] != proposed and target not in inconsistent:
                inconsistent.add(target)
                report.add(
                    Diagnostic(
                        Severity.ERROR,
                        "STR001",
                        f"state is reachable at pair depths {depth[target]} and "
                        f"{proposed} — its report geometry is ambiguous",
                        subject=subject,
                        element=f"state{target}",
                        hint="strided grids must be layered: one depth per state",
                    )
                )
    for state in reporters:
        if state not in reachable or state in inconsistent:
            continue
        for strided_report in automaton.reports_of(state):
            if strided_report.pad_suffix not in (0, 1) or strided_report.site_length < 1:
                report.add(
                    Diagnostic(
                        Severity.ERROR,
                        "STR003",
                        f"report declares pad_suffix={strided_report.pad_suffix}, "
                        f"site_length={strided_report.site_length}",
                        subject=subject,
                        element=f"state{state}",
                        hint="pad_suffix must be 0 or 1 and site_length positive",
                    )
                )
                continue
            consumed = 2 * depth[state] - strided_report.pad_suffix
            if consumed not in (strided_report.site_length, strided_report.site_length + 1):
                report.add(
                    Diagnostic(
                        Severity.ERROR,
                        "STR002",
                        f"state at pair depth {depth[state]} spans {consumed} symbols "
                        f"but the report declares site_length {strided_report.site_length}",
                        subject=subject,
                        element=f"state{state}",
                        hint="phase-0 spans equal site_length; phase-1 spans site_length+1",
                    )
                )
    return report


# -- capacity pre-flight -------------------------------------------------


def capacity_diagnostics(
    compiled: CompiledLibrary, spec: ApSpec | FpgaSpec
) -> CheckReport:
    """Pre-flight placement of *compiled* onto *spec*, with per-guide breakdown.

    This is the single capacity rule both spatial engines route their
    ``validate_capacity`` through. Guides are packed greedily, in
    order, into configuration passes; a guide is an indivisible
    placement unit, so one that exceeds the whole device is a CAP001
    error no multi-pass schedule can fix.
    """
    report = CheckReport()
    if isinstance(spec, ApSpec):
        platform = spec.name
        unit = "STEs"
        capacity = spec.capacity_stes
        cost_of: Callable[[int], int] = lambda stes: stes
    else:
        platform = spec.name
        unit = "LUTs"
        capacity = spec.luts
        cost_of = lambda stes: fpga_luts_for(stes, spec)
    passes = 1
    remaining = capacity
    total = 0
    for compiled_guide in compiled:
        needed = cost_of(compiled_guide.num_stes)
        total += needed
        name = compiled_guide.guide.name
        if needed > capacity:
            report.add(
                Diagnostic(
                    Severity.ERROR,
                    "CAP001",
                    f"guide {name!r} needs {needed} {unit}; device fits {capacity}",
                    subject=platform,
                    element=name,
                    hint="a guide is an indivisible placement unit — lower the "
                    "mismatch/bulge budget to shrink its automaton",
                )
            )
            continue
        if needed > remaining:
            passes += 1
            remaining = capacity
        remaining -= needed
        report.add(
            Diagnostic(
                Severity.INFO,
                "CAP003",
                f"guide {name!r}: {needed} {unit} (pass {passes}, {remaining} remaining)",
                subject=platform,
                element=name,
            )
        )
    if passes > 1:
        report.add(
            Diagnostic(
                Severity.WARNING,
                "CAP002",
                f"library needs {passes} configuration passes on {platform}",
                subject=platform,
                hint="each pass re-streams the genome and pays reconfiguration time",
            )
        )
    report.add(
        Diagnostic(
            Severity.INFO,
            "CAP004",
            f"library totals {total} {unit} against a per-pass capacity of "
            f"{capacity} ({total / capacity:.1%} of one pass)",
            subject=platform,
        )
    )
    return report


def require_capacity(compiled: CompiledLibrary, spec: ApSpec | FpgaSpec) -> None:
    """Raise :class:`CapacityError` when any guide cannot fit *spec* at all.

    The exception message carries the full per-guide breakdown so the
    operator sees *which* guide overflows and by how much, not just a
    totals line.
    """
    report = capacity_diagnostics(compiled, spec)
    if report.ok:
        return
    lines = [diagnostic.render() for diagnostic in report.errors]
    lines.extend(
        diagnostic.render()
        for diagnostic in report.sorted()
        if diagnostic.severity is not Severity.ERROR and diagnostic.rule == "CAP003"
    )
    raise CapacityError("\n".join(lines))


#: Planes per strand pattern above which CAP006 warns: 64 uint64 rows
#: per genome word is the point where one pattern's banded state stops
#: fitting alongside the code planes in a typical L2 slice and the
#: kernel's per-block cost becomes budget-shaped instead of flat.
KERNEL_PLANE_WARN_THRESHOLD = 64


def kernel_plane_diagnostics(compiled: CompiledLibrary) -> CheckReport:
    """Price the bit-parallel kernel's state planes for *compiled*.

    The banded kernel keeps one uint64 bit-plane per
    ``(rna, dna, mismatch)`` state row and strand pattern: a bulged
    budget of ``r`` RNA and ``d`` DNA bulges spans ``(r+1) x (d+1)``
    diagonal bands, each carrying its own ``mismatches + 1`` planes —
    so every extra band a budget asks for is a whole extra plane set,
    per guide, per strand. Mismatch-only budgets price as the
    thermometer set (``mismatches`` counting planes plus the exceed
    and exact boards). CAP005 reports the breakdown; CAP006 warns when
    one pattern's plane count crosses
    :data:`KERNEL_PLANE_WARN_THRESHOLD`.
    """
    report = CheckReport()
    budget = compiled.budget
    bands = (budget.rna_bulges + 1) * (budget.dna_bulges + 1)
    if budget.has_bulges:
        planes_per_pattern = bands * (budget.mismatches + 1)
        shape = (
            f"{bands} diagonal band(s) "
            f"[rna={budget.rna_bulges}, dna={budget.dna_bulges}] "
            f"x {budget.mismatches + 1} mismatch plane(s)"
        )
    else:
        planes_per_pattern = budget.mismatches + 2
        shape = (
            f"{budget.mismatches} thermometer plane(s) + exceed + exact boards"
        )
    patterns = 2 * len(compiled)
    report.add(
        Diagnostic(
            Severity.INFO,
            "CAP005",
            f"bit-parallel kernel: {planes_per_pattern} state plane(s) per "
            f"strand pattern ({shape}); {patterns} pattern(s) -> "
            f"{planes_per_pattern * patterns} plane-rows per genome word",
            subject="kernel",
        )
    )
    if planes_per_pattern > KERNEL_PLANE_WARN_THRESHOLD:
        report.add(
            Diagnostic(
                Severity.WARNING,
                "CAP006",
                f"budget shape prices {planes_per_pattern} state planes per "
                f"pattern (threshold {KERNEL_PLANE_WARN_THRESHOLD}); the "
                "banded working set will dominate kernel scan cost",
                subject="kernel",
                hint="lower the bulge or mismatch budget, or route this "
                "panel to kernel='matcher' whose per-candidate DP does not "
                "materialise every band",
            )
        )
    return report


# -- whole-library entry point -------------------------------------------


def check_compiled_library(
    compiled: CompiledLibrary,
    *,
    specs: Iterable[ApSpec | FpgaSpec] = (),
) -> CheckReport:
    """Verify every guide's machine-form automaton, plus capacity on *specs*."""
    report = CheckReport()
    for compiled_guide in compiled:
        report.extend(
            check_homogeneous(
                compiled_guide.homogeneous,
                subject=f"guide:{compiled_guide.guide.name}",
            )
        )
        report.extend(
            check_nfa(
                compiled_guide.combined,
                subject=f"guide:{compiled_guide.guide.name}",
            )
        )
    for spec in specs:
        report.extend(capacity_diagnostics(compiled, spec))
    report.extend(kernel_plane_diagnostics(compiled))
    report.add(
        Diagnostic(
            Severity.INFO,
            "CAP004",
            f"library: {len(compiled)} guide(s), {compiled.num_stes} STEs total",
            subject="library",
        )
    )
    return report
