"""Command-line interface.

Mirrors the original tools' usage: a reference FASTA, a guide table,
budgets, and an engine choice; emits hits as BED-like rows plus a
summary with the platform's modeled timing. A second subcommand runs
the cross-platform evaluation harness on a synthetic workload.

Examples::

    repro-offtarget search ref.fa guides.txt --mismatches 3 --engine fpga
    repro-offtarget search ref.fa guides.txt --workers 4 --stats-json run.json
    repro-offtarget evaluate --guides 10 --mismatches 3
    repro-offtarget synthesize --length 2000000 --out ref.fa
    repro-offtarget check --guides guides.txt --platform all
    repro-offtarget check --anml exported.anml --lint src --json
    repro-offtarget serve ref.fa --port 7911
    repro-offtarget query guides.txt --port 7911 --stats-json -
    repro-offtarget design region.fa --genome ref.fa --nuclease NNGRRT

Exit codes: 0 success (for ``check``: no errors found), 1 the check
found errors, 2 usage or input errors (bad flags, unreadable files,
unreachable service), 3 the service shed the request (queue at
capacity, or the request's deadline expired before dispatch).
"""

from __future__ import annotations

import argparse
import json
import sys

from .analysis.speedup import speedup_matrix
from .analysis.tables import render_table
from .analysis.workloads import StandardWorkload, evaluate_platforms
from .core.bitparallel import DEFAULT_KERNEL, KERNEL_NAMES
from .core.search import OffTargetSearch, SearchBudget
from .errors import (
    DeadlineExceededError,
    ReproError,
    ServiceError,
    ServiceOverloadedError,
)
from .genome.fasta import read_fasta, write_fasta
from .genome.synthetic import random_genome
from .grna.library import parse_guide_table


#: Exit code for requests the service refused or expired (distinct from
#: success (0), check failures (1), and usage/input errors (2)).
EXIT_OVERLOADED = 3


def _positive_int(value: str) -> int:
    """Argparse type for flags that must be a positive integer."""
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {value!r}")
    if parsed < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {parsed}"
        )
    return parsed


def _nonnegative_int(value: str) -> int:
    """Argparse type for flags that must be a non-negative integer."""
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {value!r}")
    if parsed < 0:
        raise argparse.ArgumentTypeError(
            f"must be a non-negative integer, got {parsed}"
        )
    return parsed


def _add_budget_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--mismatches", type=_nonnegative_int, default=3, help="mismatch budget"
    )
    parser.add_argument(
        "--rna-bulges", type=_nonnegative_int, default=0, help="RNA bulge budget"
    )
    parser.add_argument(
        "--dna-bulges", type=_nonnegative_int, default=0, help="DNA bulge budget"
    )


def _budget_from(args: argparse.Namespace) -> SearchBudget:
    return SearchBudget(
        mismatches=args.mismatches,
        rna_bulges=args.rna_bulges,
        dna_bulges=args.dna_bulges,
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the three-subcommand argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-offtarget",
        description="Automata-based gRNA off-target search (HPCA'18 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    search = commands.add_parser("search", help="search a reference for off-targets")
    search.add_argument("reference", help="reference FASTA path")
    search.add_argument("guides", help="guide table path (name  protospacer)")
    search.add_argument("--pam", default="NGG", help="PAM name or IUPAC pattern")
    search.add_argument(
        "--engine",
        default="hyperscan",
        help="engine or baseline: cpu-nfa, hyperscan, infant2, fpga, ap, cas-offinder, casot",
    )
    search.add_argument("--out", help="write hits to this file instead of stdout")
    search.add_argument(
        "--format", choices=("bed", "tsv"), default="bed", help="output format"
    )
    search.add_argument(
        "--chunked",
        action="store_true",
        help="stream each sequence in bounded-memory chunks",
    )
    search.add_argument(
        "--chunk-length",
        type=_positive_int,
        default=1 << 20,
        help="chunk size for --chunked / --workers",
    )
    search.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help=(
            "shard the search across N processes (1 = sharded but serial, "
            "in-process); results are identical to the serial path"
        ),
    )
    search.add_argument(
        "--kernel",
        choices=KERNEL_NAMES,
        default=DEFAULT_KERNEL,
        help=(
            "functional matching kernel; every kernel is bit-identical, "
            "so this only changes throughput"
        ),
    )
    search.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        help="per-shard attempt deadline in seconds (with --workers)",
    )
    search.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="extra attempts per failed shard (with --workers)",
    )
    search.add_argument(
        "--stats-json",
        metavar="PATH",
        help=(
            "write run statistics (per-shard timings, retry counts, "
            "report-rate metrics) as JSON to PATH ('-' for stdout)"
        ),
    )
    _add_budget_arguments(search)

    evaluate = commands.add_parser(
        "evaluate", help="cross-platform modeled-time comparison on a synthetic workload"
    )
    evaluate.add_argument("--guides", type=int, default=10, help="guide count")
    evaluate.add_argument(
        "--functional-length", type=int, default=2_000_000, help="functional genome bp"
    )
    evaluate.add_argument(
        "--modeled-length", type=int, default=3_100_000_000, help="modeled genome bp"
    )
    evaluate.add_argument("--seed", type=int, default=20180224)
    _add_budget_arguments(evaluate)

    synthesize = commands.add_parser("synthesize", help="generate a synthetic reference")
    synthesize.add_argument("--length", type=_positive_int, default=1_000_000)
    synthesize.add_argument("--seed", type=int, default=0)
    synthesize.add_argument("--gc", type=float, default=0.41)
    synthesize.add_argument("--name", default="chrSyn1")
    synthesize.add_argument("--out", required=True, help="output FASTA path")

    serve = commands.add_parser(
        "serve", help="run the batch-serving layer over a local socket"
    )
    serve.add_argument("reference", help="reference FASTA, loaded once at startup")
    serve.add_argument("--session", default="default", help="session id clients name")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port",
        type=_nonnegative_int,
        default=0,
        help="bind port (0 = pick a free port; the chosen one is announced)",
    )
    serve.add_argument(
        "--batch-window",
        type=float,
        default=0.005,
        metavar="SECONDS",
        help="coalescing window: requests arriving within it share one search",
    )
    serve.add_argument(
        "--max-queue",
        type=_positive_int,
        default=128,
        help="admission-control bound; requests beyond it are shed",
    )
    serve.add_argument(
        "--cache-capacity",
        type=_positive_int,
        default=256,
        help="compiled-guide LRU cache entries",
    )
    serve.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="process-pool workers per dispatched search",
    )
    serve.add_argument(
        "--chunk-length", type=_positive_int, default=1 << 20, help="genome chunk size"
    )
    serve.add_argument(
        "--kernel",
        choices=KERNEL_NAMES,
        default=DEFAULT_KERNEL,
        help="functional matching kernel each dispatched search runs",
    )
    serve.add_argument(
        "--max-guides-per-pass",
        type=_positive_int,
        default=None,
        help="split coalesced batches above this many distinct guides into passes",
    )
    serve.add_argument(
        "--platform",
        choices=("ap", "fpga", "none"),
        default="none",
        help="device whose capacity bounds each pass (via the CAP pre-flight)",
    )
    serve.add_argument(
        "--max-connections",
        type=_positive_int,
        default=64,
        help="concurrent-connection cap; connections beyond it are refused "
        "with a typed 'overloaded' line",
    )
    serve.add_argument(
        "--drain-deadline",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="on SIGTERM/SIGINT (or the 'drain' op): stop accepting, give "
        "in-flight requests this long to finish, then exit",
    )

    route = commands.add_parser(
        "route",
        help="run the cluster router over N running serve backends",
    )
    route.add_argument(
        "--backends",
        nargs="+",
        required=True,
        metavar="HOST:PORT",
        help="backend serve endpoints; order fixes the stable backend "
        "names (b0, b1, ...) the hash ring and stats use",
    )
    route.add_argument("--host", default="127.0.0.1", help="bind address")
    route.add_argument(
        "--port",
        type=_nonnegative_int,
        default=0,
        help="bind port (0 = pick a free port; the chosen one is announced)",
    )
    route.add_argument(
        "--replicas",
        type=_positive_int,
        default=2,
        help="failover width: how many ring-preference backends may serve "
        "one key (primary + failover candidates)",
    )
    route.add_argument(
        "--virtual-nodes",
        type=_positive_int,
        default=64,
        help="hash-ring points per backend (higher = smoother balance)",
    )
    route.add_argument(
        "--probe-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="health-probe cadence per backend",
    )
    route.add_argument(
        "--probe-timeout",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="per-probe connection/read budget",
    )
    route.add_argument(
        "--failure-threshold",
        type=_positive_int,
        default=3,
        help="consecutive probe/traffic failures before a backend is "
        "quarantined",
    )
    route.add_argument(
        "--recovery-threshold",
        type=_positive_int,
        default=2,
        help="consecutive probe successes before a quarantined backend "
        "rejoins (the hysteresis that stops flapping nodes thrashing "
        "the ring)",
    )
    route.add_argument(
        "--drain-deadline",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="on SIGTERM/SIGINT (or the 'drain' op): stop accepting, give "
        "in-flight forwards this long to finish, then exit",
    )
    route.add_argument(
        "--max-inflight",
        type=_positive_int,
        default=64,
        help="router admission bound; requests beyond it are shed with a "
        "typed 'overloaded' line",
    )
    route.add_argument(
        "--stats-json",
        metavar="PATH",
        help="write router metrics (members, failovers, re-issues, warmup "
        "forwards) as JSON to PATH ('-' for stdout) on exit",
    )

    query = commands.add_parser("query", help="query a running serve instance")
    query.add_argument("guides", help="guide table path (name  protospacer)")
    query.add_argument("--pam", default="NGG", help="PAM name or IUPAC pattern")
    query.add_argument("--host", default="127.0.0.1", help="service address")
    query.add_argument("--port", type=_positive_int, required=True, help="service port")
    query.add_argument("--session", default="default", help="genome session to search")
    query.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="dispatch deadline; an expired request exits with code 3",
    )
    query.add_argument(
        "--retries",
        type=_positive_int,
        default=3,
        metavar="ATTEMPTS",
        help="total attempts for safe failure classes (transport faults, "
        "overload sheds); retried queries carry a request id the server "
        "deduplicates, so 1 disables retrying",
    )
    query.add_argument("--out", help="write hits to this file instead of stdout")
    query.add_argument(
        "--format", choices=("bed", "tsv"), default="bed", help="output format"
    )
    query.add_argument(
        "--stats-json",
        metavar="PATH",
        help=(
            "write request + service metrics (coalesced batches, cache hit "
            "rate, shed requests) as JSON to PATH ('-' for stdout)"
        ),
    )
    _add_budget_arguments(query)

    design = commands.add_parser(
        "design",
        help="design guides for a region: enumerate, coalesced vet, score, rank",
    )
    design.add_argument("region", help="target-region FASTA to design guides for")
    design.add_argument(
        "--genome",
        help="reference FASTA to vet off-targets against "
        "(default: the region itself — self-vetting a small construct)",
    )
    design.add_argument(
        "--pam",
        "--nuclease",
        dest="pam",
        default="NGG",
        help="PAM preset or IUPAC pattern (NGG, NAG, NRG, TTTV, NNGRRT, ...)",
    )
    design.add_argument(
        "--guide-length",
        type=_positive_int,
        default=20,
        help="protospacer length; short (<16 nt) tru-gRNA designs are allowed",
    )
    design.add_argument(
        "--weights",
        metavar="PATH",
        help="JSON score-weight table overriding the defaults "
        "(see repro.design.score.ScoreWeights)",
    )
    design.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="shard the coalesced genome pass across N processes",
    )
    design.add_argument(
        "--chunk-length", type=_positive_int, default=1 << 20, help="genome chunk size"
    )
    design.add_argument(
        "--kernel",
        choices=KERNEL_NAMES,
        default=DEFAULT_KERNEL,
        help="functional matching kernel the coalesced pass runs",
    )
    design.add_argument(
        "--platform",
        choices=("ap", "fpga", "all", "none"),
        default="none",
        help="device(s) the candidate panel is capacity pre-flighted "
        "against (the DSG003 rule)",
    )
    design.add_argument(
        "--capacity-stes",
        type=_positive_int,
        default=None,
        help="override the device STE capacity for the pre-flight",
    )
    design.add_argument(
        "--format", choices=("tsv", "json"), default="tsv", help="report format"
    )
    design.add_argument(
        "--out", help="write the ranked report to this file instead of stdout"
    )
    design.add_argument(
        "--stats-json",
        metavar="PATH",
        help=(
            "write run statistics (candidate counts, panel size, genome "
            "passes, pipeline spans) as JSON to PATH ('-' for stdout)"
        ),
    )
    _add_budget_arguments(design)

    check = commands.add_parser(
        "check",
        help="statically verify automata, device capacity, and project invariants",
    )
    check.add_argument("--guides", help="guide table to compile and verify")
    check.add_argument("--pam", default="NGG", help="PAM name or IUPAC pattern")
    check.add_argument(
        "--platform",
        choices=("ap", "fpga", "all", "none"),
        default="all",
        help="device(s) for the capacity pre-flight (with --guides)",
    )
    check.add_argument(
        "--capacity-stes",
        type=_positive_int,
        default=None,
        help="override the device STE capacity (exercise over-capacity findings)",
    )
    check.add_argument(
        "--anml",
        nargs="*",
        default=(),
        metavar="PATH",
        help="ANML files to load permissively and verify",
    )
    check.add_argument(
        "--lint",
        nargs="*",
        default=(),
        metavar="PATH",
        help="python files or directories to run the project-invariant linter on",
    )
    check.add_argument(
        "--prove",
        action="store_true",
        help=(
            "prove each compiled guide's automaton recognises exactly the "
            "within-budget off-target language (with --guides); on refutation "
            "the finding carries the shortest distinguishing input"
        ),
    )
    check.add_argument(
        "--prove-max-states",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "state-blowup guard for the prover's determinisation and "
            "reference construction (default: repro.check.prove default)"
        ),
    )
    check.add_argument(
        "--json", dest="as_json", action="store_true", help="emit diagnostics as JSON"
    )
    check.add_argument(
        "--verbose", action="store_true", help="also list INFO diagnostics in text mode"
    )
    check.add_argument(
        "--stats-json",
        metavar="PATH",
        help=(
            "write check statistics (prover states explored, proofs, "
            "counterexamples, minimisation passes) as JSON to PATH "
            "('-' for stdout)"
        ),
    )
    _add_budget_arguments(check)
    return parser


def _command_search(args: argparse.Namespace) -> int:
    from .analysis.report_io import write_bed, write_tsv
    from .core.parallel import ParallelSearch
    from .core.streaming import StreamingSearch

    records = read_fasta(args.reference)
    library = parse_guide_table(args.guides, pam=args.pam)
    budget = _budget_from(args)
    hits = []
    total_length = sum(len(record.sequence) for record in records)
    stats_payload = {
        "command": "search",
        "reference": args.reference,
        "engine": args.engine,
        "kernel": args.kernel,
        "workers": args.workers,
        "num_sequences": len(records),
        "genome_length": total_length,
        "num_guides": len(library),
        "budget": {
            "mismatches": budget.mismatches,
            "rna_bulges": budget.rna_bulges,
            "dna_bulges": budget.dna_bulges,
        },
    }
    if args.workers is not None:
        executor = ParallelSearch(
            library,
            budget,
            workers=args.workers,
            chunk_length=args.chunk_length,
            shard_timeout=args.shard_timeout,
            max_retries=args.max_retries,
            kernel=args.kernel,
        )
        hits, per_sequence = executor.search_many_with_stats(
            record.sequence for record in records
        )
        mode = "pooled" if args.workers > 1 else "serial"
        stats_payload["mode"] = f"sharded-{mode}"
        stats_payload["parallel"] = per_sequence
        retries = sum(s["fault_tolerance"]["retries"] for s in per_sequence)
        print(
            f"# sharded search ({args.workers} worker(s), {mode}) over "
            f"{len(records)} sequence(s), {len(hits)} hits, {retries} retries",
            file=sys.stderr,
        )
    elif args.chunked:
        streaming = StreamingSearch(
            library, budget, chunk_length=args.chunk_length, kernel=args.kernel
        )
        per_sequence = []
        for record in records:
            sequence_hits, sequence_stats = streaming.search_with_stats(
                record.sequence
            )
            hits.extend(sequence_hits)
            per_sequence.append({"sequence": record.sequence.name, **sequence_stats})
        stats_payload["mode"] = "streaming"
        stats_payload["streaming"] = per_sequence
        print(f"# streamed {len(records)} sequence(s), {len(hits)} hits", file=sys.stderr)
    else:
        search = OffTargetSearch(library, budget, kernel=args.kernel)
        stats_payload["mode"] = "engine"
        engine_runs = []
        modeled_total = 0.0
        measured_total = 0.0
        for record in records:
            report = search.run(record.sequence, engine=args.engine)
            hits.extend(report.hits)
            modeled_total += report.modeled_seconds
            measured_total += report.measured_seconds
            engine_runs.append(
                {
                    "sequence": record.sequence.name,
                    "modeled_seconds": report.modeled_seconds,
                    "modeled_kernel_seconds": report.modeled_kernel_seconds,
                    "measured_seconds": report.measured_seconds,
                    "hits": report.num_hits,
                    "stats": report.stats,
                }
            )
            print(f"# {report.summary()}", file=sys.stderr)
        stats_payload["modeled_seconds"] = modeled_total
        stats_payload["measured_seconds"] = measured_total
        stats_payload["engine_runs"] = engine_runs
    stats_payload["num_hits"] = len(hits)
    stats_payload["report_events_per_mbp"] = (
        1e6 * len(hits) / total_length if total_length else 0.0
    )
    writer = write_bed if args.format == "bed" else write_tsv
    if args.out:
        count = writer(hits, args.out)
        print(f"# wrote {count} hits to {args.out}", file=sys.stderr)
    else:
        writer(hits, sys.stdout)
    if args.stats_json:
        if args.stats_json == "-":
            json.dump(stats_payload, sys.stdout, indent=2, default=repr)
            sys.stdout.write("\n")
        else:
            with open(args.stats_json, "w", encoding="ascii") as handle:
                json.dump(stats_payload, handle, indent=2, default=repr)
            print(f"# wrote run stats to {args.stats_json}", file=sys.stderr)
    print(f"# total hits: {len(hits)}", file=sys.stderr)
    return 0


def _command_evaluate(args: argparse.Namespace) -> int:
    workload = StandardWorkload(
        name="cli",
        modeled_genome_length=args.modeled_length,
        functional_genome_length=args.functional_length,
        num_guides=args.guides,
        budget=_budget_from(args),
        seed=args.seed,
    )
    tools = ("hyperscan", "infant2", "fpga", "ap", "casot") + (
        () if workload.budget.has_bulges else ("cas-offinder",)
    )
    results = evaluate_platforms(workload, tools=tools)
    rows = [
        [
            record.tool,
            f"{record.modeled_total:.1f}",
            f"{record.modeled_kernel:.1f}",
            record.num_hits,
        ]
        for record in results
    ]
    print(render_table(["tool", "modeled total s", "modeled kernel s", "hits"], rows))
    baselines = [tool for tool in ("cas-offinder", "casot") if tool in tools]
    matrix = speedup_matrix(results, baselines)
    rows = [
        [tool, *(f"{matrix[tool][baseline]:.1f}x" for baseline in baselines)]
        for tool in matrix
    ]
    print()
    print(render_table(["tool", *[f"vs {b}" for b in baselines]], rows, title="Speedups"))
    return 0


def _command_synthesize(args: argparse.Namespace) -> int:
    genome = random_genome(args.length, seed=args.seed, gc_content=args.gc, name=args.name)
    write_fasta([genome], args.out)
    print(f"wrote {args.length:,} bp to {args.out}", file=sys.stderr)
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    import signal

    from .platforms.spec import ApSpec, FpgaSpec
    from .service import OffTargetServer, OffTargetService

    capacity_spec = None
    if args.platform == "ap":
        capacity_spec = ApSpec()
    elif args.platform == "fpga":
        capacity_spec = FpgaSpec()
    service = OffTargetService(
        cache_capacity=args.cache_capacity,
        batch_window_seconds=args.batch_window,
        max_queue_depth=args.max_queue,
        workers=args.workers,
        chunk_length=args.chunk_length,
        capacity_spec=capacity_spec,
        max_guides_per_pass=args.max_guides_per_pass,
        kernel=args.kernel,
    )
    session = service.add_genome(args.session, args.reference)
    server = OffTargetServer(
        service,
        host=args.host,
        port=args.port,
        max_connections=args.max_connections,
        drain_deadline_seconds=args.drain_deadline,
    )
    host, port = server.start()
    # The announce line is the machine-readable contract the e2e tests
    # (and shell scripts) parse for the OS-chosen port; keep its shape.
    print(
        f"# serving session {session.session_id!r} "
        f"({session.total_length:,} bp, {len(session.sequences)} sequence(s)) "
        f"on {host}:{port}",
        flush=True,
    )

    # SIGTERM/SIGINT begin a graceful drain: stop accepting, finish the
    # requests already admitted (under --drain-deadline), then exit 0.
    # The handler only flags the drain; the blocking work happens in the
    # drain thread, and serve_forever returns once it completes.
    def _begin_drain(signum: int, frame: object) -> None:
        print(
            f"# received signal {signum}; draining admitted requests",
            file=sys.stderr,
            flush=True,
        )
        server.request_drain()

    previous = {
        signal.SIGTERM: signal.signal(signal.SIGTERM, _begin_drain),
        signal.SIGINT: signal.signal(signal.SIGINT, _begin_drain),
    }
    try:
        server.serve_forever()
    finally:
        server.stop()
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    return 0


def _command_route(args: argparse.Namespace) -> int:
    import signal

    from .check import check_router_config
    from .cluster import ClusterRouter, RouterConfig, specs_from_endpoints

    config = RouterConfig(
        backends=specs_from_endpoints(args.backends),
        replicas=args.replicas,
        virtual_nodes=args.virtual_nodes,
        probe_interval_seconds=args.probe_interval,
        probe_timeout_seconds=args.probe_timeout,
        failure_threshold=args.failure_threshold,
        recovery_threshold=args.recovery_threshold,
        drain_deadline_seconds=args.drain_deadline,
        max_inflight=args.max_inflight,
    )
    # Surface the SVC008-SVC011 report before binding anything: a
    # misconfigured router should fail loudly at launch, not route
    # wrongly under load.
    report = check_router_config(config)
    if report.errors or report.warnings:
        print(report.to_text(), file=sys.stderr)
    if report.errors:
        return 2
    router = ClusterRouter(config, host=args.host, port=args.port)
    host, port = router.start(probe=True)
    endpoints = ", ".join(
        f"{spec.name}={spec.endpoint}" for spec in config.backends
    )
    # Same announce-line contract as `serve`: the e2e tests parse it.
    print(
        f"# routing {len(config.backends)} backend(s) ({endpoints}) "
        f"on {host}:{port}",
        flush=True,
    )

    def _begin_drain(signum: int, frame: object) -> None:
        print(
            f"# received signal {signum}; draining in-flight forwards",
            file=sys.stderr,
            flush=True,
        )
        router.request_drain()

    previous = {
        signal.SIGTERM: signal.signal(signal.SIGTERM, _begin_drain),
        signal.SIGINT: signal.signal(signal.SIGINT, _begin_drain),
    }
    try:
        router.serve_forever()
    finally:
        router.stop()
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    if args.stats_json:
        payload = {"command": "route", "stats": router.stats()}
        if args.stats_json == "-":
            json.dump(payload, sys.stdout, indent=2, default=repr)
            print(flush=True)
        else:
            with open(args.stats_json, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, default=repr)
            print(f"# wrote router stats to {args.stats_json}", file=sys.stderr)
    return 0


def _command_query(args: argparse.Namespace) -> int:
    from .analysis.report_io import write_bed, write_tsv
    from .service import RetryPolicy, ServiceClient

    library = parse_guide_table(args.guides, pam=args.pam)
    budget = _budget_from(args)
    retry = RetryPolicy(max_attempts=args.retries) if args.retries > 1 else None
    try:
        with ServiceClient(args.host, args.port, retry=retry) as client:
            result = client.query(
                tuple(library),
                budget,
                session_id=args.session,
                timeout_seconds=args.timeout,
            )
            service_stats = client.stats() if args.stats_json else None
    except (ServiceOverloadedError, DeadlineExceededError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_OVERLOADED
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    hits = list(result.hits)
    writer = write_bed if args.format == "bed" else write_tsv
    if args.out:
        count = writer(hits, args.out)
        print(f"# wrote {count} hits to {args.out}", file=sys.stderr)
    else:
        writer(hits, sys.stdout)
    if args.stats_json:
        payload = {
            "command": "query",
            "request_id": result.request_id,
            "num_hits": len(hits),
            "num_guides": len(library),
            "budget": {
                "mismatches": budget.mismatches,
                "rna_bulges": budget.rna_bulges,
                "dna_bulges": budget.dna_bulges,
            },
            "request": result.stats,
            "service": service_stats,
        }
        if args.stats_json == "-":
            json.dump(payload, sys.stdout, indent=2, default=repr)
            sys.stdout.write("\n")
        else:
            with open(args.stats_json, "w", encoding="ascii") as handle:
                json.dump(payload, handle, indent=2, default=repr)
            print(f"# wrote run stats to {args.stats_json}", file=sys.stderr)
    print(f"# total hits: {len(hits)}", file=sys.stderr)
    return 0


def _command_design(args: argparse.Namespace) -> int:
    from .check import check_design_request
    from .design import (
        enumerate_candidates,
        render_design_tsv,
        report_to_json,
        run_design,
        weights_from_mapping,
    )
    from .grna.pam import get_pam

    pam = get_pam(args.pam)
    budget = _budget_from(args)
    region = [record.sequence for record in read_fasta(args.region)]
    genome = None
    if args.genome:
        genome = [record.sequence for record in read_fasta(args.genome)]

    raw_weights = None
    if args.weights:
        with open(args.weights, "r", encoding="ascii") as handle:
            try:
                raw_weights = json.load(handle)
            except json.JSONDecodeError as error:
                print(f"error: unreadable --weights JSON: {error}", file=sys.stderr)
                return 2
        if not isinstance(raw_weights, dict):
            print("error: --weights must be a JSON object", file=sys.stderr)
            return 2

    # The DSG pre-flight runs before any genome pass is paid: an empty
    # panel, a malformed weight table, or an unplaceable panel fails
    # here with diagnostics instead of a mid-pipeline exception.
    candidates = enumerate_candidates(region, pam, guide_length=args.guide_length)
    preflight = check_design_request(
        candidates,
        pam,
        guide_length=args.guide_length,
        weights=raw_weights,
        budget=budget,
        specs=_check_specs(args),
        subject=args.region,
    )
    if not preflight.ok:
        print(preflight.to_text(), file=sys.stderr)
        return 1

    weights = weights_from_mapping(raw_weights, guide_length=args.guide_length)
    report = run_design(
        region,
        genome,
        pam,
        guide_length=args.guide_length,
        budget=budget,
        weights=weights,
        workers=args.workers,
        chunk_length=args.chunk_length,
        kernel=args.kernel,
    )
    if args.format == "tsv":
        rendered = render_design_tsv(report)
    else:
        rendered = json.dumps(report_to_json(report), indent=2, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w", encoding="ascii") as handle:
            handle.write(rendered)
        print(f"# wrote {report.num_candidates} candidates to {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(rendered)
    if args.stats_json:
        payload = {
            "command": "design",
            "region": args.region,
            "genome": args.genome,
            "pam": pam.name,
            "guide_length": args.guide_length,
            "budget": {
                "mismatches": budget.mismatches,
                "rna_bulges": budget.rna_bulges,
                "dna_bulges": budget.dna_bulges,
            },
            "num_candidates": report.num_candidates,
            "panel_guides": report.panel_guides,
            "genome_passes": report.genome_passes,
            "stats": report.stats,
        }
        if args.stats_json == "-":
            json.dump(payload, sys.stdout, indent=2, default=repr)
            sys.stdout.write("\n")
        else:
            with open(args.stats_json, "w", encoding="ascii") as handle:
                json.dump(payload, handle, indent=2, default=repr)
            print(f"# wrote design stats to {args.stats_json}", file=sys.stderr)
    print(f"# {report.summary()}", file=sys.stderr)
    return 0


def _check_specs(args: argparse.Namespace) -> tuple:
    """The device specs the capacity pre-flight should run against.

    ``--capacity-stes N`` swaps in same-shape specs whose usable
    capacity is exactly N STEs, so over-capacity diagnostics can be
    exercised (and tested) without a genome-scale guide set.
    """
    from .platforms.spec import ApSpec, FpgaSpec

    specs = []
    if args.platform in ("ap", "all"):
        if args.capacity_stes is None:
            specs.append(ApSpec())
        else:
            specs.append(
                ApSpec(
                    stes_per_chip=args.capacity_stes,
                    chips_per_rank=1,
                    ranks=1,
                    routable_fraction=1.0,
                )
            )
    if args.platform in ("fpga", "all"):
        if args.capacity_stes is None:
            specs.append(FpgaSpec())
        else:
            default = FpgaSpec()
            specs.append(
                FpgaSpec(luts=int(args.capacity_stes * default.luts_per_ste))
            )
    return tuple(specs)


def _command_check(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .automata.anml import from_anml
    from .check import (
        PROVE_OBS,
        CheckReport,
        check_compiled_library,
        check_element_network,
        check_homogeneous,
        check_strided,
        equivalence_diagnostics,
        lint_paths,
    )
    from .check.prove import DEFAULT_MAX_STATES
    from .core.compiler import _segments, compile_library

    if not (args.guides or args.anml or args.lint):
        print(
            "error: nothing to check; pass --guides, --anml, and/or --lint",
            file=sys.stderr,
        )
        return 2
    if args.prove and not args.guides:
        print("error: --prove needs --guides to compile and verify", file=sys.stderr)
        return 2

    report = CheckReport()
    if args.guides:
        library = parse_guide_table(args.guides, pam=args.pam)
        budget = _budget_from(args)
        compiled = compile_library(library, budget)
        report.extend(check_compiled_library(compiled, specs=_check_specs(args)))
        if not budget.has_bulges:
            # Mismatch-only budgets also admit the paper's alternative
            # designs; verify those forms of every guide too.
            from .automata.striding import build_strided_hamming
            from .core.counter_design import build_counter_design

            for compiled_guide in compiled.guides:
                guide = compiled_guide.guide
                for strand in ("+", "-"):
                    segments = _segments(guide, reverse=strand == "-")

                    def label(mismatches: int, name: str = guide.name) -> tuple:
                        return (name, mismatches)

                    strided = build_strided_hamming(
                        segments, budget.mismatches, label_factory=label
                    )
                    report.extend(
                        check_strided(
                            strided, subject=f"strided:{guide.name}{strand}"
                        )
                    )
                    network = build_counter_design(
                        segments, budget.mismatches, label=guide.name
                    )
                    report.extend(
                        check_element_network(
                            network, subject=f"counter:{guide.name}{strand}"
                        )
                    )
        if args.prove:
            report.extend(
                equivalence_diagnostics(
                    compiled,
                    max_states=args.prove_max_states or DEFAULT_MAX_STATES,
                )
            )
    for path in args.anml:
        automaton = from_anml(Path(path), strict=False)
        report.extend(check_homogeneous(automaton, subject=path))
    if args.lint:
        report.extend(lint_paths(args.lint))

    if args.as_json:
        print(report.to_json(indent=2))
    else:
        print(report.to_text(verbose=args.verbose))
    if args.stats_json:
        payload = {
            "command": "check",
            "num_diagnostics": len(report),
            "num_errors": len(report.errors),
            "num_warnings": len(report.warnings),
            "rules": sorted(report.rules()),
            "prove": PROVE_OBS.snapshot() if args.prove else None,
        }
        if args.stats_json == "-":
            json.dump(payload, sys.stdout, indent=2, default=repr)
            sys.stdout.write("\n")
        else:
            with open(args.stats_json, "w", encoding="ascii") as handle:
                json.dump(payload, handle, indent=2, default=repr)
            print(f"# wrote check stats to {args.stats_json}", file=sys.stderr)
    return report.exit_code


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    handlers = {
        "search": _command_search,
        "evaluate": _command_evaluate,
        "synthesize": _command_synthesize,
        "check": _command_check,
        "serve": _command_serve,
        "route": _command_route,
        "query": _command_query,
        "design": _command_design,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        # Unreadable reference/guide paths or unwritable outputs reach
        # here; report them the same way as library errors instead of
        # dumping a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
