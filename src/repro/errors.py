"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still distinguishing the failure domain via the subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class AlphabetError(ReproError):
    """A sequence or symbol is outside the supported DNA/IUPAC alphabet."""


class FastaError(ReproError):
    """A FASTA stream is malformed (bad header, empty record, ...)."""


class GuideError(ReproError):
    """A guide RNA specification is invalid (length, alphabet, PAM)."""


class PamError(ReproError):
    """A PAM specification is unknown or malformed."""


class AutomatonError(ReproError):
    """An automaton is structurally invalid for the requested operation."""


class StateBlowupError(AutomatonError):
    """A symbolic construction exceeded its state-count guard.

    Raised by the bounded determinisation / reference-DFA builders the
    equivalence prover uses, so a pathological budget shape degrades
    into an explicit "proof skipped" diagnostic instead of an unbounded
    subset construction.
    """


class EquivalenceError(ReproError):
    """A compiled automaton provably disagrees with its budget-spec language.

    Carries the prover's rendered findings, including the shortest
    distinguishing word, so the operator sees the exact input on which
    the compiled automaton and the budget semantics part ways.
    """


class CompileError(ReproError):
    """A guide could not be compiled into a search automaton."""


class EngineError(ReproError):
    """An execution engine failed or was misconfigured."""


class CapacityError(EngineError):
    """A spatial engine cannot fit the requested automata even multi-pass."""


class PlatformError(ReproError):
    """A platform specification is unknown or inconsistent."""


class DesignError(ReproError):
    """A guide-design pipeline request is invalid (region, weights, PAM)."""


class ServiceError(ReproError):
    """The batch-serving layer failed or was misused."""


class ServiceOverloadedError(ServiceError):
    """Admission control shed the request: the service queue is full."""


class DeadlineExceededError(ServiceError):
    """An admitted request expired before its batch was dispatched."""


class ServiceTransportError(ServiceError):
    """The socket transport failed before a typed response arrived.

    Raised for connection-level failures only — refused/reset/closed
    connections, timeouts, and truncated or unparseable response
    lines. The request's fate is *unknown* to the caller, which is
    exactly why this class is the retryable one: the server
    deduplicates retried request ids, so resending is safe.
    """
