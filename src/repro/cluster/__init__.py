"""`repro.cluster` — sharded serving behind a consistent-hash router.

The horizontal tier over :mod:`repro.service`: a
:class:`~repro.cluster.router.ClusterRouter` consistent-hashes
``(session, guide-panel)`` keys across N backend ``repro-offtarget
serve`` nodes, with health-gated membership
(:class:`~repro.cluster.membership.Membership`), same-request-id
failover re-issue, compiled-guide warmup forwarding, and bounded
admission control. Exposed on the command line as ``repro-offtarget
route``.
"""

from .membership import BackendSpec, Membership, specs_from_endpoints
from .router import (
    ROUTE_OBS,
    ClusterRouter,
    HashRing,
    RouterConfig,
    route_key,
)

__all__ = [
    "BackendSpec",
    "ClusterRouter",
    "HashRing",
    "Membership",
    "ROUTE_OBS",
    "RouterConfig",
    "route_key",
    "specs_from_endpoints",
]
