"""Health-gated membership: which backends may take traffic right now.

The router's view of the world is never "the configured backend set" —
it is the subset of that set that answered recent ``health`` probes.
Each backend carries a tiny hysteresis state machine:

* **live** — eligible for routing. ``failure_threshold`` *consecutive*
  probe failures (or router-observed transport failures, which count
  the same) demote it to quarantined.
* **quarantined** — excluded from routing, still probed. Only
  ``recovery_threshold`` consecutive probe *successes* readmit it.

The two thresholds are the hysteresis: a flapping node — alive,
overloaded, alive — pays the full recovery ladder before regaining
traffic instead of thrashing the ring on every blip, while a node that
crashed cleanly leaves within ``failure_threshold`` probes. Backends
start optimistic-live so a cold router routes immediately rather than
blocking a full probe cycle.

A probe is one ``health`` roundtrip on a fresh connection (a
persistent probe connection would keep measuring a *stale* path after
the backend restarts). A backend that answers but reports
``ready: false`` — draining, closed service — counts as a probe
failure: it is alive, but traffic sent there would be refused, and
quarantine-with-recovery is exactly the treatment we want for a node
mid-drain. The full health payload of the last successful probe is
retained per member, so load-aware callers can read in-flight counts,
cache hit rates, session lists, and uptime without re-probing
(:meth:`Membership.health_of`).

Probing runs either on the background thread (:meth:`Membership.start`,
the ``route`` CLI's mode) or synchronously via
:meth:`Membership.probe_once` — the deterministic mode the cluster
tests drive, where "a node rejoins within one probe cycle" is a
statement about one explicit call.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..errors import ServiceError, ServiceTransportError
from ..obs import Metrics
from ..service.chaos import ChaosPlan
from ..service.client import ServiceClient


@dataclass(frozen=True)
class BackendSpec:
    """One backend node: a stable name and its socket endpoint."""

    name: str
    host: str
    port: int

    def __post_init__(self) -> None:
        if not self.name:
            raise ServiceError("backend name must be non-empty")
        if not self.host:
            raise ServiceError(f"backend {self.name!r} needs a host")
        if not isinstance(self.port, int) or not 1 <= self.port <= 65535:
            raise ServiceError(
                f"backend {self.name!r} port must be in [1, 65535], "
                f"got {self.port!r}"
            )

    @property
    def endpoint(self) -> str:
        return f"{self.host}:{self.port}"

    @classmethod
    def parse(cls, text: str, *, name: str = "") -> "BackendSpec":
        """Parse ``host:port`` (the ``--backends`` CLI form)."""
        host, separator, raw_port = text.rpartition(":")
        if not separator or not host:
            raise ServiceError(
                f"backend spec {text!r} is not of the form host:port"
            )
        try:
            port = int(raw_port)
        except ValueError as error:
            raise ServiceError(
                f"backend spec {text!r} has a non-integer port"
            ) from error
        return cls(name=name or text, host=host, port=port)


@dataclass
class _MemberState:
    """Mutable hysteresis state for one backend (lock-guarded)."""

    spec: BackendSpec
    live: bool = True
    consecutive_failures: int = 0
    consecutive_successes: int = 0
    probes: int = 0
    quarantines: int = 0
    rejoins: int = 0
    last_error: str = ""
    last_health: dict[str, Any] = field(default_factory=dict)


class Membership:
    """Probe-driven live/quarantined tracking over a fixed backend set.

    Parameters
    ----------
    backends:
        The configured node set; fixed for the membership's lifetime
        (liveness varies, membership identity does not).
    probe_interval_seconds, probe_timeout_seconds:
        Background-probe cadence and per-probe connection/read budget.
    failure_threshold, recovery_threshold:
        The hysteresis ladder (see the module docstring).
    chaos:
        Optional :class:`~repro.service.chaos.ChaosPlan`; probes draw
        from the ``probe.send`` site, so a seeded plan can blackhole
        probes without touching the backend itself.
    metrics:
        Collector for ``route.members.*`` counters/gauges; the
        membership keeps its own when none is supplied.
    """

    def __init__(
        self,
        backends: Iterable[BackendSpec],
        *,
        probe_interval_seconds: float = 1.0,
        probe_timeout_seconds: float = 0.5,
        failure_threshold: int = 3,
        recovery_threshold: int = 2,
        chaos: ChaosPlan | None = None,
        metrics: Metrics | None = None,
    ) -> None:
        specs = tuple(backends)
        if not specs:
            raise ServiceError("membership needs at least one backend")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ServiceError(f"duplicate backend names: {sorted(names)}")
        if probe_interval_seconds <= 0:
            raise ServiceError(
                f"probe_interval_seconds must be positive, "
                f"got {probe_interval_seconds!r}"
            )
        if probe_timeout_seconds <= 0:
            raise ServiceError(
                f"probe_timeout_seconds must be positive, "
                f"got {probe_timeout_seconds!r}"
            )
        if failure_threshold < 1 or recovery_threshold < 1:
            raise ServiceError(
                f"hysteresis thresholds must be >= 1, got failure "
                f"{failure_threshold!r} / recovery {recovery_threshold!r}"
            )
        self._probe_interval = probe_interval_seconds
        self._probe_timeout = probe_timeout_seconds
        self._failure_threshold = failure_threshold
        self._recovery_threshold = recovery_threshold
        self._chaos = chaos
        self._metrics = metrics if metrics is not None else Metrics()
        self._lock = threading.Lock()
        self._members = {spec.name: _MemberState(spec) for spec in specs}
        self._stop = threading.Event()
        self._prober: threading.Thread | None = None
        self._metrics.gauge("route.members.live", len(specs))

    # -- views ---------------------------------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        """Every configured backend name, sorted (liveness ignored)."""
        return tuple(sorted(self._members))

    def spec_of(self, name: str) -> BackendSpec:
        member = self._members.get(name)
        if member is None:
            raise ServiceError(f"unknown backend {name!r}")
        return member.spec

    def live_names(self) -> tuple[str, ...]:
        """Backends currently eligible for routing, sorted."""
        with self._lock:
            return tuple(
                sorted(name for name, m in self._members.items() if m.live)
            )

    def is_live(self, name: str) -> bool:
        with self._lock:
            member = self._members.get(name)
            return bool(member is not None and member.live)

    def health_of(self, name: str) -> dict[str, Any]:
        """The last successful probe's health payload (may be stale)."""
        with self._lock:
            member = self._members.get(name)
            return dict(member.last_health) if member is not None else {}

    def describe(self) -> dict[str, dict[str, Any]]:
        """Per-member state summary (``--stats-json`` / the stats op)."""
        with self._lock:
            return {
                name: {
                    "endpoint": member.spec.endpoint,
                    "live": member.live,
                    "probes": member.probes,
                    "consecutive_failures": member.consecutive_failures,
                    "consecutive_successes": member.consecutive_successes,
                    "quarantines": member.quarantines,
                    "rejoins": member.rejoins,
                    "last_error": member.last_error,
                    "inflight": member.last_health.get("inflight"),
                    "uptime_seconds": member.last_health.get("uptime_seconds"),
                }
                for name, member in sorted(self._members.items())
            }

    # -- state transitions ---------------------------------------------------

    def _record(
        self, name: str, ok: bool, *, health: Mapping[str, Any] | None, error: str
    ) -> bool:
        """Fold one probe/traffic observation into the hysteresis ladder."""
        with self._lock:
            member = self._members[name]
            if ok:
                member.consecutive_failures = 0
                member.consecutive_successes += 1
                member.last_error = ""
                if health is not None:
                    member.last_health = dict(health)
                if (
                    not member.live
                    and member.consecutive_successes >= self._recovery_threshold
                ):
                    member.live = True
                    member.rejoins += 1
                    self._metrics.incr("route.members.rejoins")
            else:
                member.consecutive_successes = 0
                member.consecutive_failures += 1
                member.last_error = error
                if (
                    member.live
                    and member.consecutive_failures >= self._failure_threshold
                ):
                    member.live = False
                    member.quarantines += 1
                    self._metrics.incr("route.members.quarantines")
            live = sum(1 for m in self._members.values() if m.live)
            self._metrics.gauge("route.members.live", live)
            return member.live

    def report_failure(self, name: str, error: str = "") -> None:
        """A router-observed transport failure toward *name*.

        Counts exactly like a failed probe: the router seeing a
        connection die mid-request is *better* evidence than a probe,
        and folding it into the same ladder means a crashed backend
        leaves the ring after ``failure_threshold`` observations of
        any kind, not only after the prober happens by.
        """
        self._metrics.incr("route.members.traffic_failures")
        self._record(name, False, health=None, error=error or "traffic failure")

    def probe(self, name: str) -> bool:
        """Probe one backend now; returns its (possibly updated) liveness."""
        member = self._members.get(name)
        if member is None:
            raise ServiceError(f"unknown backend {name!r}")
        self._metrics.incr("route.members.probes")
        with self._lock:
            member.probes += 1
        spec = member.spec
        try:
            with ServiceClient(
                spec.host,
                spec.port,
                timeout_seconds=self._probe_timeout,
                chaos=self._chaos,
                chaos_site="probe.send",
            ) as client:
                health = client.health()
        except (ServiceTransportError, ServiceError, OSError) as error:
            return self._record(name, False, health=None, error=str(error))
        if not health.get("ready"):
            # Alive but refusing traffic (draining / closed service):
            # routing there would only harvest typed refusals.
            return self._record(
                name, False, health=health, error="backend reports not ready"
            )
        return self._record(name, True, health=health, error="")

    def probe_once(self) -> dict[str, bool]:
        """One full probe cycle, synchronously; name → post-probe liveness.

        The deterministic entry point the cluster tests drive: the
        acceptance statement "a recovered node rejoins within one
        probe cycle" is literally "one :meth:`probe_once` call flips
        it live".
        """
        return {name: self.probe(name) for name in self.names}

    # -- background prober ---------------------------------------------------

    def start(self) -> None:
        """Start the background probe loop (idempotent)."""
        if self._prober is not None:
            return
        self._stop.clear()
        self._prober = threading.Thread(
            target=self._probe_loop, name="repro-cluster-probe", daemon=True
        )
        self._prober.start()

    def stop(self) -> None:
        """Stop the background probe loop (idempotent)."""
        self._stop.set()
        prober = self._prober
        if prober is not None:
            prober.join(timeout=5.0)
        self._prober = None

    def _probe_loop(self) -> None:
        while not self._stop.wait(timeout=self._probe_interval):
            try:
                self.probe_once()
            except ServiceError:  # pragma: no cover - defensive
                continue


def specs_from_endpoints(endpoints: Iterable[str]) -> tuple[BackendSpec, ...]:
    """Parse CLI ``host:port`` strings into named backend specs.

    Names are ``b0``, ``b1``, ... in argument order — stable across
    restarts of the same command line, which is what keeps the hash
    ring's key → node assignment stable too.
    """
    return tuple(
        BackendSpec.parse(text, name=f"b{index}")
        for index, text in enumerate(endpoints)
    )
