"""The cluster router: consistent-hash sharding over backend servers.

One router process fronts N ``repro-offtarget serve`` backends and
speaks the same JSON-lines protocol on both sides — to a client it
*is* an off-target server, to a backend it is just another client. The
paper's multi-platform argument (throughput comes from adding
execution units behind a common automata abstraction) applied one
level up: nodes are the units, the wire protocol is the abstraction.

Routing: a request's key is the digest of its ``(session,
guide-panel)`` identity — the sorted *canonical* cache-key names of
its guides under its budget, so two clients naming the same panel
differently land on the same node and share its compiled-guide cache.
Keys map to backends through a consistent-hash ring
(:class:`HashRing`: sha256 points, ``virtual_nodes`` per backend), so
a membership change moves only the keys that must move.

Fault tolerance is the headline, and it rests on one invariant the
single-server PRs already proved: **request-id idempotency**. The
router stamps every executing request with an id (``r-…``) when the
client did not, and on a backend transport failure re-issues the
*same* payload — same id — to the next live replica in the ring's
preference order. Whatever the dead backend did or did not execute,
each *surviving* backend's idempotency LRU sees each id at most once,
so ``execution_counts == 1`` holds per backend and the client observes
exactly one oracle-identical answer (or a typed error). Liveness comes
from :class:`~repro.cluster.membership.Membership` (health-probe
hysteresis; router-observed transport failures feed the same ladder),
admission control from a bounded in-flight gauge that sheds with the
typed ``overloaded`` error, and cache economics from warmup
forwarding: when a panel's keys move to a node that never compiled
them, the router ships the previous holder's ``CompiledGuide``
artefact over (``cache_export`` → ``cache_adopt``) instead of letting
the new node recompile.

Observability lives in the module-level :data:`ROUTE_OBS` metrics
(the ``KERNEL_OBS`` pattern): ``route.requests``, ``route.failovers``,
``route.reissues``, ``route.warmup_forwards``, ``route.shed``,
``route.members.live`` and friends; per-router collectors can be
injected for isolation in tests.
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
import json
import os
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..core.compiler import SearchBudget
from ..errors import ServiceError, ServiceTransportError
from ..grna.guide import Guide
from ..obs import Metrics
from ..service.cache import cache_key, canonical_name
from ..service.chaos import ChaosPlan
from ..service.client import ServiceClient
from ..service.server import (
    MAX_LINE_BYTES,
    budget_from_wire,
    guide_from_wire,
)
from .membership import BackendSpec, Membership

#: Module-level route metrics (the KERNEL_OBS / PROVE_OBS pattern).
ROUTE_OBS = Metrics()

#: How many (panel-key → holder) facts the warmup tracker remembers.
COMPILED_ON_CAPACITY = 4096


def _hash64(text: str) -> int:
    """64-bit sha256 prefix — stable across processes and runs."""
    return int(hashlib.sha256(text.encode("utf-8")).hexdigest()[:16], 16)


def route_key(
    session_id: str, guides: tuple[Guide, ...], budget: SearchBudget
) -> str:
    """The routing key of a ``(session, guide-panel)`` request.

    Built from the *canonical* cache-key names of the panel (sorted),
    not the display names — the same content routes identically
    however the client labels it, which is what lets a panel stick to
    the node whose cache holds its artefacts.
    """
    names = sorted(canonical_name(cache_key(guide, budget)) for guide in guides)
    return hashlib.sha256("|".join([session_id, *names]).encode("ascii")).hexdigest()


class HashRing:
    """Consistent hashing with virtual nodes over a fixed name set.

    Each name contributes ``virtual_nodes`` sha256 points on a 64-bit
    ring; a key's *preference order* is the distinct-name walk
    clockwise from the key's own point. Removing a node from
    consideration (quarantine) promotes exactly the next name in each
    affected key's walk — every other assignment is untouched, which
    is the property that keeps failover cache damage local.
    """

    def __init__(self, names: tuple[str, ...], *, virtual_nodes: int = 64) -> None:
        if not names:
            raise ServiceError("hash ring needs at least one name")
        if len(set(names)) != len(names):
            raise ServiceError(f"duplicate ring names: {sorted(names)}")
        if virtual_nodes < 1:
            raise ServiceError(
                f"virtual_nodes must be >= 1, got {virtual_nodes!r}"
            )
        self._names = tuple(sorted(names))
        points = sorted(
            (_hash64(f"{name}#{index}"), name)
            for name in self._names
            for index in range(virtual_nodes)
        )
        self._points = points
        self._hashes = [point for point, _ in points]

    @property
    def names(self) -> tuple[str, ...]:
        return self._names

    def preference(self, key: str) -> tuple[str, ...]:
        """Every name, in this key's clockwise-walk order."""
        start = bisect.bisect_left(self._hashes, _hash64(key)) % len(self._points)
        seen: set[str] = set()
        order: list[str] = []
        for offset in range(len(self._points)):
            name = self._points[(start + offset) % len(self._points)][1]
            if name not in seen:
                seen.add(name)
                order.append(name)
                if len(order) == len(self._names):
                    break
        return tuple(order)

    def owner(self, key: str) -> str:
        """The key's primary assignment (first of :meth:`preference`)."""
        return self.preference(key)[0]


@dataclass(frozen=True)
class RouterConfig:
    """Everything a :class:`ClusterRouter` needs to take traffic.

    Deliberately *constructible with invalid values*: validation is
    the SVC008–SVC011 rules of
    :func:`repro.check.check_router_config`, which the router runs at
    construction (raising on errors) and the ``route`` CLI surfaces as
    a check report — the same make-bad-states-checkable split the rest
    of the repo uses.
    """

    backends: tuple[BackendSpec, ...] = field(default_factory=tuple)
    replicas: int = 2
    virtual_nodes: int = 64
    probe_interval_seconds: float = 1.0
    probe_timeout_seconds: float = 0.5
    failure_threshold: int = 3
    recovery_threshold: int = 2
    drain_deadline_seconds: float = 10.0
    max_inflight: int = 64
    backend_timeout_seconds: float = 60.0


class ClusterRouter:
    """A JSON-lines server that shards requests across backend servers.

    Parameters
    ----------
    config:
        The backend set and all routing/probing knobs; checked by
        :func:`repro.check.check_router_config` — errors raise
        :class:`~repro.errors.ServiceError` before anything binds.
    host, port:
        Where the router itself listens (``port=0`` = OS-assigned).
    chaos:
        Optional :class:`~repro.service.chaos.ChaosPlan`; router →
        backend hops draw from ``router.send``, membership probes from
        ``probe.send``.
    metrics:
        Collector for ``route.*`` counters/gauges; defaults to the
        module-level :data:`ROUTE_OBS`.
    """

    def __init__(
        self,
        config: RouterConfig,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        chaos: ChaosPlan | None = None,
        metrics: Metrics | None = None,
    ) -> None:
        from ..check import check_router_config

        report = check_router_config(config)
        errors = report.errors
        if errors:
            raise ServiceError(
                "invalid router config: "
                + "; ".join(f"{d.rule}: {d.message}" for d in errors)
            )
        self._config = config
        self._metrics = metrics if metrics is not None else ROUTE_OBS
        self._chaos = chaos
        self._membership = Membership(
            config.backends,
            probe_interval_seconds=config.probe_interval_seconds,
            probe_timeout_seconds=config.probe_timeout_seconds,
            failure_threshold=config.failure_threshold,
            recovery_threshold=config.recovery_threshold,
            chaos=chaos,
            metrics=self._metrics,
        )
        self._ring = HashRing(
            tuple(spec.name for spec in config.backends),
            virtual_nodes=config.virtual_nodes,
        )
        self._host = host
        self._port = port
        self._poll_seconds = 0.2
        self._socket: socket.socket | None = None
        self._acceptor: threading.Thread | None = None
        self._stop = threading.Event()
        self._draining = threading.Event()
        self._drain_lock = threading.Lock()
        self._finished = False
        self._handler_lock = threading.Lock()
        self._handlers: dict[threading.Thread, socket.socket] = {}
        self._state_lock = threading.Lock()
        self._inflight = 0
        self._compiled_on: dict[str, str] = {}
        self._id_token = f"{os.getpid():x}-{id(self):x}"
        self._id_counter: Iterator[int] = itertools.count(1)

    # -- introspection -------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port); valid after :meth:`start`."""
        if self._socket is None:
            raise ServiceError("router is not started")
        host, port = self._socket.getsockname()[:2]
        return str(host), int(port)

    @property
    def config(self) -> RouterConfig:
        return self._config

    @property
    def membership(self) -> Membership:
        return self._membership

    @property
    def ring(self) -> HashRing:
        return self._ring

    @property
    def metrics(self) -> Metrics:
        return self._metrics

    @property
    def inflight(self) -> int:
        """Requests currently being forwarded (the admission gauge)."""
        with self._state_lock:
            return self._inflight

    @property
    def stopped(self) -> bool:
        return self._stop.is_set()

    def compiled_holders(self) -> dict[str, str]:
        """Snapshot of the warmup tracker: panel key → holding backend."""
        with self._state_lock:
            return dict(self._compiled_on)

    def health(self) -> dict[str, Any]:
        """The router's own ``health`` op payload."""
        live = self._membership.live_names()
        return {
            "live": not self._stop.is_set(),
            "ready": (
                not self._draining.is_set()
                and not self._stop.is_set()
                and self._socket is not None
                and bool(live)
            ),
            "draining": self._draining.is_set(),
            "role": "router",
            "members": self._membership.describe(),
            "live_members": list(live),
            "inflight": self.inflight,
            "max_inflight": self._config.max_inflight,
        }

    def stats(self) -> dict[str, Any]:
        """The router's ``stats`` op / ``--stats-json`` payload."""
        counters = self._metrics.counters_with_prefix("route.")
        return {
            "role": "router",
            "backends": self._membership.describe(),
            "live_members": list(self._membership.live_names()),
            "requests": int(counters.get("route.requests", 0)),
            "forwarded": int(counters.get("route.forwarded", 0)),
            "failovers": int(counters.get("route.failovers", 0)),
            "reissues": int(counters.get("route.reissues", 0)),
            "warmup_forwards": int(counters.get("route.warmup_forwards", 0)),
            "shed": int(counters.get("route.shed", 0)),
            "no_backend": int(counters.get("route.no_backend", 0)),
            "obs": self._metrics.snapshot(),
        }

    # -- lifecycle -----------------------------------------------------------

    def start(self, *, probe: bool = True) -> tuple[str, int]:
        """Bind, listen, and (optionally) start the membership prober.

        ``probe=False`` leaves probing to explicit
        :meth:`Membership.probe_once` calls — the deterministic mode
        the cluster tests drive.
        """
        if self._socket is not None:
            raise ServiceError("router already started")
        if self._finished:
            raise ServiceError("router already stopped; build a new one")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen(16)
        listener.settimeout(self._poll_seconds)
        self._socket = listener
        acceptor = threading.Thread(
            target=self._accept_loop, name="repro-cluster-accept", daemon=True
        )
        acceptor.start()
        self._acceptor = acceptor
        if probe:
            self._membership.start()
        return self.address

    def request_drain(self) -> None:
        """Begin a graceful drain in the background (signal-handler safe)."""
        self._draining.set()
        with self._handler_lock:
            if self._finished:
                return
        threading.Thread(
            target=self.drain, name="repro-cluster-drain", daemon=True
        ).start()

    def drain(self, deadline_seconds: float | None = None) -> bool:
        """Stop accepting, finish in-flight forwards, stop probing."""
        with self._drain_lock:
            if self._finished:
                return True
            self._draining.set()
            deadline = (
                deadline_seconds
                if deadline_seconds is not None
                else self._config.drain_deadline_seconds
            )
            listener = self._socket
            self._socket = None
            if listener is not None:
                try:
                    listener.close()
                except OSError:  # pragma: no cover - close is best-effort
                    pass
            acceptor = self._acceptor
            if acceptor is not None and acceptor is not threading.current_thread():
                acceptor.join(timeout=5.0)
            self._acceptor = None
            clean = self._join_handlers(deadline)
            self._stop.set()
            self._join_handlers(5.0)
            self._membership.stop()
            self._metrics.incr("route.drain.completed")
            self._finished = True
            return clean

    def stop(self) -> None:
        self.drain()

    def serve_forever(self, *, poll_seconds: float = 0.2) -> None:
        """Block until :meth:`stop` (or the ``shutdown`` op)."""
        while not self._stop.wait(timeout=poll_seconds):
            pass

    def _join_handlers(self, deadline_seconds: float) -> bool:
        deadline = time.monotonic() + deadline_seconds
        while True:
            with self._handler_lock:
                threads = [
                    thread
                    for thread in self._handlers
                    if thread.is_alive()
                    and thread is not threading.current_thread()
                ]
            if not threads:
                return True
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return False
            threads[0].join(timeout=min(remaining, 0.5))

    # -- connection handling -------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set() and not self._draining.is_set():
            listener = self._socket
            if listener is None:
                break
            try:
                connection, _ = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            self._metrics.incr("route.connections.accepted")
            handler = threading.Thread(
                target=self._handle_connection,
                args=(connection,),
                name="repro-cluster-conn",
                daemon=True,
            )
            with self._handler_lock:
                self._handlers[handler] = connection
            handler.start()

    def _read_line(
        self, connection: socket.socket, buffer: bytearray
    ) -> bytes | None:
        """Owned-buffer framing (the server's discipline, router-side)."""
        while True:
            newline = buffer.find(b"\n")
            if newline >= 0:
                if newline + 1 > MAX_LINE_BYTES:
                    raise ServiceError(
                        f"request line too long ({newline + 1} bytes)"
                    )
                line = bytes(buffer[: newline + 1])
                del buffer[: newline + 1]
                return line
            if len(buffer) > MAX_LINE_BYTES:
                raise ServiceError(
                    f"request line too long ({len(buffer)} bytes)"
                )
            if self._stop.is_set():
                return None
            if self._draining.is_set() and not buffer:
                return None
            try:
                chunk = connection.recv(1 << 16)
            except socket.timeout:
                continue
            except OSError:
                return None
            if not chunk:
                return None
            buffer.extend(chunk)

    def _handle_connection(self, connection: socket.socket) -> None:
        clients: dict[str, ServiceClient] = {}
        try:
            connection.settimeout(self._poll_seconds)
            buffer = bytearray()
            with connection:
                while not self._stop.is_set():
                    try:
                        line = self._read_line(connection, buffer)
                    except ServiceError as error:
                        self._write(
                            connection,
                            {
                                "ok": False,
                                "error": "bad_request",
                                "detail": str(error),
                            },
                        )
                        return
                    if line is None:
                        return
                    response = self._respond(line, clients)
                    if not self._write(connection, response):
                        return
                    if response.get("op") == "bye":
                        self._stop.set()
                        return
                    if response.get("op") == "draining":
                        self.request_drain()
                        return
                    if self._draining.is_set():
                        return
        finally:
            for client in clients.values():
                client.close()
            with self._handler_lock:
                self._handlers.pop(threading.current_thread(), None)

    def _write(self, connection: socket.socket, response: dict[str, Any]) -> bool:
        try:
            connection.sendall(json.dumps(response).encode("ascii") + b"\n")
            return True
        except OSError:
            return False

    # -- the ops -------------------------------------------------------------

    def _respond(
        self, line: bytes, clients: dict[str, ServiceClient]
    ) -> dict[str, Any]:
        self._metrics.incr("route.requests")
        try:
            try:
                payload = json.loads(line)
            except ValueError as error:
                raise ServiceError(
                    f"request is not valid JSON: {error}"
                ) from error
            if not isinstance(payload, dict):
                raise ServiceError("request must be a JSON object")
            op = payload.get("op", "query")
            if op == "ping":
                return {"ok": True, "op": "pong"}
            if op == "stats":
                return {"ok": True, "op": "stats", "stats": self.stats()}
            if op == "health":
                return {"ok": True, "op": "health", "health": self.health()}
            if op == "drain":
                return {"ok": True, "op": "draining"}
            if op == "shutdown":
                return {"ok": True, "op": "bye"}
            if op == "register":
                return self._respond_register(payload, clients)
            if op in ("query", "design"):
                return self._respond_routed(op, payload, clients)
            if op in ("cache_export", "cache_adopt"):
                raise ServiceError(
                    f"op {op!r} is node-local; address a backend directly"
                )
            raise ServiceError(f"unknown op {op!r}")
        except ServiceError as error:
            return {"ok": False, "error": "bad_request", "detail": str(error)}
        except Exception as error:  # noqa: BLE001 - router must answer
            self._metrics.incr("route.internal_errors")
            return {
                "ok": False,
                "error": "internal",
                "detail": str(error) or type(error).__name__,
            }

    def _respond_register(
        self, payload: dict[str, Any], clients: dict[str, ServiceClient]
    ) -> dict[str, Any]:
        """Broadcast a genome registration to every live backend.

        A session's panels hash to *different* backends, so the
        session must exist everywhere a key might land. Idempotent on
        each node (``created: false`` re-acks), so repeating the
        broadcast after membership changes is always safe. Backends
        that are quarantined now will be re-registered by the client's
        retry path when they rejoin — the router does not queue state.
        """
        live = self._membership.live_names()
        if not live:
            self._metrics.incr("route.no_backend")
            return {
                "ok": False,
                "error": "overloaded",
                "detail": "no live backends to register the session on",
            }
        results: dict[str, bool] = {}
        failures: list[str] = []
        for name in live:
            try:
                client = self._backend_client(clients, name)
                response = client.exchange(payload)
            except (ServiceTransportError, OSError) as error:
                self._membership.report_failure(name, str(error))
                self._drop_client(clients, name)
                failures.append(name)
                continue
            if not response.get("ok"):
                return dict(response)
            results[name] = bool(response.get("created"))
        if not results:
            self._metrics.incr("route.no_backend")
            return {
                "ok": False,
                "error": "overloaded",
                "detail": f"every live backend failed: {failures}",
            }
        self._metrics.incr("route.registers")
        return {
            "ok": True,
            "op": "registered",
            "session": str(payload.get("session", "default")),
            "created": any(results.values()),
            "backends": results,
        }

    def _respond_routed(
        self, op: str, payload: dict[str, Any], clients: dict[str, ServiceClient]
    ) -> dict[str, Any]:
        """Admission-control, key, and forward one executing op."""
        with self._state_lock:
            if self._inflight >= self._config.max_inflight:
                self._metrics.incr("route.shed")
                return {
                    "ok": False,
                    "error": "overloaded",
                    "detail": (
                        f"router at max in-flight "
                        f"({self._config.max_inflight}); retry with backoff"
                    ),
                }
            self._inflight += 1
            self._metrics.gauge("route.inflight", self._inflight)
        try:
            if op == "query":
                return self._forward_query(payload, clients)
            return self._forward_design(payload, clients)
        finally:
            with self._state_lock:
                self._inflight -= 1
                self._metrics.gauge("route.inflight", self._inflight)

    def _stamp_id(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Ensure the payload carries a request id (failover safety).

        The same id travels with every re-issue of this payload, so a
        backend that sees the request twice — directly and via another
        node's failover — executes it once. Without an id a re-issue
        could double-execute, so the router never forwards one.
        """
        if payload.get("id"):
            return payload
        stamped = dict(payload)
        stamped["id"] = f"r-{self._id_token}-{next(self._id_counter)}"
        return stamped

    def _candidates(self, key: str) -> tuple[str, ...]:
        """Live backends for *key*, ring-preference order, replica-capped."""
        live = set(self._membership.live_names())
        order = [name for name in self._ring.preference(key) if name in live]
        return tuple(order[: self._config.replicas])

    def _backend_client(
        self, clients: dict[str, ServiceClient], name: str
    ) -> ServiceClient:
        client = clients.get(name)
        if client is None:
            spec = self._membership.spec_of(name)
            client = ServiceClient(
                spec.host,
                spec.port,
                timeout_seconds=self._config.backend_timeout_seconds,
                chaos=self._chaos,
                chaos_site="router.send",
            )
            clients[name] = client
        return client

    def _drop_client(self, clients: dict[str, ServiceClient], name: str) -> None:
        client = clients.pop(name, None)
        if client is not None:
            client.close()

    def _dispatch(
        self,
        payload: dict[str, Any],
        key: str,
        clients: dict[str, ServiceClient],
    ) -> tuple[dict[str, Any], str]:
        """Forward *payload* to the first candidate that answers.

        Returns ``(response, backend_name)``; on a transport failure
        the candidate is reported to membership (feeding the same
        hysteresis ladder as probes), its connection is dropped, and
        the *identical* payload — same request id — is re-issued to
        the next candidate. An exhausted candidate list answers the
        typed ``overloaded`` error: the client's retry (same id) will
        land after membership catches up, and idempotency makes that
        retry safe even if a presumed-dead backend actually executed.
        """
        payload = self._stamp_id(payload)
        candidates = self._candidates(key)
        if not candidates:
            self._metrics.incr("route.no_backend")
            return (
                {
                    "ok": False,
                    "error": "overloaded",
                    "detail": "no live backends for this key; retry with backoff",
                },
                "",
            )
        last_error = ""
        for attempt, name in enumerate(candidates):
            if attempt:
                self._metrics.incr("route.reissues")
            try:
                client = self._backend_client(clients, name)
                response = client.exchange(payload)
            except (ServiceTransportError, OSError) as error:
                self._metrics.incr("route.failovers")
                self._membership.report_failure(name, str(error))
                self._drop_client(clients, name)
                last_error = str(error)
                continue
            self._metrics.incr("route.forwarded")
            return dict(response), name
        return (
            {
                "ok": False,
                "error": "overloaded",
                "detail": (
                    f"all {len(candidates)} candidate backend(s) failed "
                    f"(last: {last_error}); retry with backoff"
                ),
            },
            "",
        )

    def _forward_query(
        self, payload: dict[str, Any], clients: dict[str, ServiceClient]
    ) -> dict[str, Any]:
        raw_guides = payload.get("guides")
        if not isinstance(raw_guides, list) or not raw_guides:
            raise ServiceError("query needs a non-empty 'guides' list")
        try:
            default_pam = payload.get("pam", "NGG")
            guides = tuple(
                guide_from_wire(raw, default_pam=default_pam)
                for raw in raw_guides
            )
            budget = budget_from_wire(payload.get("budget", {}))
            session_id = str(payload.get("session", "default"))
        except (KeyError, TypeError, ValueError) as error:
            raise ServiceError(f"malformed query: {error!r}") from error
        key = route_key(session_id, guides, budget)
        key_names = [canonical_name(cache_key(g, budget)) for g in guides]
        target = next(iter(self._candidates(key)), "")
        if target:
            self._warm_target(target, guides, budget, key_names, clients)
        response, served_by = self._dispatch(payload, key, clients)
        if response.get("ok") and served_by:
            with self._state_lock:
                for key_name in key_names:
                    self._remember_holder(key_name, served_by)
        return response

    def _forward_design(
        self, payload: dict[str, Any], clients: dict[str, ServiceClient]
    ) -> dict[str, Any]:
        raw_region = payload.get("region")
        if not isinstance(raw_region, str) or not raw_region:
            raise ServiceError(
                "design needs a non-empty 'region' sequence string"
            )
        session_id = str(payload.get("session", "default"))
        identity = json.dumps(
            [
                session_id,
                raw_region,
                str(payload.get("pam", "NGG")),
                str(payload.get("guide_length", 20)),
                dict(payload.get("budget", {}) or {}),
            ],
            sort_keys=True,
        )
        key = hashlib.sha256(identity.encode("utf-8")).hexdigest()
        response, _ = self._dispatch(payload, key, clients)
        return response

    def _remember_holder(self, key_name: str, backend: str) -> None:
        """Record (bounded) which backend holds a compiled panel key."""
        self._compiled_on[key_name] = backend
        while len(self._compiled_on) > COMPILED_ON_CAPACITY:
            self._compiled_on.pop(next(iter(self._compiled_on)))

    def _warm_target(
        self,
        target: str,
        guides: tuple[Guide, ...],
        budget: SearchBudget,
        key_names: list[str],
        clients: dict[str, ServiceClient],
    ) -> None:
        """Ship peer-compiled artefacts to *target* before it executes.

        Best effort on every edge: a holder that cannot export (dead,
        quarantined, evicted the entry) simply means the target
        recompiles — correctness never depends on warmup, only the
        recompilation economics do. The export is attempted even from
        a quarantined holder: quarantine gates *routing*, and a node
        whose probes are blackholed may still serve a direct artefact
        fetch perfectly well.
        """
        with self._state_lock:
            holders = {
                key_name: self._compiled_on.get(key_name)
                for key_name in key_names
            }
        for guide, key_name in zip(guides, key_names):
            holder = holders.get(key_name)
            if holder is None or holder == target:
                continue
            try:
                artefact = self._backend_client(clients, holder).cache_export(
                    guide, budget
                )
                if artefact is None:
                    continue
                self._backend_client(clients, target).cache_adopt(artefact)
            except (ServiceError, OSError):
                self._metrics.incr("route.warmup_failures")
                self._drop_client(clients, holder)
                continue
            self._metrics.incr("route.warmup_forwards")
            with self._state_lock:
                self._remember_holder(key_name, target)
