"""Guide → search-automaton compilation.

A guide compiles into **two** automata — one for its forward pattern
and one for its reverse-complement pattern — so that a single streaming
pass over the + strand of the reference covers both strands, which is
the property that makes the automata formulation a one-pass algorithm.

A library compiles into the disjoint union of all its guides' automata:
one network, streamed once, reporting for every guide simultaneously.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterator

from .. import alphabet
from ..automata import ops
from ..automata.dfa import Dfa, determinize, minimize
from ..automata.homogeneous import HomogeneousAutomaton, nfa_to_homogeneous
from ..automata.nfa import Nfa
from ..errors import CompileError
from ..grna.guide import Guide
from ..grna.library import GuideLibrary
from .bulge import BulgeBudget, build_bulge_nfa
from .hamming import PatternSegment, build_hamming_nfa


@dataclass(frozen=True)
class SearchBudget:
    """How different an off-target site may be from the guide."""

    mismatches: int = 3
    rna_bulges: int = 0
    dna_bulges: int = 0

    def __post_init__(self) -> None:
        if min(self.mismatches, self.rna_bulges, self.dna_bulges) < 0:
            raise CompileError("budgets must be non-negative")

    @property
    def has_bulges(self) -> bool:
        return self.rna_bulges > 0 or self.dna_bulges > 0

    @property
    def bulges(self) -> BulgeBudget:
        return BulgeBudget(rna=self.rna_bulges, dna=self.dna_bulges)


def _segments(guide: Guide, *, reverse: bool) -> list[PatternSegment]:
    """Pattern segments for one strand of *guide*."""
    protospacer = PatternSegment(guide.protospacer, budgeted=True)
    pam = PatternSegment(guide.pam.pattern, budgeted=False)
    if guide.pam.side == "3prime":
        forward = [protospacer, pam]
    else:
        forward = [pam, protospacer]
    if not reverse:
        return forward
    return [
        PatternSegment(alphabet.reverse_complement(segment.text), budgeted=segment.budgeted)
        for segment in reversed(forward)
    ]


def _compile_strand(guide: Guide, budget: SearchBudget, *, strand: str) -> Nfa:
    segments = _segments(guide, reverse=strand == "-")
    if budget.has_bulges:
        return build_bulge_nfa(
            segments,
            budget.mismatches,
            budget.bulges,
            guide_name=guide.name,
            strand=strand,
        )
    return build_hamming_nfa(
        segments, budget.mismatches, guide_name=guide.name, strand=strand
    )


@dataclass(frozen=True)
class CompiledGuide:
    """One guide's pair of strand automata plus derived machine forms."""

    guide: Guide
    budget: SearchBudget
    forward: Nfa = field(repr=False)
    reverse: Nfa = field(repr=False)

    @cached_property
    def combined(self) -> Nfa:
        """Both strands as one NFA."""
        return ops.union([self.forward, self.reverse])

    @cached_property
    def homogeneous(self) -> HomogeneousAutomaton:
        """Both strands in STE (ANML) form."""
        return nfa_to_homogeneous(self.combined)

    @cached_property
    def dfa(self) -> Dfa:
        """Both strands determinised and minimised (HyperScan-style)."""
        return minimize(determinize(self.combined.without_epsilon()))

    @property
    def num_states(self) -> int:
        return self.combined.num_states

    @property
    def num_stes(self) -> int:
        return self.homogeneous.num_stes


@dataclass(frozen=True)
class CompiledLibrary:
    """A whole guide library compiled into one multi-pattern network."""

    library: GuideLibrary
    budget: SearchBudget
    guides: tuple[CompiledGuide, ...]

    def __iter__(self) -> Iterator[CompiledGuide]:
        return iter(self.guides)

    def __len__(self) -> int:
        return len(self.guides)

    @cached_property
    def combined_nfa(self) -> Nfa:
        """Every guide, both strands, as one NFA."""
        return ops.union([compiled.combined for compiled in self.guides])

    @cached_property
    def homogeneous(self) -> HomogeneousAutomaton:
        """The full network in STE form — what a spatial platform loads."""
        return ops.union_homogeneous([compiled.homogeneous for compiled in self.guides])

    @property
    def num_stes(self) -> int:
        return sum(compiled.num_stes for compiled in self.guides)

    def stats(self) -> ops.AutomatonStats:
        """Structural statistics of the full network."""
        return ops.stats(self.homogeneous)


def compile_guide(guide: Guide, budget: SearchBudget) -> CompiledGuide:
    """Compile one guide into its strand-pair automaton."""
    return CompiledGuide(
        guide=guide,
        budget=budget,
        forward=_compile_strand(guide, budget, strand="+"),
        reverse=_compile_strand(guide, budget, strand="-"),
    )


def compile_library(library: GuideLibrary, budget: SearchBudget) -> CompiledLibrary:
    """Compile every guide in *library* under one shared *budget*."""
    if len(library) == 0:
        raise CompileError("cannot compile an empty guide library")
    return CompiledLibrary(
        library=library,
        budget=budget,
        guides=tuple(compile_guide(guide, budget) for guide in library),
    )
