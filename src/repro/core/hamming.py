"""The mismatch-counting (Hamming) search automaton.

This is the paper's base design: a grid of states ``(i, j)`` — "matched
``i`` pattern positions with ``j`` of them substituted" — laid out as
one row per mismatch count. Row ``j`` ends in its own accept state, so
a report identifies the mismatch count for free, with no counting
hardware.

Patterns are given as *segments*: a budgeted segment (the protospacer,
where substitutions spend the mismatch budget) or an exact segment (the
PAM, matched per its IUPAC classes and never charged). This one builder
therefore covers 3'-PAM guides (protospacer then PAM), 5'-PAM guides
(PAM then protospacer), and the reverse-complement patterns where the
PAM segment comes first.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import alphabet
from ..automata.charclass import CharClass
from ..automata.nfa import Nfa
from ..errors import CompileError
from .labels import MatchLabel


@dataclass(frozen=True)
class PatternSegment:
    """One stretch of the search pattern.

    ``budgeted`` segments consume the mismatch budget on substitutions;
    exact segments must match their IUPAC classes outright.
    """

    text: str
    budgeted: bool

    def __post_init__(self) -> None:
        text = alphabet.validate_iupac(self.text, what="pattern segment")
        object.__setattr__(self, "text", text)
        if not text:
            raise CompileError("pattern segments must be non-empty")


def build_hamming_nfa(
    segments: list[PatternSegment],
    max_mismatches: int,
    *,
    guide_name: str,
    strand: str,
) -> Nfa:
    """Compile *segments* into a mismatch-counting search NFA.

    The returned NFA has a single all-input start state (a pure source)
    and one accept state per realised mismatch count ``j``, labelled
    ``MatchLabel(guide_name, strand, j, 0, 0, total_length)``.
    """
    if max_mismatches < 0:
        raise CompileError("mismatch budget must be non-negative")
    if not segments:
        raise CompileError("cannot compile an empty pattern")
    if strand not in ("+", "-"):
        raise CompileError(f"strand must be '+' or '-', got {strand!r}")
    total_length = sum(len(segment.text) for segment in segments)

    nfa = Nfa()
    start = nfa.add_state("start")
    nfa.mark_start(start, all_input=True)
    # frontier[j] = state meaning "consumed the pattern so far with j mismatches".
    frontier: dict[int, int] = {0: start}
    consumed = 0
    for segment in segments:
        for symbol in segment.text:
            match_class = CharClass.from_iupac(symbol)
            mismatch_class = CharClass.mismatch_of(symbol)
            next_frontier: dict[int, int] = {}

            def state_for(j: int) -> int:
                state = next_frontier.get(j)
                if state is None:
                    state = nfa.add_state(f"p{consumed}m{j}")
                    next_frontier[j] = state
                return state

            for j, state in frontier.items():
                nfa.add_transition(state, match_class, state_for(j))
                if segment.budgeted and j < max_mismatches and mismatch_class:
                    nfa.add_transition(state, mismatch_class, state_for(j + 1))
            frontier = next_frontier
            consumed += 1
    for j, state in sorted(frontier.items()):
        nfa.mark_accept(
            state,
            MatchLabel(
                guide_name=guide_name,
                strand=strand,
                mismatches=j,
                rna_bulges=0,
                dna_bulges=0,
                consumed=total_length,
            ),
        )
    return nfa


def hamming_state_count(segments: list[PatternSegment], max_mismatches: int) -> int:
    """Predicted NFA state count for a mismatch grid over *segments*.

    Computed by walking the mismatch-row frontier the same way the
    builder does — row ``j`` exists once ``j`` budgeted positions have
    been consumed — without materialising any states. For the canonical
    3'-PAM layout (budgeted length ``m``, exact length ``g``, budget
    ``k``) this equals ``1 + sum_{i=1..m} (min(i, k) + 1) + (k + 1) g``.
    Used by the resource models and checked by property tests.
    """
    if max_mismatches < 0:
        raise CompileError("mismatch budget must be non-negative")
    count = 1  # start state
    rows = 1  # mismatch rows realised so far (j = 0 .. rows-1)
    budgeted_seen = 0
    for segment in segments:
        for _symbol in segment.text:
            if segment.budgeted:
                budgeted_seen += 1
                rows = min(budgeted_seen, max_mismatches) + 1
            count += rows
    return count
