"""The counter-based mismatch design — the row design's rival.

The paper's row design (:mod:`repro.core.hamming`) spends STEs on one
row per mismatch count; automata-processing folklore offers an
alternative that uses the AP's **counter elements** instead: a single
match/mismatch chain whose mismatch STEs pulse a counter, with a
boolean gate suppressing the report once the counter passes the budget.
This module implements that design on the full ANML element model
(:mod:`repro.automata.elements`) so the trade-off can be measured
rather than asserted:

* **anchored mode** — one chain, one counter: verifies a single
  candidate window (the shape a two-stage seed-filter architecture
  needs). Resources are O(site length), *independent of the budget* —
  this is where counters win.
* **streaming mode** — unanchored genome search. Overlapping windows
  each need their own live count, so the design must be replicated
  into ``site_length`` phase instances, each gated by a ring of clock
  STEs and owning a private counter: O(site length²) STEs. This is why
  the paper's streaming search uses rows, not counters — and the
  counter design also loses the per-row mismatch-count labelling
  (reports only say "within budget").

Timing scheme (streaming): phase ``w``'s chain head is enabled by ring
STE ``w-1`` (and START_OF_DATA for the very first window); the chain
head's own output doubles as the counter reset, so the reset pulse
arrives in the same cycle as the window's first mismatch pulse —
reset-before-count semantics make that safe — while the *previous*
window's accept gate (evaluated one cycle earlier) still sees its own
final count.
"""

from __future__ import annotations

from typing import Hashable

from ..automata.charclass import CharClass
from ..automata.elements import CounterMode, ElementNetwork, GateKind
from ..automata.homogeneous import StartMode
from ..errors import CompileError
from .hamming import PatternSegment


def _positions(segments: list[PatternSegment]) -> list[tuple[CharClass, CharClass]]:
    """Flatten segments into (match, mismatch) class pairs per position."""
    pairs: list[tuple[CharClass, CharClass]] = []
    for segment in segments:
        for symbol in segment.text:
            match = CharClass.from_iupac(symbol)
            mismatch = (
                CharClass.mismatch_of(symbol) if segment.budgeted else CharClass.empty()
            )
            pairs.append((match, mismatch))
    if not pairs:
        raise CompileError("cannot compile an empty pattern")
    return pairs


def build_counter_design(
    segments: list[PatternSegment],
    max_mismatches: int,
    *,
    label: Hashable,
    streaming: bool = True,
) -> ElementNetwork:
    """Compile the counter-based design for one strand pattern.

    ``streaming=True`` builds the phase-replicated unanchored search
    network; ``streaming=False`` builds the single anchored verifier
    (window at stream position 0). Reports carry *label* only — the
    counter design cannot tell 0 mismatches from ``max_mismatches``.
    """
    if max_mismatches < 0:
        raise CompileError("mismatch budget must be non-negative")
    positions = _positions(segments)
    length = len(positions)
    network = ElementNetwork()

    ring: list[int] = []
    if streaming:
        for index in range(length):
            ring.append(
                network.add_ste(
                    CharClass.any(),
                    start=StartMode.START_OF_DATA if index == 0 else StartMode.NONE,
                )
            )
        for index in range(length):
            network.connect(ring[index], ring[(index + 1) % length])

    phases = range(length) if streaming else range(1)
    for phase in phases:
        _build_phase_instance(
            network,
            positions,
            max_mismatches,
            label=label,
            ring_enable=ring[(phase - 1) % length] if streaming else None,
            first_window_at_start=(phase == 0),
        )
    return network


def _build_phase_instance(
    network: ElementNetwork,
    positions: list[tuple[CharClass, CharClass]],
    max_mismatches: int,
    *,
    label: Hashable,
    ring_enable: int | None,
    first_window_at_start: bool,
) -> None:
    counter = network.add_counter(max_mismatches + 1, mode=CounterMode.LATCH)
    previous: list[int] = []
    head_stes: list[int] = []
    for index, (match_class, mismatch_class) in enumerate(positions):
        start = (
            StartMode.START_OF_DATA
            if index == 0 and first_window_at_start
            else StartMode.NONE
        )
        current: list[int] = []
        match_ste = network.add_ste(match_class, start=start)
        current.append(match_ste)
        if mismatch_class:
            mismatch_ste = network.add_ste(mismatch_class, start=start)
            current.append(mismatch_ste)
            network.connect_count(mismatch_ste, counter)
        if index == 0:
            head_stes = list(current)
            if ring_enable is not None:
                for ste in current:
                    network.connect(ring_enable, ste)
        for source in previous:
            for target in current:
                network.connect(source, target)
        previous = current
    # The chain head's activation marks a fresh window: reset the counter
    # (same-cycle reset precedes the head's own mismatch pulse).
    for ste in head_stes:
        network.connect_reset(ste, counter)
    # Accept = chain completed AND counter below target.
    chain_end = network.add_gate(GateKind.OR)
    for source in previous:
        network.connect(source, chain_end)
    in_budget = network.add_gate(GateKind.NOT)
    network.connect(counter, in_budget)
    accept = network.add_gate(GateKind.AND)
    network.connect(chain_end, accept)
    network.connect(in_budget, accept)
    network.mark_report(accept, label)


def counter_design_resources(
    site_length: int, budgeted_length: int, *, streaming: bool = True
) -> dict[str, int]:
    """Element counts of the counter design (budget-independent).

    Compare against :func:`repro.platforms.resources.estimate_stes` for
    the row design: rows scale with the budget, counters with the
    square of the site length (streaming) or linearly (anchored).
    """
    if budgeted_length > site_length or min(site_length, budgeted_length) < 0:
        raise CompileError("invalid lengths")
    chain = site_length + budgeted_length  # match STEs + mismatch STEs
    instances = site_length if streaming else 1
    return {
        "stes": instances * chain + (site_length if streaming else 0),
        "counters": instances,
        "gates": instances * 3,
    }
