"""The public off-target search API.

Typical use::

    from repro import Guide, GuideLibrary, OffTargetSearch, SearchBudget
    from repro.genome import read_fasta

    genome = read_fasta("reference.fa")[0].sequence
    guides = GuideLibrary.from_guides([
        Guide("EMX1", "GAGTCCGAGCAGAAGAAGAA"),
    ])
    search = OffTargetSearch(guides, SearchBudget(mismatches=3))
    report = search.run(genome)                   # default engine
    report = search.run(genome, engine="fpga")    # pick a platform model
    for hit in report.hits:
        print(hit.to_bed_line())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import TYPE_CHECKING, Any, Callable, Iterable, Union

from ..errors import EngineError
from ..genome.sequence import Sequence
from ..grna.guide import Guide
from ..grna.hit import OffTargetHit
from ..grna.library import GuideLibrary
from .bitparallel import DEFAULT_KERNEL, validate_kernel
from .compiler import CompiledLibrary, SearchBudget, compile_library

if TYPE_CHECKING:  # imported lazily at runtime to keep startup light
    from ..engines.base import EngineResult
    from .parallel import FaultPlan, ParallelSearch

#: Engine used when the caller does not pick one.
DEFAULT_ENGINE = "hyperscan"


@dataclass(frozen=True)
class SearchReport:
    """Everything one search run produced."""

    engine: str
    budget: SearchBudget
    hits: tuple[OffTargetHit, ...]
    modeled_seconds: float
    modeled_kernel_seconds: float
    measured_seconds: float
    genome_length: int
    num_guides: int
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def num_hits(self) -> int:
        return len(self.hits)

    def hits_for(self, guide_name: str) -> list[OffTargetHit]:
        """Hits of one guide, sorted by position."""
        return sorted(hit for hit in self.hits if hit.guide_name == guide_name)

    def hits_within(self, max_edits: int) -> list[OffTargetHit]:
        """Hits with at most *max_edits* total edits."""
        return sorted(hit for hit in self.hits if hit.edits <= max_edits)

    def summary(self) -> str:
        """One-paragraph human summary."""
        return (
            f"{self.num_hits} candidate off-target sites for {self.num_guides} "
            f"guide(s) over {self.genome_length:,} bp "
            f"[engine={self.engine}, budget={self.budget.mismatches}mm/"
            f"{self.budget.rna_bulges}rb/{self.budget.dna_bulges}db; "
            f"modeled {self.modeled_seconds:.3g}s, measured {self.measured_seconds:.3g}s]"
        )


class OffTargetSearch:
    """Compile a guide library once, search any number of references.

    ``workers`` selects the functional execution path for engine runs:
    ``1`` (the default) enumerates hits with the single-threaded
    vectorised kernel; any other value shards the genome and guide set
    across a process pool (:class:`repro.core.parallel.ParallelSearch`)
    with results guaranteed identical to the serial path — including
    across worker death, shard timeouts, and corrupt results, which the
    executor retries with backoff and, as a last resort, re-runs
    in-process (``shard_timeout`` / ``max_retries`` /
    ``backoff_seconds`` tune the recovery policy; ``fault_plan``
    injects deterministic faults for tests and drills). Baselines
    model competing tools' own algorithms and always run serially.

    ``kernel`` picks the functional matcher for both paths
    (:data:`repro.core.bitparallel.KERNEL_NAMES`): ``"bitparallel"``
    (default) is the numpy Shift-And engine, ``"matcher"`` the
    byte-wise LUT scan. Every kernel is pinned bit-identical by the
    differential suite, so the choice only affects throughput.

    Every :meth:`run` report carries the pipeline's observability
    snapshot under ``stats["pipeline"]`` (compile/search/sort spans)
    next to the engine's own ``stats["obs"]``.
    """

    def __init__(
        self,
        guides: Union[GuideLibrary, Iterable[Guide]],
        budget: SearchBudget | None = None,
        *,
        workers: int = 1,
        chunk_length: int = 1 << 20,
        shard_timeout: float | None = None,
        max_retries: int = 2,
        backoff_seconds: float = 0.05,
        fault_plan: FaultPlan | None = None,
        kernel: str = DEFAULT_KERNEL,
    ) -> None:
        if not isinstance(guides, GuideLibrary):
            guides = GuideLibrary.from_guides(list(guides))
        self._library = guides
        self._budget = budget or SearchBudget()
        if not isinstance(workers, int) or workers < 1:
            raise EngineError(f"workers must be a positive integer, got {workers!r}")
        self._workers = workers
        self._chunk_length = chunk_length
        self._shard_timeout = shard_timeout
        self._max_retries = max_retries
        self._backoff_seconds = backoff_seconds
        self._fault_plan = fault_plan
        self._kernel = validate_kernel(kernel)

    @property
    def library(self) -> GuideLibrary:
        return self._library

    @property
    def kernel(self) -> str:
        return self._kernel

    @property
    def budget(self) -> SearchBudget:
        return self._budget

    @property
    def workers(self) -> int:
        return self._workers

    @cached_property
    def compiled(self) -> CompiledLibrary:
        """The compiled automata network (built lazily, cached)."""
        return compile_library(self._library, self._budget)

    @cached_property
    def parallel(self) -> ParallelSearch:
        """The sharded executor behind ``workers != 1`` runs (lazy)."""
        from .parallel import ParallelSearch

        return ParallelSearch(
            self._library,
            self._budget,
            workers=self._workers,
            chunk_length=self._chunk_length,
            shard_timeout=self._shard_timeout,
            max_retries=self._max_retries,
            backoff_seconds=self._backoff_seconds,
            fault_plan=self._fault_plan,
            kernel=self._kernel,
        )

    def run(
        self,
        genome: Union[Sequence, Iterable[Sequence]],
        *,
        engine: str = DEFAULT_ENGINE,
    ) -> SearchReport:
        """Search one reference sequence (or several) with *engine*.

        Engines are the paper's platforms (``cpu-nfa``, ``hyperscan``,
        ``infant2``, ``fpga``, ``ap``); baselines (``cas-offinder``,
        ``casot``) are accepted too, so the whole evaluation runs
        through one entry point.
        """
        from ..obs import Metrics

        sequences = [genome] if isinstance(genome, Sequence) else list(genome)
        if not sequences:
            raise EngineError("no sequences to search")
        metrics = Metrics()
        with metrics.span("resolve", engine=engine):
            runner = _resolve(engine, parallel=self._workers != 1)
        hits: list[OffTargetHit] = []
        modeled_total = 0.0
        modeled_kernel = 0.0
        measured = 0.0
        stats: dict[str, Any] = {}
        total_length = 0
        for sequence in sequences:
            with metrics.span("search", sequence=sequence.name):
                result = runner(sequence, self)
            hits.extend(result.hits)
            modeled_total += result.modeled.total_seconds
            modeled_kernel += result.modeled.kernel_with_reports_seconds
            measured += result.measured_seconds
            stats = result.stats
            total_length += len(sequence)
            metrics.incr("search.sequences")
            metrics.incr("search.positions", len(sequence))
            metrics.incr("search.hits", len(result.hits))
        with metrics.span("sort"):
            ordered = tuple(sorted(hits))
        return SearchReport(
            engine=engine,
            budget=self._budget,
            hits=ordered,
            modeled_seconds=modeled_total,
            modeled_kernel_seconds=modeled_kernel,
            measured_seconds=measured,
            genome_length=total_length,
            num_guides=len(self._library),
            stats={**stats, "pipeline": metrics.snapshot()},
        )


def _resolve(
    name: str, *, parallel: bool = False
) -> Callable[[Sequence, "OffTargetSearch"], "EngineResult"]:
    """Resolve an engine or baseline name to a uniform callable.

    Imported lazily to keep :mod:`repro.core` free of import cycles
    with :mod:`repro.engines`. With ``parallel=True`` an engine's hit
    enumeration runs through the sharded process-pool executor (the
    engine still contributes its modeled timing and platform stats,
    which do not depend on how the functional hits were enumerated).
    """
    from ..baselines.base import available_baselines, get_baseline
    from ..engines.base import available_engines, build_profile, get_engine

    if name in available_engines():
        engine = get_engine(name)

        if parallel:
            import time

            from ..engines.base import EngineResult

            def run_engine(sequence: Sequence, search: OffTargetSearch) -> EngineResult:
                started = time.perf_counter()
                hits, shard_stats = search.parallel.search_with_stats(sequence)
                measured = time.perf_counter() - started
                profile = build_profile(sequence, search.compiled, hits)
                return EngineResult(
                    engine=engine.name,
                    hits=tuple(hits),
                    modeled=engine.model_time(profile),
                    measured_seconds=measured,
                    stats={
                        **engine.platform_stats(profile, search.compiled),
                        "parallel": shard_stats,
                    },
                )

            return run_engine

        def run_engine(sequence: Sequence, search: OffTargetSearch) -> "EngineResult":
            return engine.search(sequence, search.compiled, kernel=search.kernel)

        return run_engine
    if name in available_baselines():
        baseline = get_baseline(name)

        def run_baseline(sequence: Sequence, search: OffTargetSearch) -> "EngineResult":
            return baseline.search(sequence, search.library, search.budget)

        return run_baseline
    raise EngineError(
        f"unknown engine {name!r}; engines: {available_engines()}, "
        f"baselines: {available_baselines()}"
    )
