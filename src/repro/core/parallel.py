"""Parallel sharded off-target search across a host process pool.

The paper's platforms get their throughput from spatial parallelism:
every guide automaton consumes the symbol stream simultaneously. The
functional Python path is a single-threaded loop, so this module
recovers host-side parallelism the way multi-core DNA-scanning systems
do: shard the work, fan the shards across processes, merge.

Work is sharded along two axes:

* **genome chunks** — the overlap-correct windows of
  :func:`repro.core.streaming.iter_chunks`, so a site straddling a
  chunk boundary is still found exactly once (hits wholly inside a
  chunk's overlapped prefix were already reported by the previous
  chunk and are dropped, the same rule :class:`StreamingSearch` pins);
* **guide batches** — disjoint slices of the guide library, so large
  libraries scale past the chunk count.

Workers receive cheap-to-pickle payloads only: 2-bit packed chunk
codes (:class:`~repro.genome.sequence.TwoBitSequence` bytes), plain
guide records, and the :class:`SearchBudget` — never automaton
objects. Each worker runs the shared vectorised kernel
(:mod:`repro.core.matcher`) on its shard; the parent merges shard
results in shard order and canonically dedupes, so the final hit list
is **bit-identical** to :class:`StreamingSearch` and to the
whole-genome kernel regardless of worker count, chunk size, or
scheduling order — the property the differential test suite pins
against the :class:`~repro.core.reference.NaiveSearcher` oracle.

``workers=1`` runs the shards serially in-process (no pool); a pool
that fails to spawn degrades to the same serial path, recorded in the
returned stats rather than raised.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Iterable, Sequence as SequenceType

import numpy as np

from ..errors import EngineError
from ..genome.sequence import Sequence, TwoBitSequence
from ..grna.guide import Guide
from ..grna.hit import OffTargetHit, dedupe_hits
from . import matcher
from .compiler import SearchBudget
from .streaming import iter_chunks


@dataclass(frozen=True)
class ShardTask:
    """One unit of worker work: a packed genome chunk × a guide batch.

    Every field pickles cheaply: the chunk travels as 2-bit packed
    bytes plus its ``N`` bitmap, guides as small frozen records, the
    budget as three ints. The worker rebuilds the chunk
    :class:`Sequence` and runs the vectorised kernel on it.
    """

    shard_id: int
    sequence_name: str
    chunk_start: int
    chunk_overlap: int
    chunk_length: int
    packed: bytes
    n_mask: bytes
    guides: tuple[Guide, ...]
    budget: SearchBudget


@dataclass(frozen=True)
class ShardResult:
    """What one shard reports back: absolute-coordinate hits + timing."""

    shard_id: int
    hits: tuple[OffTargetHit, ...]
    seconds: float
    chunk_start: int
    chunk_length: int

    @property
    def num_hits(self) -> int:
        return len(self.hits)


def _search_shard(task: ShardTask) -> ShardResult:
    """Worker entry point (top-level so it pickles under any start method)."""
    started = time.perf_counter()
    packed = np.frombuffer(task.packed, dtype=np.uint8)
    n_mask = np.frombuffer(task.n_mask, dtype=np.uint8)
    chunk = TwoBitSequence(packed, n_mask, task.chunk_length).unpack(
        name=task.sequence_name
    )
    hits: list[OffTargetHit] = []
    for hit in matcher.find_hits(chunk, task.guides, task.budget):
        # A hit wholly inside the overlapped prefix was already
        # reported by the previous chunk's shard (streaming.py rule).
        if task.chunk_overlap and hit.end <= task.chunk_overlap:
            continue
        hits.append(
            replace(
                hit,
                start=hit.start + task.chunk_start,
                end=hit.end + task.chunk_start,
            )
        )
    return ShardResult(
        shard_id=task.shard_id,
        hits=tuple(hits),
        seconds=time.perf_counter() - started,
        chunk_start=task.chunk_start,
        chunk_length=task.chunk_length,
    )


def merge_shards(results: Iterable[ShardResult]) -> list[OffTargetHit]:
    """Deterministic merge: shard order, then canonical dedupe + sort.

    Sorting by ``shard_id`` before deduplication makes the merge
    independent of pool scheduling/completion order; the canonical
    dedupe then yields the same sorted list the serial paths produce.
    """
    ordered = sorted(results, key=lambda result: result.shard_id)
    hits: list[OffTargetHit] = []
    for result in ordered:
        hits.extend(result.hits)
    return dedupe_hits(hits)


class ParallelSearch:
    """Sharded multi-process off-target search.

    Results are guaranteed identical to :class:`StreamingSearch` (and
    therefore to a whole-genome :func:`~repro.core.matcher.find_hits`)
    for every worker count and chunk size: the chunk axis reuses the
    streaming overlap semantics, the guide axis partitions disjoint
    hit keys, and the merge is order-canonical.

    Parameters
    ----------
    guides:
        The guide set (any iterable of :class:`Guide`).
    budget:
        Shared :class:`SearchBudget`.
    workers:
        Process count; ``None`` means ``os.cpu_count()``. ``1`` runs
        the shards serially in-process.
    chunk_length:
        Genome chunk size; must exceed the derived overlap.
    guide_batch_size:
        Guides per batch; ``None`` splits the library into at most
        ``workers`` equal batches.
    """

    def __init__(
        self,
        guides,
        budget: SearchBudget,
        *,
        workers: int | None = None,
        chunk_length: int = 1 << 20,
        guide_batch_size: int | None = None,
    ) -> None:
        guide_list = list(guides)
        if not guide_list:
            raise EngineError("parallel search needs at least one guide")
        if workers is None:
            workers = os.cpu_count() or 1
        if not isinstance(workers, int) or workers < 1:
            raise EngineError(f"workers must be a positive integer, got {workers!r}")
        self._guides = guide_list
        self._budget = budget
        self._workers = workers
        max_site = max(g.site_length for g in guide_list) + budget.dna_bulges
        self._overlap = max_site - 1
        if chunk_length <= self._overlap:
            raise EngineError(
                f"chunk_length {chunk_length} must exceed the overlap {self._overlap}"
            )
        self._chunk_length = chunk_length
        if guide_batch_size is None:
            guide_batch_size = -(-len(guide_list) // workers)  # ceil division
        if guide_batch_size < 1:
            raise EngineError("guide_batch_size must be positive")
        self._guide_batch_size = guide_batch_size

    # -- introspection -----------------------------------------------------

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def overlap(self) -> int:
        return self._overlap

    @property
    def chunk_length(self) -> int:
        return self._chunk_length

    @property
    def guide_batches(self) -> list[tuple[Guide, ...]]:
        """The disjoint guide batches, in library order."""
        size = self._guide_batch_size
        return [
            tuple(self._guides[index : index + size])
            for index in range(0, len(self._guides), size)
        ]

    # -- sharding ----------------------------------------------------------

    def shard_tasks(self, genome: Sequence) -> list[ShardTask]:
        """All (chunk × guide-batch) shards for *genome*, in canonical order."""
        batches = self.guide_batches
        tasks: list[ShardTask] = []
        for chunk in iter_chunks(
            genome, chunk_length=self._chunk_length, overlap=self._overlap
        ):
            two_bit = TwoBitSequence.pack(chunk.sequence)
            packed = two_bit.packed_bytes
            n_mask = two_bit.n_mask_bytes
            for batch in batches:
                tasks.append(
                    ShardTask(
                        shard_id=len(tasks),
                        sequence_name=genome.name,
                        chunk_start=chunk.start,
                        chunk_overlap=chunk.overlap,
                        chunk_length=len(chunk),
                        packed=packed,
                        n_mask=n_mask,
                        guides=batch,
                        budget=self._budget,
                    )
                )
        return tasks

    # -- execution ---------------------------------------------------------

    def _execute(self, tasks: SequenceType[ShardTask]) -> tuple[list[ShardResult], bool, bool]:
        """Run *tasks*; returns (results, pooled, serial_fallback)."""
        if self._workers == 1 or len(tasks) <= 1:
            return [_search_shard(task) for task in tasks], False, False
        try:
            with ProcessPoolExecutor(
                max_workers=min(self._workers, len(tasks))
            ) as pool:
                results = list(pool.map(_search_shard, tasks))
            return results, True, False
        except (OSError, BrokenExecutor, RuntimeError):
            # Pool failed to spawn (or died): degrade to the serial
            # path — same shards, same merge, identical results.
            return [_search_shard(task) for task in tasks], False, True

    def search(self, genome: Sequence) -> list[OffTargetHit]:
        """Search one sequence; identical to the serial/streaming paths."""
        hits, _ = self.search_with_stats(genome)
        return hits

    def search_with_stats(
        self, genome: Sequence
    ) -> tuple[list[OffTargetHit], dict]:
        """Search plus per-shard timing/hit-count stats.

        The stats dict is what :class:`~repro.engines.base.EngineResult`
        carries under ``stats["parallel"]`` and what the scaling
        benchmarks report: requested workers, shard counts along both
        axes, whether a pool actually ran (or fell back to serial),
        per-shard wall seconds and hit counts, and the merge time.
        """
        started = time.perf_counter()
        tasks = self.shard_tasks(genome)
        results, pooled, serial_fallback = self._execute(tasks)
        merge_started = time.perf_counter()
        hits = merge_shards(results)
        finished = time.perf_counter()
        num_batches = len(self.guide_batches)
        stats = {
            "workers": self._workers,
            "pooled": pooled,
            "serial_fallback": serial_fallback,
            "num_shards": len(tasks),
            "num_chunks": len(tasks) // num_batches if num_batches else 0,
            "num_guide_batches": num_batches,
            "chunk_length": self._chunk_length,
            "overlap": self._overlap,
            "shards": [
                {
                    "shard": result.shard_id,
                    "chunk_start": result.chunk_start,
                    "seconds": result.seconds,
                    "hits": result.num_hits,
                }
                for result in sorted(results, key=lambda r: r.shard_id)
            ],
            "total_shard_seconds": sum(result.seconds for result in results),
            "merge_seconds": finished - merge_started,
            "wall_seconds": finished - started,
        }
        return hits, stats

    def search_many(self, genomes: Iterable[Sequence]) -> list[OffTargetHit]:
        """Search several sequences (chromosomes), merged canonically."""
        hits: list[OffTargetHit] = []
        for genome in genomes:
            hits.extend(self.search(genome))
        return dedupe_hits(hits)
