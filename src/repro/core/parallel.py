"""Parallel sharded off-target search across a host process pool.

The paper's platforms get their throughput from spatial parallelism:
every guide automaton consumes the symbol stream simultaneously. The
functional Python path is a single-threaded loop, so this module
recovers host-side parallelism the way multi-core DNA-scanning systems
do: shard the work, fan the shards across processes, merge.

Work is sharded along two axes:

* **genome chunks** — the overlap-correct windows of
  :func:`repro.core.streaming.iter_chunks`, so a site straddling a
  chunk boundary is still found exactly once (hits wholly inside a
  chunk's overlapped prefix were already reported by the previous
  chunk and are dropped, the same rule :class:`StreamingSearch` pins);
* **guide batches** — disjoint slices of the guide library, so large
  libraries scale past the chunk count.

Workers receive cheap-to-pickle payloads only: 2-bit packed chunk
codes (:class:`~repro.genome.sequence.TwoBitSequence` bytes), plain
guide records, the :class:`SearchBudget`, and the kernel name — never
automaton objects. Each worker compiles and runs the selected kernel
(:mod:`repro.core.bitparallel` by default) on its shard; the parent merges shard
results in shard order and canonically dedupes, so the final hit list
is **bit-identical** to :class:`StreamingSearch` and to the
whole-genome kernel regardless of worker count, chunk size, or
scheduling order — the property the differential test suite pins
against the :class:`~repro.core.reference.NaiveSearcher` oracle.

Fault tolerance
---------------

A worker that dies, stalls, or returns garbage must not take the
search down or silently degrade the result, so shard execution is a
small supervised scheduler rather than a bare ``pool.map``:

* every shard attempt carries a deadline (``shard_timeout``); an
  attempt that blows it is abandoned and the shard is **requeued onto
  the surviving workers**;
* failed attempts (worker death, timeout, corrupt payload) are retried
  with **exponential backoff** up to ``max_retries`` extra attempts;
* a worker death breaks the whole :class:`ProcessPoolExecutor`
  (CPython semantics), so the scheduler **rebuilds the pool** and
  requeues everything that was in flight;
* shards that exhaust their pooled retry budget fall back to a
  **last-resort in-process re-execution** of only those shards, with a
  fresh retry budget — the merge stays bit-identical because every
  recovery path re-runs the same deterministic kernel on the same
  shard payload;
* ``workers=1`` runs the shards serially in-process (no pool); a pool
  that fails to spawn degrades to the same serial path. Both are
  recorded in the returned stats rather than raised.

Every returned shard payload is validated against the shard's own
bounds and budget (:func:`validate_shard_result`), so a corrupt result
is caught and retried instead of silently merged.

Every degradation path is deterministic and therefore testable: a
:class:`FaultPlan` injects ``kill`` / ``hang`` / ``corrupt`` faults
for (shard, attempt) pairs plus pool-spawn failures, and
``tests/test_faults.py`` pins that each path still reproduces the
oracle hit set with the recovery visible in the run's stats.
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field, replace
from typing import Iterable

import numpy as np

from ..errors import EngineError
from ..genome.sequence import Sequence, TwoBitSequence
from ..grna.guide import Guide
from ..grna.hit import OffTargetHit, dedupe_hits
from ..obs import Metrics
from . import bitparallel
from .compiler import SearchBudget
from .streaming import iter_chunks

#: Injectable fault kinds, in increasing order of subtlety.
FAULT_KINDS = ("kill", "hang", "corrupt")


class ShardError(EngineError):
    """One shard attempt failed; ``kind`` names the failure class."""

    def __init__(self, message: str, kind: str = "error") -> None:
        super().__init__(message)
        self.kind = kind
        # Keep *kind* in args so the exception survives pickling
        # across the process boundary.
        self.args = (message, kind)


class ShardTimeout(ShardError):
    """A shard attempt exceeded its deadline."""

    def __init__(self, message: str) -> None:
        super().__init__(message, kind="timeout")
        self.args = (message,)


@dataclass(frozen=True)
class FaultSpec:
    """Inject one fault: *kind* on *attempt* of shard *shard_id*.

    Attempts are numbered from 1 and count every execution of the
    shard — pooled, serial, and the in-process rescue alike — so a
    plan describes a run's whole failure schedule deterministically.
    """

    shard_id: int
    attempt: int
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise EngineError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.attempt < 1:
            raise EngineError("fault attempts are numbered from 1")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic fault-injection schedule for one search run.

    ``kill`` terminates the worker process mid-shard (in-process
    execution raises instead of exiting); ``hang`` stalls the worker
    for ``hang_seconds`` before it completes (observable only when a
    ``shard_timeout`` is configured); ``corrupt`` makes the shard
    return a payload that fails validation. ``pool_spawn_failures``
    makes that many pool creations fail, exercising the serial
    fallback and the mid-run rebuild path.
    """

    faults: tuple[FaultSpec, ...] = ()
    pool_spawn_failures: int = 0
    hang_seconds: float = 30.0

    @classmethod
    def kill(cls, shard_id: int, attempt: int = 1) -> "FaultPlan":
        return cls(faults=(FaultSpec(shard_id, attempt, "kill"),))

    @classmethod
    def hang(cls, shard_id: int, attempt: int = 1, *, hang_seconds: float = 30.0) -> "FaultPlan":
        return cls(
            faults=(FaultSpec(shard_id, attempt, "hang"),),
            hang_seconds=hang_seconds,
        )

    @classmethod
    def corrupt(cls, shard_id: int, attempt: int = 1) -> "FaultPlan":
        return cls(faults=(FaultSpec(shard_id, attempt, "corrupt"),))

    def fault_for(self, shard_id: int, attempt: int) -> str | None:
        """The fault kind scheduled for this (shard, attempt), if any."""
        for spec in self.faults:
            if spec.shard_id == shard_id and spec.attempt == attempt:
                return spec.kind
        return None


@dataclass(frozen=True)
class ShardTask:
    """One unit of worker work: a packed genome chunk × a guide batch.

    Every field pickles cheaply: the chunk travels as 2-bit packed
    bytes plus its ``N`` bitmap, guides as small frozen records, the
    budget as three ints, and the kernel as its registry name (the
    worker compiles it locally). The worker rebuilds the chunk
    :class:`Sequence` and runs the selected kernel on it.
    """

    shard_id: int
    sequence_name: str
    chunk_start: int
    chunk_overlap: int
    chunk_length: int
    packed: bytes
    n_mask: bytes
    guides: tuple[Guide, ...]
    budget: SearchBudget
    kernel: str = bitparallel.DEFAULT_KERNEL


@dataclass(frozen=True)
class ShardResult:
    """What one shard reports back: absolute-coordinate hits + timing."""

    shard_id: int
    hits: tuple[OffTargetHit, ...]
    seconds: float
    chunk_start: int
    chunk_length: int

    @property
    def num_hits(self) -> int:
        return len(self.hits)


def _search_shard(task: ShardTask) -> ShardResult:
    """Worker entry point (top-level so it pickles under any start method)."""
    started = time.perf_counter()
    packed = np.frombuffer(task.packed, dtype=np.uint8)
    n_mask = np.frombuffer(task.n_mask, dtype=np.uint8)
    chunk = TwoBitSequence(packed, n_mask, task.chunk_length).unpack(
        name=task.sequence_name
    )
    scan = bitparallel.make_kernel(task.kernel, task.guides, task.budget)
    hits: list[OffTargetHit] = []
    for hit in scan(chunk):
        # A hit wholly inside the overlapped prefix was already
        # reported by the previous chunk's shard (streaming.py rule).
        if task.chunk_overlap and hit.end <= task.chunk_overlap:
            continue
        hits.append(
            replace(
                hit,
                start=hit.start + task.chunk_start,
                end=hit.end + task.chunk_start,
            )
        )
    return ShardResult(
        shard_id=task.shard_id,
        hits=tuple(hits),
        seconds=time.perf_counter() - started,
        chunk_start=task.chunk_start,
        chunk_length=task.chunk_length,
    )


def _corrupted(result: ShardResult) -> ShardResult:
    """An injected-corruption payload: detectably violates every bound."""
    bogus = OffTargetHit("__corrupt__", "??", "?", -7, -3, -1)
    return replace(result, hits=result.hits + (bogus,))


def _run_shard(payload: tuple[ShardTask, str | None, float, int]) -> ShardResult:
    """Worker entry point with fault injection (top-level, picklable).

    *payload* is ``(task, fault_kind, hang_seconds, parent_pid)``. A
    ``kill`` fault exits the worker process abruptly (raising instead
    when running inside the parent, so in-process execution stays
    alive); a ``hang`` fault stalls before computing; ``corrupt``
    computes honestly and then mangles the payload.
    """
    task, fault, hang_seconds, parent_pid = payload
    if fault == "hang":
        time.sleep(hang_seconds)
    elif fault == "kill":
        if os.getpid() != parent_pid:
            os._exit(1)
        raise ShardError(f"injected kill of shard {task.shard_id}", kind="kill")
    result = _search_shard(task)
    if fault == "corrupt":
        return _corrupted(result)
    return result


def validate_shard_result(task: ShardTask, result: object) -> str | None:
    """Check a shard payload against its task's own invariants.

    Returns a human-readable defect description, or ``None`` when the
    payload is well-formed. Validation is what turns a corrupt worker
    response into a retryable failure instead of a silently wrong
    merge: every hit must lie inside the shard's chunk span, name a
    guide from the shard's batch, and respect the search budget.
    """
    if not isinstance(result, ShardResult):
        return f"payload is {type(result).__name__}, not ShardResult"
    if result.shard_id != task.shard_id:
        return f"shard_id {result.shard_id} != task {task.shard_id}"
    if not isinstance(result.hits, tuple):
        return "hits payload is not a tuple"
    if result.seconds < 0:
        return "negative shard wall time"
    names = {guide.name for guide in task.guides}
    low = task.chunk_start
    high = task.chunk_start + task.chunk_length
    budget = task.budget
    for hit in result.hits:
        if not isinstance(hit, OffTargetHit):
            return f"hit payload is {type(hit).__name__}"
        if hit.guide_name not in names:
            return f"hit names unknown guide {hit.guide_name!r}"
        if hit.strand not in ("+", "-"):
            return f"invalid strand {hit.strand!r}"
        if not (low <= hit.start < hit.end <= high):
            return (
                f"hit span [{hit.start}, {hit.end}) outside shard chunk "
                f"[{low}, {high})"
            )
        if not (
            0 <= hit.mismatches <= budget.mismatches
            and 0 <= hit.rna_bulges <= budget.rna_bulges
            and 0 <= hit.dna_bulges <= budget.dna_bulges
        ):
            return f"hit edits exceed budget: {hit}"
    return None


def merge_shards(results: Iterable[ShardResult]) -> list[OffTargetHit]:
    """Deterministic merge: shard order, then canonical dedupe + sort.

    Sorting by ``shard_id`` before deduplication makes the merge
    independent of pool scheduling/completion order; the canonical
    dedupe then yields the same sorted list the serial paths produce.
    """
    ordered = sorted(results, key=lambda result: result.shard_id)
    hits: list[OffTargetHit] = []
    for result in ordered:
        hits.extend(result.hits)
    return dedupe_hits(hits)


@dataclass
class _ShardState:
    """Parent-side bookkeeping for one shard across its attempts."""

    task: ShardTask
    attempts: int = 0
    failures: list[str] = field(default_factory=list)
    timeouts: int = 0
    result: ShardResult | None = None
    recovery: str | None = None  # None | "retry" | "in_process"


class ParallelSearch:
    """Sharded multi-process off-target search with supervised recovery.

    Results are guaranteed identical to :class:`StreamingSearch` (and
    therefore to a whole-genome :func:`~repro.core.matcher.find_hits`)
    for every worker count, chunk size, and recovery path: the chunk
    axis reuses the streaming overlap semantics, the guide axis
    partitions disjoint hit keys, every retry re-runs the same
    deterministic kernel on the same payload, and the merge is
    order-canonical.

    Parameters
    ----------
    guides:
        The guide set (any iterable of :class:`Guide`).
    budget:
        Shared :class:`SearchBudget`.
    workers:
        Process count; ``None`` means ``os.cpu_count()``. ``1`` runs
        the shards serially in-process.
    chunk_length:
        Genome chunk size; must exceed the derived overlap.
    guide_batch_size:
        Guides per batch; ``None`` splits the library into at most
        ``workers`` equal batches.
    shard_timeout:
        Per-attempt deadline in seconds; ``None`` (default) waits
        indefinitely. An attempt past its deadline is abandoned and
        the shard requeued onto the surviving workers.
    max_retries:
        Extra attempts per shard beyond the first, per execution arena
        (the pooled run and the in-process rescue each get this
        budget).
    backoff_seconds:
        Base of the exponential backoff between a shard's attempts
        (``backoff_seconds * 2**(failures - 1)``); ``0`` disables
        waiting.
    fault_plan:
        Deterministic fault injection for tests and drills; ``None``
        (default) injects nothing.
    kernel:
        Functional kernel each worker runs on its shard (see
        :data:`repro.core.bitparallel.KERNEL_NAMES`); every kernel is
        bit-identical, so this only changes throughput.
    """

    def __init__(
        self,
        guides: Iterable[Guide],
        budget: SearchBudget,
        *,
        workers: int | None = None,
        chunk_length: int = 1 << 20,
        guide_batch_size: int | None = None,
        shard_timeout: float | None = None,
        max_retries: int = 2,
        backoff_seconds: float = 0.05,
        fault_plan: FaultPlan | None = None,
        kernel: str = bitparallel.DEFAULT_KERNEL,
    ) -> None:
        guide_list = list(guides)
        if not guide_list:
            raise EngineError("parallel search needs at least one guide")
        if workers is None:
            workers = os.cpu_count() or 1
        if not isinstance(workers, int) or workers < 1:
            raise EngineError(f"workers must be a positive integer, got {workers!r}")
        self._guides = guide_list
        self._budget = budget
        self._workers = workers
        max_site = max(g.site_length for g in guide_list) + budget.dna_bulges
        self._overlap = max_site - 1
        if chunk_length <= self._overlap:
            raise EngineError(
                f"chunk_length {chunk_length} must exceed the overlap {self._overlap}"
            )
        self._chunk_length = chunk_length
        if guide_batch_size is None:
            guide_batch_size = -(-len(guide_list) // workers)  # ceil division
        if guide_batch_size < 1:
            raise EngineError("guide_batch_size must be positive")
        self._guide_batch_size = guide_batch_size
        if shard_timeout is not None and not shard_timeout > 0:
            raise EngineError(
                f"shard_timeout must be positive or None, got {shard_timeout!r}"
            )
        self._shard_timeout = shard_timeout
        if not isinstance(max_retries, int) or max_retries < 0:
            raise EngineError(
                f"max_retries must be a non-negative integer, got {max_retries!r}"
            )
        self._max_retries = max_retries
        if backoff_seconds < 0:
            raise EngineError(f"backoff_seconds must be >= 0, got {backoff_seconds!r}")
        self._backoff_seconds = backoff_seconds
        if fault_plan is not None and not isinstance(fault_plan, FaultPlan):
            raise EngineError(f"fault_plan must be a FaultPlan, got {fault_plan!r}")
        self._fault_plan = fault_plan
        self._kernel = bitparallel.validate_kernel(kernel)

    # -- introspection -----------------------------------------------------

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def overlap(self) -> int:
        return self._overlap

    @property
    def chunk_length(self) -> int:
        return self._chunk_length

    @property
    def shard_timeout(self) -> float | None:
        return self._shard_timeout

    @property
    def max_retries(self) -> int:
        return self._max_retries

    @property
    def kernel(self) -> str:
        return self._kernel

    @property
    def guide_batches(self) -> list[tuple[Guide, ...]]:
        """The disjoint guide batches, in library order."""
        size = self._guide_batch_size
        return [
            tuple(self._guides[index : index + size])
            for index in range(0, len(self._guides), size)
        ]

    # -- sharding ----------------------------------------------------------

    def shard_tasks(self, genome: Sequence) -> list[ShardTask]:
        """All (chunk × guide-batch) shards for *genome*, in canonical order."""
        batches = self.guide_batches
        tasks: list[ShardTask] = []
        for chunk in iter_chunks(
            genome, chunk_length=self._chunk_length, overlap=self._overlap
        ):
            two_bit = TwoBitSequence.pack(chunk.sequence)
            packed = two_bit.packed_bytes
            n_mask = two_bit.n_mask_bytes
            for batch in batches:
                tasks.append(
                    ShardTask(
                        shard_id=len(tasks),
                        sequence_name=genome.name,
                        chunk_start=chunk.start,
                        chunk_overlap=chunk.overlap,
                        chunk_length=len(chunk),
                        packed=packed,
                        n_mask=n_mask,
                        guides=batch,
                        budget=self._budget,
                        kernel=self._kernel,
                    )
                )
        return tasks

    # -- fault and retry plumbing ------------------------------------------

    def _fault_for(self, shard_id: int, attempt: int) -> str | None:
        if self._fault_plan is None:
            return None
        return self._fault_plan.fault_for(shard_id, attempt)

    def _hang_seconds(self) -> float:
        return self._fault_plan.hang_seconds if self._fault_plan else 0.0

    def _record_failure(self, state: _ShardState, kind: str, metrics: Metrics) -> None:
        state.failures.append(kind)
        if kind == "timeout":
            state.timeouts += 1
        metrics.incr("parallel.failures")
        metrics.incr(f"parallel.failures.{kind}")

    def _record_success(self, state: _ShardState, result: ShardResult, metrics: Metrics) -> None:
        state.result = result
        metrics.incr("parallel.shards_completed")
        metrics.incr("parallel.kernel_positions", state.task.chunk_length)
        metrics.incr("parallel.report_events", result.num_hits)
        metrics.observe("parallel.shard_seconds", result.seconds)

    def _backoff_delay(self, nth_failure: int, run: dict, metrics: Metrics) -> float:
        """The wait before retry number *nth_failure* (1-based)."""
        if self._backoff_seconds <= 0:
            return 0.0
        delay = self._backoff_seconds * (2 ** (nth_failure - 1))
        run["backoff_waits"] += 1
        metrics.incr("parallel.backoff_waits")
        return delay

    def _spawn_pool(
        self, num_tasks: int, run: dict, metrics: Metrics
    ) -> ProcessPoolExecutor | None:
        """Create the process pool, honouring injected spawn failures."""
        if run["spawn_failures_left"] > 0:
            run["spawn_failures_left"] -= 1
            run["pool_spawn_failures"] += 1
            metrics.incr("parallel.pool_spawn_failures")
            return None
        try:
            return ProcessPoolExecutor(max_workers=min(self._workers, num_tasks))
        except (OSError, BrokenExecutor, RuntimeError):
            run["pool_spawn_failures"] += 1
            metrics.incr("parallel.pool_spawn_failures")
            return None

    # -- in-process execution (serial path and last-resort rescue) ---------

    def _in_process_attempts(
        self,
        state: _ShardState,
        run: dict,
        metrics: Metrics,
        *,
        recovery_label: str = "retry",
    ) -> bool:
        """Run one shard in-process with a fresh retry budget.

        An injected ``hang`` is only observable against a configured
        deadline, so with ``shard_timeout`` set it becomes an immediate
        (simulated) :class:`ShardTimeout`; without one the stall cannot
        be detected and the attempt simply completes.
        """
        parent_pid = os.getpid()
        for arena_attempt in range(1 + self._max_retries):
            attempt = state.attempts + 1
            state.attempts = attempt
            fault = self._fault_for(state.task.shard_id, attempt)
            try:
                if fault == "hang":
                    fault = None
                    if self._shard_timeout is not None:
                        raise ShardTimeout(
                            f"injected hang of shard {state.task.shard_id} "
                            f"(attempt {attempt}, in-process)"
                        )
                result = _run_shard((state.task, fault, 0.0, parent_pid))
                defect = validate_shard_result(state.task, result)
                if defect:
                    raise ShardError(
                        f"shard {state.task.shard_id} returned a corrupt payload: {defect}",
                        kind="corrupt_result",
                    )
            except ShardError as error:
                self._record_failure(state, error.kind, metrics)
                if arena_attempt < self._max_retries:
                    delay = self._backoff_delay(len(state.failures), run, metrics)
                    if delay:
                        time.sleep(delay)
                continue
            self._record_success(state, result, metrics)
            if state.failures:
                state.recovery = recovery_label
            return True
        return False

    def _execute_serial(
        self, states: list[_ShardState], run: dict, metrics: Metrics
    ) -> None:
        for state in states:
            if not self._in_process_attempts(state, run, metrics):
                raise EngineError(
                    f"shard {state.task.shard_id} failed after "
                    f"{state.attempts} attempt(s): {state.failures}"
                )

    # -- pooled execution ---------------------------------------------------

    def _execute_pooled(
        self, states: list[_ShardState], run: dict, metrics: Metrics
    ) -> None:
        by_id = {state.task.shard_id: state for state in states}
        pool = self._spawn_pool(len(states), run, metrics)
        if pool is None:
            # Pool failed to spawn: degrade to the serial path — same
            # shards, same merge, identical results.
            run["serial_fallback"] = True
            self._execute_serial(states, run, metrics)
            return
        run["pooled"] = True
        parent_pid = os.getpid()
        waiting: dict[int, float] = {shard_id: 0.0 for shard_id in sorted(by_id)}
        in_flight: dict = {}  # Future -> (shard_id, deadline)
        terminal: list[int] = []

        def schedule_failure(
            state: _ShardState, kind: str, *, consume_budget: bool = True
        ) -> None:
            # A broken-pool failure is collateral damage — the shard's
            # own attempt may have been perfectly healthy — so it
            # requeues immediately without consuming the shard's retry
            # budget; runaway kills are bounded by the rebuild cap
            # instead.
            self._record_failure(state, kind, metrics)
            if consume_budget and state.attempts >= 1 + self._max_retries:
                terminal.append(state.task.shard_id)
            else:
                delay = (
                    self._backoff_delay(len(state.failures), run, metrics)
                    if consume_budget
                    else 0.0
                )
                waiting[state.task.shard_id] = time.perf_counter() + delay

        try:
            while waiting or in_flight:
                now = time.perf_counter()
                broken = False
                # Submit every waiting shard whose backoff has elapsed.
                for shard_id in sorted(waiting):
                    if waiting[shard_id] > now:
                        continue
                    state = by_id[shard_id]
                    attempt = state.attempts + 1
                    fault = self._fault_for(shard_id, attempt)
                    payload = (state.task, fault, self._hang_seconds(), parent_pid)
                    try:
                        future = pool.submit(_run_shard, payload)
                    except (BrokenExecutor, RuntimeError):
                        broken = True
                        break
                    del waiting[shard_id]
                    state.attempts = attempt
                    deadline = (
                        now + self._shard_timeout
                        if self._shard_timeout is not None
                        else math.inf
                    )
                    in_flight[future] = (shard_id, deadline)

                if not broken:
                    if not in_flight:
                        # Everything left is backing off; sleep until the
                        # earliest shard becomes eligible again.
                        if waiting:
                            pause = min(waiting.values()) - time.perf_counter()
                            if pause > 0:
                                time.sleep(pause)
                        continue
                    horizon = min(deadline for _, deadline in in_flight.values())
                    if waiting:
                        horizon = min(horizon, min(waiting.values()))
                    timeout = None if horizon == math.inf else max(0.0, horizon - now)
                    done, _ = wait(
                        list(in_flight), timeout=timeout, return_when=FIRST_COMPLETED
                    )
                    for future in done:
                        shard_id, _ = in_flight.pop(future)
                        state = by_id[shard_id]
                        try:
                            result = future.result()
                        except BrokenExecutor:
                            broken = True
                            schedule_failure(state, "worker_death", consume_budget=False)
                            continue
                        except ShardError as error:
                            schedule_failure(state, error.kind)
                            continue
                        except Exception:
                            schedule_failure(state, "error")
                            continue
                        defect = validate_shard_result(state.task, result)
                        if defect:
                            schedule_failure(state, "corrupt_result")
                            continue
                        self._record_success(state, result, metrics)
                        if state.failures:
                            state.recovery = "retry"
                    # Abandon attempts past their deadline and requeue the
                    # shard onto the surviving workers; the stale future is
                    # simply ignored if it ever completes.
                    now = time.perf_counter()
                    for future, (shard_id, deadline) in list(in_flight.items()):
                        if now >= deadline:
                            del in_flight[future]
                            schedule_failure(by_id[shard_id], "timeout")

                if broken:
                    # A dead worker poisons the whole executor: every
                    # in-flight shard fails with it. Requeue them all and
                    # rebuild the pool.
                    for future, (shard_id, _) in list(in_flight.items()):
                        del in_flight[future]
                        schedule_failure(
                            by_id[shard_id], "pool_broken", consume_budget=False
                        )
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = None
                    if run["pool_rebuilds"] < 1 + self._max_retries:
                        pool = self._spawn_pool(len(states), run, metrics)
                    if pool is None:
                        # Rebuild cap hit or respawn failed: everything
                        # unfinished goes to the in-process rescue below.
                        terminal.extend(sorted(waiting))
                        waiting.clear()
                        break
                    run["pool_rebuilds"] += 1
                    metrics.incr("parallel.pool_rebuilds")
        finally:
            if pool is not None:
                # Never block on a hung worker; cancelled tasks were
                # already requeued or rescued.
                pool.shutdown(wait=False, cancel_futures=True)

        # Last resort: re-execute only the failed shards in-process,
        # with a fresh retry budget. The kernel is deterministic, so
        # the merge stays bit-identical to an all-pooled run.
        for shard_id in sorted(set(terminal)):
            state = by_id[shard_id]
            if state.result is not None:
                continue
            if self._in_process_attempts(
                state, run, metrics, recovery_label="in_process"
            ):
                run["in_process_rescues"] += 1
                metrics.incr("parallel.in_process_rescues")
            else:
                raise EngineError(
                    f"shard {shard_id} failed after {state.attempts} attempt(s) "
                    f"including in-process rescue: {state.failures}"
                )

    # -- execution ---------------------------------------------------------

    def _execute(
        self, states: list[_ShardState], run: dict, metrics: Metrics
    ) -> None:
        if self._workers == 1 or len(states) <= 1:
            self._execute_serial(states, run, metrics)
        else:
            self._execute_pooled(states, run, metrics)

    def search(self, genome: Sequence) -> list[OffTargetHit]:
        """Search one sequence; identical to the serial/streaming paths."""
        hits, _ = self.search_with_stats(genome)
        return hits

    def search_with_stats(
        self, genome: Sequence
    ) -> tuple[list[OffTargetHit], dict]:
        """Search plus per-shard timing/retry/hit-count stats.

        The stats dict is what :class:`~repro.engines.base.EngineResult`
        carries under ``stats["parallel"]``, what the CLI's
        ``--stats-json`` emits, and what the scaling/fault benchmarks
        report: requested workers, shard counts along both axes,
        whether a pool actually ran (or fell back to serial), per-shard
        wall seconds / attempts / failure kinds / recovery paths, the
        fault-tolerance totals, and an :class:`~repro.obs.Metrics`
        snapshot of the run.
        """
        metrics = Metrics()
        started = time.perf_counter()
        with metrics.span("shard_tasks"):
            tasks = self.shard_tasks(genome)
        states = [_ShardState(task) for task in tasks]
        run = {
            "pooled": False,
            "serial_fallback": False,
            "pool_rebuilds": 0,
            "pool_spawn_failures": 0,
            "spawn_failures_left": (
                self._fault_plan.pool_spawn_failures if self._fault_plan else 0
            ),
            "backoff_waits": 0,
            "in_process_rescues": 0,
        }
        with metrics.span("execute", shards=len(tasks)):
            self._execute(states, run, metrics)
        merge_started = time.perf_counter()
        with metrics.span("merge"):
            hits = merge_shards(
                state.result for state in states if state.result is not None
            )
        finished = time.perf_counter()
        num_batches = len(self.guide_batches)
        shard_rows = []
        for state in sorted(states, key=lambda s: s.task.shard_id):
            result = state.result
            shard_rows.append(
                {
                    "shard": state.task.shard_id,
                    "chunk_start": state.task.chunk_start,
                    "seconds": result.seconds if result else 0.0,
                    "hits": result.num_hits if result else 0,
                    "attempts": state.attempts,
                    "failures": list(state.failures),
                    "timeouts": state.timeouts,
                    "recovery": state.recovery,
                }
            )
        failure_totals: dict[str, int] = {}
        for state in states:
            for kind in state.failures:
                failure_totals[kind] = failure_totals.get(kind, 0) + 1
        stats = {
            "workers": self._workers,
            "kernel": self._kernel,
            "pooled": run["pooled"],
            "serial_fallback": run["serial_fallback"],
            "num_shards": len(tasks),
            "num_chunks": len(tasks) // num_batches if num_batches else 0,
            "num_guide_batches": num_batches,
            "chunk_length": self._chunk_length,
            "overlap": self._overlap,
            "shards": shard_rows,
            "total_shard_seconds": sum(
                state.result.seconds for state in states if state.result
            ),
            "merge_seconds": finished - merge_started,
            "wall_seconds": finished - started,
            "kernel_positions": int(metrics.counter("parallel.kernel_positions")),
            "report_events": int(metrics.counter("parallel.report_events")),
            "fault_tolerance": {
                "shard_timeout": self._shard_timeout,
                "max_retries": self._max_retries,
                "backoff_seconds": self._backoff_seconds,
                "retries": sum(max(0, state.attempts - 1) for state in states),
                "timeouts": sum(state.timeouts for state in states),
                "failures": failure_totals,
                "pool_rebuilds": run["pool_rebuilds"],
                "pool_spawn_failures": run["pool_spawn_failures"],
                "backoff_waits": run["backoff_waits"],
                "in_process_rescues": run["in_process_rescues"],
            },
            "obs": metrics.snapshot(),
        }
        return hits, stats

    def search_many(self, genomes: Iterable[Sequence]) -> list[OffTargetHit]:
        """Search several sequences (chromosomes), merged canonically."""
        hits, _ = self.search_many_with_stats(genomes)
        return hits

    def search_many_with_stats(
        self, genomes: Iterable[Sequence]
    ) -> tuple[list[OffTargetHit], list[dict]]:
        """Search several sequences; hits merged canonically, stats per sequence."""
        hits: list[OffTargetHit] = []
        per_sequence: list[dict] = []
        for genome in genomes:
            sequence_hits, stats = self.search_with_stats(genome)
            hits.extend(sequence_hits)
            per_sequence.append({"sequence": genome.name, **stats})
        return dedupe_hits(hits), per_sequence
