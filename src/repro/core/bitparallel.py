"""Bit-parallel (Shift-And) off-target matching kernel.

This is the dense, hardware-friendly execution form the automata
literature arrives at when it trades compile time for symbol-rate: the
mismatch-counting grid of :mod:`repro.core.hamming` collapses into a
handful of machine-word bitboards, and one numpy pass over packed
words evaluates 64 genome start positions at once. It replaces the
byte-wise LUT scan of :mod:`repro.core.matcher` as the default
functional kernel for **every** budget shape — mismatch-only budgets
run the thermometer-plane scan, bulged budgets run the diagonal-band
engine below — so the matcher remains selectable
(``kernel="matcher"``) purely as an independent implementation, not as
a fallback.

Bit-plane layout
----------------
A genome block of ``n`` symbols becomes five *code planes* — one
bitboard per symbol code (A, C, G, T, N), ``bit p`` set when position
``p`` carries that code — stored as little-endian ``uint64`` words so
word ``w`` holds positions ``[64w, 64w + 64)``. The planes are built
once per block (`numpy.packbits`) and shared by every guide, strand,
and pattern position of the panel.

For one strand pattern (protospacer + PAM segments, already oriented
by :func:`repro.core.compiler._segments`), position ``t``'s *match
board* is the OR of the code planes selected by the symbol's 5-bit
IUPAC mask (:func:`repro.alphabet.iupac_code_mask` — so a genome ``N``
matches only a pattern ``N``, exactly as the oracle counts it).
Shifting the board down by ``t`` bits aligns it with candidate *start*
positions: after the shift, ``bit s`` answers "does the site starting
at ``s`` match at pattern offset ``t``?".

Counting uses thermometer bit-planes, one plane per mismatch-budget
level: ``ge[j]`` has ``bit s`` set when start ``s`` has accumulated at
least ``j + 1`` mismatches, and one more plane (``exceed``) saturates
at budget + 1. Folding pattern position ``t``'s mismatch board ``x``
into the counters is ``k + 1`` word-ops::

    exceed |= ge[k-1] & x
    ge[j]  |= ge[j-1] & x      # j = k-1 .. 1
    ge[0]  |= x

Exact (PAM) positions skip the counters and AND into a single ``ok``
board instead. A start is a hit when ``ok & ~exceed`` — and its exact
mismatch count is the number of ``ge`` planes with its bit set (the
thermometer cannot saturate below ``exceed``), so hits carry the same
counts the oracle reports, for free.

Diagonal bulge bands
--------------------
A bulged budget (``r`` RNA bulges, ``d`` DNA bulges, ``k``
mismatches) runs a Wu-Manber-style banded engine instead: one
Shift-And state plane per ``(rna, dna, mismatch)`` coordinate of
:mod:`repro.core.bulge`'s grid, held as one
``(r+1, d+1, k+1, nwords)`` array of bitboards. A cell ``(r', d')``
always sits on diagonal band ``d' - r'`` — its genome offset is the
pattern position plus that band — so aligning pattern position ``i``
needs only ``r + d + 1`` shifted copies of one match board, gathered
per cell by band index. Each step folds three transition families, in
exactly :func:`repro.core.bulge._build_grid`'s order and with its
interior-only rules:

* **DNA bulge** (:func:`_band_transfer`): band ``d'`` feeds band
  ``d' + 1`` within the layer, chained ascending so bulges can stack,
  only between interior pattern positions (``1 <= i <= m - 1``);
* **match / mismatch**: AND with the band-aligned match board advances
  the layer; ANDNOT advances it one mismatch plane up (planes above
  the budget simply do not exist — exceeding paths fall off the
  array, which is the saturation rule);
* **RNA bulge**: the layer advances without consuming a genome symbol
  — plane ``(r', d')`` ORs into ``(r' + 1, d')`` — for interior
  positions only (``0 < i < m - 1``).

Acceptance masks each final plane by its delta's exact-segment (PAM)
board — PAM positions after the protospacer shift by ``delta = d' -
r'`` — and by a per-delta bounds prefix, then keeps the best profile
per (start, delta) under the canonical order (fewest total edits,
then fewest bulges, then fewest mismatches), which is bit-identical
to the banded-DP matcher and the naive oracle.

Block boundaries
----------------
The kernel is windowed, so blocks compose exactly like the streaming
path: scan blocks that overlap by ``max_site_length - 1`` symbols (the
carry — every site straddling a boundary lies wholly inside one block;
for bulged budgets the longest site is ``site_length + dna_bulges``)
and drop hits whose end falls inside a block's overlapped prefix.
:class:`~repro.core.streaming.StreamingSearch` and
:class:`~repro.core.parallel.ParallelSearch` both drive this kernel
through exactly that rule, so every execution path stays bit-identical
to the whole-genome scan and to the :class:`~repro.core.reference`
oracle — the property ``tests/differential.py`` pins across the full
engine x genome x panel x budget grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence as SequenceType, Tuple

import numpy as np

from .. import alphabet
from ..errors import EngineError
from ..genome.sequence import Sequence
from ..grna.guide import Guide
from ..grna.hit import OffTargetHit, dedupe_hits
from ..obs import Metrics
from . import matcher
from .compiler import SearchBudget, _segments

#: Selectable functional kernels, in preference order.
KERNEL_BITPARALLEL = "bitparallel"
KERNEL_MATCHER = "matcher"
KERNEL_NAMES: Tuple[str, ...] = (KERNEL_BITPARALLEL, KERNEL_MATCHER)

#: The kernel used when the caller does not pick one.
DEFAULT_KERNEL = KERNEL_BITPARALLEL

#: A compiled per-panel kernel: genome block in, deduplicated hits out.
KernelFn = Callable[[Sequence], List[OffTargetHit]]

#: Process-wide kernel-selection counters. Every block scan increments
#: ``kernel.<name>.blocks`` (plus ``kernel.bitparallel.bulged_blocks``
#: for bulged budgets), so tests and operators can assert *which*
#: kernel actually executed — the regression surface for the removed
#: bulged-budget fallback.
KERNEL_OBS = Metrics()

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def validate_kernel(name: str) -> str:
    """Return *name* if it is a known kernel, else raise :class:`EngineError`."""
    if name not in KERNEL_NAMES:
        raise EngineError(
            f"unknown kernel {name!r}; available kernels: {list(KERNEL_NAMES)}"
        )
    return name


def make_kernel(
    name: str, guides: Iterable[Guide], budget: SearchBudget
) -> KernelFn:
    """Compile *guides* + *budget* into a reusable block-scan callable.

    The returned callable has the contract of
    ``matcher.find_hits(block, guides, budget)`` with the panel bound:
    same hits, positions, strands, edit profiles, and canonical dedupe
    order. ``"bitparallel"`` precompiles the panel's pattern masks once
    so per-block work is pure vector passes — for every budget shape,
    bulged budgets included; ``"matcher"`` returns the byte-wise LUT /
    banded-DP scan unchanged.
    """
    validate_kernel(name)
    guide_list = list(guides)
    if name == KERNEL_MATCHER:
        def scan(genome: Sequence) -> List[OffTargetHit]:
            KERNEL_OBS.incr("kernel.matcher.blocks")
            return matcher.find_hits(genome, guide_list, budget)

        return scan
    return BitParallelPanel(guide_list, budget).find_hits


def find_hits(
    genome: Sequence, guides: Iterable[Guide], budget: SearchBudget
) -> list[OffTargetHit]:
    """One-shot bit-parallel scan (API parity with ``matcher.find_hits``)."""
    return make_kernel(KERNEL_BITPARALLEL, guides, budget)(genome)


# -- pattern compilation -------------------------------------------------------


@dataclass(frozen=True)
class _StrandPattern:
    """One guide strand flattened into per-position IUPAC code masks."""

    guide: Guide
    strand: str
    masks: tuple[int, ...]  # 5-bit genome-code mask per pattern position
    budgeted: tuple[bool, ...]  # does this position spend the mismatch budget?

    @property
    def total(self) -> int:
        return len(self.masks)


def _compile_strand(guide: Guide, strand: str) -> _StrandPattern:
    masks: list[int] = []
    budgeted: list[bool] = []
    for segment in _segments(guide, reverse=strand == "-"):
        for symbol in segment.text:
            masks.append(alphabet.iupac_code_mask(symbol))
            budgeted.append(segment.budgeted)
    return _StrandPattern(
        guide=guide, strand=strand, masks=tuple(masks), budgeted=tuple(budgeted)
    )


@dataclass(frozen=True)
class _BulgeLayout:
    """One strand pattern split for the diagonal-band engine.

    ``_segments`` guarantees exactly one budgeted segment (the
    protospacer), so the budgeted positions form one contiguous run at
    offset ``b_off``; exact (PAM) positions after that run shift with
    the site's length delta, positions before it do not.
    """

    b_off: int  # pattern offset of the budgeted run
    budgeted_masks: tuple[int, ...]
    exact: tuple[tuple[int, int, bool], ...]  # (offset, mask, shifts with delta)


def _bulge_layout(pattern: _StrandPattern) -> _BulgeLayout:
    b_off = pattern.budgeted.index(True)
    budgeted_masks: list[int] = []
    exact: list[tuple[int, int, bool]] = []
    for offset, (mask, is_budgeted) in enumerate(zip(pattern.masks, pattern.budgeted)):
        if is_budgeted:
            budgeted_masks.append(mask)
        else:
            exact.append((offset, mask, offset > b_off))
    return _BulgeLayout(
        b_off=b_off, budgeted_masks=tuple(budgeted_masks), exact=tuple(exact)
    )


# -- bitboard primitives -------------------------------------------------------


def _pack_code_planes(codes: np.ndarray) -> np.ndarray:
    """``(NUM_CODES, nwords)`` little-endian bitboards: bit p == (codes[p] == c)."""
    n = int(codes.size)
    nwords = (n + 63) // 64
    planes = np.zeros((alphabet.NUM_CODES, nwords), dtype=np.uint64)
    for code in range(alphabet.NUM_CODES):
        bits = np.packbits(codes == code, bitorder="little")
        padded = np.zeros(nwords * 8, dtype=np.uint8)
        padded[: bits.size] = bits
        planes[code] = padded.view(np.uint64)
    return planes


def _shift_down(words: np.ndarray, t: int) -> np.ndarray:
    """Logical right-shift of a bitboard by *t* positions (bit s := bit s+t)."""
    if t == 0:
        return words
    whole, rem = divmod(t, 64)
    out = np.zeros_like(words)
    keep = words.size - whole
    if keep <= 0:
        return out
    if rem == 0:
        out[:keep] = words[whole:]
    else:
        out[:keep] = words[whole:] >> np.uint64(rem)
        if keep > 1:
            out[: keep - 1] |= words[whole + 1 :] << np.uint64(64 - rem)
    return out


def _prefix_mask(nwords: int, count: int) -> np.ndarray:
    """Bitboard with exactly bits ``[0, count)`` set."""
    mask = np.zeros(nwords, dtype=np.uint64)
    whole, rem = divmod(count, 64)
    mask[:whole] = _ALL_ONES
    if rem and whole < nwords:
        mask[whole] = np.uint64((1 << rem) - 1)
    return mask


def _board_starts(board: np.ndarray) -> np.ndarray:
    """Sorted positions of the set bits of a little-endian bitboard."""
    hot_words = np.flatnonzero(board)
    if hot_words.size == 0:
        return np.zeros(0, dtype=np.int64)
    lanes = np.unpackbits(
        board[hot_words].view(np.uint8).reshape(-1, 8), axis=1, bitorder="little"
    ).astype(bool)
    return (hot_words[:, None] * 64 + np.arange(64, dtype=np.int64)[None, :])[lanes]


def _popcount(board: np.ndarray) -> int:
    """Total number of set bits in *board*."""
    bitwise_count = getattr(np, "bitwise_count", None)
    if bitwise_count is not None:
        return int(bitwise_count(board).sum())
    return int(np.unpackbits(board.view(np.uint8)).sum())


class _BlockPlanes:
    """One genome block's code planes plus a match-board cache.

    Every distinct IUPAC mask in the panel resolves to one OR-combined
    board per block, shared across guides, strands, and positions.
    """

    def __init__(self, codes: np.ndarray) -> None:
        self.length = int(codes.size)
        self.nwords = (self.length + 63) // 64
        self._planes = _pack_code_planes(codes)
        self._boards: dict[int, np.ndarray] = {}

    def match_board(self, mask: int) -> np.ndarray:
        """Bitboard of positions whose code satisfies the 5-bit *mask*."""
        board = self._boards.get(mask)
        if board is None:
            board = np.zeros(self.nwords, dtype=np.uint64)
            for code in range(alphabet.NUM_CODES):
                if (mask >> code) & 1:
                    board |= self._planes[code]
            self._boards[mask] = board
        return board


# -- the mismatch-only scan ----------------------------------------------------


def _scan_strand(
    planes: _BlockPlanes, pattern: _StrandPattern, max_mismatches: int
) -> tuple[np.ndarray, np.ndarray]:
    """All (starts, mismatch counts) of *pattern* in the block, sorted."""
    valid = planes.length - pattern.total + 1
    empty = np.zeros(0, dtype=np.int64)
    if valid <= 0:
        return empty, empty
    nwords = planes.nwords
    ok = np.full(nwords, _ALL_ONES, dtype=np.uint64)
    exceed = np.zeros(nwords, dtype=np.uint64)
    # ge[j]: starts with >= j + 1 mismatches so far (thermometer planes).
    ge = [np.zeros(nwords, dtype=np.uint64) for _ in range(max_mismatches)]
    for t, (mask, budgeted) in enumerate(zip(pattern.masks, pattern.budgeted)):
        board = _shift_down(planes.match_board(mask), t)
        if budgeted:
            miss = ~board
            if max_mismatches == 0:
                exceed |= miss
            else:
                exceed |= ge[max_mismatches - 1] & miss
                for j in range(max_mismatches - 1, 0, -1):
                    ge[j] |= ge[j - 1] & miss
                ge[0] |= miss
        else:
            ok &= board
    selected = ok & ~exceed & _prefix_mask(nwords, valid)
    starts = _board_starts(selected)
    if starts.size == 0:
        return empty, empty
    counts = np.zeros(starts.size, dtype=np.int64)
    byte_index = starts >> 3
    bit_shift = (starts & 7).astype(np.uint8)
    for plane in ge:
        counts += (plane.view(np.uint8)[byte_index] >> bit_shift) & 1
    return starts, counts


# -- the diagonal-band bulged scan ---------------------------------------------


def _band_transfer(reach: np.ndarray) -> None:
    """In-place DNA-bulge closure of one pattern layer.

    *reach* has shape ``(rna + 1, dna + 1, mm + 1, nwords)``. Band
    ``d`` feeds band ``d + 1``, chained ascending so one layer can
    spend several DNA bulges back-to-back — the chained any-symbol
    edges of :func:`repro.core.bulge._build_grid`. The genome offset
    step is implicit: cell ``(r, d)`` always reads offset
    ``i + d - r``, so moving to ``d + 1`` *is* consuming one symbol.
    """
    for d in range(reach.shape[1] - 1):
        reach[:, d + 1] |= reach[:, d]


def _bulged_reach(
    planes: _BlockPlanes, layout: _BulgeLayout, budget: SearchBudget
) -> np.ndarray:
    """Final-layer reachability planes ``reach[r, d, j]`` over all starts.

    Bit ``s`` of ``reach[r, d, j]`` is set when some alignment of the
    budgeted segment starting at genome position ``s + b_off`` uses
    exactly ``j`` mismatches, ``r`` RNA bulges and ``d`` DNA bulges —
    the grid of :func:`repro.core.bulge._build_grid`, one bitboard per
    state row, evaluated for 64 starts per word.
    """
    rna, dna, mm = budget.rna_bulges, budget.dna_bulges, budget.mismatches
    m = len(layout.budgeted_masks)
    nwords = planes.nwords
    reach = np.zeros((rna + 1, dna + 1, mm + 1, nwords), dtype=np.uint64)
    reach[0, 0, 0] = _ALL_ONES
    # Gather index: cell (r, d) reads the shifted board of its band
    # d - r (offset by +rna into the stacked board array).
    band_index = (np.arange(dna + 1)[None, :] - np.arange(rna + 1)[:, None]) + rna
    zero = np.zeros(nwords, dtype=np.uint64)
    for i, mask in enumerate(layout.budgeted_masks):
        if dna and 1 <= i <= m - 1:
            _band_transfer(reach)
        base = planes.match_board(mask)
        boards = np.stack(
            [
                _shift_down(base, layout.b_off + i + band) if i + band >= 0 else zero
                for band in range(-rna, dna + 1)
            ]
        )
        aligned = boards[band_index][:, :, None, :]
        nxt = reach & aligned
        if mm:
            nxt[:, :, 1:] |= reach[:, :, :mm] & ~aligned
        if rna and 0 < i < m - 1:
            nxt[1:] |= reach[:rna]
        reach = nxt
    return reach


def _bulged_accept_boards(
    planes: _BlockPlanes,
    pattern: _StrandPattern,
    layout: _BulgeLayout,
    budget: SearchBudget,
) -> Dict[Tuple[int, int, int], np.ndarray]:
    """Accepted-start bitboards per exact ``(mismatches, rna, dna)`` profile.

    Each final reach plane is masked by its delta's exact-segment (PAM)
    board — positions after the protospacer shift by ``delta = d - r``
    — and by the per-delta bounds prefix (a site of length ``total +
    delta`` must end inside the block), mirroring the matcher's
    per-delta ``pam_ok`` arrays. Empty boards are dropped.
    """
    rna, dna, mm = budget.rna_bulges, budget.dna_bulges, budget.mismatches
    total = pattern.total
    if planes.length < total - rna:
        return {}
    reach = _bulged_reach(planes, layout, budget)
    nwords = planes.nwords
    ok: dict[int, np.ndarray] = {}
    for delta in range(-rna, dna + 1):
        limit = planes.length - (total + delta) + 1
        board = _prefix_mask(nwords, min(max(limit, 0), planes.length))
        for offset, mask, shifts in layout.exact:
            shift = offset + (delta if shifts else 0)
            if shift < 0:
                # Only possible when the RNA budget exceeds the
                # protospacer's interior — those bands are unreachable.
                board = np.zeros(nwords, dtype=np.uint64)
                break
            board = board & _shift_down(planes.match_board(mask), shift)
        ok[delta] = board
    accepted: Dict[Tuple[int, int, int], np.ndarray] = {}
    for r in range(rna + 1):
        for d in range(dna + 1):
            pam = ok[d - r]
            for j in range(mm + 1):
                selected = reach[r, d, j] & pam
                if selected.any():
                    accepted[(j, r, d)] = selected
    return accepted


def _scan_strand_bulged(
    planes: _BlockPlanes,
    pattern: _StrandPattern,
    layout: _BulgeLayout,
    budget: SearchBudget,
) -> List[Tuple[np.ndarray, int, int, int, int]]:
    """Best-profile rows ``(starts, mismatches, rna, dna, delta)``.

    Per (start, delta) only the canonically best profile is kept —
    fewest total edits, then fewest bulges, then fewest mismatches —
    exactly the matcher's and the oracle's selection rule.
    """
    accepted = _bulged_accept_boards(planes, pattern, layout, budget)
    rows: List[Tuple[np.ndarray, int, int, int, int]] = []
    for delta in range(-budget.rna_bulges, budget.dna_bulges + 1):
        profiles = sorted(
            (key for key in accepted if key[2] - key[1] == delta),
            key=lambda key: (key[0] + key[1] + key[2], key[1] + key[2], key[0]),
        )
        chosen: np.ndarray | None = None
        for j, r, d in profiles:
            selected = accepted[(j, r, d)]
            if chosen is not None:
                selected = selected & ~chosen
            starts = _board_starts(selected)
            if starts.size == 0:
                continue
            chosen = selected if chosen is None else chosen | selected
            rows.append((starts, j, r, d, delta))
    return rows


class BitParallelPanel:
    """A guide panel compiled for the bit-parallel kernel.

    Compile once (pattern masks for every guide x strand, plus the
    diagonal-band layouts when the budget allows bulges), then call
    :meth:`find_hits` per genome block: the block's code planes and
    match boards are built once and shared by the whole panel, which is
    what makes the per-block work a handful of dense vector passes.
    Bulged budgets run the banded engine natively — there is no
    matcher fallback.
    """

    def __init__(self, guides: Iterable[Guide], budget: SearchBudget) -> None:
        guide_list = list(guides)
        if not guide_list:
            raise EngineError("bit-parallel kernel needs at least one guide")
        self._budget = budget
        self._patterns: tuple[_StrandPattern, ...] = tuple(
            _compile_strand(guide, strand)
            for guide in guide_list
            for strand in ("+", "-")
        )
        self._layouts: tuple[_BulgeLayout, ...] = (
            tuple(_bulge_layout(pattern) for pattern in self._patterns)
            if budget.has_bulges
            else ()
        )

    @property
    def budget(self) -> SearchBudget:
        return self._budget

    @property
    def num_patterns(self) -> int:
        return len(self._patterns)

    def find_hits(self, genome: Sequence) -> list[OffTargetHit]:
        """All hits of the panel in *genome*, canonically deduped + sorted."""
        bulged = self._budget.has_bulges
        KERNEL_OBS.incr("kernel.bitparallel.blocks")
        if bulged:
            KERNEL_OBS.incr("kernel.bitparallel.bulged_blocks")
        if len(genome) == 0:
            return []
        planes = _BlockPlanes(genome.codes)
        text = genome.text
        hits: list[OffTargetHit] = []
        for index, pattern in enumerate(self._patterns):
            reverse = pattern.strand == "-"
            if bulged:
                for starts, mismatches, rna, dna, delta in _scan_strand_bulged(
                    planes, pattern, self._layouts[index], self._budget
                ):
                    length = pattern.total + delta
                    for start in starts.tolist():
                        site = text[start : start + length]
                        if reverse:
                            site = alphabet.reverse_complement(site)
                        hits.append(
                            OffTargetHit(
                                guide_name=pattern.guide.name,
                                sequence_name=genome.name,
                                strand=pattern.strand,
                                start=start,
                                end=start + length,
                                mismatches=mismatches,
                                rna_bulges=rna,
                                dna_bulges=dna,
                                site=site,
                            )
                        )
                continue
            starts_array, counts = _scan_strand(
                planes, pattern, self._budget.mismatches
            )
            total = pattern.total
            for start, mismatches in zip(starts_array.tolist(), counts.tolist()):
                site = text[start : start + total]
                if reverse:
                    site = alphabet.reverse_complement(site)
                hits.append(
                    OffTargetHit(
                        guide_name=pattern.guide.name,
                        sequence_name=genome.name,
                        strand=pattern.strand,
                        start=start,
                        end=start + total,
                        mismatches=mismatches,
                        site=site,
                    )
                )
        return dedupe_hits(hits)

    def count_report_rows(self, genome: Sequence) -> int:
        """Pre-dedup report events for this panel over *genome*.

        For bulged budgets this counts every feasible edit profile per
        (start, delta) — the accept-row activations the spatial
        reporting models charge for — matching the matcher's
        ``all_profiles`` enumeration bit for bit.
        """
        if len(genome) == 0:
            return 0
        planes = _BlockPlanes(genome.codes)
        events = 0
        for index, pattern in enumerate(self._patterns):
            if self._budget.has_bulges:
                boards = _bulged_accept_boards(
                    planes, pattern, self._layouts[index], self._budget
                )
                events += sum(_popcount(board) for board in boards.values())
            else:
                starts, _ = _scan_strand(planes, pattern, self._budget.mismatches)
                events += int(starts.size)
        return events


def count_report_rows(
    genome: Sequence, guides: SequenceType[Guide], budget: SearchBudget
) -> int:
    """Pre-dedup report events (API parity with ``matcher.count_report_rows``)."""
    guide_list = list(guides)
    if not guide_list:
        return 0
    return BitParallelPanel(guide_list, budget).count_report_rows(genome)
