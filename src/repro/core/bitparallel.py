"""Bit-parallel (Shift-And) off-target matching kernel.

This is the dense, hardware-friendly execution form the automata
literature arrives at when it trades compile time for symbol-rate: the
mismatch-counting grid of :mod:`repro.core.hamming` collapses into a
handful of machine-word bitboards, and one numpy pass over packed
words evaluates 64 genome start positions at once. It replaces the
byte-wise LUT scan of :mod:`repro.core.matcher` as the default
functional kernel; the matcher remains selectable (``kernel="matcher"``)
and is the fallback for bulged budgets, which the bit-plane encoding
does not cover.

Bit-plane layout
----------------
A genome block of ``n`` symbols becomes five *code planes* — one
bitboard per symbol code (A, C, G, T, N), ``bit p`` set when position
``p`` carries that code — stored as little-endian ``uint64`` words so
word ``w`` holds positions ``[64w, 64w + 64)``. The planes are built
once per block (`numpy.packbits`) and shared by every guide, strand,
and pattern position of the panel.

For one strand pattern (protospacer + PAM segments, already oriented
by :func:`repro.core.compiler._segments`), position ``t``'s *match
board* is the OR of the code planes selected by the symbol's 5-bit
IUPAC mask (:func:`repro.alphabet.iupac_code_mask` — so a genome ``N``
matches only a pattern ``N``, exactly as the oracle counts it).
Shifting the board down by ``t`` bits aligns it with candidate *start*
positions: after the shift, ``bit s`` answers "does the site starting
at ``s`` match at pattern offset ``t``?".

Counting uses thermometer bit-planes, one plane per mismatch-budget
level: ``ge[j]`` has ``bit s`` set when start ``s`` has accumulated at
least ``j + 1`` mismatches, and one more plane (``exceed``) saturates
at budget + 1. Folding pattern position ``t``'s mismatch board ``x``
into the counters is ``k + 1`` word-ops::

    exceed |= ge[k-1] & x
    ge[j]  |= ge[j-1] & x      # j = k-1 .. 1
    ge[0]  |= x

Exact (PAM) positions skip the counters and AND into a single ``ok``
board instead. A start is a hit when ``ok & ~exceed`` — and its exact
mismatch count is the number of ``ge`` planes with its bit set (the
thermometer cannot saturate below ``exceed``), so hits carry the same
counts the oracle reports, for free.

Block boundaries
----------------
The kernel is windowed, so blocks compose exactly like the streaming
path: scan blocks that overlap by ``max_site_length - 1`` symbols (the
carry — every site straddling a boundary lies wholly inside one block)
and drop hits whose end falls inside a block's overlapped prefix.
:class:`~repro.core.streaming.StreamingSearch` and
:class:`~repro.core.parallel.ParallelSearch` both drive this kernel
through exactly that rule, so every execution path stays bit-identical
to the whole-genome scan and to the :class:`~repro.core.reference`
oracle — the property ``tests/differential.py`` pins across the full
engine x genome x panel x budget grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Sequence as SequenceType, Tuple

import numpy as np

from .. import alphabet
from ..errors import EngineError
from ..genome.sequence import Sequence
from ..grna.guide import Guide
from ..grna.hit import OffTargetHit, dedupe_hits
from . import matcher
from .compiler import SearchBudget, _segments

#: Selectable functional kernels, in preference order.
KERNEL_BITPARALLEL = "bitparallel"
KERNEL_MATCHER = "matcher"
KERNEL_NAMES: Tuple[str, ...] = (KERNEL_BITPARALLEL, KERNEL_MATCHER)

#: The kernel used when the caller does not pick one.
DEFAULT_KERNEL = KERNEL_BITPARALLEL

#: A compiled per-panel kernel: genome block in, deduplicated hits out.
KernelFn = Callable[[Sequence], List[OffTargetHit]]

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def validate_kernel(name: str) -> str:
    """Return *name* if it is a known kernel, else raise :class:`EngineError`."""
    if name not in KERNEL_NAMES:
        raise EngineError(
            f"unknown kernel {name!r}; available kernels: {list(KERNEL_NAMES)}"
        )
    return name


def make_kernel(
    name: str, guides: Iterable[Guide], budget: SearchBudget
) -> KernelFn:
    """Compile *guides* + *budget* into a reusable block-scan callable.

    The returned callable has the contract of
    ``matcher.find_hits(block, guides, budget)`` with the panel bound:
    same hits, positions, strands, mismatch counts, and canonical
    dedupe order. ``"bitparallel"`` precompiles the panel's pattern
    masks once so per-block work is pure vector passes; ``"matcher"``
    returns the byte-wise LUT scan unchanged.
    """
    validate_kernel(name)
    guide_list = list(guides)
    if name == KERNEL_MATCHER or budget.has_bulges:
        # The bit-plane encoding counts substitutions only; bulged
        # budgets route to the banded-DP matcher so every kernel name
        # answers every budget identically.
        return lambda genome: matcher.find_hits(genome, guide_list, budget)
    return BitParallelPanel(guide_list, budget).find_hits


def find_hits(
    genome: Sequence, guides: Iterable[Guide], budget: SearchBudget
) -> list[OffTargetHit]:
    """One-shot bit-parallel scan (API parity with ``matcher.find_hits``)."""
    return make_kernel(KERNEL_BITPARALLEL, guides, budget)(genome)


# -- pattern compilation -------------------------------------------------------


@dataclass(frozen=True)
class _StrandPattern:
    """One guide strand flattened into per-position IUPAC code masks."""

    guide: Guide
    strand: str
    masks: tuple[int, ...]  # 5-bit genome-code mask per pattern position
    budgeted: tuple[bool, ...]  # does this position spend the mismatch budget?

    @property
    def total(self) -> int:
        return len(self.masks)


def _compile_strand(guide: Guide, strand: str) -> _StrandPattern:
    masks: list[int] = []
    budgeted: list[bool] = []
    for segment in _segments(guide, reverse=strand == "-"):
        for symbol in segment.text:
            masks.append(alphabet.iupac_code_mask(symbol))
            budgeted.append(segment.budgeted)
    return _StrandPattern(
        guide=guide, strand=strand, masks=tuple(masks), budgeted=tuple(budgeted)
    )


# -- bitboard primitives -------------------------------------------------------


def _pack_code_planes(codes: np.ndarray) -> np.ndarray:
    """``(NUM_CODES, nwords)`` little-endian bitboards: bit p == (codes[p] == c)."""
    n = int(codes.size)
    nwords = (n + 63) // 64
    planes = np.zeros((alphabet.NUM_CODES, nwords), dtype=np.uint64)
    for code in range(alphabet.NUM_CODES):
        bits = np.packbits(codes == code, bitorder="little")
        padded = np.zeros(nwords * 8, dtype=np.uint8)
        padded[: bits.size] = bits
        planes[code] = padded.view(np.uint64)
    return planes


def _shift_down(words: np.ndarray, t: int) -> np.ndarray:
    """Logical right-shift of a bitboard by *t* positions (bit s := bit s+t)."""
    if t == 0:
        return words
    whole, rem = divmod(t, 64)
    out = np.zeros_like(words)
    keep = words.size - whole
    if keep <= 0:
        return out
    if rem == 0:
        out[:keep] = words[whole:]
    else:
        out[:keep] = words[whole:] >> np.uint64(rem)
        if keep > 1:
            out[: keep - 1] |= words[whole + 1 :] << np.uint64(64 - rem)
    return out


def _prefix_mask(nwords: int, count: int) -> np.ndarray:
    """Bitboard with exactly bits ``[0, count)`` set."""
    mask = np.zeros(nwords, dtype=np.uint64)
    whole, rem = divmod(count, 64)
    mask[:whole] = _ALL_ONES
    if rem and whole < nwords:
        mask[whole] = np.uint64((1 << rem) - 1)
    return mask


class _BlockPlanes:
    """One genome block's code planes plus a match-board cache.

    Every distinct IUPAC mask in the panel resolves to one OR-combined
    board per block, shared across guides, strands, and positions.
    """

    def __init__(self, codes: np.ndarray) -> None:
        self.length = int(codes.size)
        self.nwords = (self.length + 63) // 64
        self._planes = _pack_code_planes(codes)
        self._boards: dict[int, np.ndarray] = {}

    def match_board(self, mask: int) -> np.ndarray:
        """Bitboard of positions whose code satisfies the 5-bit *mask*."""
        board = self._boards.get(mask)
        if board is None:
            board = np.zeros(self.nwords, dtype=np.uint64)
            for code in range(alphabet.NUM_CODES):
                if (mask >> code) & 1:
                    board |= self._planes[code]
            self._boards[mask] = board
        return board


# -- the scan ------------------------------------------------------------------


def _scan_strand(
    planes: _BlockPlanes, pattern: _StrandPattern, max_mismatches: int
) -> tuple[np.ndarray, np.ndarray]:
    """All (starts, mismatch counts) of *pattern* in the block, sorted."""
    valid = planes.length - pattern.total + 1
    empty = np.zeros(0, dtype=np.int64)
    if valid <= 0:
        return empty, empty
    nwords = planes.nwords
    ok = np.full(nwords, _ALL_ONES, dtype=np.uint64)
    exceed = np.zeros(nwords, dtype=np.uint64)
    # ge[j]: starts with >= j + 1 mismatches so far (thermometer planes).
    ge = [np.zeros(nwords, dtype=np.uint64) for _ in range(max_mismatches)]
    for t, (mask, budgeted) in enumerate(zip(pattern.masks, pattern.budgeted)):
        board = _shift_down(planes.match_board(mask), t)
        if budgeted:
            miss = ~board
            if max_mismatches == 0:
                exceed |= miss
            else:
                exceed |= ge[max_mismatches - 1] & miss
                for j in range(max_mismatches - 1, 0, -1):
                    ge[j] |= ge[j - 1] & miss
                ge[0] |= miss
        else:
            ok &= board
    selected = ok & ~exceed & _prefix_mask(nwords, valid)
    hot_words = np.flatnonzero(selected)
    if hot_words.size == 0:
        return empty, empty
    lanes = np.unpackbits(
        selected[hot_words].view(np.uint8).reshape(-1, 8), axis=1, bitorder="little"
    ).astype(bool)
    starts = (hot_words[:, None] * 64 + np.arange(64, dtype=np.int64)[None, :])[lanes]
    counts = np.zeros(starts.size, dtype=np.int64)
    byte_index = starts >> 3
    bit_shift = (starts & 7).astype(np.uint8)
    for plane in ge:
        counts += (plane.view(np.uint8)[byte_index] >> bit_shift) & 1
    return starts, counts


class BitParallelPanel:
    """A guide panel compiled for the bit-parallel kernel.

    Compile once (pattern masks for every guide x strand), then call
    :meth:`find_hits` per genome block: the block's code planes and
    match boards are built once and shared by the whole panel, which is
    what makes the per-block work a handful of dense vector passes.
    """

    def __init__(self, guides: Iterable[Guide], budget: SearchBudget) -> None:
        guide_list = list(guides)
        if not guide_list:
            raise EngineError("bit-parallel kernel needs at least one guide")
        if budget.has_bulges:
            raise EngineError(
                "the bit-parallel kernel counts substitutions only; "
                "use make_kernel(), which routes bulged budgets to the matcher"
            )
        self._budget = budget
        self._patterns: tuple[_StrandPattern, ...] = tuple(
            _compile_strand(guide, strand)
            for guide in guide_list
            for strand in ("+", "-")
        )

    @property
    def budget(self) -> SearchBudget:
        return self._budget

    @property
    def num_patterns(self) -> int:
        return len(self._patterns)

    def find_hits(self, genome: Sequence) -> list[OffTargetHit]:
        """All hits of the panel in *genome*, canonically deduped + sorted."""
        if len(genome) == 0:
            return []
        planes = _BlockPlanes(genome.codes)
        text = genome.text
        hits: list[OffTargetHit] = []
        for pattern in self._patterns:
            starts, counts = _scan_strand(planes, pattern, self._budget.mismatches)
            total = pattern.total
            reverse = pattern.strand == "-"
            for start, mismatches in zip(starts.tolist(), counts.tolist()):
                site = text[start : start + total]
                if reverse:
                    site = alphabet.reverse_complement(site)
                hits.append(
                    OffTargetHit(
                        guide_name=pattern.guide.name,
                        sequence_name=genome.name,
                        strand=pattern.strand,
                        start=start,
                        end=start + total,
                        mismatches=mismatches,
                        site=site,
                    )
                )
        return dedupe_hits(hits)


def count_report_rows(
    genome: Sequence, guides: SequenceType[Guide], budget: SearchBudget
) -> int:
    """Pre-dedup report events (API parity with ``matcher.count_report_rows``)."""
    if budget.has_bulges:
        return matcher.count_report_rows(genome, guides, budget)
    if len(genome) == 0:
        return 0
    planes = _BlockPlanes(genome.codes)
    events = 0
    for guide in guides:
        for strand in ("+", "-"):
            starts, _ = _scan_strand(
                planes, _compile_strand(guide, strand), budget.mismatches
            )
            events += int(starts.size)
    return events
