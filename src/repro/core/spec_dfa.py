"""Reference DFA built directly from the budget semantics.

This is the equivalence prover's independent oracle automaton. Where
:mod:`repro.core.compiler` builds an NFA out of CharClass edges and
epsilon skips and then determinises it, this module never touches the
NFA machinery at all: it runs a direct subset construction over
*alignment threads* — tuples ``(strand, position, mismatches,
rna_bulges, dna_bulges)`` — whose stepping rules are transcribed
straight from the budget definition:

* a thread consumes a genome symbol by matching its IUPAC class
  (:func:`repro.alphabet.iupac_code_mask`), or by spending one
  mismatch inside the budgeted segment;
* an RNA bulge skips an interior protospacer position without
  consuming input (``0 < i < m-1``, mirroring ``interior_skip`` in
  :mod:`repro.core.bulge`);
* a DNA bulge consumes any symbol without advancing the pattern
  (``1 <= i <= m-1``, mirroring ``interior_insert``);
* a thread that consumes the final pattern position fires a
  :class:`~repro.core.labels.MatchLabel` carrying its full edit
  profile and consumed length (pattern length + DNA − RNA bulges).

Because both strands' threads run in one machine and start threads are
re-injected on every step, the result is a *search* DFA with the same
Moore semantics as :func:`repro.automata.dfa.determinize` output:
labels fire on entry-by-consumption. Proving it isomorphic (after
minimisation) to the compiled guide's DFA therefore proves the
compiled automaton recognises exactly the within-budget off-target
language.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import alphabet
from ..automata.dfa import Dfa
from ..errors import StateBlowupError
from ..grna.guide import Guide
from .compiler import SearchBudget, _segments
from .labels import MatchLabel

#: One in-flight alignment: (strand index, pattern position, mismatches,
#: RNA bulges, DNA bulges). Position counts consumed pattern symbols.
Thread = tuple[int, int, int, int, int]

#: A spec-DFA state: live threads plus the labels fired on entry.
SpecState = tuple[frozenset[Thread], frozenset[MatchLabel]]

_STRANDS = ("+", "-")


@dataclass(frozen=True)
class _StrandProgram:
    """One strand's pattern, flattened to per-position stepping rules."""

    strand: str
    masks: tuple[int, ...]
    budgeted: tuple[bool, ...]
    can_skip: tuple[bool, ...]
    can_insert: tuple[bool, ...]

    @property
    def length(self) -> int:
        return len(self.masks)


def _strand_program(guide: Guide, strand: str) -> _StrandProgram:
    masks: list[int] = []
    budgeted: list[bool] = []
    can_skip: list[bool] = []
    can_insert: list[bool] = []
    for segment in _segments(guide, reverse=strand == "-"):
        m = len(segment.text)
        for i, symbol in enumerate(segment.text):
            masks.append(alphabet.iupac_code_mask(symbol))
            budgeted.append(segment.budgeted)
            can_skip.append(segment.budgeted and 0 < i < m - 1)
            can_insert.append(segment.budgeted and 1 <= i <= m - 1)
    return _StrandProgram(
        strand=strand,
        masks=tuple(masks),
        budgeted=tuple(budgeted),
        can_skip=tuple(can_skip),
        can_insert=tuple(can_insert),
    )


def _close(
    threads: frozenset[Thread],
    programs: tuple[_StrandProgram, ...],
    budget: SearchBudget,
) -> frozenset[Thread]:
    """RNA-bulge closure: follow every affordable interior skip."""
    if budget.rna_bulges == 0:
        return threads
    out = set(threads)
    stack = list(threads)
    while stack:
        s, pos, j, r, d = stack.pop()
        if r < budget.rna_bulges and programs[s].can_skip[pos]:
            skipped = (s, pos + 1, j, r + 1, d)
            if skipped not in out:
                out.add(skipped)
                stack.append(skipped)
    return frozenset(out)


def _advance(
    threads: frozenset[Thread],
    code: int,
    programs: tuple[_StrandProgram, ...],
    budget: SearchBudget,
    guide_name: str,
) -> tuple[set[Thread], set[MatchLabel]]:
    """Step every thread on one genome symbol; collect fired labels."""
    moved: set[Thread] = set()
    labels: set[MatchLabel] = set()

    def land(program: _StrandProgram, s: int, pos: int, j: int, r: int, d: int) -> None:
        if pos == program.length:
            labels.add(
                MatchLabel(
                    guide_name=guide_name,
                    strand=program.strand,
                    mismatches=j,
                    rna_bulges=r,
                    dna_bulges=d,
                    consumed=program.length + d - r,
                )
            )
        else:
            moved.add((s, pos, j, r, d))

    for s, pos, j, r, d in threads:
        program = programs[s]
        if d < budget.dna_bulges and program.can_insert[pos]:
            moved.add((s, pos, j, r, d + 1))
        if (program.masks[pos] >> code) & 1:
            land(program, s, pos + 1, j, r, d)
        elif program.budgeted[pos] and j < budget.mismatches:
            land(program, s, pos + 1, j + 1, r, d)
    return moved, labels


def spec_state_space(guide: Guide, budget: SearchBudget) -> int:
    """Upper bound on distinct alignment threads (not DFA states).

    Used by the prover to report how large the semantic product space
    is before committing to a bounded subset construction over it.
    """
    positions = guide.site_length + 1
    return (
        len(_STRANDS)
        * positions
        * (budget.mismatches + 1)
        * (budget.rna_bulges + 1)
        * (budget.dna_bulges + 1)
    )


def build_spec_dfa(
    guide: Guide,
    budget: SearchBudget,
    *,
    max_states: int | None = None,
) -> Dfa:
    """Subset-construct the budget-semantics reference DFA for *guide*.

    The construction shares no code with the compiler's NFA builders:
    states are sets of alignment threads stepped by the rules above,
    plus the label set fired on entry (part of state identity, so the
    result is a well-formed Moore machine). Start threads are
    re-injected every step, giving unanchored search semantics.

    ``max_states`` bounds the construction; exceeding it raises
    :class:`~repro.errors.StateBlowupError`.
    """
    programs = tuple(_strand_program(guide, strand) for strand in _STRANDS)
    start_threads = _close(
        frozenset((s, 0, 0, 0, 0) for s in range(len(programs))), programs, budget
    )
    start: SpecState = (start_threads, frozenset())

    index_of: dict[SpecState, int] = {start: 0}
    worklist: list[SpecState] = [start]
    rows: list[list[int]] = []
    accepts: dict[int, tuple[MatchLabel, ...]] = {}

    while worklist:
        state = worklist.pop()
        threads = state[0]
        row = [0] * alphabet.NUM_CODES
        for code in range(alphabet.NUM_CODES):
            moved, labels = _advance(threads, code, programs, budget, guide.name)
            entered = _close(frozenset(moved), programs, budget)
            successor: SpecState = (entered | start_threads, frozenset(labels))
            slot = index_of.get(successor)
            if slot is None:
                slot = len(index_of)
                if max_states is not None and slot >= max_states:
                    raise StateBlowupError(
                        f"spec-DFA construction exceeded {max_states} states"
                    )
                index_of[successor] = slot
                worklist.append(successor)
                if labels:
                    accepts[slot] = tuple(sorted(labels, key=repr))
            row[code] = slot
        while len(rows) <= index_of[state]:
            rows.append([0] * alphabet.NUM_CODES)
        rows[index_of[state]] = row

    table = np.array(rows, dtype=np.int64)
    return Dfa(table, 0, accepts)
