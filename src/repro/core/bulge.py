"""The mismatch-and-bulge search automaton.

Extends the Hamming grid of :mod:`repro.core.hamming` with bulge rows,
matching the search modes of CasOT (the only baseline that handles
indels):

* an **RNA bulge** leaves one guide base unpaired — the genomic site is
  one base *shorter*. In automaton terms: skip a pattern position
  without consuming a genome symbol (an epsilon edge).
* a **DNA bulge** leaves one genome base unpaired — the site is one
  base *longer*. In automaton terms: consume one genome symbol (any
  base) without advancing the pattern.

Bulges are confined to the interior of the protospacer (a bulge at
either end is indistinguishable from a shifted or shortened site, so
tools exclude them), never occur in the PAM, and draw on their own
budgets, separate from the mismatch budget.

The state space is the grid ``(i, j, r, d)``: pattern position,
mismatches, RNA bulges, DNA bulges. Rows with distinct ``(j, r, d)``
end in distinct accept states, so a report still identifies its full
edit profile with no counters.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..automata.charclass import CharClass
from ..automata.nfa import Nfa
from ..errors import CompileError
from .hamming import PatternSegment
from .labels import MatchLabel


@dataclass(frozen=True)
class BulgeBudget:
    """Separate budgets for the two bulge kinds."""

    rna: int = 0
    dna: int = 0

    def __post_init__(self) -> None:
        if self.rna < 0 or self.dna < 0:
            raise CompileError("bulge budgets must be non-negative")

    @property
    def total(self) -> int:
        return self.rna + self.dna


def build_bulge_nfa(
    segments: list[PatternSegment],
    max_mismatches: int,
    bulges: BulgeBudget,
    *,
    guide_name: str,
    strand: str,
) -> Nfa:
    """Compile *segments* into a mismatch+bulge search NFA.

    Exactly one segment must be budgeted (the protospacer); bulge and
    mismatch budgets apply inside it only. Accept labels carry the full
    ``(mismatches, rna_bulges, dna_bulges)`` profile and the consumed
    genome length (pattern length + DNA bulges − RNA bulges).
    """
    if max_mismatches < 0:
        raise CompileError("mismatch budget must be non-negative")
    if strand not in ("+", "-"):
        raise CompileError(f"strand must be '+' or '-', got {strand!r}")
    budgeted_count = sum(1 for segment in segments if segment.budgeted)
    if budgeted_count != 1:
        raise CompileError(
            f"bulge compilation requires exactly one budgeted segment, got {budgeted_count}"
        )
    total_length = sum(len(segment.text) for segment in segments)

    nfa = Nfa()
    start = nfa.add_state("start")
    nfa.mark_start(start, all_input=True)
    # frontier: (j, r, d) -> state id.
    frontier: dict[tuple[int, int, int], int] = {(0, 0, 0): start}

    for segment in segments:
        if segment.budgeted:
            frontier = _build_grid(
                nfa, segment.text, frontier, max_mismatches, bulges
            )
        else:
            for symbol in segment.text:
                symbol_class = CharClass.from_iupac(symbol)
                next_frontier: dict[tuple[int, int, int], int] = {}
                for key, state in frontier.items():
                    target = nfa.add_state(f"x{key}")
                    nfa.add_transition(state, symbol_class, target)
                    next_frontier[key] = target
                frontier = next_frontier

    for (j, r, d), state in sorted(frontier.items()):
        nfa.mark_accept(
            state,
            MatchLabel(
                guide_name=guide_name,
                strand=strand,
                mismatches=j,
                rna_bulges=r,
                dna_bulges=d,
                consumed=total_length + d - r,
            ),
        )
    return nfa


def _build_grid(
    nfa: Nfa,
    pattern: str,
    entry: dict[tuple[int, int, int], int],
    max_mismatches: int,
    bulges: BulgeBudget,
) -> dict[tuple[int, int, int], int]:
    """Lay down the (i, j, r, d) grid; return the exit frontier."""
    m = len(pattern)
    if m < 1:
        raise CompileError("budgeted segment must be non-empty")
    # layers[i][(j, r, d)] -> state id; layer 0 is the entry frontier.
    layer: dict[tuple[int, int, int], int] = dict(entry)

    def interior_skip(i: int) -> bool:
        # RNA bulge skips pattern position i; termini excluded.
        return 0 < i < m - 1

    def interior_insert(i: int) -> bool:
        # DNA bulge inserts between positions i-1 and i; termini excluded.
        return 1 <= i <= m - 1

    for i in range(m):
        match_class = CharClass.from_iupac(pattern[i])
        mismatch_class = CharClass.mismatch_of(pattern[i])
        # DNA bulges within the current layer: ascending d so each new
        # state can itself bulge again up to the budget.
        if interior_insert(i) and bulges.dna:
            for d in range(bulges.dna):
                for (j, r, dd), state in list(layer.items()):
                    if dd != d:
                        continue
                    key = (j, r, d + 1)
                    target = layer.get(key)
                    if target is None:
                        target = nfa.add_state(f"i{i}b{key}")
                        layer[key] = target
                    nfa.add_transition(state, CharClass.any(), target)
        next_layer: dict[tuple[int, int, int], int] = {}

        def state_for(key: tuple[int, int, int]) -> int:
            state = next_layer.get(key)
            if state is None:
                state = nfa.add_state(f"i{i + 1}s{key}")
                next_layer[key] = state
            return state

        for (j, r, d), state in layer.items():
            nfa.add_transition(state, match_class, state_for((j, r, d)))
            if j < max_mismatches and mismatch_class:
                nfa.add_transition(state, mismatch_class, state_for((j + 1, r, d)))
            if r < bulges.rna and interior_skip(i):
                nfa.add_epsilon(state, state_for((j, r + 1, d)))
        layer = next_layer
    return layer
