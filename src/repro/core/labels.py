"""Accept labels attached to compiled search automata.

A report event from any engine is a ``(position, MatchLabel)`` pair;
the label carries everything needed to reconstruct the genomic hit —
which guide, which strand, the edit counts of the accepting automaton
row, and how many genome symbols the accepting path consumed (which
differs from the site length exactly by the bulge counts).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class MatchLabel:
    """Identity of one accepting automaton row.

    Attributes
    ----------
    guide_name:
        The guide whose automaton accepted.
    strand:
        ``"+"`` when the forward-pattern automaton accepted, ``"-"``
        for the reverse-complement-pattern automaton.
    mismatches, rna_bulges, dna_bulges:
        Edit counts of the accepting row.
    consumed:
        Genome symbols consumed by the accepting path: site length
        plus DNA bulges minus RNA bulges. A report at stream position
        ``p`` denotes the genomic span ``[p + 1 - consumed, p + 1)``.
    """

    guide_name: str
    strand: str
    mismatches: int
    rna_bulges: int
    dna_bulges: int
    consumed: int

    @property
    def edits(self) -> int:
        """Total edit count."""
        return self.mismatches + self.rna_bulges + self.dna_bulges

    def span_at(self, report_position: int) -> tuple[int, int]:
        """Half-open genomic span for a report at *report_position*."""
        end = report_position + 1
        return end - self.consumed, end
