"""Core contribution: guide → search-automaton compilation and the search API."""

from .labels import MatchLabel
from .hamming import build_hamming_nfa, hamming_state_count
from .bulge import build_bulge_nfa, BulgeBudget
from .compiler import CompiledGuide, CompiledLibrary, compile_guide, compile_library
from .reference import NaiveSearcher
from .search import OffTargetSearch, SearchBudget, SearchReport
from .streaming import StreamingSearch, iter_chunks, Chunk
from .counter_design import build_counter_design, counter_design_resources

__all__ = [
    "MatchLabel",
    "build_hamming_nfa",
    "hamming_state_count",
    "build_bulge_nfa",
    "BulgeBudget",
    "CompiledGuide",
    "CompiledLibrary",
    "compile_guide",
    "compile_library",
    "NaiveSearcher",
    "OffTargetSearch",
    "SearchBudget",
    "SearchReport",
    "StreamingSearch",
    "iter_chunks",
    "Chunk",
    "build_counter_design",
    "counter_design_resources",
]
