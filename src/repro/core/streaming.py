"""Chunked (bounded-memory) genome streaming search.

Whole mammalian references do not fit comfortably in memory as code
arrays, and the original tools stream them in chunks (Cas-OFFinder's
chunked OpenCL buffers; the AP's symbol stream is inherently chunked by
DMA transfers). This module searches a reference chunk by chunk with an
overlap of ``max_site_length - 1`` symbols so sites straddling a chunk
boundary are found exactly once, and guarantees the result is identical
to a whole-sequence search — a property the test suite pins.

It also exposes the chunk iterator itself, which the examples use to
stream multi-record FASTA files without materialising chromosomes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from ..errors import EngineError
from ..genome.sequence import Sequence
from ..grna.guide import Guide
from ..grna.hit import OffTargetHit, dedupe_hits
from . import bitparallel
from .compiler import SearchBudget


@dataclass(frozen=True)
class Chunk:
    """One window of a streamed sequence.

    ``start`` is the chunk's offset in the parent sequence; the first
    ``overlap`` symbols repeat the tail of the previous chunk.
    """

    sequence: Sequence
    start: int
    overlap: int

    def __len__(self) -> int:
        return len(self.sequence)


def iter_chunks(
    genome: Sequence, *, chunk_length: int, overlap: int
) -> Iterator[Chunk]:
    """Cut *genome* into overlapping chunks.

    Every symbol position appears in at least one chunk; every window
    of length ``overlap + 1`` or less lies entirely inside some chunk.
    """
    if chunk_length <= 0:
        raise EngineError("chunk_length must be positive")
    if overlap < 0 or overlap >= chunk_length:
        raise EngineError("overlap must satisfy 0 <= overlap < chunk_length")
    total = len(genome)
    if total == 0:
        return
    step = chunk_length - overlap
    start = 0
    while True:
        end = min(start + chunk_length, total)
        codes = genome.codes[start:end]
        yield Chunk(
            sequence=Sequence(genome.name, codes.copy()),
            start=start,
            overlap=overlap if start else 0,
        )
        if end >= total:
            # The genome is fully covered; any further chunk would lie
            # wholly inside this one's span and re-report its hits.
            break
        start += step
        if total - start <= overlap:
            # A tail of at most `overlap` symbols repeats bases the
            # previous chunk already streamed, and every site inside it
            # would be span-filtered as a duplicate. With
            # 0 <= overlap < chunk_length this cannot trigger (the
            # final chunk is always at least overlap + 1 long because
            # the loop only continues while end < total), but the guard
            # keeps the no-duplicated-tail invariant explicit and makes
            # any future change to the stepping arithmetic fail safe.
            break


class StreamingSearch:
    """Bounded-memory off-target search over arbitrarily long references.

    The overlap is derived from the guide set: the longest possible
    site is ``site_length + dna_bulges``, so an overlap one shorter
    guarantees no site is split. Hits found in the overlapped prefix of
    a chunk are duplicates of the previous chunk's and are dropped by
    span filtering; remaining duplicates (none expected) are collapsed
    by the canonical dedupe.

    :meth:`search_with_stats` additionally reports per-chunk kernel
    timings, positions scanned, and report-event rates through
    :class:`repro.obs.Metrics` — the same observability surface the
    parallel executor exposes.
    """

    def __init__(
        self,
        guides: Iterable[Guide],
        budget: SearchBudget,
        *,
        chunk_length: int = 1 << 20,
        kernel: str = bitparallel.DEFAULT_KERNEL,
    ) -> None:
        guide_list = list(guides)
        if not guide_list:
            raise EngineError("streaming search needs at least one guide")
        self._guides = guide_list
        self._budget = budget
        self._kernel_name = bitparallel.validate_kernel(kernel)
        self._kernel = bitparallel.make_kernel(kernel, guide_list, budget)
        max_site = max(g.site_length for g in guide_list) + budget.dna_bulges
        self._overlap = max_site - 1
        if chunk_length <= self._overlap:
            raise EngineError(
                f"chunk_length {chunk_length} must exceed the overlap {self._overlap}"
            )
        self._chunk_length = chunk_length

    @property
    def overlap(self) -> int:
        return self._overlap

    @property
    def kernel(self) -> str:
        return self._kernel_name

    @property
    def chunk_length(self) -> int:
        return self._chunk_length

    def search(self, genome: Sequence) -> list[OffTargetHit]:
        """Search one sequence chunk-by-chunk; identical to whole-genome."""
        return dedupe_hits(self.iter_hits(genome))

    def search_with_stats(self, genome: Sequence) -> tuple[list[OffTargetHit], dict]:
        """Search plus per-chunk timing and report-rate stats.

        The hit list is identical to :meth:`search`; the stats dict
        carries one row per chunk (kernel seconds, positions, kept
        hits), the scan totals, and a :class:`repro.obs.Metrics`
        snapshot under ``"obs"``.
        """
        from ..obs import Metrics

        metrics = Metrics()
        started = time.perf_counter()
        hits: list[OffTargetHit] = []
        chunk_rows: list[dict] = []
        for chunk in iter_chunks(
            genome, chunk_length=self._chunk_length, overlap=self._overlap
        ):
            chunk_started = time.perf_counter()
            kept = list(self._chunk_hits(chunk, genome.name))
            chunk_seconds = time.perf_counter() - chunk_started
            hits.extend(kept)
            metrics.incr("streaming.chunks")
            metrics.incr("streaming.kernel_positions", len(chunk))
            metrics.incr("streaming.report_events", len(kept))
            metrics.observe("streaming.chunk_seconds", chunk_seconds)
            chunk_rows.append(
                {
                    "chunk_start": chunk.start,
                    "length": len(chunk),
                    "seconds": chunk_seconds,
                    "hits": len(kept),
                }
            )
        deduped = dedupe_hits(hits)
        wall = time.perf_counter() - started
        positions = int(metrics.counter("streaming.kernel_positions"))
        stats = {
            "kernel": self._kernel_name,
            "chunk_length": self._chunk_length,
            "overlap": self._overlap,
            "num_chunks": len(chunk_rows),
            "chunks": chunk_rows,
            "kernel_positions": positions,
            "report_events": len(deduped),
            "report_events_per_mbp": (
                1e6 * len(deduped) / positions if positions else 0.0
            ),
            "wall_seconds": wall,
            "obs": metrics.snapshot(),
        }
        return deduped, stats

    def iter_hits(self, genome: Sequence) -> Iterator[OffTargetHit]:
        """Yield hits incrementally as chunks are processed."""
        for chunk in iter_chunks(
            genome, chunk_length=self._chunk_length, overlap=self._overlap
        ):
            yield from self._chunk_hits(chunk, genome.name)

    def _chunk_hits(self, chunk: Chunk, genome_name: str) -> Iterator[OffTargetHit]:
        """One chunk's hits in absolute coordinates, boundary-deduped."""
        for hit in self._kernel(chunk.sequence):
            # A hit wholly inside the overlapped prefix was already
            # reported by the previous chunk.
            if chunk.overlap and hit.end <= chunk.overlap:
                continue
            yield OffTargetHit(
                guide_name=hit.guide_name,
                sequence_name=genome_name,
                strand=hit.strand,
                start=hit.start + chunk.start,
                end=hit.end + chunk.start,
                mismatches=hit.mismatches,
                rna_bulges=hit.rna_bulges,
                dna_bulges=hit.dna_bulges,
                site=hit.site,
            )

    def search_many(self, genomes: Iterable[Sequence]) -> list[OffTargetHit]:
        """Search several sequences (chromosomes) in one pass each."""
        hits: list[OffTargetHit] = []
        for genome in genomes:
            hits.extend(self.iter_hits(genome))
        return dedupe_hits(hits)
