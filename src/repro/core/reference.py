"""Naive reference off-target scorer — the ground-truth oracle.

This module deliberately shares no matching machinery with the automata
or the vectorised kernels: it walks every genome position with a plain
per-site check (mismatch counting, or a small dynamic program when
bulges are allowed) written directly from the match semantics:

* mismatches substitute budgeted (protospacer) positions, up to the
  mismatch budget; a genome ``N`` mismatches every concrete pattern base;
* exact (PAM) segments must satisfy their IUPAC classes outright;
* an RNA bulge skips one interior protospacer position (site shorter);
* a DNA bulge absorbs one extra genome base between interior
  protospacer positions (site longer);
* the reverse strand is the reverse-complement pattern scanned on the
  + strand.

It is quadratic-ish and pure Python — use it on kilobase inputs as the
oracle in tests and agreement benchmarks, not on full genomes.
"""

from __future__ import annotations

from typing import Iterable

from .. import alphabet
from ..genome.sequence import Sequence
from ..grna.guide import Guide
from ..grna.hit import OffTargetHit, dedupe_hits
from .compiler import SearchBudget, _segments
from .hamming import PatternSegment


class NaiveSearcher:
    """Exhaustive per-position scorer for a guide set."""

    def __init__(self, budget: SearchBudget) -> None:
        self._budget = budget

    @property
    def budget(self) -> SearchBudget:
        return self._budget

    def search(self, genome: Sequence, guides: Iterable[Guide]) -> list[OffTargetHit]:
        """Return the deduplicated hit list for *guides* over *genome*."""
        hits: list[OffTargetHit] = []
        text = genome.text
        for guide in guides:
            for strand in ("+", "-"):
                hits.extend(self._search_strand(text, genome.name, guide, strand))
        return dedupe_hits(hits)

    # -- per-strand scan ---------------------------------------------------

    def _search_strand(
        self, text: str, sequence_name: str, guide: Guide, strand: str
    ) -> list[OffTargetHit]:
        budget = self._budget
        segments = _segments(guide, reverse=strand == "-")
        base_length = sum(len(segment.text) for segment in segments)
        deltas = range(-budget.rna_bulges, budget.dna_bulges + 1)
        hits: list[OffTargetHit] = []
        for start in range(len(text)):
            for delta in deltas:
                site_length = base_length + delta
                end = start + site_length
                if site_length < 1 or end > len(text):
                    continue
                profiles = site_profiles(text, start, segments, delta, budget)
                if not profiles:
                    continue
                best = min(profiles, key=lambda p: (sum(p), p[1] + p[2], p[0]))
                site = text[start:end]
                if strand == "-":
                    site = alphabet.reverse_complement(site)
                hits.append(
                    OffTargetHit(
                        guide_name=guide.name,
                        sequence_name=sequence_name,
                        strand=strand,
                        start=start,
                        end=end,
                        mismatches=best[0],
                        rna_bulges=best[1],
                        dna_bulges=best[2],
                        site=site,
                    )
                )
        return hits


def site_profiles(
    text: str,
    start: int,
    segments: list[PatternSegment],
    delta: int,
    budget: SearchBudget,
) -> set[tuple[int, int, int]]:
    """Feasible (mismatches, rna, dna) profiles with ``dna - rna == delta``.

    Direct per-site check of one candidate span against the segment
    pattern; shared by the oracle and by the CasOT baseline's
    verification stage (real CasOT verifies candidates the same way).
    """
    cursor = start
    profiles: set[tuple[int, int, int]] | None = None
    for segment in segments:
        if segment.budgeted:
            window = text[cursor : cursor + len(segment.text) + delta]
            profiles = _budgeted_profiles(
                segment.text,
                window,
                budget.mismatches,
                budget.rna_bulges,
                budget.dna_bulges,
            )
            cursor += len(segment.text) + delta
        else:
            for symbol in segment.text:
                if not alphabet.iupac_matches(symbol, text[cursor]):
                    return set()
                cursor += 1
    if profiles is None:  # no budgeted segment: exact-only pattern
        return {(0, 0, 0)} if delta == 0 else set()
    return {p for p in profiles if p[2] - p[1] == delta}


def _budgeted_profiles(
    pattern: str, window: str, max_mismatches: int, max_rna: int, max_dna: int
) -> set[tuple[int, int, int]]:
    """All feasible edit profiles aligning *pattern* over all of *window*."""
    m = len(pattern)
    n = len(window)
    if n < m - max_rna or n > m + max_dna:
        return set()
    # reach[(i, g)] = set of (j, r, d) profiles aligning pattern[:i] to window[:g].
    reach: dict[tuple[int, int], set[tuple[int, int, int]]] = {(0, 0): {(0, 0, 0)}}
    for i in range(m + 1):
        for g in range(n + 1):
            profiles = reach.get((i, g))
            if not profiles:
                continue
            # DNA bulge: absorb window[g] without advancing the pattern
            # (interior only: between pattern positions, 1 <= i <= m-1).
            if g < n and 1 <= i <= m - 1:
                bucket = reach.setdefault((i, g + 1), set())
                for j, r, d in profiles:
                    if d < max_dna:
                        bucket.add((j, r, d + 1))
            if i < m:
                # RNA bulge: skip interior pattern position i.
                if 0 < i < m - 1:
                    bucket = reach.setdefault((i + 1, g), set())
                    for j, r, d in profiles:
                        if r < max_rna:
                            bucket.add((j, r + 1, d))
                if g < n:
                    matches = alphabet.iupac_matches(pattern[i], window[g])
                    bucket = reach.setdefault((i + 1, g + 1), set())
                    for j, r, d in profiles:
                        if matches:
                            bucket.add((j, r, d))
                        elif j < max_mismatches:
                            bucket.add((j + 1, r, d))
    return reach.get((m, n), set())
