"""Vectorised off-target matching kernel.

This is the functional workhorse behind every automata engine's
``search``: a numpy implementation of exactly the match semantics the
automata encode (and :mod:`repro.core.reference` oracles), fast enough
for multi-megabase synthetic genomes. The engines differ in *execution
model* — cycle behaviour, capacity, timing — which their simulators and
timing models capture; the *language accepted* is identical, so they
share this kernel for large-input hit enumeration. Property tests pin
the kernel against both the oracle and direct automaton runs.

The mismatch-only path is a shifted-comparison scan (one pass per
pattern position). The bulge path prefilters by the exact (PAM)
segments, then runs the banded alignment DP vectorised across all
surviving candidate positions at once, exploiting the invariant that a
DP cell ``(i, g)`` fixes ``dna_bulges − rna_bulges = g − i``.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .. import alphabet
from ..genome.sequence import Sequence
from ..grna.guide import Guide
from ..grna.hit import OffTargetHit, dedupe_hits
from .compiler import SearchBudget, _segments
from .hamming import PatternSegment


def _match_lut(symbol: str) -> np.ndarray:
    """Boolean lookup: does genome code ``c`` satisfy IUPAC *symbol*?"""
    mask = alphabet.iupac_code_mask(symbol)
    return np.array(
        [(mask >> code) & 1 for code in range(alphabet.NUM_CODES)], dtype=bool
    )


def find_hits(
    genome: Sequence, guides: Iterable[Guide], budget: SearchBudget
) -> list[OffTargetHit]:
    """Enumerate all off-target hits of *guides* in *genome* under *budget*."""
    hits: list[OffTargetHit] = []
    for guide in guides:
        for strand in ("+", "-"):
            segments = _segments(guide, reverse=strand == "-")
            if budget.has_bulges:
                hits.extend(
                    _scan_bulged(genome, guide, strand, segments, budget)
                )
            else:
                hits.extend(
                    _scan_mismatch_only(genome, guide, strand, segments, budget)
                )
    return dedupe_hits(hits)


def count_report_rows(
    genome: Sequence, guides: Iterable[Guide], budget: SearchBudget
) -> int:
    """Total accept-state activations (pre-dedup report events).

    Each hit span activates one accept row per feasible edit profile;
    this is the quantity the spatial reporting models charge for, and it
    exceeds the deduplicated hit count whenever bulge paths overlap.
    """
    events = 0
    for guide in guides:
        for strand in ("+", "-"):
            segments = _segments(guide, reverse=strand == "-")
            if budget.has_bulges:
                raw = _scan_bulged(genome, guide, strand, segments, budget, all_profiles=True)
            else:
                raw = _scan_mismatch_only(genome, guide, strand, segments, budget)
            events += len(raw)
    return events


# -- mismatch-only path ------------------------------------------------------


def _scan_mismatch_only(
    genome: Sequence,
    guide: Guide,
    strand: str,
    segments: list[PatternSegment],
    budget: SearchBudget,
) -> list[OffTargetHit]:
    codes = genome.codes
    total = sum(len(segment.text) for segment in segments)
    valid = len(codes) - total + 1
    if valid <= 0:
        return []
    mismatches = np.zeros(valid, dtype=np.int16)
    exact_ok = np.ones(valid, dtype=bool)
    offset = 0
    for segment in segments:
        for symbol in segment.text:
            lut = _match_lut(symbol)
            window = lut[codes[offset : offset + valid]]
            if segment.budgeted:
                mismatches += ~window
            else:
                exact_ok &= window
            offset += 1
    selected = exact_ok & (mismatches <= budget.mismatches)
    starts = np.nonzero(selected)[0]
    text = genome.text
    hits = []
    for start in starts.tolist():
        site = text[start : start + total]
        if strand == "-":
            site = alphabet.reverse_complement(site)
        hits.append(
            OffTargetHit(
                guide_name=guide.name,
                sequence_name=genome.name,
                strand=strand,
                start=start,
                end=start + total,
                mismatches=int(mismatches[start]),
                site=site,
            )
        )
    return hits


# -- bulge path ---------------------------------------------------------------


def _scan_bulged(
    genome: Sequence,
    guide: Guide,
    strand: str,
    segments: list[PatternSegment],
    budget: SearchBudget,
    *,
    all_profiles: bool = False,
) -> list[OffTargetHit]:
    codes = genome.codes
    n = len(codes)
    max_rna, max_dna, max_mm = budget.rna_bulges, budget.dna_bulges, budget.mismatches
    total = sum(len(segment.text) for segment in segments)
    deltas = list(range(-max_rna, max_dna + 1))

    budgeted = next(segment for segment in segments if segment.budgeted)
    m = len(budgeted.text)
    b_off = 0
    for segment in segments:
        if segment.budgeted:
            break
        b_off += len(segment.text)

    # Exact-segment validity per delta (segments after the budgeted one
    # shift by delta), with explicit bounds masking.
    valid = n - (total - max_rna) + 1
    if valid <= 0:
        return []
    pam_ok: dict[int, np.ndarray] = {}
    for delta in deltas:
        ok = np.ones(valid, dtype=bool)
        site_length = total + delta
        limit = n - site_length + 1
        if limit <= 0:
            pam_ok[delta] = np.zeros(valid, dtype=bool)
            continue
        ok[limit:] = False
        offset = 0
        passed_budgeted = False
        for segment in segments:
            if segment.budgeted:
                passed_budgeted = True
                offset += m
                continue
            shift = delta if passed_budgeted else 0
            for t, symbol in enumerate(segment.text):
                lut = _match_lut(symbol)
                absolute = offset + shift + t
                window = lut[codes[absolute : absolute + limit]]
                ok[:limit] &= window
            offset += len(segment.text)
        pam_ok[delta] = ok

    any_ok = np.zeros(valid, dtype=bool)
    for ok in pam_ok.values():
        any_ok |= ok
    candidates = np.nonzero(any_ok)[0]
    if candidates.size == 0:
        return []

    # Window symbols per offset g, padded with N beyond the genome end
    # (padding cannot create hits: accepts are masked by per-delta bounds).
    padded = np.concatenate(
        [codes, np.full(m + max_dna + b_off + 4, alphabet.CODE_N, dtype=np.uint8)]
    )
    window_codes = [
        padded[candidates + b_off + g] for g in range(m + max_dna)
    ]
    pattern_luts = [_match_lut(symbol) for symbol in budgeted.text]

    # Banded DP, vectorised over candidates.
    # reach[(i, g, j, r, d)] -> bool array over candidates; g - i == d - r.
    reach: dict[tuple[int, int, int, int, int], np.ndarray] = {
        (0, 0, 0, 0, 0): np.ones(candidates.size, dtype=bool)
    }

    def sink(key: tuple[int, int, int, int, int], value: np.ndarray) -> None:
        existing = reach.get(key)
        reach[key] = value.copy() if existing is None else existing | value

    for i in range(m + 1):
        for g in range(i - max_rna, i + max_dna + 1):
            if g < 0 or g > m + max_dna:
                continue
            layer_keys = [key for key in list(reach) if key[0] == i and key[1] == g]
            # DNA bulges chain within (i, g) -> (i, g+1): ascending d first.
            for key in sorted(layer_keys, key=lambda key: key[4]):
                cell = reach[key]
                _, _, j, r, d = key
                if d < max_dna and 1 <= i <= m - 1:
                    sink((i, g + 1, j, r, d + 1), cell)
            layer_keys = [key for key in list(reach) if key[0] == i and key[1] == g]
            for key in layer_keys:
                cell = reach[key]
                _, _, j, r, d = key
                if i < m and 0 < i < m - 1 and r < max_rna:
                    sink((i + 1, g, j, r + 1, d), cell)
                if i < m and g < m + max_dna:
                    matches = pattern_luts[i][window_codes[g]]
                    sink((i + 1, g + 1, j, r, d), cell & matches)
                    if j < max_mm:
                        sink((i + 1, g + 1, j + 1, r, d), cell & ~matches)

    # Assemble hits per delta, best profile first (unless all_profiles).
    text = genome.text
    hits: list[OffTargetHit] = []
    for delta in deltas:
        profiles = sorted(
            (
                key
                for key in reach
                if key[0] == m and key[1] == m + delta
            ),
            key=lambda key: (key[2] + key[3] + key[4], key[3] + key[4], key[2]),
        )
        chosen = np.zeros(candidates.size, dtype=bool)
        pam = pam_ok[delta][candidates]
        for key in profiles:
            _, _, j, r, d = key
            selected = reach[key] & pam
            if not all_profiles:
                selected = selected & ~chosen
                chosen |= selected
            for index in np.nonzero(selected)[0].tolist():
                start = int(candidates[index])
                end = start + total + delta
                site = text[start:end]
                if strand == "-":
                    site = alphabet.reverse_complement(site)
                hits.append(
                    OffTargetHit(
                        guide_name=guide.name,
                        sequence_name=genome.name,
                        strand=strand,
                        start=start,
                        end=end,
                        mismatches=j,
                        rna_bulges=r,
                        dna_bulges=d,
                        site=site,
                    )
                )
    return hits
