"""Exact k-mer seed index.

The CasOT baseline is a seed-and-extend search: it requires every
candidate off-target site to match the guide exactly over a short seed
region, finds those candidates via an index of the reference, and then
verifies the full site. This module provides that index.

The index maps every k-mer (over called bases only — windows containing
``N`` are skipped, as a seed cannot match through a gap) to the sorted
array of genome positions where it occurs.
"""

from __future__ import annotations

import numpy as np

from .. import alphabet
from ..errors import AlphabetError
from .sequence import Sequence


class KmerIndex:
    """Hash index from k-mer integer keys to genome positions.

    Keys are the base-4 packing of the k-mer (A=0, C=1, G=2, T=3); the
    positions for a key are returned in increasing order. Construction
    is a single vectorised pass, so indexing multi-megabase references
    stays fast in pure numpy.
    """

    def __init__(self, sequence: Sequence, k: int) -> None:
        if k <= 0:
            raise AlphabetError("k must be positive")
        if k > 30:
            raise AlphabetError("k larger than 30 would overflow the 64-bit key")
        self._sequence = sequence
        self._k = k
        self._positions, self._starts, self._keys = self._build()

    @property
    def k(self) -> int:
        """Seed length."""
        return self._k

    @property
    def sequence(self) -> Sequence:
        """The indexed sequence."""
        return self._sequence

    def _build(self) -> tuple[np.ndarray, np.ndarray, dict[int, int]]:
        codes = self._sequence.codes
        n = codes.size
        k = self._k
        if n < k:
            return np.empty(0, dtype=np.int64), np.zeros(1, dtype=np.int64), {}
        valid = codes != alphabet.CODE_N
        window_valid = np.ones(n - k + 1, dtype=bool)
        # A window is valid when all k of its positions are called.
        counts = np.cumsum(valid.astype(np.int64))
        window_counts = counts[k - 1 :].copy()
        window_counts[1:] -= counts[: n - k]
        window_valid = window_counts == k
        keys = np.zeros(n - k + 1, dtype=np.int64)
        safe = np.where(valid, codes, 0).astype(np.int64)
        for offset in range(k):
            keys = keys * 4 + safe[offset : offset + n - k + 1]
        positions = np.nonzero(window_valid)[0].astype(np.int64)
        keys = keys[window_valid]
        order = np.argsort(keys, kind="stable")
        keys_sorted = keys[order]
        positions_sorted = positions[order]
        unique_keys, starts = np.unique(keys_sorted, return_index=True)
        starts = np.append(starts, keys_sorted.size).astype(np.int64)
        key_to_slot = {int(key): slot for slot, key in enumerate(unique_keys)}
        return positions_sorted, starts, key_to_slot

    @staticmethod
    def pack(kmer: str) -> int:
        """Pack a concrete k-mer string into its integer key."""
        key = 0
        for symbol in kmer.upper():
            code = alphabet.code_of(symbol)
            if code == alphabet.CODE_N:
                raise AlphabetError("cannot pack a k-mer containing N")
            key = key * 4 + code
        return key

    def lookup(self, kmer: str) -> np.ndarray:
        """Return the sorted positions where *kmer* occurs (may be empty)."""
        if len(kmer) != self._k:
            raise AlphabetError(f"k-mer length {len(kmer)} != index k {self._k}")
        slot = self._keys.get(self.pack(kmer))
        if slot is None:
            return np.empty(0, dtype=np.int64)
        return self._positions[self._starts[slot] : self._starts[slot + 1]]

    def lookup_ambiguous(self, pattern: str) -> np.ndarray:
        """Return positions matching an IUPAC *pattern* of length k.

        Expands the ambiguity codes into every concrete k-mer; intended
        for low-ambiguity seeds (a fully ambiguous seed would expand to
        4^k keys and is rejected).
        """
        pattern = alphabet.validate_iupac(pattern, what="seed pattern")
        if len(pattern) != self._k:
            raise AlphabetError(f"pattern length {len(pattern)} != index k {self._k}")
        expansion = 1
        for symbol in pattern:
            expansion *= len(alphabet.iupac_bases(symbol))
            if expansion > 4096:
                raise AlphabetError("seed pattern too ambiguous to expand")
        candidates = [""]
        for symbol in pattern:
            bases = alphabet.iupac_bases(symbol)
            candidates = [prefix + base for prefix in candidates for base in bases]
        hits = [self.lookup(kmer) for kmer in candidates]
        if not hits:
            return np.empty(0, dtype=np.int64)
        merged = np.concatenate(hits)
        merged.sort()
        return merged

    def num_kmers(self) -> int:
        """Number of distinct k-mers present in the reference."""
        return len(self._keys)

    def num_positions(self) -> int:
        """Total number of indexed (valid) windows."""
        return int(self._positions.size)
