"""Genome substrate: sequences, FASTA I/O, synthetic genomes, seed index."""

from .sequence import Sequence, TwoBitSequence
from .fasta import read_fasta, write_fasta, FastaRecord
from .synthetic import SyntheticGenomeBuilder, random_genome, plant_sites
from .index import KmerIndex

__all__ = [
    "Sequence",
    "TwoBitSequence",
    "FastaRecord",
    "read_fasta",
    "write_fasta",
    "SyntheticGenomeBuilder",
    "random_genome",
    "plant_sites",
    "KmerIndex",
]
