"""Deterministic synthetic reference genomes.

The paper evaluates against the human reference genome, which is not
available offline; these generators stand in for it. They produce
genomes whose properties matter to the off-target workload:

* tunable GC content (the hit rate of a PAM like ``NGG`` scales with GC);
* interspersed repeat elements (repeats are what make off-target counts
  explode, exactly the stress case for the automata reporting path);
* runs of ``N`` (assembly gaps, which every engine must skip correctly);
* optional planted near-matches of given guides with exact mismatch and
  bulge counts, so tests can assert known ground truth.

Everything is seeded, so every test, example and benchmark is
reproducible bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import alphabet
from ..errors import AlphabetError
from .sequence import Sequence


def random_genome(
    length: int,
    *,
    seed: int = 0,
    gc_content: float = 0.41,
    name: str = "synthetic",
) -> Sequence:
    """Generate an i.i.d. random genome with the given GC content.

    ``gc_content`` defaults to the human genome's ~41%.
    """
    if length < 0:
        raise AlphabetError("genome length must be non-negative")
    if not 0.0 <= gc_content <= 1.0:
        raise AlphabetError("gc_content must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    at = (1.0 - gc_content) / 2.0
    gc = gc_content / 2.0
    codes = rng.choice(
        np.arange(4, dtype=np.uint8), size=length, p=[at, gc, gc, at]
    ).astype(np.uint8)
    return Sequence(name, codes)


@dataclass(frozen=True)
class PlantedSite:
    """Ground-truth record of a site written into a synthetic genome."""

    guide_index: int
    position: int
    strand: str
    mismatches: int
    rna_bulges: int
    dna_bulges: int
    site_text: str


class SyntheticGenomeBuilder:
    """Composable builder for realistic synthetic chromosomes.

    Typical use::

        builder = SyntheticGenomeBuilder(seed=7, gc_content=0.41)
        builder.add_background(2_000_000)
        builder.add_repeats(count=40, unit_length=300, copies=6)
        builder.add_gap(5_000)
        genome = builder.build("chrSyn1")
    """

    def __init__(self, *, seed: int = 0, gc_content: float = 0.41) -> None:
        self._rng = np.random.default_rng(seed)
        self._gc = gc_content
        self._parts: list[np.ndarray] = []

    def _draw(self, length: int) -> np.ndarray:
        at = (1.0 - self._gc) / 2.0
        gc = self._gc / 2.0
        return self._rng.choice(
            np.arange(4, dtype=np.uint8), size=length, p=[at, gc, gc, at]
        ).astype(np.uint8)

    def add_background(self, length: int) -> "SyntheticGenomeBuilder":
        """Append *length* bases of i.i.d. background sequence."""
        if length < 0:
            raise AlphabetError("background length must be non-negative")
        self._parts.append(self._draw(length))
        return self

    def add_gap(self, length: int) -> "SyntheticGenomeBuilder":
        """Append an assembly gap: *length* consecutive ``N`` symbols."""
        if length < 0:
            raise AlphabetError("gap length must be non-negative")
        self._parts.append(np.full(length, alphabet.CODE_N, dtype=np.uint8))
        return self

    def add_repeats(
        self, *, count: int, unit_length: int, copies: int, divergence: float = 0.02
    ) -> "SyntheticGenomeBuilder":
        """Append *count* repeat families.

        Each family is one random unit of ``unit_length`` bases copied
        ``copies`` times; each copy is independently mutated at rate
        *divergence*, mimicking diverged transposon copies.
        """
        if min(count, unit_length, copies) < 0:
            raise AlphabetError("repeat parameters must be non-negative")
        if not 0.0 <= divergence <= 1.0:
            raise AlphabetError("divergence must lie in [0, 1]")
        for _ in range(count):
            unit = self._draw(unit_length)
            for _ in range(copies):
                copy = unit.copy()
                flips = self._rng.random(unit_length) < divergence
                copy[flips] = (copy[flips] + self._rng.integers(1, 4, flips.sum())) % 4
                self._parts.append(copy.astype(np.uint8))
                self._parts.append(self._draw(int(self._rng.integers(20, 200))))
        return self

    def add_text(self, text: str) -> "SyntheticGenomeBuilder":
        """Append a literal sequence (for planting known sites by hand)."""
        self._parts.append(alphabet.encode(text))
        return self

    def build(self, name: str = "synthetic") -> Sequence:
        """Concatenate all parts into a single :class:`Sequence`."""
        if self._parts:
            codes = np.concatenate(self._parts)
        else:
            codes = np.empty(0, dtype=np.uint8)
        return Sequence(name, codes)


def _mutate_site(
    rng: np.random.Generator,
    site: str,
    *,
    mismatches: int,
    rna_bulges: int,
    dna_bulges: int,
    protected: set[int],
) -> str:
    """Apply the requested edits to *site*, avoiding *protected* positions.

    Mismatches substitute a different base; an RNA bulge deletes a genome
    base (the guide carries a base the site lacks); a DNA bulge inserts
    a genome base (the site carries an extra base).
    """
    chars = list(site)
    editable = [i for i in range(len(chars)) if i not in protected]
    if mismatches > len(editable):
        raise AlphabetError("too many mismatches requested for site length")
    for index in rng.choice(len(editable), size=mismatches, replace=False):
        position = editable[int(index)]
        current = chars[position]
        options = [b for b in alphabet.BASES if b != current]
        chars[position] = options[int(rng.integers(0, len(options)))]
    # Deletions (RNA bulges), applied right-to-left so indices stay valid.
    interior = [i for i in editable if 0 < i < len(site) - 1]
    del_positions = sorted(
        (interior[int(i)] for i in rng.choice(len(interior), size=rna_bulges, replace=False)),
        reverse=True,
    )
    for position in del_positions:
        del chars[position]
    # Insertions (DNA bulges).
    for _ in range(dna_bulges):
        position = int(rng.integers(1, len(chars)))
        chars.insert(position, alphabet.BASES[int(rng.integers(0, 4))])
    return "".join(chars)


def plant_sites(
    genome: Sequence,
    guides,
    *,
    per_guide: int = 1,
    mismatches: int = 0,
    rna_bulges: int = 0,
    dna_bulges: int = 0,
    seed: int = 0,
) -> tuple[Sequence, list[PlantedSite]]:
    """Overwrite random genome windows with near-matches of *guides*.

    Returns the edited genome and the ground-truth list of planted
    sites. Guides are :class:`repro.grna.Guide` objects; the planted
    site is the guide's full target (protospacer + concrete PAM) with
    exactly the requested edit counts, on a uniformly random strand.
    PAM positions are protected from edits so the plant always remains
    PAM-valid.
    """
    rng = np.random.default_rng(seed)
    codes = genome.codes.copy()
    planted: list[PlantedSite] = []
    occupied: list[tuple[int, int]] = []
    for guide_index, guide in enumerate(guides):
        for _ in range(per_guide):
            target = guide.concrete_target(rng)
            protected = set(guide.pam_positions())
            site = _mutate_site(
                rng,
                target,
                mismatches=mismatches,
                rna_bulges=rna_bulges,
                dna_bulges=dna_bulges,
                protected=protected,
            )
            strand = "+" if rng.random() < 0.5 else "-"
            text = site if strand == "+" else alphabet.reverse_complement(site)
            for _attempt in range(1000):
                position = int(rng.integers(0, len(genome) - len(text)))
                span = (position, position + len(text))
                if all(span[1] <= s or span[0] >= e for s, e in occupied):
                    break
            else:
                raise AlphabetError("could not place site without overlap; genome too small")
            occupied.append(span)
            codes[span[0] : span[1]] = alphabet.encode(text)
            planted.append(
                PlantedSite(
                    guide_index=guide_index,
                    position=position,
                    strand=strand,
                    mismatches=mismatches,
                    rna_bulges=rna_bulges,
                    dna_bulges=dna_bulges,
                    site_text=site,
                )
            )
    return Sequence(genome.name, codes), planted
