"""Sequence value types.

:class:`Sequence` is the working representation: a named, immutable DNA
string backed by a ``numpy.uint8`` code array (see :mod:`repro.alphabet`)
so engines can consume it without re-parsing.

:class:`TwoBitSequence` is the storage representation used by the
Cas-OFFinder baseline and by the memory-footprint models: four bases per
byte, with a separate bitmap marking ``N`` positions, matching how the
original tools pack the reference genome.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import alphabet
from ..errors import AlphabetError


@dataclass(frozen=True)
class Sequence:
    """An immutable named DNA sequence over ``ACGTN``.

    Parameters
    ----------
    name:
        Identifier (FASTA header word, chromosome name, ...).
    codes:
        ``uint8`` array of symbol codes; build from text with
        :meth:`from_text`.
    """

    name: str
    codes: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        codes = np.ascontiguousarray(self.codes, dtype=np.uint8)
        if codes.ndim != 1:
            raise AlphabetError("sequence codes must be one-dimensional")
        if codes.size and int(codes.max()) >= alphabet.NUM_CODES:
            raise AlphabetError("sequence codes contain out-of-range values")
        codes.setflags(write=False)
        object.__setattr__(self, "codes", codes)

    @classmethod
    def from_text(cls, name: str, text: str) -> "Sequence":
        """Build a sequence from a text string (case-insensitive)."""
        return cls(name, alphabet.encode(text))

    @property
    def text(self) -> str:
        """The sequence as an upper-case string."""
        return alphabet.decode(self.codes)

    def __len__(self) -> int:
        return int(self.codes.size)

    def __getitem__(self, index) -> str:
        if isinstance(index, slice):
            return alphabet.decode(self.codes[index])
        return alphabet.base_of(int(self.codes[index]))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Sequence):
            return NotImplemented
        return self.name == other.name and np.array_equal(self.codes, other.codes)

    def __hash__(self) -> int:
        return hash((self.name, self.codes.tobytes()))

    def window(self, start: int, length: int) -> str:
        """Return the text of the window ``[start, start + length)``.

        Raises :class:`IndexError` when the window leaves the sequence.
        """
        if start < 0 or start + length > len(self):
            raise IndexError(
                f"window [{start}, {start + length}) outside sequence of length {len(self)}"
            )
        return alphabet.decode(self.codes[start : start + length])

    def reverse_complement(self) -> "Sequence":
        """Return the reverse-complement sequence (name suffixed ``_rc``)."""
        comp = np.empty_like(self.codes)
        # A<->T (0<->3), C<->G (1<->2), N stays N (4).
        table = np.array([3, 2, 1, 0, 4], dtype=np.uint8)
        comp[:] = table[self.codes[::-1]]
        return Sequence(f"{self.name}_rc", comp)

    def gc_fraction(self) -> float:
        """Fraction of called bases (non-``N``) that are G or C."""
        called = self.codes[self.codes != alphabet.CODE_N]
        if called.size == 0:
            return 0.0
        gc = np.count_nonzero((called == alphabet.CODE_C) | (called == alphabet.CODE_G))
        return gc / called.size

    def count_n(self) -> int:
        """Number of ``N`` positions."""
        return int(np.count_nonzero(self.codes == alphabet.CODE_N))


class TwoBitSequence:
    """Four-bases-per-byte packed DNA with an ``N`` bitmap.

    This mirrors the packed-reference format the original off-target
    tools stream from disk: two bits per base (A=0, C=1, G=2, T=3) plus
    a one-bit-per-base mask of positions whose true symbol is ``N``
    (their two-bit payload is arbitrary and must be ignored).
    """

    def __init__(self, packed: np.ndarray, n_mask: np.ndarray, length: int) -> None:
        self._packed = np.ascontiguousarray(packed, dtype=np.uint8)
        self._n_mask = np.ascontiguousarray(n_mask, dtype=np.uint8)
        if length < 0:
            raise AlphabetError("length must be non-negative")
        if self._packed.size < (length + 3) // 4:
            raise AlphabetError("packed buffer shorter than declared length")
        if self._n_mask.size < (length + 7) // 8:
            raise AlphabetError("N bitmap shorter than declared length")
        self._length = length

    @classmethod
    def pack(cls, sequence: Sequence) -> "TwoBitSequence":
        """Pack a :class:`Sequence` into two-bit form."""
        codes = sequence.codes
        length = codes.size
        is_n = codes == alphabet.CODE_N
        two_bit = np.where(is_n, 0, codes).astype(np.uint8)
        padded_len = ((length + 3) // 4) * 4
        padded = np.zeros(padded_len, dtype=np.uint8)
        padded[:length] = two_bit
        quads = padded.reshape(-1, 4)
        packed = (
            quads[:, 0] | (quads[:, 1] << 2) | (quads[:, 2] << 4) | (quads[:, 3] << 6)
        ).astype(np.uint8)
        n_mask = np.packbits(is_n, bitorder="little")
        return cls(packed, n_mask, length)

    def __len__(self) -> int:
        return self._length

    @property
    def nbytes(self) -> int:
        """Storage footprint in bytes (packed payload + N bitmap)."""
        return int(self._packed.nbytes + self._n_mask.nbytes)

    @property
    def packed_bytes(self) -> bytes:
        """The packed two-bit payload as immutable bytes (wire format)."""
        return self._packed.tobytes()

    @property
    def n_mask_bytes(self) -> bytes:
        """The ``N`` bitmap as immutable bytes (wire format)."""
        return self._n_mask.tobytes()

    def unpack(self, name: str = "unpacked") -> Sequence:
        """Expand back into a :class:`Sequence`."""
        quads = np.empty((self._packed.size, 4), dtype=np.uint8)
        quads[:, 0] = self._packed & 0b11
        quads[:, 1] = (self._packed >> 2) & 0b11
        quads[:, 2] = (self._packed >> 4) & 0b11
        quads[:, 3] = (self._packed >> 6) & 0b11
        codes = quads.reshape(-1)[: self._length].copy()
        is_n = np.unpackbits(self._n_mask, bitorder="little")[: self._length]
        codes[is_n.astype(bool)] = alphabet.CODE_N
        return Sequence(name, codes)

    def base_at(self, position: int) -> str:
        """Return the symbol at *position* without unpacking everything."""
        if not 0 <= position < self._length:
            raise IndexError(f"position {position} outside packed sequence")
        if (self._n_mask[position // 8] >> (position % 8)) & 1:
            return "N"
        byte = self._packed[position // 4]
        code = (byte >> (2 * (position % 4))) & 0b11
        return alphabet.base_of(int(code))
