"""FASTA reading and writing.

Supports multi-record files, arbitrary line wrapping, blank lines, and
``;`` comment lines (an old but still-encountered FASTA dialect). The
reader validates symbols through :mod:`repro.alphabet`, so a malformed
reference fails loudly at load time rather than mid-search.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterable, Iterator, Union

from ..errors import FastaError
from .sequence import Sequence

PathOrHandle = Union[str, Path, IO[str]]


@dataclass(frozen=True)
class FastaRecord:
    """One FASTA record: identifier, free-text description, sequence."""

    identifier: str
    description: str
    sequence: Sequence

    @classmethod
    def from_parts(cls, header: str, body: str) -> "FastaRecord":
        identifier, _, description = header.partition(" ")
        if not identifier:
            raise FastaError("FASTA record has an empty identifier")
        if not body:
            raise FastaError(f"FASTA record {identifier!r} has an empty sequence")
        return cls(identifier, description.strip(), Sequence.from_text(identifier, body))


def _iter_lines(source: PathOrHandle) -> Iterator[str]:
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="ascii") as handle:
            yield from handle
    else:
        yield from source


def parse_fasta(source: PathOrHandle) -> Iterator[FastaRecord]:
    """Yield :class:`FastaRecord` objects from a path or open handle."""
    header: str | None = None
    chunks: list[str] = []
    saw_any = False
    for raw in _iter_lines(source):
        line = raw.rstrip("\n").rstrip("\r")
        if not line or line.startswith(";"):
            continue
        if line.startswith(">"):
            if header is not None:
                yield FastaRecord.from_parts(header, "".join(chunks))
            header = line[1:].strip()
            chunks = []
            saw_any = True
        else:
            if header is None:
                raise FastaError("FASTA stream has sequence data before any '>' header")
            chunks.append(line.strip())
    if header is not None:
        yield FastaRecord.from_parts(header, "".join(chunks))
    elif not saw_any:
        raise FastaError("FASTA stream contains no records")


def read_fasta(source: PathOrHandle) -> list[FastaRecord]:
    """Read every record from a FASTA path or handle into a list."""
    return list(parse_fasta(source))


def write_fasta(
    records: Iterable[Union[FastaRecord, Sequence]],
    destination: PathOrHandle,
    *,
    width: int = 70,
) -> None:
    """Write records (or bare sequences) to FASTA with *width*-wrapped lines."""
    if width <= 0:
        raise FastaError("line width must be positive")

    def emit(handle: IO[str]) -> None:
        for record in records:
            if isinstance(record, Sequence):
                header = record.name
                text = record.text
            else:
                header = record.identifier
                if record.description:
                    header = f"{header} {record.description}"
                text = record.sequence.text
            handle.write(f">{header}\n")
            for start in range(0, len(text), width):
                handle.write(text[start : start + width] + "\n")

    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="ascii") as handle:
            emit(handle)
    else:
        emit(destination)
