"""Baseline tools the paper compares against."""

from .base import Baseline, available_baselines, get_baseline
from .cas_offinder import CasOffinderBaseline
from .casot import CasotBaseline

__all__ = [
    "Baseline",
    "available_baselines",
    "get_baseline",
    "CasOffinderBaseline",
    "CasotBaseline",
]
