"""Baseline tool abstraction.

Baselines differ from :class:`repro.engines.base.Engine` in one
essential way: they do not execute the compiled automata — each
reimplements its original tool's own algorithm end to end (brute-force
position comparison for Cas-OFFinder, seed-and-extend for CasOT) and is
required by the agreement tests to find the *same hits* the automata
do. They reuse :class:`~repro.engines.base.EngineResult` so the
benchmark harness can tabulate all six tools uniformly.
"""

from __future__ import annotations

import abc

from ..core.compiler import SearchBudget
from ..engines.base import EngineResult
from ..errors import EngineError
from ..genome.sequence import Sequence
from ..grna.library import GuideLibrary


class Baseline(abc.ABC):
    """Base class for reimplemented comparison tools."""

    name: str = ""

    @abc.abstractmethod
    def search(
        self, genome: Sequence, library: GuideLibrary, budget: SearchBudget
    ) -> EngineResult:
        """Run the tool's own algorithm and return hits + modeled timing."""


_REGISTRY: dict[str, type[Baseline]] = {}


def register_baseline(baseline_class: type[Baseline]) -> type[Baseline]:
    """Class decorator adding a baseline to the registry."""
    if not baseline_class.name:
        raise EngineError(f"{baseline_class.__name__} must define a name")
    if baseline_class.name in _REGISTRY:
        raise EngineError(f"duplicate baseline name {baseline_class.name!r}")
    _REGISTRY[baseline_class.name] = baseline_class
    return baseline_class


def available_baselines() -> list[str]:
    """Registered baseline names, sorted."""
    return sorted(_REGISTRY)


def get_baseline(name: str, **kwargs) -> Baseline:
    """Instantiate a registered baseline by name."""
    try:
        baseline_class = _REGISTRY[name]
    except KeyError as exc:
        raise EngineError(
            f"unknown baseline {name!r}; available: {available_baselines()}"
        ) from exc
    return baseline_class(**kwargs)
