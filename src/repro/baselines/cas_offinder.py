"""Cas-OFFinder reimplementation.

Cas-OFFinder (Bae, Park & Kim 2014) is the brute-force OpenCL baseline
the paper compares against on the GPU. Its algorithm, reproduced here
faithfully in two stages exactly as the original kernels do:

1. **PAM scan** — every genome position is tested against the PAM
   pattern (both strands, via the forward and reverse-complement
   patterns over the + strand);
2. **mismatch count** — at every surviving position, each guide's
   protospacer is compared base-by-base and positions exceeding the
   mismatch budget are discarded.

The original supports mismatches only (no bulges), so this baseline
raises for bulged budgets — the paper likewise compares bulge searches
only against CasOT. The reference is packed 2-bit-per-base with an N
bitmap, as the original does for its chunked streaming.

Modeled time uses the calibrated end-to-end pair rate in
:class:`repro.platforms.spec.CasOffinderSpec`; measured time is the
vectorised functional run.
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from .. import alphabet
from ..core.compiler import SearchBudget, _segments
from ..core.matcher import _match_lut
from ..engines.base import EngineResult
from ..errors import EngineError
from ..genome.sequence import Sequence, TwoBitSequence
from ..grna.hit import OffTargetHit, dedupe_hits
from ..grna.library import GuideLibrary
from ..platforms.spec import CasOffinderSpec
from ..platforms.timing import TimingBreakdown, WorkloadProfile, cas_offinder_time
from .base import Baseline, register_baseline


@register_baseline
class CasOffinderBaseline(Baseline):
    """Two-stage brute-force search (GPU model)."""

    name = "cas-offinder"

    def __init__(self, spec: CasOffinderSpec | None = None) -> None:
        self._spec = spec or CasOffinderSpec()

    def search(
        self, genome: Sequence, library: GuideLibrary, budget: SearchBudget
    ) -> EngineResult:
        if budget.has_bulges:
            raise EngineError(
                "Cas-OFFinder (v2) supports mismatches only; use the CasOT "
                "baseline for bulged searches"
            )
        started = time.perf_counter()
        packed = TwoBitSequence.pack(genome)  # the original's on-disk format
        hits, candidate_count = self._scan(genome, library, budget)
        measured = time.perf_counter() - started
        profile = WorkloadProfile(
            genome_length=len(genome),
            num_guides=len(library),
            site_length=library[0].site_length,
            total_stes=0,
            total_transitions=0,
            expected_active=0.0,
        )
        modeled = cas_offinder_time(profile, self._spec)
        stats: dict[str, Any] = {
            "pam_candidates": candidate_count,
            "packed_reference_bytes": packed.nbytes,
            "positions_compared": len(genome) * len(library) * 2,
        }
        return EngineResult(
            engine=self.name,
            hits=tuple(hits),
            modeled=modeled,
            measured_seconds=measured,
            stats=stats,
        )

    def _scan(
        self, genome: Sequence, library: GuideLibrary, budget: SearchBudget
    ) -> tuple[list[OffTargetHit], int]:
        codes = genome.codes
        text = genome.text
        hits: list[OffTargetHit] = []
        candidate_count = 0
        for strand in ("+", "-"):
            # Stage 1: one PAM scan per strand, shared by every guide
            # (all guides share the library PAM, as the original requires).
            pam = library[0].pam
            segments = _segments(library[0], reverse=strand == "-")
            total = sum(len(segment.text) for segment in segments)
            valid = len(codes) - total + 1
            if valid <= 0:
                continue
            pam_ok = np.ones(valid, dtype=bool)
            offset = 0
            for segment in segments:
                if segment.budgeted:
                    offset += len(segment.text)
                    continue
                for symbol in segment.text:
                    pam_ok &= _match_lut(symbol)[codes[offset : offset + valid]]
                    offset += 1
            candidates = np.nonzero(pam_ok)[0]
            candidate_count += int(candidates.size)
            if candidates.size == 0:
                continue
            # Stage 2: per-guide mismatch counting at the candidates.
            for guide in library:
                if guide.pam.name != pam.name or guide.site_length != total:
                    raise EngineError(
                        "Cas-OFFinder requires one PAM and one guide length per run"
                    )
                guide_segments = _segments(guide, reverse=strand == "-")
                mismatches = np.zeros(candidates.size, dtype=np.int16)
                offset = 0
                for segment in guide_segments:
                    if not segment.budgeted:
                        offset += len(segment.text)
                        continue
                    for symbol in segment.text:
                        lut = _match_lut(symbol)
                        mismatches += ~lut[codes[candidates + offset]]
                        offset += 1
                keep = np.nonzero(mismatches <= budget.mismatches)[0]
                for index in keep.tolist():
                    start = int(candidates[index])
                    site = text[start : start + total]
                    if strand == "-":
                        site = alphabet.reverse_complement(site)
                    hits.append(
                        OffTargetHit(
                            guide_name=guide.name,
                            sequence_name=genome.name,
                            strand=strand,
                            start=start,
                            end=start + total,
                            mismatches=int(mismatches[index]),
                            site=site,
                        )
                    )
        return dedupe_hits(hits), candidate_count
