"""CasOT reimplementation.

CasOT (Xiao et al. 2014) is the seed-and-extend CPU baseline — the only
compared tool that, like the automata, handles DNA/RNA bulges. The
algorithm here follows its structure:

1. **Index** — the reference is indexed by exact k-mers
   (:class:`repro.genome.index.KmerIndex`).
2. **Seed** — each guide's protospacer (per strand) is split into
   ``mismatches + rna_bulges + dna_bulges + 1`` fragments. By the
   pigeonhole principle, any site within budget must contain at least
   one fragment verbatim (every mismatch or bulge disrupts at most one
   fragment), displaced by at most the net bulge count, so index
   lookups of the fragments enumerate a complete candidate set.
3. **Extend** — each candidate span is verified with the direct
   per-site check (:func:`repro.core.reference.site_profiles`), exactly
   the alignment check the original performs.

The seed weakens as budgets grow — fragments shorten, candidate counts
explode — which is the baseline's characteristic failure mode and the
motivation for the paper's single-pass automata. Modeled time charges
the calibrated Perl-era stream and per-candidate costs against the
*actual* candidate count of the run.
"""

from __future__ import annotations

import time
from typing import Any

from .. import alphabet
from ..core.compiler import SearchBudget, _segments
from ..core.reference import site_profiles
from ..engines.base import EngineResult
from ..errors import EngineError
from ..genome.index import KmerIndex
from ..genome.sequence import Sequence
from ..grna.guide import Guide
from ..grna.hit import OffTargetHit, dedupe_hits
from ..grna.library import GuideLibrary
from ..platforms.spec import CasotSpec
from ..platforms.timing import WorkloadProfile, casot_time
from .base import Baseline, register_baseline


def split_fragments(length: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(length)`` into *parts* near-equal ``(start, end)`` spans."""
    if parts <= 0 or parts > length:
        raise EngineError(
            f"cannot split a length-{length} protospacer into {parts} fragments"
        )
    base, extra = divmod(length, parts)
    spans = []
    cursor = 0
    for part in range(parts):
        size = base + (1 if part < extra else 0)
        spans.append((cursor, cursor + size))
        cursor += size
    return spans


@register_baseline
class CasotBaseline(Baseline):
    """Seed-and-extend search (single-thread CPU model)."""

    name = "casot"

    def __init__(self, spec: CasotSpec | None = None) -> None:
        self._spec = spec or CasotSpec()

    def search(
        self, genome: Sequence, library: GuideLibrary, budget: SearchBudget
    ) -> EngineResult:
        started = time.perf_counter()
        hits, candidates_verified, indexes_built = self._run(genome, library, budget)
        measured = time.perf_counter() - started
        profile = WorkloadProfile(
            genome_length=len(genome),
            num_guides=len(library),
            site_length=library[0].site_length,
            total_stes=0,
            total_transitions=0,
            expected_active=0.0,
            seed_candidates=candidates_verified,
        )
        modeled = casot_time(profile, self._spec)
        stats: dict[str, Any] = {
            "candidates_verified": candidates_verified,
            "fragment_indexes_built": indexes_built,
        }
        return EngineResult(
            engine=self.name,
            hits=tuple(hits),
            modeled=modeled,
            measured_seconds=measured,
            stats=stats,
        )

    def _run(
        self, genome: Sequence, library: GuideLibrary, budget: SearchBudget
    ) -> tuple[list[OffTargetHit], int, int]:
        text = genome.text
        hits: list[OffTargetHit] = []
        candidates_verified = 0
        indexes: dict[int, KmerIndex] = {}

        def index_for(k: int) -> KmerIndex:
            if k not in indexes:
                indexes[k] = KmerIndex(genome, k)
            return indexes[k]

        shifts = range(-budget.rna_bulges, budget.dna_bulges + 1)
        deltas = list(shifts)
        for guide in library:
            parts = budget.mismatches + budget.rna_bulges + budget.dna_bulges + 1
            if parts > len(guide.protospacer):
                raise EngineError(
                    f"budget too large for guide {guide.name!r}: "
                    f"{parts} fragments exceed protospacer length"
                )
            for strand in ("+", "-"):
                segments = _segments(guide, reverse=strand == "-")
                base_length = sum(len(segment.text) for segment in segments)
                oriented, budgeted_offset = _oriented_protospacer(guide, strand)
                seen_spans: set[tuple[int, int]] = set()
                for frag_start, frag_end in split_fragments(len(oriented), parts):
                    fragment = oriented[frag_start:frag_end]
                    index = index_for(len(fragment))
                    for position in index.lookup(fragment).tolist():
                        for shift in shifts:
                            site_start = position - (budgeted_offset + frag_start) - shift
                            if site_start < 0:
                                continue
                            for delta in deltas:
                                end = site_start + base_length + delta
                                if end > len(text):
                                    continue
                                span = (site_start, end)
                                if span in seen_spans:
                                    continue
                                candidates_verified += 1
                                profiles = site_profiles(
                                    text, site_start, segments, delta, budget
                                )
                                if not profiles:
                                    continue
                                seen_spans.add(span)
                                best = min(
                                    profiles,
                                    key=lambda p: (sum(p), p[1] + p[2], p[0]),
                                )
                                site = text[site_start:end]
                                if strand == "-":
                                    site = alphabet.reverse_complement(site)
                                hits.append(
                                    OffTargetHit(
                                        guide_name=guide.name,
                                        sequence_name=genome.name,
                                        strand=strand,
                                        start=site_start,
                                        end=end,
                                        mismatches=best[0],
                                        rna_bulges=best[1],
                                        dna_bulges=best[2],
                                        site=site,
                                    )
                                )
        return dedupe_hits(hits), candidates_verified, len(indexes)


def _oriented_protospacer(guide: Guide, strand: str) -> tuple[str, int]:
    """The guide's budgeted text and its offset in the oriented pattern."""
    if strand == "+":
        oriented = guide.protospacer
        offset = guide.protospacer_positions().start
    else:
        oriented = alphabet.reverse_complement(guide.protospacer)
        pattern_length = guide.site_length
        forward_positions = guide.protospacer_positions()
        offset = pattern_length - forward_positions.stop
    return oriented, offset
