"""DNA and IUPAC alphabet utilities.

The whole library works over the 4-letter DNA alphabet ``ACGT`` with the
ambiguity code ``N`` permitted in genomes, and the full IUPAC ambiguity
alphabet permitted in PAM patterns (``R`` = A/G, ``Y`` = C/T, ...).

Sequences are handled in two forms:

* text form — upper-case ``str`` over ``ACGTN`` (genomes, guides);
* code form — ``numpy.uint8`` arrays with ``A=0, C=1, G=2, T=3, N=4``,
  which every engine consumes.

All conversions are centralised here so encodings never drift between
modules.
"""

from __future__ import annotations

import numpy as np

from .errors import AlphabetError

#: The four unambiguous DNA bases, in code order.
BASES = "ACGT"

#: Genome alphabet: the four bases plus the ambiguity code N.
GENOME_ALPHABET = "ACGTN"

#: Numeric code assigned to each genome symbol.
CODE_A, CODE_C, CODE_G, CODE_T, CODE_N = range(5)

#: Number of distinct genome symbol codes.
NUM_CODES = 5

#: IUPAC ambiguity codes mapped to the set of bases they stand for.
IUPAC = {
    "A": "A",
    "C": "C",
    "G": "G",
    "T": "T",
    "U": "T",
    "R": "AG",
    "Y": "CT",
    "S": "CG",
    "W": "AT",
    "K": "GT",
    "M": "AC",
    "B": "CGT",
    "D": "AGT",
    "H": "ACT",
    "V": "ACG",
    "N": "ACGT",
}

#: Watson-Crick complement for every IUPAC code.
COMPLEMENT = {
    "A": "T",
    "C": "G",
    "G": "C",
    "T": "A",
    "U": "A",
    "R": "Y",
    "Y": "R",
    "S": "S",
    "W": "W",
    "K": "M",
    "M": "K",
    "B": "V",
    "D": "H",
    "H": "D",
    "V": "B",
    "N": "N",
}

_CODE_OF = {base: code for code, base in enumerate(GENOME_ALPHABET)}
_BASE_OF = np.frombuffer(GENOME_ALPHABET.encode("ascii"), dtype=np.uint8)

# Lookup table: ASCII byte -> symbol code, 255 for invalid bytes.
_ENCODE_LUT = np.full(256, 255, dtype=np.uint8)
for _base, _code in _CODE_OF.items():
    _ENCODE_LUT[ord(_base)] = _code
    _ENCODE_LUT[ord(_base.lower())] = _code
_ENCODE_LUT[ord("U")] = CODE_T
_ENCODE_LUT[ord("u")] = CODE_T


def is_dna(text: str) -> bool:
    """Return True when *text* consists only of ``ACGT`` (upper or lower)."""
    return all(ch.upper() in BASES for ch in text)


def is_genome(text: str) -> bool:
    """Return True when *text* consists only of ``ACGTN`` (upper or lower)."""
    return all(ch.upper() in GENOME_ALPHABET for ch in text)


def is_iupac(text: str) -> bool:
    """Return True when *text* consists only of IUPAC codes."""
    return all(ch.upper() in IUPAC for ch in text)


def validate_genome(text: str, *, what: str = "sequence") -> str:
    """Upper-case *text* and raise :class:`AlphabetError` on bad symbols."""
    upper = text.upper().replace("U", "T")
    for position, symbol in enumerate(upper):
        if symbol not in _CODE_OF:
            raise AlphabetError(
                f"{what} contains non-genomic symbol {symbol!r} at position {position}"
            )
    return upper


def validate_iupac(text: str, *, what: str = "pattern") -> str:
    """Upper-case *text* and raise :class:`AlphabetError` on non-IUPAC symbols."""
    upper = text.upper()
    for position, symbol in enumerate(upper):
        if symbol not in IUPAC:
            raise AlphabetError(
                f"{what} contains non-IUPAC symbol {symbol!r} at position {position}"
            )
    return upper.replace("U", "T")


def encode(text: str) -> np.ndarray:
    """Encode a genome string into a ``uint8`` code array.

    Accepts upper/lower case ``ACGTN`` (and ``U`` as an alias for ``T``)
    and raises :class:`AlphabetError` for anything else.
    """
    raw = np.frombuffer(text.encode("ascii"), dtype=np.uint8)
    codes = _ENCODE_LUT[raw]
    bad = np.nonzero(codes == 255)[0]
    if bad.size:
        position = int(bad[0])
        raise AlphabetError(
            f"sequence contains non-genomic symbol {text[position]!r} at position {position}"
        )
    return codes


def decode(codes: np.ndarray) -> str:
    """Decode a ``uint8`` code array back into an upper-case string."""
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.size and int(codes.max()) >= NUM_CODES:
        raise AlphabetError(f"code array contains value {int(codes.max())} >= {NUM_CODES}")
    return _BASE_OF[codes].tobytes().decode("ascii")


def complement(text: str) -> str:
    """Return the Watson-Crick complement of an IUPAC string."""
    try:
        return "".join(COMPLEMENT[ch] for ch in text.upper())
    except KeyError as exc:
        raise AlphabetError(f"cannot complement symbol {exc.args[0]!r}") from exc


def reverse_complement(text: str) -> str:
    """Return the reverse complement of an IUPAC string."""
    return complement(text)[::-1]


def iupac_bases(symbol: str) -> str:
    """Return the concrete bases an IUPAC *symbol* stands for."""
    try:
        return IUPAC[symbol.upper()]
    except KeyError as exc:
        raise AlphabetError(f"unknown IUPAC symbol {symbol!r}") from exc


def iupac_matches(pattern_symbol: str, base: str) -> bool:
    """Return True when IUPAC *pattern_symbol* matches concrete *base*.

    A genome ``N`` is treated as matching nothing except a pattern ``N``:
    the ambiguity lives in the reference, so a conservative matcher must
    not count it as a match for a concrete pattern base.
    """
    if base.upper() == "N":
        return pattern_symbol.upper() == "N"
    return base.upper() in iupac_bases(pattern_symbol)


def iupac_code_mask(symbol: str) -> int:
    """Return a 5-bit mask of genome codes matched by IUPAC *symbol*.

    Bit ``i`` is set when genome code ``i`` matches. The genome ``N``
    code (bit 4) is set only for a pattern ``N``, mirroring
    :func:`iupac_matches`.
    """
    mask = 0
    for base in iupac_bases(symbol):
        mask |= 1 << _CODE_OF[base]
    if symbol.upper() == "N":
        mask |= 1 << CODE_N
    return mask


def code_of(base: str) -> int:
    """Return the numeric code of a single genome symbol."""
    try:
        return _CODE_OF[base.upper()]
    except KeyError as exc:
        raise AlphabetError(f"unknown genome symbol {base!r}") from exc


def base_of(code: int) -> str:
    """Return the genome symbol for a numeric *code*."""
    if not 0 <= code < NUM_CODES:
        raise AlphabetError(f"symbol code {code} out of range 0..{NUM_CODES - 1}")
    return GENOME_ALPHABET[code]
