"""iNFAnt2-proxy GPU NFA engine.

iNFAnt2 executes NFAs on the GPU by storing symbol-indexed *transition
lists* and assigning transitions to threads: each input symbol launches
a traversal of the current transition list, with a device-wide
synchronisation between symbols. The simulate path here reproduces that
data layout faithfully — per-symbol CSR transition lists derived from
the homogeneous network, a frontier bit-vector, and per-symbol
gather/scatter — and counts the quantities the paper's analysis turns
on: transitions examined per symbol and the unavoidable per-symbol
synchronisation.

The timing model makes the paper's negative result explicit: a fixed
per-symbol sync cost that parallelism cannot amortise, a transition
term proportional to *active* transitions, and a spill penalty once
the transition tables outgrow shared memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

import numpy as np

from .. import alphabet
from ..automata.homogeneous import HomogeneousAutomaton, StartMode
from ..core.compiler import CompiledLibrary
from ..platforms.spec import GpuNfaSpec
from ..platforms.timing import TimingBreakdown, WorkloadProfile, infant2_time
from .base import Engine, register_engine


@dataclass(frozen=True)
class TransitionLists:
    """Symbol-indexed transition lists (iNFAnt2's device layout).

    For symbol code ``c``, ``sources[c]``/``targets[c]`` are the edges
    that can fire on ``c`` — i.e. edges whose *target* STE consumes
    ``c`` (homogeneous automata label states, not edges). Start-driven
    entries are stored once with source ``-1``.
    """

    sources: tuple[np.ndarray, ...]
    targets: tuple[np.ndarray, ...]
    num_states: int

    @property
    def total_transitions(self) -> int:
        return int(sum(array.size for array in self.sources))

    @classmethod
    def compile(cls, automaton: HomogeneousAutomaton) -> "TransitionLists":
        per_code_sources: list[list[int]] = [[] for _ in range(alphabet.NUM_CODES)]
        per_code_targets: list[list[int]] = [[] for _ in range(alphabet.NUM_CODES)]
        for source in range(automaton.num_stes):
            for target in automaton.successors(source):
                mask = automaton.ste(target).char_class.mask
                for code in range(alphabet.NUM_CODES):
                    if (mask >> code) & 1:
                        per_code_sources[code].append(source)
                        per_code_targets[code].append(target)
        for ste in automaton.stes():
            if ste.start is StartMode.ALL_INPUT:
                for code in range(alphabet.NUM_CODES):
                    if (ste.char_class.mask >> code) & 1:
                        per_code_sources[code].append(-1)
                        per_code_targets[code].append(ste.ste_id)
        return cls(
            sources=tuple(np.array(lst, dtype=np.int64) for lst in per_code_sources),
            targets=tuple(np.array(lst, dtype=np.int64) for lst in per_code_targets),
            num_states=automaton.num_stes,
        )


@register_engine
class Infant2Engine(Engine):
    """Transition-list NFA traversal on the GPU."""

    name = "infant2"

    def __init__(self, spec: GpuNfaSpec | None = None) -> None:
        self._spec = spec or GpuNfaSpec()

    def model_time(self, profile: WorkloadProfile) -> TimingBreakdown:
        return infant2_time(profile, self._spec)

    def platform_stats(self, profile: WorkloadProfile, compiled: CompiledLibrary) -> dict[str, Any]:
        mean_fanout = profile.total_transitions / max(profile.total_stes, 1)
        return {
            "transition_table_entries": profile.total_transitions,
            "spills_shared_memory": profile.total_transitions
            > self._spec.table_capacity_transitions,
            "expected_active_transitions": profile.expected_active * max(1.0, mean_fanout),
        }

    def simulate(
        self, codes: np.ndarray, compiled: CompiledLibrary
    ) -> list[tuple[int, Hashable]]:
        reports, _ = self.simulate_with_counters(codes, compiled)
        return reports

    def simulate_with_counters(
        self, codes: np.ndarray, compiled: CompiledLibrary
    ) -> tuple[list[tuple[int, Hashable]], dict[str, int]]:
        """Faithful transition-list run, counting examined transitions."""
        automaton = compiled.homogeneous
        lists = TransitionLists.compile(automaton)
        report_labels: dict[int, tuple[Hashable, ...]] = {
            ste.ste_id: ste.reports for ste in automaton.report_stes()
        }
        active = np.zeros(lists.num_states, dtype=bool)
        reports: list[tuple[int, Hashable]] = []
        examined = 0
        fired = 0
        for position, code in enumerate(np.asarray(codes, dtype=np.uint8)):
            sources = lists.sources[int(code)]
            targets = lists.targets[int(code)]
            examined += int(sources.size)
            # A transition fires when its source is active (or is the
            # virtual start source -1, always active).
            source_active = np.where(sources >= 0, active[np.clip(sources, 0, None)], True)
            next_active = np.zeros(lists.num_states, dtype=bool)
            fired_targets = targets[source_active]
            fired += int(fired_targets.size)
            next_active[fired_targets] = True
            for ste_id in np.nonzero(next_active)[0].tolist():
                for label in report_labels.get(int(ste_id), ()):
                    reports.append((position, label))
            active = next_active
        counters = {
            "transitions_examined": examined,
            "transitions_fired": fired,
            "table_entries": lists.total_transitions,
        }
        return reports, counters
