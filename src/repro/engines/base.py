"""Engine abstraction shared by the four platform models.

Every engine answers the same question — *which sites does the compiled
automata network accept?* — but models a different execution substrate.
An engine therefore exposes two paths:

* :meth:`Engine.search` — the scalable functional path. Hit enumeration
  uses a shared vectorised kernel (:mod:`repro.core.bitparallel` by
  default, the LUT scan of :mod:`repro.core.matcher` on request), which
  property tests pin to the automata semantics; the engine contributes
  its platform's :class:`~repro.platforms.timing.TimingBreakdown` and
  micro-architectural statistics.
* :meth:`Engine.simulate` — the faithful execution-model path: the
  engine literally steps its platform's data structures (STE arrays,
  transition lists, DFA tables, ...) symbol by symbol. Use it on
  bounded inputs; tests assert it reproduces the functional path.

This split is the standard simulator-plus-model methodology: the
functional results are exact, the platform times are modeled, and the
two are decoupled so neither compromises the other.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Any, Hashable

import numpy as np

from ..core import bitparallel
from ..core.compiler import CompiledLibrary
from ..errors import EngineError
from ..genome.sequence import Sequence
from ..grna.hit import OffTargetHit
from ..obs import Metrics
from ..platforms.reporting import ReportTraffic
from ..platforms.resources import expected_activity
from ..platforms.timing import TimingBreakdown, WorkloadProfile


@dataclass(frozen=True)
class EngineResult:
    """Outcome of one engine search."""

    engine: str
    hits: tuple[OffTargetHit, ...]
    modeled: TimingBreakdown
    measured_seconds: float  #: host wall time of the functional run
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def num_hits(self) -> int:
        return len(self.hits)


class Engine(abc.ABC):
    """Base class for platform engines."""

    #: registry key; subclasses must override.
    name: str = ""

    @abc.abstractmethod
    def model_time(self, profile: WorkloadProfile) -> TimingBreakdown:
        """This platform's analytic time for *profile*."""

    def platform_stats(self, profile: WorkloadProfile, compiled: CompiledLibrary) -> dict[str, Any]:
        """Platform-specific statistics to attach to the result."""
        return {}

    @abc.abstractmethod
    def simulate(
        self, codes: np.ndarray, compiled: CompiledLibrary
    ) -> list[tuple[int, Hashable]]:
        """Faithful execution-model run; returns ``(position, label)`` reports."""

    def validate_equivalence(
        self, compiled: CompiledLibrary, *, max_states: int | None = None
    ) -> None:
        """Opt-in pre-flight: prove *compiled* equal to its budget semantics.

        The spatial engines' ``validate_capacity`` answers "will this
        library fit the device?"; this answers "does it compute the
        right language?" — by exact symbolic proof, not sampling. It is
        opt-in (proof cost scales with the determinised state space)
        and raises :class:`~repro.errors.EquivalenceError` carrying the
        shortest distinguishing word on refutation, or
        :class:`~repro.errors.StateBlowupError`-derived EQV002 findings
        when the guard trips. Routed through the shared EQV rules in
        :mod:`repro.check.prove`, mirroring how ``validate_capacity``
        routes through the CAP rules.
        """
        from ..check.prove import DEFAULT_MAX_STATES, require_equivalence

        require_equivalence(
            compiled,
            max_states=DEFAULT_MAX_STATES if max_states is None else max_states,
        )

    def search(
        self,
        genome: Sequence,
        compiled: CompiledLibrary,
        *,
        metrics: Metrics | None = None,
        kernel: str = bitparallel.DEFAULT_KERNEL,
    ) -> EngineResult:
        """Functional search plus this platform's modeled timing.

        Pass a :class:`~repro.obs.Metrics` to aggregate this run into a
        caller-owned collector; otherwise the engine keeps its own. The
        result's ``stats["obs"]`` always carries the run's snapshot —
        kernel span, positions scanned, report events and their rate —
        alongside the platform statistics. *kernel* selects the
        functional matcher (every kernel is bit-identical; see
        :data:`repro.core.bitparallel.KERNEL_NAMES`).
        """
        metrics = metrics if metrics is not None else Metrics()
        scan = bitparallel.make_kernel(kernel, compiled.library, compiled.budget)
        started = time.perf_counter()
        with metrics.span("kernel", engine=self.name, genome=genome.name, kernel=kernel):
            hits = scan(genome)
        measured = time.perf_counter() - started
        metrics.incr("kernel.positions_scanned", len(genome))
        metrics.incr("report.events", len(hits))
        metrics.observe("kernel.seconds", measured)
        profile = build_profile(genome, compiled, hits)
        return EngineResult(
            engine=self.name,
            hits=tuple(hits),
            modeled=self.model_time(profile),
            measured_seconds=measured,
            stats={
                **self.platform_stats(profile, compiled),
                "report_events_per_mbp": metrics.rate(
                    "report.events", "kernel.positions_scanned", per=1e6
                ),
                "obs": metrics.snapshot(),
            },
        )


def build_profile(
    genome: Sequence,
    compiled: CompiledLibrary,
    hits: list[OffTargetHit] | tuple[OffTargetHit, ...],
    *,
    genome_length_override: int | None = None,
) -> WorkloadProfile:
    """Assemble the :class:`WorkloadProfile` the timing models consume.

    Report traffic is taken from the deduplicated hit list (one event
    per hit, coalescing by report position) — a slight lower bound on
    raw accept activations when bulge paths overlap; the reporting
    experiments use :func:`repro.core.matcher.count_report_rows` when
    exact activation counts matter.
    """
    stats = compiled.stats()
    traffic = ReportTraffic(
        events=len(hits),
        cycles_with_reports=len({(hit.sequence_name, hit.end) for hit in hits}),
    )
    guide = compiled.library[0]
    return WorkloadProfile(
        genome_length=genome_length_override or len(genome),
        num_guides=len(compiled.library),
        site_length=guide.site_length,
        total_stes=stats.num_stes,
        total_transitions=stats.num_edges,
        expected_active=expected_activity(compiled.homogeneous, gc_content=genome.gc_fraction() or 0.41),
        report_traffic=traffic,
    )


_REGISTRY: dict[str, type[Engine]] = {}


def register_engine(engine_class: type[Engine]) -> type[Engine]:
    """Class decorator adding an engine to the registry."""
    if not engine_class.name:
        raise EngineError(f"{engine_class.__name__} must define a name")
    if engine_class.name in _REGISTRY:
        raise EngineError(f"duplicate engine name {engine_class.name!r}")
    _REGISTRY[engine_class.name] = engine_class
    return engine_class


def available_engines() -> list[str]:
    """Registered engine names, sorted."""
    return sorted(_REGISTRY)


def get_engine(name: str, **kwargs) -> Engine:
    """Instantiate a registered engine by name."""
    try:
        engine_class = _REGISTRY[name]
    except KeyError as exc:
        raise EngineError(
            f"unknown engine {name!r}; available: {available_engines()}"
        ) from exc
    return engine_class(**kwargs)
