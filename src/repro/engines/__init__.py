"""Execution engines: one per evaluated platform."""

from .base import Engine, EngineResult, available_engines, get_engine, register_engine
from .cpu_nfa import CpuNfaEngine
from .hyperscan import HyperscanEngine
from .infant2 import Infant2Engine
from .fpga import FpgaEngine
from .ap import ApEngine

__all__ = [
    "Engine",
    "EngineResult",
    "available_engines",
    "get_engine",
    "register_engine",
    "CpuNfaEngine",
    "HyperscanEngine",
    "Infant2Engine",
    "FpgaEngine",
    "ApEngine",
]
