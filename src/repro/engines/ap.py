"""Micron Automata Processor (D480) engine.

The AP is the most customised platform the paper evaluates: a DRAM-based
fabric of STEs that consumes one 8-bit symbol per cycle at 133 MHz, with
capacity quantised by chips and ranks and reports collected into output
event buffers whose drains stall symbol processing. Against the FPGA it
trades a fixed (lower) clock for much higher state density and faster
reconfiguration — which is exactly the 1.5×-kernel / capacity-story the
abstract summarises.

The simulate path steps the STE fabric cycle-by-cycle, recording report
events with their cycle stamps and modelling buffer-fill stalls, so
small-input runs expose the same output bottleneck the timing model
charges for at scale.
"""

from __future__ import annotations

import math
from typing import Any, Hashable

import numpy as np

from ..check.automata import require_capacity
from ..core.compiler import CompiledLibrary
from ..errors import EngineError
from ..platforms.reporting import ReportCostModel, ReportTraffic
from ..platforms.spec import ApSpec
from ..platforms.timing import TimingBreakdown, WorkloadProfile, ap_time
from .base import Engine, register_engine


@register_engine
class ApEngine(Engine):
    """STE-fabric execution with D480 capacity and report-buffer model."""

    name = "ap"

    def __init__(self, spec: ApSpec | None = None, *, coalesce_reports: bool = False) -> None:
        self._spec = spec or ApSpec()
        self._coalesce = coalesce_reports

    @property
    def spec(self) -> ApSpec:
        return self._spec

    def model_time(self, profile: WorkloadProfile) -> TimingBreakdown:
        return ap_time(profile, self._spec, coalesce_reports=self._coalesce)

    def validate_capacity(self, compiled: CompiledLibrary) -> None:
        """Raise :class:`~repro.errors.CapacityError` when a guide cannot fit.

        Multi-pass execution splits the *library* across passes, but a
        single guide's automaton is an indivisible placement unit. The
        check (and the per-guide STEs-needed-vs-remaining breakdown in
        the error message) is the shared CAP001 rule in
        :mod:`repro.check.automata`.
        """
        require_capacity(compiled, self._spec)

    def search(self, genome, compiled: CompiledLibrary, *, metrics=None, **kwargs):
        """Functional search with a capacity pre-check."""
        self.validate_capacity(compiled)
        return super().search(genome, compiled, metrics=metrics, **kwargs)

    def platform_stats(self, profile: WorkloadProfile, compiled: CompiledLibrary) -> dict[str, Any]:
        breakdown = self.model_time(profile)
        chips = self._spec.chips_per_rank * self._spec.ranks
        return {
            "stes_used": profile.total_stes,
            "ste_utilization": profile.total_stes / self._spec.capacity_stes,
            "chips": chips,
            "passes": breakdown.passes,
            "report_stall_cycles": int(breakdown.report_seconds * self._spec.clock_hz),
        }

    def simulate(
        self, codes: np.ndarray, compiled: CompiledLibrary
    ) -> list[tuple[int, Hashable]]:
        reports, _ = self.simulate_with_stalls(codes, compiled)
        return reports

    def simulate_with_stalls(
        self, codes: np.ndarray, compiled: CompiledLibrary
    ) -> tuple[list[tuple[int, Hashable]], dict[str, Any]]:
        """Cycle-accurate fabric run plus report-buffer stall accounting."""
        reports, stats = compiled.homogeneous.run_with_stats(
            np.asarray(codes, dtype=np.uint8)
        )
        model = ReportCostModel(
            self._spec.event_buffer_entries,
            self._spec.event_drain_cycles,
            coalesce=self._coalesce,
        )
        traffic = ReportTraffic(
            events=stats.report_events, cycles_with_reports=stats.report_cycles
        )
        stall_cycles = model.stall_cycles(traffic)
        total_cycles = stats.cycles + stall_cycles
        return reports, {
            "symbol_cycles": stats.cycles,
            "stall_cycles": stall_cycles,
            "total_cycles": total_cycles,
            "simulated_seconds": total_cycles / self._spec.clock_hz,
            "mean_active_stes": stats.mean_active,
            "peak_active_stes": stats.peak_active,
            "report_events": stats.report_events,
        }

    def passes_for(self, total_stes: int) -> int:
        """Configuration passes needed for a network of *total_stes*."""
        return max(1, math.ceil(total_stes / self._spec.capacity_stes))

    def simulate_strided(
        self, codes: np.ndarray, compiled: CompiledLibrary
    ) -> tuple[list[tuple[int, Hashable]], dict[str, Any]]:
        """Run the library as REAL 2-symbol strided automata.

        This executes the paper's multi-symbol-processing proposal: the
        guides are recompiled over the pair alphabet
        (:mod:`repro.automata.striding`) and the fabric consumes two
        genome symbols per cycle, halving symbol cycles. Reports are
        returned in ordinary symbol coordinates and are identical to
        :meth:`simulate`'s (mismatch-only budgets; bulge grids contain
        epsilon paths the pair transformation does not cover).
        """
        from ..core.compiler import _segments
        from ..core.labels import MatchLabel
        from ..automata.striding import (
            StridedAutomaton,
            build_strided_hamming,
            strided_search,
        )

        if compiled.budget.has_bulges:
            raise EngineError("strided execution supports mismatch-only budgets")
        network = StridedAutomaton()
        for compiled_guide in compiled:
            guide = compiled_guide.guide
            for strand in ("+", "-"):
                segments = _segments(guide, reverse=strand == "-")
                total = sum(len(segment.text) for segment in segments)

                def label_factory(mismatches, guide=guide, strand=strand, total=total):
                    return MatchLabel(guide.name, strand, mismatches, 0, 0, total)

                network.merge(
                    build_strided_hamming(
                        segments,
                        compiled.budget.mismatches,
                        label_factory=label_factory,
                    )
                )
        reports = strided_search(np.asarray(codes, dtype=np.uint8), network)
        stats = {
            "strided_states": network.num_states,
            "symbol_cycles": (int(np.asarray(codes).size) + 1) // 2,
            "state_overhead_vs_1stride": network.num_states
            / max(compiled.num_stes, 1),
        }
        return reports, stats
