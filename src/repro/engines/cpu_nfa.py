"""Straightforward CPU NFA interpreter (VASim-style).

The "no tricks" software baseline for the automata formulation: keep an
explicit active set, consume one symbol at a time, follow transition
lists. Its simulate path runs the compiled *edge-labelled* NFA directly
(one of the three independent executions the agreement tests compare),
and its timing model charges one update per active state per symbol at
an interpreter-grade rate.

This engine is ours (the paper's CPU data point is HyperScan); it
exists to separate "automata as an algorithm" from "automata on a
tuned engine" in the algorithmic-benefit analysis.
"""

from __future__ import annotations

from typing import Any, Hashable

import numpy as np

from ..core.compiler import CompiledLibrary
from ..platforms.timing import TimingBreakdown, WorkloadProfile
from .base import Engine, register_engine

#: active-state updates per second for a plain interpreter loop
#: (calibrated: ~an order of magnitude below the HyperScan engine).
_INTERPRETER_UPDATE_RATE = 2.0e7
_SETUP_SECONDS = 0.5


@register_engine
class CpuNfaEngine(Engine):
    """Active-set NFA interpretation on the CPU."""

    name = "cpu-nfa"

    def model_time(self, profile: WorkloadProfile) -> TimingBreakdown:
        updates = profile.genome_length * max(profile.expected_active, 1.0)
        return TimingBreakdown(
            platform="cpu-nfa-interpreter",
            setup_seconds=_SETUP_SECONDS,
            kernel_seconds=updates / _INTERPRETER_UPDATE_RATE,
        )

    def platform_stats(self, profile: WorkloadProfile, compiled: CompiledLibrary) -> dict[str, Any]:
        return {
            "expected_active_states": profile.expected_active,
            "updates_per_symbol": max(profile.expected_active, 1.0),
        }

    def simulate(
        self, codes: np.ndarray, compiled: CompiledLibrary
    ) -> list[tuple[int, Hashable]]:
        """Run the combined edge-labelled NFA over *codes*."""
        return list(compiled.combined_nfa.run(codes))
