"""FPGA spatial automata engine.

Models an automata overlay in the REAPR mould: every STE becomes a
flip-flop plus LUT logic, the whole network evaluates in parallel each
clock, and one input symbol is consumed per cycle at the routed clock
rate. Capacity is LUT-bound; guide sets beyond one device's worth run
in multiple configuration passes (each with a bitstream load). Reports
leave through an on-chip FIFO whose drains stall the pipeline — the
spatial-output bottleneck the paper's optimisation section targets.

The simulate path executes the homogeneous network cycle-by-cycle —
the same dataflow the synthesised design performs in hardware.
"""

from __future__ import annotations

from typing import Any, Hashable

import numpy as np

from ..check.automata import require_capacity
from ..core.compiler import CompiledLibrary
from ..platforms.resources import fpga_luts_for
from ..platforms.spec import FpgaSpec
from ..platforms.timing import TimingBreakdown, WorkloadProfile, fpga_time
from .base import Engine, register_engine


@register_engine
class FpgaEngine(Engine):
    """One-symbol-per-cycle spatial execution, LUT-bound capacity."""

    name = "fpga"

    def __init__(self, spec: FpgaSpec | None = None, *, coalesce_reports: bool = False) -> None:
        self._spec = spec or FpgaSpec()
        self._coalesce = coalesce_reports

    @property
    def spec(self) -> FpgaSpec:
        return self._spec

    def model_time(self, profile: WorkloadProfile) -> TimingBreakdown:
        return fpga_time(profile, self._spec, coalesce_reports=self._coalesce)

    def validate_capacity(self, compiled: CompiledLibrary) -> None:
        """Raise :class:`~repro.errors.CapacityError` when a guide exceeds the device.

        Routed through the shared CAP001 rule in
        :mod:`repro.check.automata`, whose error message carries the
        per-guide LUTs-needed-vs-remaining breakdown.
        """
        require_capacity(compiled, self._spec)

    def search(self, genome, compiled: CompiledLibrary, *, metrics=None, **kwargs):
        """Functional search with a capacity pre-check."""
        self.validate_capacity(compiled)
        return super().search(genome, compiled, metrics=metrics, **kwargs)

    def platform_stats(self, profile: WorkloadProfile, compiled: CompiledLibrary) -> dict[str, Any]:
        luts = fpga_luts_for(profile.total_stes, self._spec)
        breakdown = self.model_time(profile)
        return {
            "luts_used": luts,
            "lut_utilization": luts / self._spec.luts,
            "passes": breakdown.passes,
            "synthesis_seconds_offline": self._spec.synthesis_seconds,
        }

    def simulate(
        self, codes: np.ndarray, compiled: CompiledLibrary
    ) -> list[tuple[int, Hashable]]:
        """Cycle-accurate run of the spatial network."""
        return list(compiled.homogeneous.run(np.asarray(codes, dtype=np.uint8)))
