"""HyperScan-proxy CPU engine.

HyperScan is Intel's high-performance regex/automata library; the paper
runs the guide automata through it single-threaded as the tuned-CPU
data point. Two of its execution strategies are modelled here:

* for small per-guide automata it effectively runs determinised
  machines — the simulate path can execute the compiled, minimised
  :class:`~repro.automata.dfa.Dfa` per guide;
* for wide mismatch budgets it falls back to bit-parallel NFA
  emulation — the simulate path implements the classic Shift-And
  automaton with one bit row per mismatch count (Wu–Manber style),
  which is structurally the same grid the paper's automata encode.

The timing model charges active-state updates at a tuned-engine rate
with a DFA-like scan-rate ceiling, so the modeled time degrades with
guide count and mismatch budget exactly the way a von Neumann automata
engine does.
"""

from __future__ import annotations

from typing import Any, Hashable

import numpy as np

from .. import alphabet
from ..core.compiler import CompiledGuide, CompiledLibrary
from ..core.labels import MatchLabel
from ..errors import EngineError
from ..platforms.spec import CpuSpec
from ..platforms.timing import TimingBreakdown, WorkloadProfile, hyperscan_time
from .base import Engine, register_engine


@register_engine
class HyperscanEngine(Engine):
    """Single-thread tuned CPU automata engine."""

    name = "hyperscan"

    def __init__(self, spec: CpuSpec | None = None) -> None:
        self._spec = spec or CpuSpec()

    def model_time(self, profile: WorkloadProfile) -> TimingBreakdown:
        return hyperscan_time(profile, self._spec)

    def platform_stats(self, profile: WorkloadProfile, compiled: CompiledLibrary) -> dict[str, Any]:
        return {
            "expected_active_states": profile.expected_active,
            "scan_rate_bytes_per_second": profile.genome_length
            / max(self.model_time(profile).kernel_seconds, 1e-12),
        }

    def simulate(
        self, codes: np.ndarray, compiled: CompiledLibrary
    ) -> list[tuple[int, Hashable]]:
        """Execute each guide's minimised DFA (HyperScan's fast path)."""
        reports: list[tuple[int, Hashable]] = []
        for compiled_guide in compiled:
            reports.extend(compiled_guide.dfa.run(codes))
        reports.sort(key=lambda item: item[0])
        return reports

    def simulate_bitparallel(
        self, codes: np.ndarray, compiled_guide: CompiledGuide
    ) -> list[tuple[int, Hashable]]:
        """Shift-And with mismatch rows for one guide (both strands).

        Only defined for mismatch-only budgets (bit-parallel rows model
        substitutions, not indels) — raises otherwise. Used by tests as
        a fourth independent execution of the same language.
        """
        if compiled_guide.budget.has_bulges:
            raise EngineError("bit-parallel path models mismatches only")
        reports: list[tuple[int, Hashable]] = []
        guide = compiled_guide.guide
        for strand in ("+", "-"):
            pattern = (
                guide.target_pattern
                if strand == "+"
                else alphabet.reverse_complement(guide.target_pattern)
            )
            budgeted = set(
                guide.protospacer_positions()
                if strand == "+"
                else [
                    len(pattern) - 1 - position
                    for position in guide.protospacer_positions()
                ]
            )
            reports.extend(
                _shift_and(
                    codes,
                    pattern,
                    budgeted,
                    compiled_guide.budget.mismatches,
                    guide.name,
                    strand,
                )
            )
        reports.sort(key=lambda item: item[0])
        return reports


def _shift_and(
    codes: np.ndarray,
    pattern: str,
    budgeted_positions: set[int],
    max_mismatches: int,
    guide_name: str,
    strand: str,
) -> list[tuple[int, Hashable]]:
    """Classic bit-parallel search with one row per mismatch count.

    Row ``R_j`` holds, as bits, the pattern prefixes currently alive
    with exactly ``j`` mismatches. Per symbol: ``R_0 = ((R_0 << 1) | 1)
    & M[c]`` and ``R_j = ((R_j << 1) | 1) & M[c] | ((R_{j-1} << 1) | 1)
    & B & ~M[c]`` — advance with a match, or spend a mismatch at a
    budgeted position. The accepted language is exactly the Hamming
    grid automaton's.
    """
    length = len(pattern)
    if length > 62:
        raise EngineError("bit-parallel rows support patterns up to 62 symbols")
    match_masks = [0] * alphabet.NUM_CODES
    budget_mask = 0
    for position, symbol in enumerate(pattern):
        class_mask = alphabet.iupac_code_mask(symbol)
        for code in range(alphabet.NUM_CODES):
            if (class_mask >> code) & 1:
                match_masks[code] |= 1 << position
        if position in budgeted_positions:
            budget_mask |= 1 << position
    accept_bit = 1 << (length - 1)
    rows = [0] * (max_mismatches + 1)
    reports: list[tuple[int, Hashable]] = []
    for position, code in enumerate(np.asarray(codes, dtype=np.uint8)):
        mask = match_masks[int(code)]
        previous = rows[:]
        for j in range(max_mismatches, -1, -1):
            advanced = (previous[j] << 1) | 1
            rows[j] = advanced & mask
            if j > 0:
                spent = (previous[j - 1] << 1) | 1
                rows[j] |= spent & budget_mask & ~mask
        for j in range(max_mismatches + 1):
            if rows[j] & accept_bit:
                reports.append(
                    (
                        position,
                        MatchLabel(
                            guide_name=guide_name,
                            strand=strand,
                            mismatches=j,
                            rna_bulges=0,
                            dna_bulges=0,
                            consumed=length,
                        ),
                    )
                )
    return reports
