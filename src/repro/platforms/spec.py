"""Device specifications and calibrated model constants.

Each constant is annotated with its provenance:

* ``datasheet`` — a published device parameter (AP D480 symbol rate and
  STE counts, FPGA LUT counts, PCIe rates);
* ``calibrated`` — an effective end-to-end rate fitted so that the
  default whole-genome workload reproduces the speedup ratios the
  paper's abstract reports (FPGA ≥83× vs Cas-OFFinder, ≥600× vs CasOT,
  AP 1.5× FPGA kernel, HyperScan ≥29.7× vs CasOT, iNFAnt2 ≤4.4× vs
  HyperScan). Calibrated rates fold in everything the model does not
  resolve (disk streaming, PCIe chatter, interpreter overhead of the
  Perl-era CasOT, 2014-era GPU efficiency), which is why some look slow
  next to peak device numbers.

The absolute times these constants yield are *not* claims about the
authors' testbed; they exist so that relative shapes (who wins, by what
factor, where capacity cliffs and crossovers fall) can be regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PlatformError


@dataclass(frozen=True)
class ApSpec:
    """Micron Automata Processor (D480 generation)."""

    name: str = "ap-d480-board"
    clock_hz: float = 133e6  #: datasheet: 1 symbol/cycle at 133 MHz
    stes_per_chip: int = 49152  #: datasheet
    chips_per_rank: int = 8  #: datasheet
    ranks: int = 4  #: board configuration
    routable_fraction: float = 0.5  #: routing/placement derate (datasheet-era practice)
    event_buffer_entries: int = 4096  #: output event memory region, events
    event_drain_cycles: int = 10000  #: cycles stalled per buffer drain (calibrated)
    config_seconds_per_pass: float = 0.05  #: routing/symbol reload per pass

    @property
    def capacity_stes(self) -> int:
        """Usable STEs per configuration pass."""
        return int(
            self.stes_per_chip * self.chips_per_rank * self.ranks * self.routable_fraction
        )


@dataclass(frozen=True)
class FpgaSpec:
    """FPGA automata overlay (Kintex UltraScale class)."""

    name: str = "fpga-ku060"
    clock_hz: float = 89e6  #: calibrated: routed automata overlay clock (AP/FPGA = 1.49)
    luts: int = 530000  #: datasheet (KU060-class logic)
    luts_per_ste: float = 3.5  #: overlay cost per STE incl. routing (literature-typical)
    bitstream_seconds: float = 0.3  #: bitstream load per pass
    synthesis_seconds: float = 5400.0  #: offline compile (reported, not charged to runtime)
    report_fifo_entries: int = 8192
    report_drain_cycles: int = 2000  #: PCIe-backed FIFO drain (calibrated)


@dataclass(frozen=True)
class CpuSpec:
    """CPU running HyperScan single-threaded (Xeon E5 class)."""

    name: str = "cpu-xeon-hyperscan"
    state_update_rate: float = 2.12e8  #: calibrated: active-state updates/s, single thread
    max_scan_rate: float = 1.2e9  #: bytes/s ceiling when almost nothing is active
    setup_seconds: float = 2.0  #: pattern-database compile


@dataclass(frozen=True)
class GpuNfaSpec:
    """GPU running the iNFAnt2 transition-list NFA engine (Kepler class)."""

    name: str = "gpu-infant2"
    sync_seconds_per_symbol: float = 4.6e-8  #: calibrated: per-symbol kernel sync cost
    transition_rate: float = 1.25e10  #: calibrated: active transitions/s when resident
    table_capacity_transitions: int = 1_500_000  #: shared-memory resident table size
    spill_penalty: float = 8.0  #: slowdown once tables spill to global memory
    setup_seconds: float = 1.5  #: table build + transfer


@dataclass(frozen=True)
class CasOffinderSpec:
    """Cas-OFFinder v2 brute-force OpenCL search (GPU)."""

    name: str = "gpu-cas-offinder"
    #: calibrated: per-position streaming cost (chunked disk reads, PCIe
    #: transfer, PAM scan), charged per strand and independent of guide
    #: count — matches published tens-of-minutes hg-scale wall-times and
    #: the tool's near-flat scaling in small guide batches.
    position_seconds: float = 4.69e-7
    #: calibrated: per (PAM site × guide) protospacer comparison cost.
    site_guide_seconds: float = 4.5e-10
    #: fraction of positions per strand passing the PAM scan
    #: (NGG at 41% GC; recomputed per-PAM by callers that know better).
    pam_site_fraction: float = 0.042
    setup_seconds: float = 10.0  #: device init + genome chunking


@dataclass(frozen=True)
class CasotSpec:
    """CasOT seed-and-extend search (single-thread, Perl-era CPU)."""

    name: str = "cpu-casot"
    stream_seconds_per_symbol: float = 3.3e-7  #: calibrated: Perl scan/stream rate
    verify_seconds_per_candidate: float = 8.3e-5  #: calibrated: per-candidate extension
    setup_seconds: float = 120.0  #: reference indexing


#: any of the modeled device specifications.
DeviceSpec = (
    ApSpec | FpgaSpec | CpuSpec | GpuNfaSpec | CasOffinderSpec | CasotSpec
)

DEVICES: dict[str, DeviceSpec] = {
    spec.name: spec
    for spec in (
        ApSpec(),
        FpgaSpec(),
        CpuSpec(),
        GpuNfaSpec(),
        CasOffinderSpec(),
        CasotSpec(),
    )
}


def device(name: str) -> DeviceSpec:
    """Look a device spec up by name."""
    try:
        return DEVICES[name]
    except KeyError as exc:
        raise PlatformError(
            f"unknown device {name!r}; known: {sorted(DEVICES)}"
        ) from exc
