"""Analytic timing models for every platform.

Each model maps a :class:`WorkloadProfile` — what was searched, how big
the compiled network is, how active it is, how much it reports — to a
:class:`TimingBreakdown`. The breakdown separates *kernel* time (symbol
processing) from *setup* (configuration/compile/transfer) and *report*
time, because the paper reports kernel-only and end-to-end comparisons
separately (the AP-vs-FPGA 1.5× claim is kernel-only).

All models are linear in genome length, which is structurally true of
every platform here (streaming automata, brute-force position scans,
or seed scans), so functional runs on megabase synthetic genomes and
modeled times for gigabase references share one profile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import PlatformError
from .reporting import ReportCostModel, ReportTraffic
from .spec import ApSpec, CasOffinderSpec, CasotSpec, CpuSpec, FpgaSpec, GpuNfaSpec


@dataclass(frozen=True)
class WorkloadProfile:
    """Everything a timing model needs to know about one search run."""

    genome_length: int
    num_guides: int
    site_length: int  #: protospacer + PAM length
    total_stes: int  #: compiled network size (both strands, all guides)
    total_transitions: int  #: edges of the compiled network
    expected_active: float  #: expected matched STEs per symbol
    report_traffic: ReportTraffic = field(
        default_factory=lambda: ReportTraffic(0, 0)
    )
    #: candidate count for seed-and-extend baselines (CasOT model)
    seed_candidates: int = 0

    def __post_init__(self) -> None:
        if self.genome_length < 0 or self.num_guides <= 0:
            raise PlatformError("profile requires non-negative length and >=1 guide")


@dataclass(frozen=True)
class TimingBreakdown:
    """Modeled wall time, decomposed."""

    platform: str
    setup_seconds: float
    kernel_seconds: float
    report_seconds: float = 0.0
    passes: int = 1

    @property
    def total_seconds(self) -> float:
        return self.setup_seconds + self.kernel_seconds + self.report_seconds

    @property
    def kernel_with_reports_seconds(self) -> float:
        """Device-resident time (kernel + report stalls), excluding setup."""
        return self.kernel_seconds + self.report_seconds


def ap_time(profile: WorkloadProfile, spec: ApSpec, *, coalesce_reports: bool = False) -> TimingBreakdown:
    """Micron AP: 1 symbol/cycle, multi-pass beyond STE capacity."""
    passes = max(1, math.ceil(profile.total_stes / spec.capacity_stes))
    cycles = profile.genome_length * passes
    model = ReportCostModel(spec.event_buffer_entries, spec.event_drain_cycles, coalesce=coalesce_reports)
    stall_cycles = model.stall_cycles(profile.report_traffic)
    return TimingBreakdown(
        platform=spec.name,
        setup_seconds=spec.config_seconds_per_pass * passes,
        kernel_seconds=cycles / spec.clock_hz,
        report_seconds=stall_cycles / spec.clock_hz,
        passes=passes,
    )


def fpga_time(profile: WorkloadProfile, spec: FpgaSpec, *, coalesce_reports: bool = False) -> TimingBreakdown:
    """FPGA overlay: 1 symbol/cycle at the routed clock, LUT-capacity passes."""
    capacity_stes = int(spec.luts / spec.luts_per_ste)
    passes = max(1, math.ceil(profile.total_stes / capacity_stes))
    cycles = profile.genome_length * passes
    model = ReportCostModel(spec.report_fifo_entries, spec.report_drain_cycles, coalesce=coalesce_reports)
    stall_cycles = model.stall_cycles(profile.report_traffic)
    return TimingBreakdown(
        platform=spec.name,
        setup_seconds=spec.bitstream_seconds * passes,
        kernel_seconds=cycles / spec.clock_hz,
        report_seconds=stall_cycles / spec.clock_hz,
        passes=passes,
    )


def hyperscan_time(profile: WorkloadProfile, spec: CpuSpec) -> TimingBreakdown:
    """HyperScan (single thread): time ∝ active-state updates.

    The scan rate collapses from the DFA-like ceiling toward the
    active-state budget as guides/budgets grow — the algorithmic story
    of why a von Neumann automata engine still beats seed-and-extend
    but loses to spatial hardware.
    """
    update_seconds = profile.genome_length * profile.expected_active / spec.state_update_rate
    floor_seconds = profile.genome_length / spec.max_scan_rate
    return TimingBreakdown(
        platform=spec.name,
        setup_seconds=spec.setup_seconds,
        kernel_seconds=max(update_seconds, floor_seconds),
    )


def infant2_time(profile: WorkloadProfile, spec: GpuNfaSpec) -> TimingBreakdown:
    """iNFAnt2 (GPU NFA): per-symbol sync + active-transition traffic.

    The fixed per-symbol synchronisation term is the reason the
    approach "does not map well to the GPU": it cannot be amortised,
    so small workloads see no benefit, and once transition tables
    spill out of shared memory the transition term inflates by the
    spill penalty.
    """
    if profile.total_stes <= 0:
        raise PlatformError("iNFAnt2 model requires a non-empty network")
    mean_fanout = profile.total_transitions / profile.total_stes
    active_transitions = profile.expected_active * max(1.0, mean_fanout)
    transition_seconds = active_transitions / spec.transition_rate
    if profile.total_transitions > spec.table_capacity_transitions:
        transition_seconds *= spec.spill_penalty
    per_symbol = spec.sync_seconds_per_symbol + transition_seconds
    return TimingBreakdown(
        platform=spec.name,
        setup_seconds=spec.setup_seconds,
        kernel_seconds=profile.genome_length * per_symbol,
    )


def cas_offinder_time(profile: WorkloadProfile, spec: CasOffinderSpec) -> TimingBreakdown:
    """Cas-OFFinder: stream + PAM-scan every position, compare at PAM sites.

    The streaming term dominates for small guide batches (the tool is
    disk/transfer bound), so runtime is nearly flat in guide count until
    the per-site comparisons saturate — which is why a GPU NFA engine
    that *does* scale with automata activity can end up slower than
    this brute force at large batch sizes (the abstract's iNFAnt2
    observation).
    """
    positions = profile.genome_length * 2  # both strands
    stream = positions * spec.position_seconds
    compares = positions * spec.pam_site_fraction * profile.num_guides
    return TimingBreakdown(
        platform=spec.name,
        setup_seconds=spec.setup_seconds,
        kernel_seconds=stream + compares * spec.site_guide_seconds,
    )


def casot_time(profile: WorkloadProfile, spec: CasotSpec) -> TimingBreakdown:
    """CasOT: streaming scan plus per-candidate extension.

    The candidate count is the workload-dependent term that explodes
    with the mismatch budget (weaker seeds ⇒ more candidates).
    """
    stream = profile.genome_length * spec.stream_seconds_per_symbol
    verify = profile.seed_candidates * spec.verify_seconds_per_candidate
    return TimingBreakdown(
        platform=spec.name,
        setup_seconds=spec.setup_seconds,
        kernel_seconds=stream + verify,
    )


def expected_casot_candidates(
    genome_length: int,
    num_guides: int,
    protospacer_length: int,
    mismatches: int,
) -> int:
    """Expected seed candidates for the pigeonhole seed-and-extend model.

    The protospacer splits into ``mismatches + 1`` fragments; a site
    within budget must match one fragment exactly, so the expected
    candidate count per guide-strand is ``fragments × genome_length /
    4^fragment_length`` — the quantity that blows up as fragments
    shorten. Used by sweeps to model gigabase workloads without
    running the functional baseline.
    """
    fragments = mismatches + 1
    fragment_length = protospacer_length / fragments
    per_pattern = fragments * genome_length / (4.0 ** fragment_length)
    return int(per_pattern * num_guides * 2)
