"""Platform models: device specs, timing models, resource and report models."""

from .spec import (
    ApSpec,
    CasOffinderSpec,
    CasotSpec,
    CpuSpec,
    FpgaSpec,
    GpuNfaSpec,
    DEVICES,
    device,
)
from .timing import TimingBreakdown, WorkloadProfile
from .resources import (
    estimate_nfa_states,
    estimate_stes,
    expected_activity,
    fpga_luts_for,
    guides_per_pass,
)
from .reporting import ReportCostModel, ReportTraffic

__all__ = [
    "ApSpec",
    "CasOffinderSpec",
    "CasotSpec",
    "CpuSpec",
    "FpgaSpec",
    "GpuNfaSpec",
    "DEVICES",
    "device",
    "TimingBreakdown",
    "WorkloadProfile",
    "estimate_nfa_states",
    "estimate_stes",
    "expected_activity",
    "fpga_luts_for",
    "guides_per_pass",
    "ReportCostModel",
    "ReportTraffic",
]
