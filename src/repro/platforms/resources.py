"""Resource estimation for compiled guide automata.

Closed-form predictors for the sizes that determine spatial-platform
capacity (STE counts, FPGA LUTs, guides per configuration pass), plus
the expected-activity model that drives the CPU/GPU NFA timing models.
The predictors are validated against actually-compiled automata by the
test suite, so sweeps (capacity figures, guide-scaling benches) can
cover parameter ranges without compiling thousands of automata.
"""

from __future__ import annotations

from .. import alphabet
from ..automata.homogeneous import HomogeneousAutomaton, StartMode
from ..errors import PlatformError
from .spec import ApSpec, FpgaSpec


def estimate_nfa_states(
    protospacer_length: int,
    pam_length: int,
    mismatches: int,
    rna_bulges: int = 0,
    dna_bulges: int = 0,
) -> int:
    """Predicted NFA states for ONE strand pattern of one guide.

    Mismatch-only grids follow the exact closed form of
    :func:`repro.core.hamming.hamming_state_count` (3'-PAM layout).
    Bulged grids are predicted by walking the profile frontier the same
    way the builder does, which is exact for the canonical layout.
    """
    if min(protospacer_length, pam_length, mismatches, rna_bulges, dna_bulges) < 0:
        raise PlatformError("all size parameters must be non-negative")
    m, g, k = protospacer_length, pam_length, mismatches
    if rna_bulges == 0 and dna_bulges == 0:
        grid = sum(min(i, k) + 1 for i in range(1, m + 1))
        return 1 + grid + (k + 1) * g
    count = 1
    # Frontier of (j, r, d) profiles, walked layer by layer.
    layer = {(0, 0, 0)}
    for i in range(m):
        if 1 <= i <= m - 1 and dna_bulges:
            grown = set(layer)
            for j, r, d in layer:
                for extra in range(1, dna_bulges - d + 1):
                    grown.add((j, r, d + extra))
            count += len(grown) - len(layer)
            layer = grown
        next_layer = set()
        for j, r, d in layer:
            next_layer.add((j, r, d))
            if j < k:
                next_layer.add((j + 1, r, d))
            if 0 < i < m - 1 and r < rna_bulges:
                next_layer.add((j, r + 1, d))
        count += len(next_layer)
        layer = next_layer
    # Exact (PAM) chain: one chain per surviving profile row.
    count += len(layer) * g
    return count


def estimate_stes(
    protospacer_length: int,
    pam_length: int,
    mismatches: int,
    rna_bulges: int = 0,
    dna_bulges: int = 0,
    *,
    both_strands: bool = True,
) -> int:
    """Predicted STE count for one guide's homogeneous automaton.

    The homogeneous conversion creates one STE per distinct incoming
    character class of each NFA state: grid states entered by both a
    match and a mismatch edge split in two; single-class states (PAM
    chain, pure-match row 0 interior, DNA-bulge any-class entries)
    stay single. The factor below reflects the canonical grid: every
    state with an in-budget mismatch predecessor doubles.
    """
    m, g, k = protospacer_length, pam_length, mismatches
    if rna_bulges == 0 and dna_bulges == 0:
        # A grid state (i, j) gets a match-class STE when row j already
        # existed at position i-1 (j <= min(i-1, k)) and a mismatch-class
        # STE when it is entered from row j-1 (1 <= j <= min(i-1, k)+1,
        # capped at k). The PAM chain is per-row when it follows the
        # grid (pam-last layout) but shared when it precedes it
        # (pam-first layout, the reverse strand of a 3'-PAM guide).
        def grid_stes() -> int:
            count = 0
            for i in range(1, m + 1):
                reachable_rows = min(i - 1, k) + 1
                count += reachable_rows  # match-class copies
                count += min(reachable_rows, k)  # mismatch-class copies
            return count

        pam_last = grid_stes() + (k + 1) * g
        pam_first = g + grid_stes()
        total = pam_last + pam_first if both_strands else pam_last
        return total
    # Bulged grids add any-class (DNA) and epsilon-collapsed (RNA)
    # entries; bound with the empirical ~2.4 copies/state factor,
    # validated (as an upper bound) by tests.
    states = estimate_nfa_states(m, g, k, rna_bulges, dna_bulges)
    total = int(states * 2.4)
    return total * (2 if both_strands else 1)


def fpga_luts_for(stes: int, spec: FpgaSpec) -> int:
    """LUTs consumed by a network of *stes* on *spec*."""
    return int(stes * spec.luts_per_ste)


def guides_per_pass(stes_per_guide: int, spec: ApSpec | FpgaSpec) -> int:
    """How many guides fit in one configuration pass of a spatial device."""
    if stes_per_guide <= 0:
        raise PlatformError("stes_per_guide must be positive")
    if isinstance(spec, ApSpec):
        capacity = spec.capacity_stes
    elif isinstance(spec, FpgaSpec):
        capacity = int(spec.luts / spec.luts_per_ste)
    else:
        raise PlatformError(f"no capacity model for {spec!r}")
    return max(1, capacity // stes_per_guide)


def expected_activity(
    automaton: HomogeneousAutomaton, *, gc_content: float = 0.41
) -> float:
    """Expected matched STEs per symbol on random genome input.

    Forward probability propagation through the (acyclic) network: a
    start STE matches with the probability of its class under the base
    distribution; an internal STE matches with (probability some
    predecessor matched, union-bounded at 1) × (its class probability).
    This is the activity figure the HyperScan and iNFAnt2 timing models
    consume — on von Neumann platforms, active states cost time.
    """
    at = (1.0 - gc_content) / 2.0
    gc = gc_content / 2.0
    base_probability = [at, gc, gc, at, 0.0]  # A C G T N

    def class_probability(mask: int) -> float:
        return sum(
            base_probability[code]
            for code in range(alphabet.NUM_CODES)
            if (mask >> code) & 1
        )

    n = automaton.num_stes
    indegree = [0] * n
    for source in range(n):
        for target in automaton.successors(source):
            indegree[target] += 1
    order = [s for s in range(n) if indegree[s] == 0]
    queue = list(order)
    while queue:
        source = queue.pop()
        for target in automaton.successors(source):
            indegree[target] -= 1
            if indegree[target] == 0:
                order.append(target)
                queue.append(target)
    if len(order) != n:
        raise PlatformError("expected_activity requires an acyclic network")

    probability = [0.0] * n
    incoming: list[float] = [0.0] * n
    for ste_id in order:
        ste = automaton.ste(ste_id)
        if ste.start is StartMode.ALL_INPUT:
            enabled = 1.0
        else:
            enabled = min(1.0, incoming[ste_id])
        probability[ste_id] = enabled * class_probability(ste.char_class.mask)
        for target in automaton.successors(ste_id):
            incoming[target] += probability[ste_id]
    return float(sum(probability))
