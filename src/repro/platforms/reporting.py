"""Report-event cost model for spatial architectures.

On the AP and on FPGA automata overlays, match *computation* is free —
every STE evaluates every cycle — but match *reporting* is not: report
events are gathered into on-chip event buffers which must be drained
over a comparatively slow host link, stalling symbol processing when
they fill. The paper's discussion of spatial-platform optimisations
centres on exactly this output bottleneck, so the model is explicit
and shared by both spatial engines, and the F6/F7 experiments sweep it.

Two optimisations from the paper's "methods to further improve
performance" are modelled:

* **report coalescing** — report vectors are recorded once per cycle
  that has any report, not once per reporting STE, collapsing the
  many simultaneous accept-row activations a repeat-dense region
  produces;
* **mismatch-threshold pruning** — report only rows up to a smaller
  mismatch count in a first pass and rescan flagged regions, trading
  a cheap second pass for drastically fewer events.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PlatformError


@dataclass(frozen=True)
class ReportTraffic:
    """Raw report volume of one run."""

    events: int  #: reporting-STE activations
    cycles_with_reports: int  #: cycles in which at least one STE reported

    def __post_init__(self) -> None:
        if self.events < 0 or self.cycles_with_reports < 0:
            raise PlatformError("report traffic counts must be non-negative")
        if self.cycles_with_reports > self.events:
            raise PlatformError("cycles_with_reports cannot exceed events")


@dataclass(frozen=True)
class ReportCostModel:
    """Stall model for an event buffer of *buffer_entries* entries.

    Every time the buffer fills, the device stalls *drain_cycles* while
    the host drains it.
    """

    buffer_entries: int
    drain_cycles: int
    coalesce: bool = False

    def __post_init__(self) -> None:
        if self.buffer_entries <= 0 or self.drain_cycles < 0:
            raise PlatformError("buffer must be positive and drain non-negative")

    def recorded_entries(self, traffic: ReportTraffic) -> int:
        """Buffer entries actually consumed under the configured mode."""
        return traffic.cycles_with_reports if self.coalesce else traffic.events

    def stall_cycles(self, traffic: ReportTraffic) -> int:
        """Total cycles stalled draining report buffers."""
        drains = self.recorded_entries(traffic) // self.buffer_entries
        return drains * self.drain_cycles

    def with_coalescing(self) -> "ReportCostModel":
        """The same model with per-cycle report coalescing enabled."""
        return ReportCostModel(self.buffer_entries, self.drain_cycles, coalesce=True)
