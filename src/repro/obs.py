"""Lightweight observability: counters, timers, and span-style traces.

Automata-processing systems live or die by their report handling and
per-stage cost visibility (the paper's F4 kernel-breakdown and F6
report-rate axes), so the search pipeline is threaded with one small
instrumentation primitive instead of ad-hoc ``time.perf_counter``
pairs. A :class:`Metrics` instance collects three kinds of signal:

* **counters** — monotonically increasing tallies (positions scanned,
  report events, shard retries);
* **gauges** — point-in-time levels that move both ways (queue depth,
  cache occupancy); a gauge reports *state*, which a counter's
  cumulative tally cannot express;
* **timers** — duration distributions (count / total / min / max) for
  repeated operations (per-chunk kernel calls, merge passes);
* **spans** — one-shot stage traces with nesting depth, recording when
  each pipeline stage started relative to the run and how long it
  took — the host-side analogue of the paper's kernel-vs-end-to-end
  decomposition.

Everything serialises to plain JSON via :meth:`Metrics.snapshot`,
which is what ``SearchReport.stats``, the CLI ``--stats-json`` flag,
and :mod:`repro.analysis.results` consume. Instances are cheap (two
dicts and a list) and thread-safe; cross-process aggregation goes
through :meth:`Metrics.merge` on snapshots shipped back from workers.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = ["Metrics", "TimerStat", "merge_snapshots"]


class TimerStat:
    """Running duration statistics for one named timer."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max,
        }


class Metrics:
    """One run's counters, timers, and stage spans.

    The zero point for span start offsets is the instance's creation
    time, so a snapshot reads as a timeline of the run it instrumented.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._timers: dict[str, TimerStat] = {}
        self._spans: list[dict[str, Any]] = []
        self._span_depth = 0

    # -- counters ----------------------------------------------------------

    def incr(self, name: str, value: float = 1) -> None:
        """Add *value* to counter *name* (created at zero on first use)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def counter(self, name: str) -> float:
        """Current value of counter *name* (zero if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def counters_with_prefix(self, prefix: str = "") -> dict[str, float]:
        """Every counter whose name starts with *prefix*, as a dict.

        The serving layer's health/drain/retry/reject tallies all live
        under dotted prefixes (``service.server.``, ``service.client.``,
        ``service.connections.``, ``service.drain.``), so checkers and
        tests read a family at once instead of guessing names.
        """
        with self._lock:
            return {
                name: value
                for name, value in self._counters.items()
                if name.startswith(prefix)
            }

    def rate(self, numerator: str, denominator: str, *, per: float = 1.0) -> float:
        """``per * counters[numerator] / counters[denominator]`` (0 if empty)."""
        with self._lock:
            bottom = self._counters.get(denominator, 0)
            if not bottom:
                return 0.0
            return per * self._counters.get(numerator, 0) / bottom

    # -- gauges ------------------------------------------------------------

    def gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to its current level *value*."""
        with self._lock:
            self._gauges[name] = float(value)

    def gauge_add(self, name: str, delta: float) -> float:
        """Move gauge *name* by *delta* (created at zero); returns the level."""
        with self._lock:
            level = self._gauges.get(name, 0.0) + delta
            self._gauges[name] = level
            return level

    def gauge_value(self, name: str) -> float:
        """Current level of gauge *name* (zero if never set)."""
        with self._lock:
            return self._gauges.get(name, 0.0)

    # -- timers ------------------------------------------------------------

    def observe(self, name: str, seconds: float) -> None:
        """Record one duration under timer *name*."""
        with self._lock:
            stat = self._timers.get(name)
            if stat is None:
                stat = self._timers[name] = TimerStat()
            stat.observe(seconds)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time the enclosed block into timer *name*."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - started)

    # -- spans -------------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[None]:
        """Trace the enclosed block as one pipeline stage.

        Spans nest: a span opened inside another records ``depth + 1``,
        so the snapshot reconstructs the stage tree without the cost of
        explicit parent links.
        """
        started = time.perf_counter()
        with self._lock:
            depth = self._span_depth
            self._span_depth += 1
        try:
            yield
        finally:
            finished = time.perf_counter()
            with self._lock:
                self._span_depth -= 1
                self._spans.append(
                    {
                        "name": name,
                        "start": started - self._epoch,
                        "seconds": finished - started,
                        "depth": depth,
                        **attrs,
                    }
                )

    # -- export ------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Everything collected so far, as a JSON-serialisable dict.

        Spans are reported in start order (they complete in LIFO order,
        so the raw list would read inside-out).
        """
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "timers": {
                    name: stat.as_dict() for name, stat in self._timers.items()
                },
                "spans": sorted(self._spans, key=lambda span: span["start"]),
            }

    def merge(self, snapshot: dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker) into this instance.

        Counters add, timers combine their distributions, gauges take
        the incoming level (a gauge is a *current* value, so the most
        recent observation wins), and spans are appended verbatim
        (their offsets stay relative to the worker's epoch, which is
        what a per-shard trace should show).
        """
        for name, value in snapshot.get("counters", {}).items():
            self.incr(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name, value)
        for name, stat in snapshot.get("timers", {}).items():
            with self._lock:
                mine = self._timers.get(name)
                if mine is None:
                    mine = self._timers[name] = TimerStat()
                mine.count += stat["count"]
                mine.total += stat["total"]
                if stat["count"]:
                    mine.min = min(mine.min, stat["min"])
                    mine.max = max(mine.max, stat["max"])
        with self._lock:
            self._spans.extend(snapshot.get("spans", ()))


def merge_snapshots(*snapshots: dict[str, Any]) -> dict[str, Any]:
    """Combine several :meth:`Metrics.snapshot` dicts into one."""
    combined = Metrics()
    for snapshot in snapshots:
        combined.merge(snapshot)
    return combined.snapshot()
