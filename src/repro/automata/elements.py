"""Full ANML element networks: STEs, boolean gates, and counters.

The Micron AP's machine model is richer than plain homogeneous automata
(:mod:`repro.automata.homogeneous`): networks may also contain
saturating **counter** elements and combinational **boolean** gates.
The paper's discussion of design alternatives and future automata
hardware turns on these elements, so this module implements the full
model, with the AP's timing discipline:

* an STE that matches during cycle ``t`` asserts its output during
  cycle ``t + 1`` (one-cycle element-to-element latency);
* boolean gates are combinational: their output during cycle ``t`` is a
  function of their inputs' outputs during cycle ``t`` (combinational
  cycles are rejected at freeze time);
* a counter increments when any count input is asserted, saturates at
  its target, and asserts its output while latched (``LATCH`` mode) or
  only in the cycle the target is reached (``PULSE``); a reset input
  takes effect before that cycle's count pulses.

Reports may hang off any element; a report fires during each cycle the
element's output is asserted, stamped ``cycle - 1`` so it names the
input symbol that completed the match — the same convention as the
plain-STE engines (an STE's output at ``t + 1`` reflects its match of
symbol ``t``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Hashable, Iterator

import numpy as np

from .. import alphabet
from ..errors import AutomatonError
from .charclass import CharClass
from .homogeneous import StartMode


class GateKind(enum.Enum):
    """Boolean gate varieties."""

    AND = "and"
    OR = "or"
    NOT = "not"


class CounterMode(enum.Enum):
    """Counter output behaviour at target."""

    LATCH = "latch"  #: assert from the cycle the target is reached until reset
    PULSE = "pulse"  #: assert only in the cycle the target is reached


@dataclass(frozen=True)
class ElementView:
    """Introspection view of one network element (for checkers/tools).

    ``kind`` is ``"ste"``, ``"gate"`` or ``"counter"``; the remaining
    fields are populated according to the kind (``None``/empty
    otherwise). ``inputs`` are enable/data inputs; counters expose
    their count and reset inputs separately, matching the wiring API.
    """

    element_id: int
    kind: str
    reports: tuple[Hashable, ...]
    char_class: CharClass | None = None
    start: StartMode | None = None
    gate_kind: GateKind | None = None
    counter_target: int | None = None
    counter_mode: CounterMode | None = None
    inputs: tuple[int, ...] = ()
    count_inputs: tuple[int, ...] = ()
    reset_inputs: tuple[int, ...] = ()


@dataclass
class _Ste:
    char_class: CharClass
    start: StartMode
    inputs: list[int] = field(default_factory=list)


@dataclass
class _Gate:
    kind: GateKind
    inputs: list[int] = field(default_factory=list)


@dataclass
class _Counter:
    target: int
    mode: CounterMode
    count_inputs: list[int] = field(default_factory=list)
    reset_inputs: list[int] = field(default_factory=list)


class ElementNetwork:
    """A mixed STE / boolean / counter network, executable cycle by cycle."""

    def __init__(self) -> None:
        self._elements: list[object] = []
        self._reports: list[tuple[Hashable, ...]] = []

    # -- construction ------------------------------------------------------

    def _add(self, element: object) -> int:
        self._elements.append(element)
        self._reports.append(())
        return len(self._elements) - 1

    def add_ste(
        self, char_class: CharClass, *, start: StartMode = StartMode.NONE
    ) -> int:
        """Add a State Transition Element."""
        if not char_class:
            raise AutomatonError("an STE must match at least one symbol")
        return self._add(_Ste(char_class, start))

    def add_gate(self, kind: GateKind) -> int:
        """Add a combinational boolean gate."""
        return self._add(_Gate(kind))

    def add_counter(
        self, target: int, *, mode: CounterMode = CounterMode.LATCH
    ) -> int:
        """Add a saturating counter with the given *target*."""
        if target <= 0:
            raise AutomatonError("counter target must be positive")
        return self._add(_Counter(target, mode))

    def _check(self, element: int) -> None:
        if not 0 <= element < len(self._elements):
            raise AutomatonError(f"unknown element id {element}")

    def connect(self, source: int, target: int) -> None:
        """Wire *source*'s output to *target*'s (enable/data) input.

        STE enables may only be driven by other STEs (the AP routes
        boolean/counter outputs to the report path and to other
        logic, not back into STE enables — designs needing that
        insert an STE stage).
        """
        self._check(source)
        self._check(target)
        element = self._elements[target]
        if isinstance(element, _Ste):
            if not isinstance(self._elements[source], _Ste):
                raise AutomatonError(
                    "STE enables may only be driven by STE outputs"
                )
            element.inputs.append(source)
        elif isinstance(element, _Gate):
            element.inputs.append(source)
        else:
            raise AutomatonError("use connect_count/connect_reset for counters")

    def connect_count(self, source: int, counter: int) -> None:
        """Wire *source* to a counter's count input."""
        self._check(source)
        element = self._elements[counter]
        if not isinstance(element, _Counter):
            raise AutomatonError(f"element {counter} is not a counter")
        element.count_inputs.append(source)

    def connect_reset(self, source: int, counter: int) -> None:
        """Wire *source* to a counter's reset input."""
        self._check(source)
        element = self._elements[counter]
        if not isinstance(element, _Counter):
            raise AutomatonError(f"element {counter} is not a counter")
        element.reset_inputs.append(source)

    def mark_report(self, element: int, label: Hashable) -> None:
        """Report *label* on every cycle *element*'s output is asserted."""
        self._check(element)
        self._reports[element] = self._reports[element] + (label,)

    # -- introspection -----------------------------------------------------

    @property
    def num_elements(self) -> int:
        return len(self._elements)

    def num_stes(self) -> int:
        """Number of STE elements."""
        return sum(1 for e in self._elements if isinstance(e, _Ste))

    def num_counters(self) -> int:
        """Number of counter elements."""
        return sum(1 for e in self._elements if isinstance(e, _Counter))

    def num_gates(self) -> int:
        """Number of boolean gates."""
        return sum(1 for e in self._elements if isinstance(e, _Gate))

    def reports_of(self, element: int) -> tuple[Hashable, ...]:
        """Report labels attached to *element*."""
        self._check(element)
        return self._reports[element]

    def elements(self) -> Iterator[ElementView]:
        """Iterate introspection views of every element (checker surface)."""
        for index, element in enumerate(self._elements):
            if isinstance(element, _Ste):
                yield ElementView(
                    element_id=index,
                    kind="ste",
                    reports=self._reports[index],
                    char_class=element.char_class,
                    start=element.start,
                    inputs=tuple(element.inputs),
                )
            elif isinstance(element, _Gate):
                yield ElementView(
                    element_id=index,
                    kind="gate",
                    reports=self._reports[index],
                    gate_kind=element.kind,
                    inputs=tuple(element.inputs),
                )
            else:
                assert isinstance(element, _Counter)
                yield ElementView(
                    element_id=index,
                    kind="counter",
                    reports=self._reports[index],
                    counter_target=element.target,
                    counter_mode=element.mode,
                    count_inputs=tuple(element.count_inputs),
                    reset_inputs=tuple(element.reset_inputs),
                )

    # -- execution ---------------------------------------------------------

    def _combinational_order(self) -> list[int]:
        """Topological order of gates and counters (outputs feed gates).

        STE outputs are registered (previous-cycle), so only
        gate/counter→gate edges constrain the order; cycles among them
        are rejected.
        """
        dynamic = [
            index
            for index, element in enumerate(self._elements)
            if isinstance(element, (_Gate, _Counter))
        ]
        dependencies: dict[int, set[int]] = {index: set() for index in dynamic}
        for index in dynamic:
            element = self._elements[index]
            sources = (
                element.inputs
                if isinstance(element, _Gate)
                else element.count_inputs + element.reset_inputs
            )
            for source in sources:
                if isinstance(self._elements[source], (_Gate, _Counter)):
                    dependencies[index].add(source)
        order: list[int] = []
        placed: set[int] = set()
        remaining = set(dynamic)
        while remaining:
            ready = [i for i in remaining if dependencies[i] <= placed]
            if not ready:
                raise AutomatonError("combinational cycle among gates/counters")
            for index in sorted(ready):
                order.append(index)
                placed.add(index)
                remaining.discard(index)
        return order

    def run(self, codes: np.ndarray) -> Iterator[tuple[int, Hashable]]:
        """Execute over a symbol-code stream, yielding ``(position, label)``.

        ``position`` is the index of the symbol whose consumption led to
        the reporting output (outputs asserted during cycle ``t``
        reflect symbol ``t - 1``).
        """
        codes = np.asarray(codes, dtype=np.uint8)
        order = self._combinational_order()
        n = len(self._elements)
        output = np.zeros(n, dtype=bool)  # outputs asserted during current cycle
        counter_values = {
            index: 0
            for index, element in enumerate(self._elements)
            if isinstance(element, _Counter)
        }
        # Cycle t consumes symbol t (t = 0..len-1); we also run one final
        # drain cycle (no symbol) so the last symbol's STE outputs reach
        # gates/counters and can report.
        for cycle in range(codes.size + 1):
            next_output = np.zeros(n, dtype=bool)
            consuming = cycle < codes.size
            code = int(codes[cycle]) if consuming else -1
            # STEs: match this cycle -> output asserted next cycle.
            for index, element in enumerate(self._elements):
                if not isinstance(element, _Ste) or not consuming:
                    continue
                if element.start is StartMode.ALL_INPUT:
                    enabled = True
                elif element.start is StartMode.START_OF_DATA and cycle == 0:
                    enabled = True
                else:
                    enabled = any(output[source] for source in element.inputs)
                if enabled and (element.char_class.mask >> code) & 1:
                    next_output[index] = True
            # Gates and counters: combinational on current-cycle outputs.
            for index in order:
                element = self._elements[index]
                if isinstance(element, _Gate):
                    values = [output[source] for source in element.inputs]
                    if element.kind is GateKind.AND:
                        asserted = bool(values) and all(values)
                    elif element.kind is GateKind.OR:
                        asserted = any(values)
                    else:
                        if len(element.inputs) != 1:
                            raise AutomatonError("NOT gate needs exactly one input")
                        asserted = not values[0]
                    output[index] = asserted
                else:
                    if any(output[source] for source in element.reset_inputs):
                        counter_values[index] = 0
                    pulses = sum(
                        1 for source in element.count_inputs if output[source]
                    )
                    reached_now = False
                    if pulses and counter_values[index] < element.target:
                        counter_values[index] = min(
                            element.target, counter_values[index] + pulses
                        )
                        reached_now = counter_values[index] >= element.target
                    latched = counter_values[index] >= element.target
                    output[index] = (
                        latched
                        if element.mode is CounterMode.LATCH
                        else reached_now
                    )
            # Reports: any element whose output is asserted this cycle.
            if cycle > 0:
                for index in range(n):
                    if output[index]:
                        for label in self._reports[index]:
                            yield cycle - 1, label
            # Gate/counter values are recomputed from scratch next cycle;
            # only STE assertions carry forward.
            output = next_output if consuming else np.zeros(n, dtype=bool)
