"""Automata substrate: character classes, NFA/DFA, homogeneous (ANML/STE) form."""

from .charclass import CharClass
from .nfa import Nfa, NfaState
from .dfa import Dfa, determinize, minimize
from .homogeneous import HomogeneousAutomaton, Ste, StartMode, nfa_to_homogeneous
from .anml import to_anml, from_anml
from .striding import (
    PairClass,
    StridedAutomaton,
    StridedReport,
    build_strided_hamming,
    pack_pairs,
    strided_search,
    strided_state_count,
)
from .elements import ElementNetwork, GateKind, CounterMode
from . import dot, ops

__all__ = [
    "CharClass",
    "Nfa",
    "NfaState",
    "Dfa",
    "determinize",
    "minimize",
    "HomogeneousAutomaton",
    "Ste",
    "StartMode",
    "nfa_to_homogeneous",
    "to_anml",
    "from_anml",
    "PairClass",
    "StridedAutomaton",
    "StridedReport",
    "build_strided_hamming",
    "pack_pairs",
    "strided_search",
    "strided_state_count",
    "ElementNetwork",
    "GateKind",
    "CounterMode",
    "dot",
    "ops",
]
