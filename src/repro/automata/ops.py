"""Structural operations and statistics on automata.

These are the graph-level utilities the compilers and platform models
share: disjoint union of guide automata into one network, reachability
pruning, and the structural statistics (state counts, fanout, transition
density) that feed the capacity and GPU-mapping models.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AutomatonError
from .homogeneous import HomogeneousAutomaton, StartMode
from .nfa import Nfa


def union(automata: list[Nfa]) -> Nfa:
    """Disjoint union of NFAs: one machine running all of them at once."""
    result = Nfa()
    for nfa in automata:
        mapping: dict[int, int] = {}
        for state in nfa.states():
            mapping[state.state_id] = result.add_state(state.name)
        for state in nfa.states():
            for char_class, target in nfa.transitions_from(state.state_id):
                result.add_transition(mapping[state.state_id], char_class, mapping[target])
            for target in nfa.epsilon_from(state.state_id):
                result.add_epsilon(mapping[state.state_id], mapping[target])
            if state.is_start:
                result.mark_start(mapping[state.state_id], all_input=state.all_input)
            for label in state.accept_labels:
                result.mark_accept(mapping[state.state_id], label)
    return result


def union_homogeneous(automata: list[HomogeneousAutomaton]) -> HomogeneousAutomaton:
    """Disjoint union of homogeneous automata."""
    result = HomogeneousAutomaton()
    for automaton in automata:
        result.merge(automaton)
    return result


def reachable_states(nfa: Nfa) -> set[int]:
    """States reachable from any start state (ignoring symbol feasibility)."""
    stack = list(nfa.start_states())
    seen = set(stack)
    while stack:
        state = stack.pop()
        targets = [t for _, t in nfa.transitions_from(state)]
        targets.extend(nfa.epsilon_from(state))
        for target in targets:
            if target not in seen:
                seen.add(target)
                stack.append(target)
    return seen


def prune_unreachable(nfa: Nfa) -> Nfa:
    """Drop states unreachable from the starts (and their edges)."""
    keep = sorted(reachable_states(nfa))
    mapping = {old: new for new, old in enumerate(keep)}
    result = Nfa()
    for old in keep:
        result.add_state(nfa.name_of(old))
    for old in keep:
        for char_class, target in nfa.transitions_from(old):
            if target in mapping:
                result.add_transition(mapping[old], char_class, mapping[target])
        for target in nfa.epsilon_from(old):
            if target in mapping:
                result.add_epsilon(mapping[old], mapping[target])
        for label in nfa.accept_labels(old):
            result.mark_accept(mapping[old], label)
    for state, all_input in nfa.start_states().items():
        if state in mapping:
            result.mark_start(mapping[state], all_input=all_input)
    return result


@dataclass(frozen=True)
class AutomatonStats:
    """Structural statistics of a homogeneous automaton network."""

    num_stes: int
    num_edges: int
    num_reports: int
    num_starts: int
    max_fanout: int
    mean_fanout: float
    #: distinct character classes (AP symbol-memory sharing potential)
    distinct_classes: int

    @property
    def transition_density(self) -> float:
        """Edges per STE — the quantity that hurts GPU transition-list engines."""
        return self.num_edges / self.num_stes if self.num_stes else 0.0


def stats(automaton: HomogeneousAutomaton) -> AutomatonStats:
    """Compute :class:`AutomatonStats` for a network."""
    if automaton.num_stes == 0:
        raise AutomatonError("cannot compute statistics of an empty automaton")
    fanouts = [len(automaton.successors(s)) for s in range(automaton.num_stes)]
    return AutomatonStats(
        num_stes=automaton.num_stes,
        num_edges=automaton.num_edges,
        num_reports=len(automaton.report_stes()),
        num_starts=sum(
            1 for ste in automaton.stes() if ste.start is not StartMode.NONE
        ),
        max_fanout=max(fanouts),
        mean_fanout=sum(fanouts) / len(fanouts),
        distinct_classes={ste.char_class for ste in automaton.stes()}.__len__(),
    )
