"""Graphviz DOT export for automata networks.

Debugging and papers both want pictures of the compiled machines. This
renders either automaton form as DOT text (pipe into ``dot -Tsvg``):
start STEs are doubly-outlined house shapes, reporting STEs are filled
double circles, and each node is labelled with its symbol set.
"""

from __future__ import annotations

from .homogeneous import HomogeneousAutomaton, StartMode
from .nfa import Nfa


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def homogeneous_to_dot(
    automaton: HomogeneousAutomaton, *, name: str = "automaton"
) -> str:
    """Render a homogeneous automaton as DOT."""
    lines = [f'digraph "{_escape(name)}" {{', "  rankdir=LR;", "  node [fontsize=10];"]
    for ste in automaton.stes():
        attributes = [f'label="{_escape(ste.char_class.symbols())}"']
        if ste.reports:
            attributes.append("shape=doublecircle")
            attributes.append("style=filled")
            attributes.append('fillcolor="#ffd9a0"')
        elif ste.start is not StartMode.NONE:
            attributes.append("shape=house")
            attributes.append("peripheries=2")
        else:
            attributes.append("shape=circle")
        lines.append(f"  s{ste.ste_id} [{', '.join(attributes)}];")
    for ste in automaton.stes():
        for target in automaton.successors(ste.ste_id):
            lines.append(f"  s{ste.ste_id} -> s{target};")
    lines.append("}")
    return "\n".join(lines)


def nfa_to_dot(nfa: Nfa, *, name: str = "nfa") -> str:
    """Render an edge-labelled NFA as DOT (edge labels = symbol sets)."""
    lines = [f'digraph "{_escape(name)}" {{', "  rankdir=LR;", "  node [fontsize=10];"]
    for state in nfa.states():
        attributes = [f'label="{_escape(state.name)}"']
        if state.accept_labels:
            attributes.append("shape=doublecircle")
        elif state.is_start:
            attributes.append("shape=house")
            attributes.append("peripheries=2")
        else:
            attributes.append("shape=circle")
        lines.append(f"  q{state.state_id} [{', '.join(attributes)}];")
    for state in nfa.states():
        for char_class, target in nfa.transitions_from(state.state_id):
            lines.append(
                f'  q{state.state_id} -> q{target} '
                f'[label="{_escape(char_class.symbols())}"];'
            )
        for target in nfa.epsilon_from(state.state_id):
            lines.append(f'  q{state.state_id} -> q{target} [label="ε", style=dashed];')
    lines.append("}")
    return "\n".join(lines)
