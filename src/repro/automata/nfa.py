"""Generic nondeterministic finite automata with labelled accepts.

This is the edge-labelled (textbook) automaton form. Compilers in
:mod:`repro.core` build search automata here, and
:mod:`repro.automata.homogeneous` converts them into the state-labelled
(ANML/STE) form the spatial platform models execute.

Search semantics: a state registered via :meth:`Nfa.mark_start` with
``all_input=True`` is re-injected into the active set at every input
position, which is how an unanchored scan ("find the pattern anywhere
in the genome stream") is expressed — exactly the AP's *all-input*
start mode. Accept states carry arbitrary hashable labels; a label is
emitted each time its state is entered, tagged with the index of the
symbol that caused entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator

import numpy as np

from ..errors import AutomatonError
from .charclass import CharClass


@dataclass(frozen=True)
class NfaState:
    """Introspection view of one NFA state."""

    state_id: int
    name: str
    is_start: bool
    all_input: bool
    accept_labels: tuple[Hashable, ...]


class Nfa:
    """A mutable NFA under construction, then executable once built."""

    def __init__(self) -> None:
        self._names: list[str] = []
        self._transitions: list[list[tuple[CharClass, int]]] = []
        self._epsilon: list[list[int]] = []
        self._starts: dict[int, bool] = {}  # state -> all_input?
        self._accepts: dict[int, list[Hashable]] = {}

    # -- construction ------------------------------------------------------

    def add_state(self, name: str = "") -> int:
        """Allocate a new state and return its id."""
        state_id = len(self._names)
        self._names.append(name or f"q{state_id}")
        self._transitions.append([])
        self._epsilon.append([])
        return state_id

    def _check(self, state: int) -> None:
        if not 0 <= state < len(self._names):
            raise AutomatonError(f"unknown state id {state}")

    def add_transition(self, source: int, char_class: CharClass, target: int) -> None:
        """Add an edge labelled *char_class* from *source* to *target*."""
        self._check(source)
        self._check(target)
        if not char_class:
            raise AutomatonError("refusing to add an edge with an empty character class")
        self._transitions[source].append((char_class, target))

    def add_epsilon(self, source: int, target: int) -> None:
        """Add an epsilon (no-consume) edge."""
        self._check(source)
        self._check(target)
        self._epsilon[source].append(target)

    def mark_start(self, state: int, *, all_input: bool = True) -> None:
        """Register a start state.

        ``all_input=True`` (the default, and the search mode) re-injects
        the state at every input position; ``False`` starts it only at
        the beginning of the stream (anchored match).
        """
        self._check(state)
        self._starts[state] = all_input

    def mark_accept(self, state: int, label: Hashable) -> None:
        """Attach an accept *label* to *state* (a state may carry several)."""
        self._check(state)
        self._accepts.setdefault(state, []).append(label)

    # -- introspection -----------------------------------------------------

    @property
    def num_states(self) -> int:
        return len(self._names)

    @property
    def num_transitions(self) -> int:
        return sum(len(edges) for edges in self._transitions)

    @property
    def num_epsilon(self) -> int:
        return sum(len(edges) for edges in self._epsilon)

    def states(self) -> Iterator[NfaState]:
        """Iterate introspection views of every state."""
        for state_id, name in enumerate(self._names):
            yield NfaState(
                state_id=state_id,
                name=name,
                is_start=state_id in self._starts,
                all_input=self._starts.get(state_id, False),
                accept_labels=tuple(self._accepts.get(state_id, ())),
            )

    def transitions_from(self, state: int) -> list[tuple[CharClass, int]]:
        self._check(state)
        return list(self._transitions[state])

    def epsilon_from(self, state: int) -> list[int]:
        self._check(state)
        return list(self._epsilon[state])

    def start_states(self) -> dict[int, bool]:
        """Mapping of start state id to its all-input flag."""
        return dict(self._starts)

    def accept_labels(self, state: int) -> tuple[Hashable, ...]:
        self._check(state)
        return tuple(self._accepts.get(state, ()))

    def name_of(self, state: int) -> str:
        self._check(state)
        return self._names[state]

    # -- epsilon handling --------------------------------------------------

    def epsilon_closure(self, states: Iterable[int]) -> frozenset[int]:
        """The epsilon closure of a state set."""
        stack = list(states)
        seen = set(stack)
        while stack:
            state = stack.pop()
            for target in self._epsilon[state]:
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        return frozenset(seen)

    def without_epsilon(self) -> "Nfa":
        """Return an equivalent NFA with no epsilon edges.

        Standard closure-based removal: each state inherits the outgoing
        labelled edges and accept labels of its epsilon closure.
        """
        result = Nfa()
        for name in self._names:
            result.add_state(name)
        for state in range(self.num_states):
            closure = self.epsilon_closure([state])
            seen_labels: set[Hashable] = set()
            for member in closure:
                for char_class, target in self._transitions[member]:
                    result.add_transition(state, char_class, target)
                for label in self._accepts.get(member, ()):
                    if label not in seen_labels:
                        seen_labels.add(label)
                        result.mark_accept(state, label)
        for state, all_input in self._starts.items():
            result.mark_start(state, all_input=all_input)
        return result

    # -- execution ---------------------------------------------------------

    def initial_active(self) -> frozenset[int]:
        """Active set before any symbol is consumed."""
        return self.epsilon_closure(self._starts.keys())

    def step(self, active: frozenset[int], code: int) -> frozenset[int]:
        """One symbol step: consume *code* from *active*, re-inject starts."""
        moved: set[int] = set()
        for state in active:
            for char_class, target in self._transitions[state]:
                if (char_class.mask >> code) & 1:
                    moved.add(target)
        moved = set(self.epsilon_closure(moved))
        for state, all_input in self._starts.items():
            if all_input:
                moved.add(state)
        moved |= self.epsilon_closure(
            [s for s, all_input in self._starts.items() if all_input]
        )
        return frozenset(moved)

    def run(self, codes: np.ndarray) -> Iterator[tuple[int, Hashable]]:
        """Consume a code array, yielding ``(position, label)`` per accept.

        A label fires when its state is *entered by consuming* the
        symbol at ``position`` (start-state accepts never fire from
        re-injection alone, matching report-on-activation hardware
        semantics).
        """
        active = self.initial_active()
        for position, code in enumerate(np.asarray(codes, dtype=np.uint8)):
            moved: set[int] = set()
            for state in active:
                for char_class, target in self._transitions[state]:
                    if (char_class.mask >> int(code)) & 1:
                        moved.add(target)
            entered = self.epsilon_closure(moved)
            for state in entered:
                for label in self._accepts.get(state, ()):
                    yield position, label
            next_active = set(entered)
            next_active |= self.epsilon_closure(
                [s for s, all_input in self._starts.items() if all_input]
            )
            active = frozenset(next_active)

    def match_count(self, codes: np.ndarray) -> int:
        """Number of accept activations over the input (convenience)."""
        return sum(1 for _ in self.run(codes))
