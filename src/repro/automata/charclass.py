"""Character classes over the genome symbol alphabet.

A character class is the set of genome symbol codes (``A C G T N``, see
:mod:`repro.alphabet`) a state consumes. It is stored as a 5-bit mask,
which is also exactly what the STE column of the Automata Processor
stores (there, 256-bit over bytes; here, 5-bit over the DNA codes every
platform model shares).

Matching semantics for the ambiguity code: a genome ``N`` is an uncalled
base, so it *mismatches* every concrete pattern base and only satisfies
a pattern ``N``. :meth:`CharClass.from_iupac` and
:meth:`CharClass.mismatch_of` encode this convention; every compiler and
engine inherits it from here, which is what keeps the six execution
paths in agreement.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import alphabet
from ..errors import AutomatonError

_FULL_MASK = (1 << alphabet.NUM_CODES) - 1


@dataclass(frozen=True, order=True)
class CharClass:
    """An immutable set of genome symbol codes, as a 5-bit mask."""

    mask: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.mask <= _FULL_MASK:
            raise AutomatonError(f"character-class mask {self.mask:#x} out of range")

    # -- constructors ------------------------------------------------------

    @classmethod
    def empty(cls) -> "CharClass":
        """The class matching nothing."""
        return cls(0)

    @classmethod
    def any(cls) -> "CharClass":
        """The class matching every symbol including ``N``."""
        return cls(_FULL_MASK)

    @classmethod
    def bases(cls) -> "CharClass":
        """The class matching the four called bases (not ``N``)."""
        return cls(_FULL_MASK & ~(1 << alphabet.CODE_N))

    @classmethod
    def of(cls, symbols: str) -> "CharClass":
        """The class matching exactly the listed genome symbols."""
        mask = 0
        for symbol in symbols:
            mask |= 1 << alphabet.code_of(symbol)
        return cls(mask)

    @classmethod
    def from_iupac(cls, symbol: str) -> "CharClass":
        """The class an IUPAC pattern *symbol* matches.

        ``N`` maps to :meth:`any` (it also accepts a genome ``N``);
        every other code maps to its concrete base set.
        """
        return cls(alphabet.iupac_code_mask(symbol))

    @classmethod
    def mismatch_of(cls, symbol: str) -> "CharClass":
        """The class of symbols that *mismatch* IUPAC pattern *symbol*.

        This is the label of the mismatch edge in the paper's automaton
        design: everything the match edge does not consume, including a
        genome ``N`` (for non-``N`` patterns).
        """
        return cls(_FULL_MASK & ~alphabet.iupac_code_mask(symbol))

    # -- set algebra -------------------------------------------------------

    def __contains__(self, symbol: str | int) -> bool:
        if isinstance(symbol, str):
            symbol = alphabet.code_of(symbol)
        return bool((self.mask >> int(symbol)) & 1)

    def __or__(self, other: "CharClass") -> "CharClass":
        return CharClass(self.mask | other.mask)

    def __and__(self, other: "CharClass") -> "CharClass":
        return CharClass(self.mask & other.mask)

    def __invert__(self) -> "CharClass":
        return CharClass(_FULL_MASK & ~self.mask)

    def __bool__(self) -> bool:
        return self.mask != 0

    def is_disjoint(self, other: "CharClass") -> bool:
        """True when the two classes share no symbol."""
        return (self.mask & other.mask) == 0

    def symbols(self) -> str:
        """The matched symbols as a string in code order."""
        return "".join(
            alphabet.GENOME_ALPHABET[code]
            for code in range(alphabet.NUM_CODES)
            if (self.mask >> code) & 1
        )

    def cardinality(self) -> int:
        """Number of matched symbols."""
        return bin(self.mask).count("1")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CharClass({self.symbols()!r})"
